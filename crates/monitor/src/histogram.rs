//! Log-bucketed histogram for latency-style distributions.
//!
//! The paper reports averages; a faithful reproduction should also be
//! able to show tails (p95/p99), where jitter and overload actually
//! live. Buckets grow geometrically, giving a bounded-memory sketch
//! with a fixed relative error (~`growth − 1`) at any quantile.

/// A histogram with geometrically growing buckets.
#[derive(Clone, Debug)]
pub struct Histogram {
    /// Upper bound of bucket `i` is `min_value * growth^(i+1)`.
    min_value: f64,
    growth: f64,
    counts: Vec<u64>,
    underflow: u64,
    total: u64,
    max_seen: f64,
}

impl Histogram {
    /// Creates a histogram covering `[min_value, min_value·growth^buckets)`
    /// with the given per-bucket growth factor (> 1).
    pub fn new(min_value: f64, growth: f64, buckets: usize) -> Self {
        assert!(min_value > 0.0, "min_value must be positive");
        assert!(growth > 1.0, "growth must exceed 1");
        assert!(buckets >= 1, "need at least one bucket");
        Histogram {
            min_value,
            growth,
            counts: vec![0; buckets],
            underflow: 0,
            total: 0,
            max_seen: f64::NEG_INFINITY,
        }
    }

    /// A good default for millisecond latencies: 0.1 ms to ~2 minutes at
    /// ~10 % relative resolution.
    pub fn for_latency_ms() -> Self {
        Histogram::new(0.1, 1.1, 150)
    }

    /// Records a sample. Values below the range count as underflow;
    /// values above clamp into the last bucket.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        self.max_seen = self.max_seen.max(x);
        if x < self.min_value {
            self.underflow += 1;
            return;
        }
        let idx = ((x / self.min_value).ln() / self.growth.ln()).floor() as usize;
        let idx = idx.min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The value at quantile `q ∈ [0, 1]` (upper bucket bound; `None`
    /// when empty). Resolution is one bucket (~`growth − 1` relative).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.total == 0 {
            return None;
        }
        let rank = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if rank <= seen {
            return Some(self.min_value);
        }
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if rank <= seen {
                return Some(self.min_value * self.growth.powi(i as i32 + 1));
            }
        }
        Some(self.max_seen)
    }

    /// Largest recorded sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.total > 0).then_some(self.max_seen)
    }

    /// Merges another histogram with identical parameters.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.counts.len(), other.counts.len(), "bucket mismatch");
        assert!(
            (self.min_value - other.min_value).abs() < 1e-12
                && (self.growth - other.growth).abs() < 1e-12,
            "parameter mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.total += other.total;
        self.max_seen = self.max_seen.max(other.max_seen);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::for_latency_ms();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn quantiles_are_within_bucket_resolution() {
        let mut h = Histogram::for_latency_ms();
        for i in 1..=1000 {
            h.record(i as f64); // 1..=1000 ms uniform
        }
        let p50 = h.quantile(0.5).unwrap();
        let p95 = h.quantile(0.95).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!((p50 / 500.0 - 1.0).abs() < 0.15, "p50 {p50}");
        assert!((p95 / 950.0 - 1.0).abs() < 0.15, "p95 {p95}");
        assert!((p99 / 990.0 - 1.0).abs() < 0.15, "p99 {p99}");
        assert!(p50 <= p95 && p95 <= p99, "quantiles must be monotone");
    }

    #[test]
    fn underflow_and_overflow_are_absorbed() {
        let mut h = Histogram::new(1.0, 2.0, 4); // covers [1, 16)
        h.record(0.01); // underflow
        h.record(1_000.0); // clamps into last bucket
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.25), Some(1.0)); // the underflow
        assert_eq!(h.max(), Some(1_000.0));
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::for_latency_ms();
        let mut b = Histogram::for_latency_ms();
        let mut all = Histogram::for_latency_ms();
        for i in 0..500 {
            let x = 1.0 + (i as f64) * 0.37;
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            all.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), all.quantile(q), "q={q}");
        }
    }

    #[test]
    #[should_panic(expected = "growth")]
    fn bad_growth_rejected() {
        Histogram::new(1.0, 1.0, 4);
    }
}
