//! Resource monitoring for RASC (paper §3.2).
//!
//! Nodes continuously observe their own behaviour and feed the composition
//! algorithm three kinds of statistics, all computed over a sliding window
//! of the most recent `h` observations "to avoid miscalculations caused by
//! transient behavior":
//!
//! * [`RateEstimator`] — arrival/departure rates of data units, from which
//!   a component's period `p_ci` and a node's consumed bandwidth follow,
//! * [`OutcomeWindow`] — the fraction of data units recently dropped
//!   (`drops_n(ci)` in the paper), the cost signal of the min-cost solve,
//! * [`WindowStats`] / [`Ewma`] / [`Welford`] — running-time statistics
//!   (`t_ci`) and general smoothing/aggregation helpers,
//! * [`ResourceVector`] — the paper's requirement (`u_ci`) and availability
//!   (`A_n`) vectors with the `r_max = min_j A_j / u_j` rule (§3.5).
//!
//! # Example
//!
//! ```
//! use desim::SimTime;
//! use monitor::{OutcomeWindow, RateEstimator, ResourceVector};
//!
//! // A component's arrival rate over the last 8 units (10 Hz stream).
//! let mut arrivals = RateEstimator::new(8);
//! for i in 0..10 {
//!     arrivals.record(SimTime::from_millis(100 * i));
//! }
//! assert!((arrivals.rate() - 10.0).abs() < 1e-9);
//!
//! // Drop feedback: 1 of the last 4 units dropped.
//! let mut drops = OutcomeWindow::new(4);
//! for d in [false, true, false, false] {
//!     drops.record(d);
//! }
//! assert!((drops.ratio() - 0.25).abs() < 1e-12);
//!
//! // r_max: a 1 Mb/s-in / 250 Kb/s-out node and an 8 Kbit data unit.
//! let avail = ResourceVector::bandwidth(1_000_000.0, 250_000.0);
//! let per_unit = ResourceVector::bandwidth(8_000.0, 8_000.0);
//! assert!((avail.max_rate(&per_unit) - 31.25).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod digest;
mod ewma;
mod histogram;
mod rate;
mod resources;
mod throughput;
mod welford;
mod window;

pub use digest::ResidualDigest;
pub use ewma::Ewma;
pub use histogram::Histogram;
pub use rate::RateEstimator;
pub use resources::ResourceVector;
pub use throughput::ThroughputMeter;
pub use welford::Welford;
pub use window::{OutcomeWindow, WindowStats};
