//! Sliding-window rate estimation over event timestamps.

use desim::SimTime;
use std::collections::VecDeque;

/// Estimates the rate of a point process (data-unit arrivals, departures)
/// from the timestamps of the most recent `h` events.
///
/// The estimate is `(k - 1) / (t_last - t_first)` over the retained window
/// — the maximum-likelihood rate for a Poisson process and exact for a
/// periodic one. With fewer than two events the rate is reported as zero.
#[derive(Clone, Debug)]
pub struct RateEstimator {
    window: VecDeque<SimTime>,
    capacity: usize,
    total: u64,
}

impl RateEstimator {
    /// Creates an estimator over the last `h ≥ 2` events.
    pub fn new(h: usize) -> Self {
        assert!(h >= 2, "window must hold at least 2 events");
        RateEstimator {
            window: VecDeque::with_capacity(h),
            capacity: h,
            total: 0,
        }
    }

    /// Records an event at `now`. Timestamps must be non-decreasing.
    pub fn record(&mut self, now: SimTime) {
        debug_assert!(
            self.window.back().is_none_or(|&last| now >= last),
            "timestamps must be monotone"
        );
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(now);
        self.total += 1;
    }

    /// Events per second over the window, or 0 with fewer than 2 events
    /// or a zero-length span.
    pub fn rate(&self) -> f64 {
        if self.window.len() < 2 {
            return 0.0;
        }
        let first = *self.window.front().unwrap();
        let last = *self.window.back().unwrap();
        let span = last.saturating_since(first).as_secs_f64();
        if span <= 0.0 {
            0.0
        } else {
            (self.window.len() - 1) as f64 / span
        }
    }

    /// The mean interval between events (the period `p_ci` the scheduler
    /// infers, paper §3.4), or `None` with fewer than 2 events.
    pub fn period(&self) -> Option<desim::SimDuration> {
        let r = self.rate();
        if r > 0.0 {
            Some(desim::SimDuration::from_secs_f64(1.0 / r))
        } else {
            None
        }
    }

    /// Total events ever recorded (not just the window).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of events currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// True when no events have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimDuration;

    #[test]
    fn empty_and_single_event_rate_is_zero() {
        let mut r = RateEstimator::new(8);
        assert_eq!(r.rate(), 0.0);
        assert!(r.is_empty());
        r.record(SimTime::from_secs(1));
        assert_eq!(r.rate(), 0.0);
        assert_eq!(r.period(), None);
    }

    #[test]
    fn periodic_events_give_exact_rate() {
        let mut r = RateEstimator::new(16);
        for i in 0..10 {
            r.record(SimTime::from_millis(100 * i)); // 10 Hz
        }
        assert!((r.rate() - 10.0).abs() < 1e-9);
        assert_eq!(r.period(), Some(SimDuration::from_millis(100)));
    }

    #[test]
    fn window_forgets_old_rates() {
        let mut r = RateEstimator::new(4);
        // Slow phase: 1 Hz.
        for i in 0..5 {
            r.record(SimTime::from_secs(i));
        }
        // Fast phase: 100 Hz; after 4 events the window is all-fast.
        for i in 0..4 {
            r.record(SimTime::from_secs(5) + SimDuration::from_millis(10 * i));
        }
        assert!((r.rate() - 100.0).abs() < 1e-6, "rate {}", r.rate());
        assert_eq!(r.total(), 9);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn simultaneous_events_do_not_divide_by_zero() {
        let mut r = RateEstimator::new(4);
        r.record(SimTime::from_secs(1));
        r.record(SimTime::from_secs(1));
        assert_eq!(r.rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_window_rejected() {
        RateEstimator::new(1);
    }
}
