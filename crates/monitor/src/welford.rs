//! Welford's online mean/variance, numerically stable in one pass.

/// Streaming mean, variance, and extremes without storing samples.
#[derive(Clone, Copy, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zeroed() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), None);
        assert_eq!(w.max(), None);
    }

    #[test]
    fn matches_naive_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.record(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert!((w.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(w.min(), Some(2.0));
        assert_eq!(w.max(), Some(9.0));
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.record(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..37] {
            left.record(x);
        }
        for &x in &xs[37..] {
            right.record(x);
        }
        left.merge(&right);
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(left.count(), all.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut w = Welford::new();
        w.record(5.0);
        let before = (w.count(), w.mean());
        w.merge(&Welford::new());
        assert_eq!((w.count(), w.mean()), before);
        let mut e = Welford::new();
        e.merge(&w);
        assert_eq!(e.count(), 1);
        assert_eq!(e.mean(), 5.0);
    }

    #[test]
    fn single_sample_variance_zero() {
        let mut w = Welford::new();
        w.record(42.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.mean(), 42.0);
    }
}
