//! Residual-capacity digests for sharded admission.
//!
//! A sharded composer holds an authoritative view only of its own
//! region's hosts. For every other host it composes against a
//! [`ResidualDigest`]: a compact, read-only snapshot of per-node residual
//! capacity (input/output bandwidth, CPU, drop ratio) that a monitoring
//! plane refreshes periodically. Between refreshes the digest is
//! *declared stale* — proposals composed against it may be invalidated at
//! commit time by the owning shard's ledger, which is exactly the
//! optimistic conflict the two-phase admission path detects and replays.
//!
//! The digest carries a monotone `version` so consumers can skip
//! re-patching their partial views when nothing changed, and the capture
//! timestamp so auditors can bound how stale any proposal's remote
//! information was (`age`), separating "declared, bounded staleness" from
//! an actual freshness violation.

/// Per-node residual capacities captured at one instant.
///
/// Stored as parallel vectors (not per-node structs) so a refresh is a
/// flat overwrite of four `Vec<f64>` with no per-node allocation.
#[derive(Clone, Debug, PartialEq)]
pub struct ResidualDigest {
    in_bps: Vec<f64>,
    out_bps: Vec<f64>,
    cpu: Vec<f64>,
    drop_ratio: Vec<f64>,
    version: u64,
    taken_at_secs: f64,
}

impl ResidualDigest {
    /// An empty (version 0, all-zero) digest over `n` nodes. Version 0
    /// means "never refreshed": consumers must refresh before composing
    /// against it.
    pub fn new(n: usize) -> ResidualDigest {
        ResidualDigest {
            in_bps: vec![0.0; n],
            out_bps: vec![0.0; n],
            cpu: vec![0.0; n],
            drop_ratio: vec![0.0; n],
            version: 0,
            taken_at_secs: 0.0,
        }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.in_bps.len()
    }

    /// True when the digest covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.in_bps.is_empty()
    }

    /// Overwrites every node's entry from `f(v) -> (in_bps, out_bps,
    /// cpu, drop_ratio)` and bumps the version. `at_secs` is the capture
    /// time in the caller's clock (simulation seconds in the engine,
    /// batch counter in the bench loop).
    pub fn refresh(&mut self, at_secs: f64, mut f: impl FnMut(usize) -> (f64, f64, f64, f64)) {
        for v in 0..self.in_bps.len() {
            let (i, o, c, d) = f(v);
            debug_assert!(i >= 0.0 && o >= 0.0 && c >= 0.0 && (0.0..=1.0).contains(&d));
            self.in_bps[v] = i;
            self.out_bps[v] = o;
            self.cpu[v] = c;
            self.drop_ratio[v] = d;
        }
        self.version += 1;
        self.taken_at_secs = at_secs;
    }

    /// Node `v`'s reported `(in_bps, out_bps, cpu, drop_ratio)`.
    pub fn get(&self, v: usize) -> (f64, f64, f64, f64) {
        (
            self.in_bps[v],
            self.out_bps[v],
            self.cpu[v],
            self.drop_ratio[v],
        )
    }

    /// Monotone refresh counter; 0 until the first [`refresh`].
    ///
    /// [`refresh`]: ResidualDigest::refresh
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Capture time of the current contents, in the caller's clock.
    pub fn taken_at_secs(&self) -> f64 {
        self.taken_at_secs
    }

    /// Age of the current contents at `now` (same clock as the capture
    /// time). Never refreshed ⇒ infinitely stale.
    pub fn age(&self, now: f64) -> f64 {
        if self.version == 0 {
            f64::INFINITY
        } else {
            (now - self.taken_at_secs).max(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_digest_is_version_zero_and_infinitely_stale() {
        let d = ResidualDigest::new(4);
        assert_eq!(d.len(), 4);
        assert_eq!(d.version(), 0);
        assert_eq!(d.age(100.0), f64::INFINITY);
        assert_eq!(d.get(2), (0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn refresh_bumps_version_and_tracks_age() {
        let mut d = ResidualDigest::new(3);
        d.refresh(10.0, |v| (v as f64, 2.0 * v as f64, 1.0, 0.25));
        assert_eq!(d.version(), 1);
        assert_eq!(d.get(2), (2.0, 4.0, 1.0, 0.25));
        assert_eq!(d.age(10.0), 0.0);
        assert_eq!(d.age(12.5), 2.5);
        d.refresh(20.0, |_| (7.0, 7.0, 7.0, 0.0));
        assert_eq!(d.version(), 2);
        assert_eq!(d.taken_at_secs(), 20.0);
        assert_eq!(d.get(0), (7.0, 7.0, 7.0, 0.0));
    }
}
