//! Fixed-size sliding windows over outcomes and scalar samples.

use std::collections::VecDeque;

/// Sliding window over success/failure outcomes; reports the failure
/// (drop) ratio among the last `h` data units a node handled.
///
/// This is the paper's `drops_n(ci)` feedback signal: because it "changes
/// dynamically depending on the load of the peer", composition reads it
/// fresh from this window rather than from lifetime counters.
#[derive(Clone, Debug)]
pub struct OutcomeWindow {
    window: VecDeque<bool>, // true = dropped
    capacity: usize,
    dropped_in_window: usize,
    total_dropped: u64,
    total_seen: u64,
}

impl OutcomeWindow {
    /// Creates a window over the last `h ≥ 1` outcomes.
    pub fn new(h: usize) -> Self {
        assert!(h >= 1, "window must hold at least one outcome");
        OutcomeWindow {
            window: VecDeque::with_capacity(h),
            capacity: h,
            dropped_in_window: 0,
            total_dropped: 0,
            total_seen: 0,
        }
    }

    /// Records one data-unit outcome.
    pub fn record(&mut self, dropped: bool) {
        if self.window.len() == self.capacity && self.window.pop_front() == Some(true) {
            self.dropped_in_window -= 1;
        }
        self.window.push_back(dropped);
        if dropped {
            self.dropped_in_window += 1;
            self.total_dropped += 1;
        }
        self.total_seen += 1;
    }

    /// Drop ratio over the window; 0 when nothing was observed yet
    /// (a fresh node advertises itself as uncongested).
    pub fn ratio(&self) -> f64 {
        if self.window.is_empty() {
            0.0
        } else {
            self.dropped_in_window as f64 / self.window.len() as f64
        }
    }

    /// Lifetime drop count.
    pub fn total_dropped(&self) -> u64 {
        self.total_dropped
    }

    /// Lifetime observation count.
    pub fn total_seen(&self) -> u64 {
        self.total_seen
    }
}

/// Sliding window over scalar samples with mean/min/max (running times).
#[derive(Clone, Debug)]
pub struct WindowStats {
    window: VecDeque<f64>,
    capacity: usize,
    sum: f64,
}

impl WindowStats {
    /// Creates a window over the last `h ≥ 1` samples.
    pub fn new(h: usize) -> Self {
        assert!(h >= 1, "window must hold at least one sample");
        WindowStats {
            window: VecDeque::with_capacity(h),
            capacity: h,
            sum: 0.0,
        }
    }

    /// Records a sample.
    pub fn record(&mut self, x: f64) {
        if self.window.len() == self.capacity {
            if let Some(old) = self.window.pop_front() {
                self.sum -= old;
            }
        }
        self.window.push_back(x);
        self.sum += x;
    }

    /// Mean over the window, or `default` when empty.
    pub fn mean_or(&self, default: f64) -> f64 {
        if self.window.is_empty() {
            default
        } else {
            self.sum / self.window.len() as f64
        }
    }

    /// Largest sample in the window, if any.
    pub fn max(&self) -> Option<f64> {
        self.window.iter().copied().reduce(f64::max)
    }

    /// Smallest sample in the window, if any.
    pub fn min(&self) -> Option<f64> {
        self.window.iter().copied().reduce(f64::min)
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// True when no samples are held.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_ratio_over_window_only() {
        let mut w = OutcomeWindow::new(4);
        assert_eq!(w.ratio(), 0.0);
        for _ in 0..4 {
            w.record(true); // all dropped
        }
        assert_eq!(w.ratio(), 1.0);
        for _ in 0..4 {
            w.record(false); // all delivered: window fully turned over
        }
        assert_eq!(w.ratio(), 0.0);
        assert_eq!(w.total_dropped(), 4);
        assert_eq!(w.total_seen(), 8);
    }

    #[test]
    fn outcome_partial_window() {
        let mut w = OutcomeWindow::new(10);
        w.record(true);
        w.record(false);
        w.record(false);
        w.record(false);
        assert!((w.ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn outcome_incremental_matches_recount() {
        let mut w = OutcomeWindow::new(5);
        let pattern = [true, false, true, true, false, false, true, false, true];
        for (i, &d) in pattern.iter().enumerate() {
            w.record(d);
            let start = (i + 1).saturating_sub(5);
            let expect =
                pattern[start..=i].iter().filter(|&&x| x).count() as f64 / (i + 1 - start) as f64;
            assert!((w.ratio() - expect).abs() < 1e-12, "at step {i}");
        }
    }

    #[test]
    fn window_stats_mean_and_extremes() {
        let mut w = WindowStats::new(3);
        assert_eq!(w.mean_or(7.5), 7.5);
        assert_eq!(w.max(), None);
        w.record(1.0);
        w.record(2.0);
        w.record(6.0);
        assert!((w.mean_or(0.0) - 3.0).abs() < 1e-12);
        w.record(10.0); // evicts 1.0
        assert!((w.mean_or(0.0) - 6.0).abs() < 1e-12);
        assert_eq!(w.max(), Some(10.0));
        assert_eq!(w.min(), Some(2.0));
        assert_eq!(w.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_window_rejected() {
        OutcomeWindow::new(0);
    }
}
