//! Windowed throughput measurement (bits/second over recent traffic).
//!
//! The paper's nodes compute their available input/output bandwidth "by
//! continuously monitoring the rates of incoming and outgoing data
//! units" (§3.2) — availability is *measured*, not tracked in a ledger.
//! A [`ThroughputMeter`] holds the (timestamp, bits) pairs of the recent
//! window and reports their rate.

use desim::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Measures the bit rate of a traffic stream over a sliding time window.
#[derive(Clone, Debug)]
pub struct ThroughputMeter {
    window: SimDuration,
    events: VecDeque<(SimTime, u64)>,
    bits_in_window: u64,
    total_bits: u64,
}

impl ThroughputMeter {
    /// Creates a meter over the trailing `window` of simulated time.
    pub fn new(window: SimDuration) -> Self {
        assert!(window > SimDuration::ZERO, "window must be positive");
        ThroughputMeter {
            window,
            events: VecDeque::new(),
            bits_in_window: 0,
            total_bits: 0,
        }
    }

    /// Records `bits` of traffic at time `now` (non-decreasing).
    pub fn record(&mut self, now: SimTime, bits: u64) {
        debug_assert!(
            self.events.back().is_none_or(|&(t, _)| now >= t),
            "timestamps must be monotone"
        );
        self.events.push_back((now, bits));
        self.bits_in_window += bits;
        self.total_bits += bits;
        self.evict(now);
    }

    /// Bits/second over the window ending at `now`.
    pub fn rate(&mut self, now: SimTime) -> f64 {
        self.evict(now);
        self.bits_in_window as f64 / self.window.as_secs_f64()
    }

    /// Lifetime bits recorded.
    pub fn total_bits(&self) -> u64 {
        self.total_bits
    }

    fn evict(&mut self, now: SimTime) {
        // Half-open window (now − w, now]: an event exactly one window
        // old has aged out.
        while let Some(&(t, bits)) = self.events.front() {
            if now.saturating_since(t) >= self.window {
                self.events.pop_front();
                self.bits_in_window -= bits;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn empty_meter_reads_zero() {
        let mut m = ThroughputMeter::new(SimDuration::from_secs(1));
        assert_eq!(m.rate(t(5000)), 0.0);
        assert_eq!(m.total_bits(), 0);
    }

    #[test]
    fn steady_stream_measures_exactly() {
        let mut m = ThroughputMeter::new(SimDuration::from_secs(1));
        // 100 kb every 100 ms = 1 Mbps.
        for i in 0..20 {
            m.record(t(i * 100), 100_000);
        }
        let r = m.rate(t(1900));
        assert!((r - 1_000_000.0).abs() < 1e-6, "{r}");
    }

    #[test]
    fn rate_decays_after_traffic_stops() {
        let mut m = ThroughputMeter::new(SimDuration::from_secs(1));
        m.record(t(0), 500_000);
        assert!((m.rate(t(0)) - 500_000.0).abs() < 1e-6);
        assert!((m.rate(t(900)) - 500_000.0).abs() < 1e-6);
        assert_eq!(m.rate(t(1100)), 0.0);
        assert_eq!(m.total_bits(), 500_000);
    }

    #[test]
    fn window_holds_only_recent() {
        let mut m = ThroughputMeter::new(SimDuration::from_secs(2));
        m.record(t(0), 1_000_000);
        m.record(t(3000), 200_000);
        // Only the second event is in the window at t=3s.
        assert!((m.rate(t(3000)) - 100_000.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        ThroughputMeter::new(SimDuration::ZERO);
    }
}
