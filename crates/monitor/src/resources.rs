//! The paper's k-dimensional resource vectors (§2.1, §3.5).
//!
//! A node's availability vector `A_n = [A_1 … A_k]` and a component's
//! requirement vector `u_ci = [u_1 … u_k]` (resource consumed per data
//! unit per second) determine the maximum rate the node can sustain for
//! the component: `r_max(c_i, n) = min_j A_j / u_j`.

/// A non-negative vector over `k` rate-based resources (e.g. input
/// bandwidth, output bandwidth, CPU cycles/s).
#[derive(PartialEq, Debug)]
pub struct ResourceVector(Vec<f64>);

impl Clone for ResourceVector {
    fn clone(&self) -> Self {
        ResourceVector(self.0.clone())
    }

    /// Reuses the existing heap buffer when the dimensions match.
    /// Snapshot views hold one `ResourceVector` per node, so cloning a
    /// thousand-node view costs thousands of allocations — `clone_from`
    /// over a previously cloned view costs none.
    fn clone_from(&mut self, source: &Self) {
        self.0.clone_from(&source.0);
    }
}

impl ResourceVector {
    /// Creates a vector from per-resource amounts (all must be ≥ 0).
    pub fn new(amounts: Vec<f64>) -> Self {
        assert!(!amounts.is_empty(), "resource vector must have k ≥ 1");
        assert!(
            amounts.iter().all(|&a| a >= 0.0 && a.is_finite()),
            "amounts must be finite and non-negative"
        );
        ResourceVector(amounts)
    }

    /// The paper's two-resource case: `[b_in, b_out]`.
    pub fn bandwidth(b_in: f64, b_out: f64) -> Self {
        Self::new(vec![b_in, b_out])
    }

    /// Number of resource dimensions `k`.
    pub fn dims(&self) -> usize {
        self.0.len()
    }

    /// Amount of resource `j`.
    pub fn get(&self, j: usize) -> f64 {
        self.0[j]
    }

    /// Overwrites the amount of resource `j`. Digest application patches
    /// a partial view's remote entries to reported residuals directly,
    /// with no consume/release delta to go through.
    pub fn set(&mut self, j: usize, amount: f64) {
        assert!(
            amount >= 0.0 && amount.is_finite(),
            "amounts must be finite and non-negative"
        );
        self.0[j] = amount;
    }

    /// `r_max`: the largest rate a node with availability `self` can offer
    /// a component with requirement `per_unit` (resource per 1 du/s).
    /// Dimensions where the component needs nothing do not constrain.
    pub fn max_rate(&self, per_unit: &ResourceVector) -> f64 {
        assert_eq!(self.dims(), per_unit.dims(), "dimension mismatch");
        let mut r = f64::INFINITY;
        for (a, u) in self.0.iter().zip(&per_unit.0) {
            if *u > 0.0 {
                r = r.min(a / u);
            }
        }
        r
    }

    /// Subtracts the consumption of running at `rate` (du/s) with
    /// requirement `per_unit`, clamping at zero. Paper's "update the node
    /// capacities" step between substream solves (Algorithm 1).
    pub fn consume(&mut self, per_unit: &ResourceVector, rate: f64) {
        assert_eq!(self.dims(), per_unit.dims(), "dimension mismatch");
        assert!(rate >= 0.0, "negative rate");
        for (a, u) in self.0.iter_mut().zip(&per_unit.0) {
            *a = (*a - u * rate).max(0.0);
        }
    }

    /// Returns the consumption back (component torn down).
    pub fn release(&mut self, per_unit: &ResourceVector, rate: f64) {
        assert_eq!(self.dims(), per_unit.dims(), "dimension mismatch");
        assert!(rate >= 0.0, "negative rate");
        for (a, u) in self.0.iter_mut().zip(&per_unit.0) {
            *a += u * rate;
        }
    }

    /// Whether every dimension of `self` is ≥ the corresponding dimension
    /// of the demand `per_unit · rate`.
    pub fn can_fit(&self, per_unit: &ResourceVector, rate: f64) -> bool {
        self.max_rate(per_unit) >= rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_rate_is_scarcest_resource() {
        let avail = ResourceVector::bandwidth(1_000_000.0, 250_000.0);
        let per_unit = ResourceVector::bandwidth(8_000.0, 8_000.0);
        // in allows 125 du/s, out allows 31.25 du/s → out binds.
        assert!((avail.max_rate(&per_unit) - 31.25).abs() < 1e-9);
    }

    #[test]
    fn zero_requirement_does_not_constrain() {
        let avail = ResourceVector::bandwidth(100.0, 0.0);
        let per_unit = ResourceVector::bandwidth(1.0, 0.0);
        assert_eq!(avail.max_rate(&per_unit), 100.0);
        let nothing = ResourceVector::bandwidth(0.0, 0.0);
        assert_eq!(avail.max_rate(&nothing), f64::INFINITY);
    }

    #[test]
    fn consume_then_release_roundtrips() {
        let mut avail = ResourceVector::bandwidth(1000.0, 2000.0);
        let per_unit = ResourceVector::bandwidth(10.0, 20.0);
        avail.consume(&per_unit, 30.0);
        assert_eq!(avail.get(0), 700.0);
        assert_eq!(avail.get(1), 1400.0);
        assert!(avail.can_fit(&per_unit, 70.0));
        assert!(!avail.can_fit(&per_unit, 70.1));
        avail.release(&per_unit, 30.0);
        assert_eq!(avail.get(0), 1000.0);
        assert_eq!(avail.get(1), 2000.0);
    }

    #[test]
    fn consume_clamps_at_zero() {
        let mut avail = ResourceVector::bandwidth(100.0, 100.0);
        avail.consume(&ResourceVector::bandwidth(1.0, 1.0), 500.0);
        assert_eq!(avail.get(0), 0.0);
        assert_eq!(avail.max_rate(&ResourceVector::bandwidth(1.0, 1.0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dims_panic() {
        ResourceVector::new(vec![1.0]).max_rate(&ResourceVector::bandwidth(1.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_amount_rejected() {
        ResourceVector::new(vec![-1.0]);
    }
}
