//! Exponentially weighted moving average.

/// An EWMA smoother: `v ← α·x + (1-α)·v`.
///
/// Used to smooth noisy per-data-unit measurements (running times,
/// backlogs) where a fixed-size window would be too jumpy.
#[derive(Clone, Copy, Debug)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates a smoother with weight `alpha ∈ (0, 1]` for new samples.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { alpha, value: None }
    }

    /// Feeds a sample; the first sample initializes the average.
    pub fn record(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => self.alpha * x + (1.0 - self.alpha) * v,
        });
    }

    /// Current smoothed value, or `default` before any sample.
    pub fn value_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }

    /// Whether at least one sample has been recorded.
    pub fn initialized(&self) -> bool {
        self.value.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes() {
        let mut e = Ewma::new(0.1);
        assert_eq!(e.value_or(9.0), 9.0);
        assert!(!e.initialized());
        e.record(4.0);
        assert_eq!(e.value_or(9.0), 4.0);
        assert!(e.initialized());
    }

    #[test]
    fn converges_to_constant_input() {
        let mut e = Ewma::new(0.3);
        e.record(0.0);
        for _ in 0..100 {
            e.record(10.0);
        }
        assert!((e.value_or(0.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn alpha_one_tracks_exactly() {
        let mut e = Ewma::new(1.0);
        e.record(3.0);
        e.record(8.0);
        assert_eq!(e.value_or(0.0), 8.0);
    }

    #[test]
    fn smoothing_damps_spikes() {
        let mut e = Ewma::new(0.1);
        e.record(1.0);
        e.record(100.0); // spike
        assert!((e.value_or(0.0) - 10.9).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_rejected() {
        Ewma::new(0.0);
    }
}
