//! Seeded randomized tests: the incremental window/meter implementations
//! agree with naive recomputation on arbitrary inputs (cases generated
//! from `desim::SimRng`; reproduce from the case number).

use desim::{SimDuration, SimRng, SimTime};
use monitor::{OutcomeWindow, RateEstimator, ThroughputMeter, Welford};

/// OutcomeWindow's incremental ratio equals a recount of the last h.
#[test]
fn outcome_window_matches_recount() {
    let mut rng = SimRng::new(0x0c0);
    for case in 0..256u32 {
        let h = rng.range_usize(1, 20);
        let len = rng.range_usize(1, 100);
        let outcomes: Vec<bool> = (0..len).map(|_| rng.chance(0.5)).collect();
        let mut w = OutcomeWindow::new(h);
        for (i, &d) in outcomes.iter().enumerate() {
            w.record(d);
            let start = (i + 1).saturating_sub(h);
            let window = &outcomes[start..=i];
            let expect = window.iter().filter(|&&x| x).count() as f64 / window.len() as f64;
            assert!((w.ratio() - expect).abs() < 1e-12, "case {case}");
        }
        assert_eq!(w.total_seen(), outcomes.len() as u64, "case {case}");
        assert_eq!(
            w.total_dropped(),
            outcomes.iter().filter(|&&x| x).count() as u64,
            "case {case}"
        );
    }
}

/// RateEstimator equals (k-1)/span over the retained tail.
#[test]
fn rate_estimator_matches_formula() {
    let mut rng = SimRng::new(0x2a7e);
    for case in 0..256u32 {
        let h = rng.range_usize(2, 16);
        let len = rng.range_usize(1, 60);
        let gaps: Vec<u64> = (0..len).map(|_| rng.range_u64(1, 1_000_000)).collect();
        let mut r = RateEstimator::new(h);
        let mut times = Vec::new();
        let mut now = 0u64;
        for g in gaps {
            now += g;
            times.push(now);
            r.record(SimTime::from_micros(now));
        }
        let tail: Vec<u64> = times.iter().rev().take(h).rev().copied().collect();
        if tail.len() >= 2 {
            let span = (tail[tail.len() - 1] - tail[0]) as f64 / 1e6;
            let expect = (tail.len() - 1) as f64 / span;
            assert!((r.rate() - expect).abs() / expect < 1e-9, "case {case}");
        } else {
            assert_eq!(r.rate(), 0.0, "case {case}");
        }
    }
}

/// ThroughputMeter equals a naive sum over the half-open window.
#[test]
fn throughput_meter_matches_naive() {
    let mut rng = SimRng::new(0x7412);
    for case in 0..256u32 {
        let window_ms = rng.range_u64(10, 5_000);
        let len = rng.range_usize(1, 80);
        let mut sorted: Vec<(u64, u64)> = (0..len)
            .map(|_| (rng.range_u64(0, 10_000), rng.range_u64(1, 100_000)))
            .collect();
        sorted.sort_by_key(|&(t, _)| t);
        let mut m = ThroughputMeter::new(SimDuration::from_millis(window_ms));
        for &(t, bits) in &sorted {
            m.record(SimTime::from_millis(t), bits);
        }
        let now = sorted.last().unwrap().0;
        let naive: u64 = sorted
            .iter()
            .filter(|&&(t, _)| now - t < window_ms)
            .map(|&(_, b)| b)
            .sum();
        let expect = naive as f64 / (window_ms as f64 / 1000.0);
        assert!(
            (m.rate(SimTime::from_millis(now)) - expect).abs() < 1e-6,
            "case {case}"
        );
    }
}

/// Welford matches naive two-pass mean/variance, and chunked merges
/// match sequential accumulation.
#[test]
fn welford_matches_naive_and_merges() {
    let mut rng = SimRng::new(0x3e1f);
    for case in 0..256u32 {
        let len = rng.range_usize(1, 100);
        let xs: Vec<f64> = (0..len).map(|_| rng.range_f64(-1e3, 1e3)).collect();
        let split = rng.range_usize(0, 100);
        let mut w = Welford::new();
        for &x in &xs {
            w.record(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((w.mean() - mean).abs() < 1e-6, "case {case}");
        assert!((w.variance() - var).abs() < 1e-6, "case {case}");

        let cut = split.min(xs.len());
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..cut] {
            a.record(x);
        }
        for &x in &xs[cut..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), w.count(), "case {case}");
        assert!((a.mean() - w.mean()).abs() < 1e-6, "case {case}");
        assert!((a.variance() - w.variance()).abs() < 1e-6, "case {case}");
    }
}
