//! Property tests: the incremental window/meter implementations agree
//! with naive recomputation on arbitrary inputs.

use desim::{SimDuration, SimTime};
use monitor::{OutcomeWindow, RateEstimator, ThroughputMeter, Welford};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// OutcomeWindow's incremental ratio equals a recount of the last h.
    #[test]
    fn outcome_window_matches_recount(
        h in 1usize..20,
        outcomes in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut w = OutcomeWindow::new(h);
        for (i, &d) in outcomes.iter().enumerate() {
            w.record(d);
            let start = (i + 1).saturating_sub(h);
            let window = &outcomes[start..=i];
            let expect = window.iter().filter(|&&x| x).count() as f64 / window.len() as f64;
            prop_assert!((w.ratio() - expect).abs() < 1e-12);
        }
        prop_assert_eq!(w.total_seen(), outcomes.len() as u64);
        prop_assert_eq!(
            w.total_dropped(),
            outcomes.iter().filter(|&&x| x).count() as u64
        );
    }

    /// RateEstimator equals (k-1)/span over the retained tail.
    #[test]
    fn rate_estimator_matches_formula(
        h in 2usize..16,
        gaps in proptest::collection::vec(1u64..1_000_000, 1..60),
    ) {
        let mut r = RateEstimator::new(h);
        let mut times = Vec::new();
        let mut now = 0u64;
        for g in gaps {
            now += g;
            times.push(now);
            r.record(SimTime::from_micros(now));
        }
        let tail: Vec<u64> = times.iter().rev().take(h).rev().copied().collect();
        if tail.len() >= 2 {
            let span = (tail[tail.len() - 1] - tail[0]) as f64 / 1e6;
            let expect = (tail.len() - 1) as f64 / span;
            prop_assert!((r.rate() - expect).abs() / expect < 1e-9);
        } else {
            prop_assert_eq!(r.rate(), 0.0);
        }
    }

    /// ThroughputMeter equals a naive sum over the half-open window.
    #[test]
    fn throughput_meter_matches_naive(
        window_ms in 10u64..5_000,
        events in proptest::collection::vec((0u64..10_000, 1u64..100_000), 1..80),
    ) {
        let mut sorted = events.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut m = ThroughputMeter::new(SimDuration::from_millis(window_ms));
        for &(t, bits) in &sorted {
            m.record(SimTime::from_millis(t), bits);
        }
        let now = sorted.last().unwrap().0;
        let naive: u64 = sorted
            .iter()
            .filter(|&&(t, _)| now - t < window_ms)
            .map(|&(_, b)| b)
            .sum();
        let expect = naive as f64 / (window_ms as f64 / 1000.0);
        prop_assert!((m.rate(SimTime::from_millis(now)) - expect).abs() < 1e-6);
    }

    /// Welford matches naive two-pass mean/variance, and chunked merges
    /// match sequential accumulation.
    #[test]
    fn welford_matches_naive_and_merges(
        xs in proptest::collection::vec(-1e3f64..1e3, 1..100),
        split in 0usize..100,
    ) {
        let mut w = Welford::new();
        for &x in &xs {
            w.record(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        prop_assert!((w.mean() - mean).abs() < 1e-6);
        prop_assert!((w.variance() - var).abs() < 1e-6);

        let cut = split.min(xs.len());
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..cut] {
            a.record(x);
        }
        for &x in &xs[cut..] {
            b.record(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), w.count());
        prop_assert!((a.mean() - w.mean()).abs() < 1e-6);
        prop_assert!((a.variance() - w.variance()).abs() < 1e-6);
    }
}
