//! Service placement and DHT-backed component discovery (§3.3).
//!
//! Every node hosts a subset of the catalog's services. Each (service,
//! host) pair is registered in the Pastry DHT under the hash of the
//! service name; composition looks the providers up through the overlay
//! and the lookup's hop count × link latencies become the discovery
//! latency charged to the request.

use crate::model::{ServiceCatalog, ServiceId};
use desim::SimRng;
use overlay::{stable_hash128, Dht, NodeKey, Overlay};
use simnet::NodeId;

/// Who offers which service, plus the DHT registry used to discover it.
#[derive(Clone, Debug)]
pub struct ServiceDirectory {
    /// `offers[node]` = sorted service ids hosted by that node.
    offers: Vec<Vec<ServiceId>>,
    /// DHT storing `hash(service name) → provider node ids`.
    dht: Dht<NodeId>,
    /// Cached service-name hashes, indexed by `ServiceId`.
    keys: Vec<NodeKey>,
}

impl ServiceDirectory {
    /// Assigns `per_node` distinct services to each of `n` nodes uniformly
    /// at random (the paper's setup: 10 services, 5 per node on 32 nodes
    /// ⇒ mean replication 16), registers everything in the DHT, and
    /// returns the directory.
    pub fn random_assignment(
        catalog: &ServiceCatalog,
        overlay: &Overlay,
        n: usize,
        per_node: usize,
        seed: u64,
    ) -> Self {
        assert!(per_node <= catalog.len(), "cannot host more than exist");
        let mut rng = SimRng::new(seed ^ 0x504C4143_454D4E54);
        let keys: Vec<NodeKey> = catalog
            .iter()
            .map(|s| stable_hash128(s.name.as_bytes()))
            .collect();
        let mut offers = Vec::with_capacity(n);
        let mut dht = Dht::new(n, 2);
        for node in 0..n {
            let mut picks = rng.sample_indices(catalog.len(), per_node);
            picks.sort_unstable();
            for &s in &picks {
                dht.insert(overlay, node, keys[s], node);
            }
            offers.push(picks);
        }
        // Guarantee coverage: every service must have at least one
        // provider or no request naming it can ever be composed. Assign
        // orphans to deterministic hosts.
        for (s, &key) in keys.iter().enumerate() {
            if !offers.iter().any(|o| o.contains(&s)) {
                let node = s % n;
                offers[node].push(s);
                offers[node].sort_unstable();
                dht.insert(overlay, node, key, node);
            }
        }
        ServiceDirectory { offers, dht, keys }
    }

    /// Explicit assignment (tests, examples): `offers[node]` lists the
    /// services node hosts.
    pub fn explicit(
        catalog: &ServiceCatalog,
        overlay: &Overlay,
        offers: Vec<Vec<ServiceId>>,
    ) -> Self {
        let keys: Vec<NodeKey> = catalog
            .iter()
            .map(|s| stable_hash128(s.name.as_bytes()))
            .collect();
        let mut dht = Dht::new(offers.len(), 2);
        for (node, served) in offers.iter().enumerate() {
            for &s in served {
                assert!(s < catalog.len(), "unknown service {s}");
                dht.insert(overlay, node, keys[s], node);
            }
        }
        ServiceDirectory { offers, dht, keys }
    }

    /// The services node `v` hosts.
    pub fn services_of(&self, v: NodeId) -> &[ServiceId] {
        &self.offers[v]
    }

    /// Whether `v` hosts service `s` (providers can instantiate any number
    /// of components of their services).
    pub fn hosts(&self, v: NodeId, s: ServiceId) -> bool {
        self.offers[v].contains(&s)
    }

    /// Discovers the providers of `service` by DHT lookup from `from`.
    /// Returns the provider set and the overlay route the query took
    /// (charged to the network by the engine).
    pub fn discover(
        &self,
        overlay: &Overlay,
        from: NodeId,
        service: ServiceId,
    ) -> (Vec<NodeId>, Vec<usize>) {
        let r = self.dht.lookup(overlay, from, self.keys[service]);
        (r.values, r.path)
    }

    /// Ground-truth provider list (no DHT traversal) — used by validators
    /// and tests to cross-check discovery.
    pub fn providers(&self, service: ServiceId) -> Vec<NodeId> {
        (0..self.offers.len())
            .filter(|&v| self.hosts(v, service))
            .collect()
    }

    /// Removes a failed node's registrations and re-replicates the
    /// registry (the failed node's services die with it; surviving
    /// replicas keep every other registration discoverable).
    pub fn handle_failure(&mut self, overlay: &Overlay, failed: NodeId) {
        let served = std::mem::take(&mut self.offers[failed]);
        // Repair FIRST, then remove. Repair consolidates every key onto
        // its *current* replica group and clears all other stores;
        // removal only touches the current group. In the other order, a
        // stale copy outside the group — left behind when an earlier
        // failure shifted a key's owner and re-anchored its replica
        // neighborhood — survives the removal, and the repair then
        // resurrects the dead provider from it (found by the chaos
        // auditor's registry check under double churn).
        self.dht.repair(overlay);
        for s in served {
            self.dht.remove(overlay, self.keys[s], &failed);
        }
    }

    /// Mean number of providers per service (the paper's "replication
    /// degree", 16 in its setup).
    pub fn mean_replication(&self) -> f64 {
        let total: usize = (0..self.keys.len()).map(|s| self.providers(s).len()).sum();
        total as f64 / self.keys.len() as f64
    }

    /// Registry-consistency audit: cross-checks DHT discovery against the
    /// ground-truth provider lists and verifies each registered service's
    /// effective replication degree. Returns one message per violation
    /// (empty = consistent). Used by the chaos auditor after churn; unlike
    /// [`discover`](Self::discover), this is an oracle check and charges
    /// nothing to the network.
    pub fn audit(&self, overlay: &Overlay) -> Vec<String> {
        let mut violations = Vec::new();
        let Some(from) = overlay.alive_members().next() else {
            return violations; // no vantage point left to query from
        };
        for s in 0..self.keys.len() {
            let truth = self.providers(s);
            let (mut found, _) = self.discover(overlay, from, s);
            found.sort_unstable();
            if found != truth {
                violations.push(format!(
                    "registry: service {s} discovery {found:?} != providers {truth:?}"
                ));
            }
            if !truth.is_empty() {
                let want = (self.dht.replicas() + 1).min(overlay.alive_count());
                let got = self.dht.replication_of(overlay, self.keys[s]);
                if got < want {
                    violations.push(format!(
                        "registry: service {s} replicated on {got} alive nodes, want {want}"
                    ));
                }
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(_: usize, _: usize) -> f64 {
        1.0
    }

    #[test]
    fn paper_setup_replication_degree() {
        // 32 nodes × 5 services each over 10 services ⇒ mean 16.
        let catalog = ServiceCatalog::synthetic(10, 1);
        let ov = Overlay::build(32, 1, &flat);
        let dir = ServiceDirectory::random_assignment(&catalog, &ov, 32, 5, 1);
        let total: usize = (0..32).map(|v| dir.services_of(v).len()).sum();
        assert!(total >= 32 * 5, "coverage fix may only add services");
        assert!((dir.mean_replication() - total as f64 / 10.0).abs() < 1e-9);
        assert!(dir.mean_replication() >= 16.0);
    }

    #[test]
    fn every_service_has_a_provider() {
        let catalog = ServiceCatalog::synthetic(10, 2);
        let ov = Overlay::build(4, 2, &flat);
        // 4 nodes × 2 services = 8 slots < 10 services: coverage fix kicks in.
        let dir = ServiceDirectory::random_assignment(&catalog, &ov, 4, 2, 2);
        for s in 0..10 {
            assert!(!dir.providers(s).is_empty(), "service {s} unprovided");
        }
    }

    #[test]
    fn discovery_matches_ground_truth() {
        let catalog = ServiceCatalog::synthetic(6, 3);
        let ov = Overlay::build(16, 3, &flat);
        let dir = ServiceDirectory::random_assignment(&catalog, &ov, 16, 3, 3);
        for s in 0..6 {
            let truth = dir.providers(s);
            for from in [0, 5, 15] {
                let (mut found, path) = dir.discover(&ov, from, s);
                found.sort_unstable();
                assert_eq!(found, truth, "service {s} from {from}");
                assert_eq!(path[0], from);
            }
        }
    }

    #[test]
    fn explicit_assignment_respected() {
        let catalog = ServiceCatalog::synthetic(3, 4);
        let ov = Overlay::build(3, 4, &flat);
        let dir = ServiceDirectory::explicit(&catalog, &ov, vec![vec![0, 1], vec![1], vec![2]]);
        assert!(dir.hosts(0, 0));
        assert!(dir.hosts(0, 1));
        assert!(!dir.hosts(1, 0));
        assert_eq!(dir.providers(1), vec![0, 1]);
        let (found, _) = dir.discover(&ov, 2, 2);
        assert_eq!(found, vec![2]);
    }

    #[test]
    fn audit_passes_through_failure_churn() {
        let catalog = ServiceCatalog::synthetic(6, 3);
        let mut ov = Overlay::build(16, 3, &flat);
        let mut dir = ServiceDirectory::random_assignment(&catalog, &ov, 16, 3, 3);
        assert_eq!(dir.audit(&ov), Vec::<String>::new());
        // Kill a third of the membership with proper failure handling:
        // the registry must stay discoverable and fully re-replicated.
        for v in [2, 7, 11, 14] {
            ov.remove(v);
            dir.handle_failure(&ov, v);
            assert_eq!(dir.audit(&ov), Vec::<String>::new(), "after failing {v}");
        }
    }

    #[test]
    fn audit_detects_stale_registrations() {
        let catalog = ServiceCatalog::synthetic(4, 5);
        let mut ov = Overlay::build(12, 5, &flat);
        let dir = ServiceDirectory::random_assignment(&catalog, &ov, 12, 3, 5);
        // Fail nodes *without* telling the directory (no re-replication,
        // stale offers): once a replica group or provider is hit, the
        // audit must flag the inconsistency. Removing half the membership
        // guarantees a hit with replication degree 3.
        let mut flagged = false;
        for v in 0..6 {
            ov.remove(v);
            if !dir.audit(&ov).is_empty() {
                flagged = true;
                break;
            }
        }
        assert!(flagged, "audit missed an unrepaired failure");
    }

    #[test]
    fn double_provider_failure_cannot_resurrect_registrations() {
        // Regression: with remove-before-repair in `handle_failure`, the
        // second of two sequential provider failures could come back
        // from the dead — the first failure's repair left authoritative
        // copies anchored to the old owner's ring neighborhood, removal
        // only cleaned the *new* replica group, and the trailing repair
        // resurrected the corpse from the stale out-of-group store.
        for seed in 0..24u64 {
            let catalog = ServiceCatalog::synthetic(2, seed);
            let mut ov = Overlay::build(8, seed, &flat);
            let mut offers = vec![vec![0, 1]; 6];
            offers.push(vec![]);
            offers.push(vec![]);
            let mut dir = ServiceDirectory::explicit(&catalog, &ov, offers);
            for v in [0usize, 1, 2] {
                ov.remove(v);
                dir.handle_failure(&ov, v);
                assert_eq!(
                    dir.audit(&ov),
                    Vec::<String>::new(),
                    "seed {seed} after failing {v}"
                );
            }
        }
    }

    #[test]
    fn assignment_is_deterministic() {
        let catalog = ServiceCatalog::synthetic(10, 5);
        let ov = Overlay::build(8, 5, &flat);
        let a = ServiceDirectory::random_assignment(&catalog, &ov, 8, 4, 9);
        let b = ServiceDirectory::random_assignment(&catalog, &ov, 8, 4, 9);
        for v in 0..8 {
            assert_eq!(a.services_of(v), b.services_of(v));
        }
    }
}
