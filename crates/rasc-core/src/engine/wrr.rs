//! Smooth weighted round-robin for rate-splitting dispatch.
//!
//! When a service is split across components, upstream senders must
//! distribute data units *proportionally to the assigned rates* (the flow
//! solution) and *deterministically* (reproducibility). Smooth WRR —
//! the algorithm nginx uses for upstream balancing — interleaves picks so
//! each target's share converges to its weight with minimal burstiness,
//! which also minimizes the reordering splitting can introduce.

use simnet::NodeId;

/// A weighted round-robin dispatcher over split-component targets.
#[derive(Clone, Debug)]
pub struct Wrr {
    targets: Vec<(NodeId, f64)>,
    credit: Vec<f64>,
    total: f64,
}

impl Wrr {
    /// Creates a dispatcher over `(node, weight)` targets. Weights must
    /// be positive; typically they are the placements' rate shares.
    pub fn new(targets: Vec<(NodeId, f64)>) -> Self {
        assert!(!targets.is_empty(), "WRR needs at least one target");
        assert!(
            targets.iter().all(|&(_, w)| w > 0.0),
            "weights must be positive"
        );
        let total = targets.iter().map(|&(_, w)| w).sum();
        let credit = vec![0.0; targets.len()];
        Wrr {
            targets,
            credit,
            total,
        }
    }

    /// Picks the next target (smooth WRR step).
    pub fn pick(&mut self) -> NodeId {
        for (c, &(_, w)) in self.credit.iter_mut().zip(&self.targets) {
            *c += w;
        }
        let best = self
            .credit
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite credits"))
            .map(|(i, _)| i)
            .expect("non-empty");
        self.credit[best] -= self.total;
        self.targets[best].0
    }

    /// The targets and weights (for inspection).
    pub fn targets(&self) -> &[(NodeId, f64)] {
        &self.targets
    }
}

/// A [`Wrr`] that hands out *runs* of `chunk` consecutive picks per
/// target. Splitting a stream per-unit interleaves branches with
/// different path delays, turning every slow-branch unit into an
/// out-of-order delivery; dispatching short runs of consecutive sequence
/// numbers down each branch confines reordering to run boundaries (the
/// standard striping trade-off: longer runs reorder less but burst
/// more into the slower branch).
#[derive(Clone, Debug)]
pub struct ChunkedWrr {
    wrr: Wrr,
    chunk: u32,
    left: u32,
    current: NodeId,
}

impl ChunkedWrr {
    /// Wraps `wrr`, emitting runs of `chunk ≥ 1` picks.
    pub fn new(mut wrr: Wrr, chunk: u32) -> Self {
        assert!(chunk >= 1, "chunk must be at least 1");
        let current = wrr.pick();
        ChunkedWrr {
            wrr,
            chunk,
            left: chunk,
            current,
        }
    }

    /// Picks the next target.
    pub fn pick(&mut self) -> NodeId {
        if self.left == 0 {
            self.current = self.wrr.pick();
            self.left = self.chunk;
        }
        self.left -= 1;
        self.current
    }

    /// Consumes up to `max ≥ 1` picks from the current run in one step,
    /// returning the target and how many picks were taken (bounded by
    /// the run's remainder, so consecutive calls walk run boundaries
    /// exactly like repeated [`pick`](Self::pick) would). Batched
    /// transfers use this to group a burst by target in O(runs) instead
    /// of O(units).
    pub fn pick_run(&mut self, max: u32) -> (NodeId, u32) {
        debug_assert!(max >= 1, "pick_run needs at least one pick");
        if self.left == 0 {
            self.current = self.wrr.pick();
            self.left = self.chunk;
        }
        let take = max.min(self.left);
        self.left -= take;
        (self.current, take)
    }

    /// The underlying targets and weights.
    pub fn targets(&self) -> &[(NodeId, f64)] {
        self.wrr.targets()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn histogram(wrr: &mut Wrr, picks: usize) -> HashMap<NodeId, usize> {
        let mut h = HashMap::new();
        for _ in 0..picks {
            *h.entry(wrr.pick()).or_insert(0) += 1;
        }
        h
    }

    #[test]
    fn single_target_always_wins() {
        let mut w = Wrr::new(vec![(7, 1.0)]);
        assert_eq!(w.pick(), 7);
        assert_eq!(w.pick(), 7);
    }

    #[test]
    fn proportional_to_weights() {
        let mut w = Wrr::new(vec![(0, 3.0), (1, 1.0)]);
        let h = histogram(&mut w, 400);
        assert_eq!(h[&0], 300);
        assert_eq!(h[&1], 100);
    }

    #[test]
    fn fractional_weights_converge() {
        let mut w = Wrr::new(vec![(0, 61.0), (1, 39.0)]);
        let h = histogram(&mut w, 1000);
        assert!((h[&0] as i64 - 610).abs() <= 1);
        assert!((h[&1] as i64 - 390).abs() <= 1);
    }

    #[test]
    fn smooth_interleaving_not_bursty() {
        // With weights 2:1 the sequence should never run three picks of
        // the heavy target back-to-back-to-back followed by starvation;
        // smooth WRR yields A B A / A B A / …
        let mut w = Wrr::new(vec![(0, 2.0), (1, 1.0)]);
        let seq: Vec<NodeId> = (0..9).map(|_| w.pick()).collect();
        // Every window of 3 contains exactly one pick of target 1.
        for win in seq.chunks(3) {
            assert_eq!(win.iter().filter(|&&n| n == 1).count(), 1, "{seq:?}");
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = Wrr::new(vec![(0, 5.0), (1, 2.0), (2, 3.0)]);
        let mut b = Wrr::new(vec![(0, 5.0), (1, 2.0), (2, 3.0)]);
        for _ in 0..100 {
            assert_eq!(a.pick(), b.pick());
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        Wrr::new(vec![(0, 0.0)]);
    }

    #[test]
    fn chunked_emits_runs_with_proportional_totals() {
        let mut c = ChunkedWrr::new(Wrr::new(vec![(0, 3.0), (1, 1.0)]), 4);
        let seq: Vec<NodeId> = (0..160).map(|_| c.pick()).collect();
        // Runs of exactly 4 identical picks.
        for run in seq.chunks(4) {
            assert!(run.iter().all(|&x| x == run[0]), "{run:?}");
        }
        // Long-run proportions still match the weights.
        let ones = seq.iter().filter(|&&x| x == 1).count();
        assert_eq!(ones, 40);
    }

    #[test]
    fn chunk_of_one_equals_plain_wrr() {
        let mut a = ChunkedWrr::new(Wrr::new(vec![(0, 2.0), (1, 1.0)]), 1);
        let mut b = Wrr::new(vec![(0, 2.0), (1, 1.0)]);
        for _ in 0..30 {
            assert_eq!(a.pick(), b.pick());
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_chunk_rejected() {
        ChunkedWrr::new(Wrr::new(vec![(0, 1.0)]), 0);
    }

    #[test]
    fn pick_run_walks_the_same_sequence_as_pick() {
        let targets = vec![(0, 3.0), (1, 2.0), (2, 1.0)];
        let mut unit = ChunkedWrr::new(Wrr::new(targets.clone()), 4);
        let singles: Vec<NodeId> = (0..240).map(|_| unit.pick()).collect();
        for max in [1u32, 2, 3, 4, 7] {
            let mut runs = ChunkedWrr::new(Wrr::new(targets.clone()), 4);
            let mut expanded = Vec::new();
            while expanded.len() < singles.len() {
                let want = max.min((singles.len() - expanded.len()) as u32);
                let (target, n) = runs.pick_run(want);
                assert!(n >= 1 && n <= want);
                expanded.extend((0..n).map(|_| target));
            }
            assert_eq!(expanded, singles, "max {max}");
        }
    }

    #[test]
    fn pick_run_never_crosses_a_run_boundary() {
        let mut c = ChunkedWrr::new(Wrr::new(vec![(0, 1.0), (1, 1.0)]), 3);
        // First call takes at most the full chunk even when asked for more.
        let (first, n) = c.pick_run(10);
        assert_eq!(n, 3);
        // The next run must come from the other target (1:1 weights).
        let (second, m) = c.pick_run(10);
        assert_eq!(m, 3);
        assert_ne!(first, second);
    }
}
