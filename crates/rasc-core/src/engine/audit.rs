//! The system auditor: checkpointed global invariant checks.
//!
//! When enabled (`EngineConfig::audit`), the engine snapshots nothing and
//! instruments nothing on the data path beyond a per-delivery bitset
//! update; instead the auditor periodically sweeps the whole engine state
//! and cross-checks independent books against each other:
//!
//! 1. **Data-unit conservation** — every generated unit is delivered or
//!    dropped exactly once; at any event boundary
//!    `generated = delivered + drops + in flight + queued + on CPU`,
//!    exactly (u64 arithmetic, no tolerance).
//! 2. **Drop attribution** — the per-node NIC drop counters sum to the
//!    run report's sender/receiver drop causes plus control-plane drops.
//! 3. **Ledger consistency** — each node's committed rates equal the sum
//!    of the live applications' reservations (recomputed from the same
//!    formula installation uses) and never exceed capacity × headroom.
//! 4. **Registry consistency** — DHT discovery matches the ground-truth
//!    provider sets and every registered service stays fully replicated,
//!    including after churn.
//! 5. **Sequence exactly-once** — no destination sees a substream
//!    sequence number twice, nor one the source never emitted.
//! 6. **Rollback exactness** — a rejected composition leaves the
//!    `SystemView` bit-equal to its pre-compose snapshot (checked at the
//!    rejection site in `handle_submit`).
//! 7. **Event-queue liveness** — the backlog drains at teardown: no
//!    stranded events, no cancellation tombstones, no stuck units.
//!
//! Violations are collected as human-readable messages (and, in debug
//! builds, fail fast via `debug_assert!` so `RASC_AUDIT=1 cargo test`
//! turns every engine test into an invariant check).

use super::{EngineState, Event};
use crate::metrics::DropCause;
use crate::model::AppId;
use desim::EventQueue;
use std::collections::HashMap;

/// Upper bound on retained violation messages (protects against a broken
/// invariant flooding memory in a long soak; the count is still exact).
const MAX_RETAINED: usize = 200;

/// Outcome of an audited run.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// Number of mid-run checkpoints performed.
    pub checkpoints: u64,
    /// Whether the final teardown check ran.
    pub final_checked: bool,
    /// Human-readable violation messages, at most `MAX_RETAINED`.
    pub violations: Vec<String>,
    /// Violations beyond the retention bound (0 in any healthy run).
    pub suppressed: u64,
}

impl AuditReport {
    /// True when no invariant was violated.
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.suppressed == 0
    }

    /// Total violation count (retained + suppressed).
    pub fn violation_count(&self) -> u64 {
        self.violations.len() as u64 + self.suppressed
    }
}

/// Per-(app, substream) delivered-sequence bitset.
#[derive(Default)]
struct SeenSeqs {
    words: Vec<u64>,
    count: u64,
}

/// The engine's invariant checker (see the module docs for the list).
pub(super) struct Auditor {
    pub(super) report: AuditReport,
    seen: HashMap<(AppId, usize), SeenSeqs>,
}

impl Auditor {
    pub(super) fn new() -> Self {
        Auditor {
            report: AuditReport::default(),
            seen: HashMap::new(),
        }
    }

    pub(super) fn violation(&mut self, msg: String) {
        if self.report.violations.len() < MAX_RETAINED {
            self.report.violations.push(msg);
        } else {
            self.report.suppressed += 1;
        }
    }

    /// Invariant 5, recorded at each destination delivery.
    pub(super) fn record_delivery(&mut self, app: AppId, substream: usize, seq: u64, bound: u64) {
        if seq >= bound {
            self.violation(format!(
                "sequence: app {app} substream {substream} delivered seq {seq} >= next_seq {bound}"
            ));
        }
        let set = self.seen.entry((app, substream)).or_default();
        let (w, b) = ((seq / 64) as usize, seq % 64);
        if set.words.len() <= w {
            set.words.resize(w + 1, 0);
        }
        if set.words[w] >> b & 1 == 1 {
            self.violation(format!(
                "sequence: app {app} substream {substream} seq {seq} delivered twice"
            ));
        } else {
            set.words[w] |= 1 << b;
            set.count += 1;
        }
    }

    /// One mid-run sweep over the whole engine state.
    pub(super) fn checkpoint(&mut self, st: &EngineState, q: &EventQueue<Event>) {
        self.report.checkpoints += 1;
        self.check_conservation(st, false);
        self.check_attribution(st);
        self.check_ledger(st);
        self.check_deliveries(st);
        self.check_registry(st);
        self.check_digest_freshness(st);
        if q.total_fired() > q.total_scheduled() {
            self.violation(format!(
                "queue: fired {} > scheduled {}",
                q.total_fired(),
                q.total_scheduled()
            ));
        }
        if q.cancelled_backlog() > q.raw_len() {
            self.violation(format!(
                "queue: {} cancellation tombstones exceed {} heap entries",
                q.cancelled_backlog(),
                q.raw_len()
            ));
        }
        debug_assert!(
            self.report.clean(),
            "audit violations: {:#?}",
            self.report.violations
        );
    }

    /// The teardown check: everything above plus liveness — the event
    /// backlog must have drained and no unit may be stranded anywhere.
    pub(super) fn final_check(&mut self, st: &EngineState, q: &EventQueue<Event>, drained: bool) {
        self.report.final_checked = true;
        if !drained {
            self.violation("liveness: event queue failed to drain at teardown".into());
        }
        if q.pending_len() != 0 || q.raw_len() != 0 {
            self.violation(format!(
                "liveness: {} pending / {} heap events after drain",
                q.pending_len(),
                q.raw_len()
            ));
        }
        if q.cancelled_backlog() != 0 {
            self.violation(format!(
                "liveness: {} cancellation tombstones after drain",
                q.cancelled_backlog()
            ));
        }
        if st.in_flight_net != 0 {
            self.violation(format!(
                "liveness: {} units still in network flight after drain",
                st.in_flight_net
            ));
        }
        for (v, node) in st.nodes.iter().enumerate() {
            if !node.sched.is_empty() {
                self.violation(format!(
                    "liveness: node {v} still queues {} units after drain",
                    node.sched.len()
                ));
            }
            if !node.running.is_empty() {
                self.violation(format!(
                    "liveness: node {v} still busy with {} units after drain",
                    node.running.len()
                ));
            }
        }
        self.check_conservation(st, true);
        self.check_attribution(st);
        self.check_ledger(st);
        self.check_deliveries(st);
        self.check_registry(st);
        self.check_digest_freshness(st);
        debug_assert!(
            self.report.clean(),
            "audit violations: {:#?}",
            self.report.violations
        );
    }

    /// Sharded admission (`config.shards > 0`) composes cross-region
    /// placements against a *declared-stale* residual digest, so the
    /// auditor must not compare remote view slices against live state —
    /// that would flag staleness the design explicitly tolerates.
    /// What it does bound is the *declaration*: the digest may never be
    /// older than one refresh period plus one audit period, and once a
    /// sharded admitter exists its digest must have been captured at
    /// least once (the engine refreshes at creation).
    fn check_digest_freshness(&mut self, st: &EngineState) {
        if st.draining {
            // Teardown stops the refresh cycle by design; no admission
            // reads the digest past this point, so its age is moot.
            return;
        }
        let Some((_, adm)) = &st.sharded else { return };
        let digest = adm.digest();
        let bound = st.config.digest_refresh_secs.max(0.05) + st.config.audit_period_secs;
        let age = digest.age(st.now.as_secs_f64());
        if !age.is_finite() {
            self.violation("digest: sharded admitter exists but digest never captured".into());
        } else if age > bound {
            self.violation(format!(
                "digest: residual digest is {age:.3}s old, staleness bound is {bound:.3}s"
            ));
        }
    }

    /// Invariant 1: exact unit conservation at an event boundary.
    fn check_conservation(&mut self, st: &EngineState, at_teardown: bool) {
        let delivered: u64 = st
            .apps
            .iter()
            .flat_map(|a| a.trackers.iter())
            .map(|t| t.delivered())
            .sum();
        let drops = st.report.total_drops();
        let queued: u64 = st.nodes.iter().map(|n| n.sched.len() as u64).sum();
        let running: u64 = st.nodes.iter().map(|n| n.running.len() as u64).sum();
        let accounted = delivered + drops + st.in_flight_net + queued + running;
        if accounted != st.report.generated {
            self.violation(format!(
                "conservation{}: generated {} != delivered {delivered} + drops {drops} \
                 + in-flight {} + queued {queued} + running {running}",
                if at_teardown { " (teardown)" } else { "" },
                st.report.generated,
                st.in_flight_net,
            ));
        }
        // Store accounting: the SoA slab's live-unit count must equal the
        // units still outstanding (in flight + queued + on CPU). A live
        // unit beyond that is a storage leak (a drop path forgot to
        // release); one short means a double release.
        let live = st.store.live() as u64;
        let outstanding = st.in_flight_net + queued + running;
        if live != outstanding {
            self.violation(format!(
                "store{}: {live} live units != in-flight {} + queued {queued} \
                 + running {running}",
                if at_teardown { " (teardown)" } else { "" },
                st.in_flight_net,
            ));
        }
    }

    /// Invariant 2: NIC drop counters attribute exactly to drop causes.
    fn check_attribution(&mut self, st: &EngineState) {
        let n = st.nodes.len();
        let net_out: u64 = (0..n).map(|v| st.net.stats(v).drops_out).sum();
        let net_in: u64 = (0..n).map(|v| st.net.stats(v).drops_in).sum();
        let want_out = st.report.drops[DropCause::NetSender as usize] + st.control_drops_out;
        let want_in = st.report.drops[DropCause::NetReceiver as usize] + st.control_drops_in;
        if net_out != want_out {
            self.violation(format!(
                "attribution: NIC sender drops {net_out} != unit drops + control drops {want_out}"
            ));
        }
        if net_in != want_in {
            self.violation(format!(
                "attribution: NIC receiver drops {net_in} != unit drops + control drops {want_in}"
            ));
        }
    }

    /// Invariant 3: committed-rate ledger equals the live reservations
    /// and respects the admission bound.
    fn check_ledger(&mut self, st: &EngineState) {
        let n = st.nodes.len();
        let mut want = vec![(0.0f64, 0.0f64, 0.0f64); n];
        for app in st.apps.iter().filter(|a| a.active) {
            super::for_each_commitment(&st.catalog, &app.req, &app.graph, &mut |v, i, o, c| {
                want[v].0 += i;
                want[v].1 += o;
                want[v].2 += c;
            });
        }
        // Bits/s tolerance: FP accumulation dust, orders of magnitude
        // below any real reservation (one unit/s is ~8000 bits/s).
        let tol = 1.0;
        for (v, want) in want.iter().enumerate() {
            let node = &st.nodes[v];
            if (node.committed_in - want.0).abs() > tol || (node.committed_out - want.1).abs() > tol
            {
                self.violation(format!(
                    "ledger: node {v} committed ({:.1}, {:.1}) != live reservations \
                     ({:.1}, {:.1}) bits/s",
                    node.committed_in, node.committed_out, want.0, want.1
                ));
            }
            if (node.committed_cpu - want.2).abs() > 1e-6 {
                self.violation(format!(
                    "ledger: node {v} committed CPU {:.6} != live reservations {:.6} cores",
                    node.committed_cpu, want.2
                ));
            }
            if node.alive {
                let spec = st.net.topology().spec(v);
                let head = st.config.admission_headroom;
                let slack = 64.0 + spec.bw_in.max(spec.bw_out) * 1e-9;
                if node.committed_in > spec.bw_in * head + slack {
                    self.violation(format!(
                        "ledger: node {v} committed_in {:.1} exceeds {:.1} × {head}",
                        node.committed_in, spec.bw_in
                    ));
                }
                if node.committed_out > spec.bw_out * head + slack {
                    self.violation(format!(
                        "ledger: node {v} committed_out {:.1} exceeds {:.1} × {head}",
                        node.committed_out, spec.bw_out
                    ));
                }
                if let Some(cores) = st.config.cpu_cores {
                    if node.committed_cpu > cores * head + 1e-6 {
                        self.violation(format!(
                            "ledger: node {v} committed CPU {:.4} exceeds {cores} × {head}",
                            node.committed_cpu
                        ));
                    }
                }
            }
        }
    }

    /// Invariant 5 (aggregate): tracker counts match the audited bitsets,
    /// so no delivery bypassed the exactly-once bookkeeping.
    fn check_deliveries(&mut self, st: &EngineState) {
        for (a, app) in st.apps.iter().enumerate() {
            for (l, tr) in app.trackers.iter().enumerate() {
                let seen = self.seen.get(&(a, l)).map_or(0, |s| s.count);
                if tr.delivered() != seen {
                    self.violation(format!(
                        "sequence: app {a} substream {l} tracker delivered {} != {} audited",
                        tr.delivered(),
                        seen
                    ));
                }
            }
        }
    }

    /// Invariant 4: the service registry stayed consistent under churn.
    fn check_registry(&mut self, st: &EngineState) {
        for msg in st.dir.audit(&st.overlay) {
            self.violation(msg);
        }
    }
}

/// FNV-1a over a word stream: the run-digest hash. Stable across
/// platforms and thread counts; used to prove two soak runs identical.
pub fn fnv1a64(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_digest_is_order_sensitive_and_stable() {
        let a = fnv1a64([1, 2, 3]);
        let b = fnv1a64([1, 2, 3]);
        let c = fnv1a64([3, 2, 1]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(fnv1a64([]), 0);
    }

    #[test]
    fn report_counts_and_caps_violations() {
        let mut aud = Auditor::new();
        assert!(aud.report.clean());
        for i in 0..(MAX_RETAINED + 10) {
            aud.violation(format!("v{i}"));
        }
        assert_eq!(aud.report.violations.len(), MAX_RETAINED);
        assert_eq!(aud.report.suppressed, 10);
        assert_eq!(aud.report.violation_count(), MAX_RETAINED as u64 + 10);
        assert!(!aud.report.clean());
    }

    #[test]
    fn duplicate_and_out_of_range_sequences_flagged() {
        let mut aud = Auditor::new();
        aud.record_delivery(0, 0, 3, 10);
        aud.record_delivery(0, 0, 4, 10);
        assert!(aud.report.clean());
        aud.record_delivery(0, 0, 3, 10); // duplicate
        aud.record_delivery(0, 1, 12, 10); // beyond next_seq
        assert_eq!(aud.report.violation_count(), 2);
    }
}
