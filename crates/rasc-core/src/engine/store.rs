//! SoA storage for data units in flight through the engine.
//!
//! The per-unit data plane used to move a 48-byte `Unit` struct by value
//! through every event, scheduler queue, and CPU slot. At dataplane
//! rates that is the dominant memcpy traffic, and the `Clone` in each
//! hand-off is what kept the steady-state loop allocating. This module
//! replaces the moves with *index-based hand-off*:
//!
//! * [`UnitStore`] — a slab of parallel arrays (struct-of-arrays), one
//!   element per live unit, addressed by a dense `u32` [`UnitRef`].
//!   Events, scheduler jobs, and CPU slots carry the 4-byte ref; the
//!   unit's fields live in exactly one place. A free list recycles
//!   slots, so after warm-up the store never allocates.
//! * [`BatchPool`] — recycled `Vec<UnitRef>` buffers backing batched
//!   link transfers ([`BatchRef`]). `detach`/`recycle` move the buffer
//!   out for iteration and hand it back cleared but with capacity
//!   intact — zero-alloc in the steady state.
//!
//! Allocation discipline is enforced by the bench harness's
//! counting-allocator gate over a warmed engine loop.

use crate::model::AppId;
use desim::SimTime;

/// Dense index of a live unit in the [`UnitStore`].
pub(super) type UnitRef = u32;

/// Index of an in-flight batch buffer in the [`BatchPool`].
pub(super) type BatchRef = u32;

/// Struct-of-arrays slab of live data units.
pub(super) struct UnitStore {
    app: Vec<u32>,
    substream: Vec<u32>,
    /// Index of the stage about to process the unit; `== stage count`
    /// means the unit is addressed to the destination.
    layer: Vec<u32>,
    seq: Vec<u64>,
    created: Vec<SimTime>,
    bits: Vec<u64>,
    free: Vec<UnitRef>,
    live: usize,
}

impl UnitStore {
    pub(super) fn new() -> Self {
        UnitStore {
            app: Vec::new(),
            substream: Vec::new(),
            layer: Vec::new(),
            seq: Vec::new(),
            created: Vec::new(),
            bits: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Admits a unit, reusing a freed slot when one exists.
    pub(super) fn alloc(
        &mut self,
        app: AppId,
        substream: usize,
        layer: usize,
        seq: u64,
        created: SimTime,
        bits: u64,
    ) -> UnitRef {
        self.live += 1;
        if let Some(u) = self.free.pop() {
            let i = u as usize;
            self.app[i] = app as u32;
            self.substream[i] = substream as u32;
            self.layer[i] = layer as u32;
            self.seq[i] = seq;
            self.created[i] = created;
            self.bits[i] = bits;
            u
        } else {
            let u = self.app.len() as UnitRef;
            self.app.push(app as u32);
            self.substream.push(substream as u32);
            self.layer.push(layer as u32);
            self.seq.push(seq);
            self.created.push(created);
            self.bits.push(bits);
            u
        }
    }

    /// Returns a unit's slot to the free list. Every drop or delivery
    /// path must release exactly once; the auditor's store-accounting
    /// check catches leaks.
    pub(super) fn release(&mut self, u: UnitRef) {
        debug_assert!(self.live > 0, "release with no live units");
        self.live -= 1;
        self.free.push(u);
    }

    /// Advances a unit to the next stage with its new payload size.
    pub(super) fn advance(&mut self, u: UnitRef, next_layer: usize, bits: u64) {
        self.layer[u as usize] = next_layer as u32;
        self.bits[u as usize] = bits;
    }

    /// Units currently alive (allocated, not yet released).
    pub(super) fn live(&self) -> usize {
        self.live
    }

    pub(super) fn app(&self, u: UnitRef) -> AppId {
        self.app[u as usize] as AppId
    }

    pub(super) fn substream(&self, u: UnitRef) -> usize {
        self.substream[u as usize] as usize
    }

    pub(super) fn layer(&self, u: UnitRef) -> usize {
        self.layer[u as usize] as usize
    }

    pub(super) fn seq(&self, u: UnitRef) -> u64 {
        self.seq[u as usize]
    }

    pub(super) fn created(&self, u: UnitRef) -> SimTime {
        self.created[u as usize]
    }

    pub(super) fn bits(&self, u: UnitRef) -> u64 {
        self.bits[u as usize]
    }
}

/// Pool of recycled `Vec<UnitRef>` buffers for batched transfers.
///
/// A buffer is `take`n and filled by the sender, travels through the
/// event queue as a [`BatchRef`], is `detach`ed by the receiver for
/// iteration, and `recycle`d (cleared, capacity kept) when done.
pub(super) struct BatchPool {
    bufs: Vec<Vec<UnitRef>>,
    free: Vec<BatchRef>,
}

impl BatchPool {
    pub(super) fn new() -> Self {
        BatchPool {
            bufs: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Claims an empty buffer.
    pub(super) fn take(&mut self) -> BatchRef {
        if let Some(b) = self.free.pop() {
            b
        } else {
            self.bufs.push(Vec::new());
            (self.bufs.len() - 1) as BatchRef
        }
    }

    /// Appends a unit to a claimed buffer.
    pub(super) fn push(&mut self, b: BatchRef, u: UnitRef) {
        self.bufs[b as usize].push(u);
    }

    pub(super) fn len(&self, b: BatchRef) -> usize {
        self.bufs[b as usize].len()
    }

    pub(super) fn units(&self, b: BatchRef) -> &[UnitRef] {
        &self.bufs[b as usize]
    }

    /// Moves the buffer out for iteration while `self` is re-borrowed.
    /// Pair with [`recycle`](Self::recycle) to return its capacity.
    pub(super) fn detach(&mut self, b: BatchRef) -> Vec<UnitRef> {
        std::mem::take(&mut self.bufs[b as usize])
    }

    /// Returns a detached buffer, cleared but with capacity intact.
    pub(super) fn recycle(&mut self, b: BatchRef, mut buf: Vec<UnitRef>) {
        buf.clear();
        self.bufs[b as usize] = buf;
        self.free.push(b);
    }

    /// Releases a still-attached buffer (e.g. after a whole-batch drop).
    pub(super) fn discard(&mut self, b: BatchRef) {
        self.bufs[b as usize].clear();
        self.free.push(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_release_recycles_slots() {
        let mut s = UnitStore::new();
        let a = s.alloc(1, 2, 3, 40, SimTime::from_millis(5), 8192);
        assert_eq!(s.live(), 1);
        assert_eq!(s.app(a), 1);
        assert_eq!(s.substream(a), 2);
        assert_eq!(s.layer(a), 3);
        assert_eq!(s.seq(a), 40);
        assert_eq!(s.created(a), SimTime::from_millis(5));
        assert_eq!(s.bits(a), 8192);
        s.release(a);
        assert_eq!(s.live(), 0);
        // The freed slot is reused, fully overwritten.
        let b = s.alloc(9, 0, 0, 7, SimTime::ZERO, 16);
        assert_eq!(b, a);
        assert_eq!(s.app(b), 9);
        assert_eq!(s.seq(b), 7);
        assert_eq!(s.bits(b), 16);
    }

    #[test]
    fn advance_moves_layer_and_bits() {
        let mut s = UnitStore::new();
        let u = s.alloc(0, 0, 0, 0, SimTime::ZERO, 100);
        s.advance(u, 2, 250);
        assert_eq!(s.layer(u), 2);
        assert_eq!(s.bits(u), 250);
        assert_eq!(s.seq(u), 0, "advance only touches layer and bits");
    }

    #[test]
    fn batch_pool_recycles_capacity() {
        let mut p = BatchPool::new();
        let b = p.take();
        p.push(b, 1);
        p.push(b, 2);
        assert_eq!(p.len(b), 2);
        assert_eq!(p.units(b), &[1, 2]);
        let buf = p.detach(b);
        assert_eq!(buf, vec![1, 2]);
        let cap = buf.capacity();
        p.recycle(b, buf);
        // The same buffer (same id, same capacity) comes back.
        let b2 = p.take();
        assert_eq!(b2, b);
        assert_eq!(p.len(b2), 0);
        assert!(p.bufs[b2 as usize].capacity() >= cap);
    }

    #[test]
    fn discard_frees_without_detach() {
        let mut p = BatchPool::new();
        let b = p.take();
        p.push(b, 7);
        p.discard(b);
        let b2 = p.take();
        assert_eq!(b2, b);
        assert_eq!(p.len(b2), 0);
    }
}
