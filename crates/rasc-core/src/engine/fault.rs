//! Seeded fault-injection plans: first-class simulation events.
//!
//! The paper's evaluation lives on shared PlanetLab hosts whose usable
//! bandwidth "changes dynamically depending on the load of the peer"
//! (§3.2) and whose nodes come and go. A [`FaultPlan`] scripts exactly
//! that state of the world as deterministic simulation events — node
//! crashes, NIC bandwidth degradation and restoration, link latency
//! spikes, and overlay (control-plane) message loss — so stress scenarios
//! replay bit-for-bit from a seed. Plans are either hand-written or drawn
//! from a [`FaultProfile`] by [`FaultPlan::generate`].

use desim::{SimDuration, SimRng, SimTime};
use simnet::NodeId;

/// One injectable fault (or its scheduled recovery).
#[derive(Clone, Debug, PartialEq)]
pub enum FaultAction {
    /// Crash-stop a node: overlay routes around it, its registrations are
    /// re-replicated, affected applications re-compose (§3.3).
    Crash(NodeId),
    /// Scale a node's NIC rates to `factor` of their pristine capacities
    /// (other tenants of the shared host eating its bandwidth).
    Degrade {
        /// The degraded node.
        node: NodeId,
        /// Remaining fraction of the pristine rates, clamped to
        /// `[0.05, 1.0]` at application time.
        factor: f64,
    },
    /// Restore a degraded node's pristine NIC capacities.
    Restore(NodeId),
    /// Multiply the propagation latency of every link touching `node` by
    /// `factor` for `duration` (re-routing, access-link congestion).
    LatencySpike {
        /// The spiked node.
        node: NodeId,
        /// Latency multiplier (≥ 1 is typical).
        factor: f64,
        /// How long the spike lasts; the engine schedules the calm-down.
        duration: SimDuration,
    },
    /// End a latency spike early. Scheduled automatically by the engine
    /// when a [`FaultAction::LatencySpike`] fires; exposed for
    /// hand-written plans.
    LatencyCalm(NodeId),
    /// Drop overlay control messages touching `node` with probability
    /// `prob` for `duration`. Data units are not affected: overlay
    /// messaging (discovery, stats pulls) has its own delivery path and
    /// its losses surface as retransmission latency.
    MessageLoss {
        /// The lossy node.
        node: NodeId,
        /// Per-message loss probability in `[0, 1]`.
        prob: f64,
        /// How long the loss window lasts.
        duration: SimDuration,
    },
    /// End a message-loss window early. Scheduled automatically.
    LossCalm(NodeId),
}

/// A fault action bound to an absolute simulation time.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultEvent {
    /// When the action fires.
    pub at: SimTime,
    /// What happens.
    pub action: FaultAction,
}

/// A deterministic schedule of fault events.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// The scheduled actions, sorted by time (constructors maintain this;
    /// the engine schedules them verbatim either way).
    pub events: Vec<FaultEvent>,
}

/// Families of generated fault plans (the chaos soak's plan axis).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultProfile {
    /// Crash-stop failures only (the paper's §3.3 churn scenario).
    Crashes,
    /// Bandwidth degradation with later restoration (flaky shared hosts).
    Degradations,
    /// Latency spikes plus overlay message loss (a sick network, healthy
    /// hosts).
    LatencyLoss,
    /// One of everything.
    Mixed,
}

impl FaultProfile {
    /// All profiles, in a fixed order for soak matrices.
    pub const ALL: [FaultProfile; 4] = [
        FaultProfile::Crashes,
        FaultProfile::Degradations,
        FaultProfile::LatencyLoss,
        FaultProfile::Mixed,
    ];

    /// Display label used in soak tables.
    pub fn label(self) -> &'static str {
        match self {
            FaultProfile::Crashes => "crashes",
            FaultProfile::Degradations => "degrade",
            FaultProfile::LatencyLoss => "lat+loss",
            FaultProfile::Mixed => "mixed",
        }
    }

    fn salt(self) -> u64 {
        match self {
            FaultProfile::Crashes => 0x4652_4153_4301,
            FaultProfile::Degradations => 0x4652_4153_4302,
            FaultProfile::LatencyLoss => 0x4652_4153_4303,
            FaultProfile::Mixed => 0x4652_4153_4304,
        }
    }
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Adds an action at `at` seconds, keeping events time-sorted.
    pub fn at_secs(mut self, at: f64, action: FaultAction) -> Self {
        self.events.push(FaultEvent {
            at: SimTime::ZERO + SimDuration::from_secs_f64(at),
            action,
        });
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// Draws a plan from `profile`, deterministic in `(profile, seed)`.
    ///
    /// Victims come from `candidates` (typically the processing nodes —
    /// crashing an endpoint just kills its app, which is a different,
    /// cheaper test); fault times land inside `[0.2, 0.7] × horizon` so
    /// the system is warm when they hit and has time to recover before
    /// teardown audits run.
    pub fn generate(
        profile: FaultProfile,
        seed: u64,
        candidates: &[NodeId],
        horizon_secs: f64,
    ) -> Self {
        assert!(!candidates.is_empty(), "no fault candidates");
        let mut rng = SimRng::new(seed ^ profile.salt());
        let mut plan = FaultPlan::none();
        let k = (candidates.len() / 4).clamp(1, 3);
        let victims: Vec<NodeId> = rng
            .sample_indices(candidates.len(), k)
            .into_iter()
            .map(|i| candidates[i])
            .collect();
        let when = |rng: &mut SimRng| rng.range_f64(0.2, 0.7) * horizon_secs;
        match profile {
            FaultProfile::Crashes => {
                for &v in &victims {
                    plan = plan.at_secs(when(&mut rng), FaultAction::Crash(v));
                }
            }
            FaultProfile::Degradations => {
                for &v in &victims {
                    let t = when(&mut rng);
                    let factor = rng.range_f64(0.15, 0.5);
                    let hold = rng.range_f64(3.0, 8.0);
                    plan = plan
                        .at_secs(t, FaultAction::Degrade { node: v, factor })
                        .at_secs(t + hold, FaultAction::Restore(v));
                }
            }
            FaultProfile::LatencyLoss => {
                for &v in &victims {
                    let t = when(&mut rng);
                    plan = plan.at_secs(
                        t,
                        FaultAction::LatencySpike {
                            node: v,
                            factor: rng.range_f64(2.0, 6.0),
                            duration: SimDuration::from_secs_f64(rng.range_f64(2.0, 6.0)),
                        },
                    );
                    let t2 = when(&mut rng);
                    plan = plan.at_secs(
                        t2,
                        FaultAction::MessageLoss {
                            node: v,
                            prob: rng.range_f64(0.1, 0.4),
                            duration: SimDuration::from_secs_f64(rng.range_f64(2.0, 6.0)),
                        },
                    );
                }
            }
            FaultProfile::Mixed => {
                let pick = |rng: &mut SimRng, victims: &[NodeId]| *rng.choose(victims);
                let v = pick(&mut rng, &victims);
                let t = when(&mut rng);
                let factor = rng.range_f64(0.15, 0.5);
                let hold = rng.range_f64(3.0, 8.0);
                plan = plan
                    .at_secs(t, FaultAction::Degrade { node: v, factor })
                    .at_secs(t + hold, FaultAction::Restore(v));
                let v = pick(&mut rng, &victims);
                plan = plan.at_secs(
                    when(&mut rng),
                    FaultAction::LatencySpike {
                        node: v,
                        factor: rng.range_f64(2.0, 6.0),
                        duration: SimDuration::from_secs_f64(rng.range_f64(2.0, 6.0)),
                    },
                );
                let v = pick(&mut rng, &victims);
                plan = plan.at_secs(
                    when(&mut rng),
                    FaultAction::MessageLoss {
                        node: v,
                        prob: rng.range_f64(0.1, 0.4),
                        duration: SimDuration::from_secs_f64(rng.range_f64(2.0, 6.0)),
                    },
                );
                // The crash goes last-drawn but may fire any time; keep
                // it after the degradation draw so victims differ often.
                let v = pick(&mut rng, &victims);
                plan = plan.at_secs(when(&mut rng), FaultAction::Crash(v));
            }
        }
        plan
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed_and_profile() {
        let nodes: Vec<NodeId> = (0..8).collect();
        for profile in FaultProfile::ALL {
            let a = FaultPlan::generate(profile, 7, &nodes, 30.0);
            let b = FaultPlan::generate(profile, 7, &nodes, 30.0);
            let c = FaultPlan::generate(profile, 8, &nodes, 30.0);
            assert_eq!(a, b, "{profile:?} not deterministic");
            assert_ne!(a, c, "{profile:?} ignores the seed");
            assert!(!a.is_empty());
            // Sorted, inside the injection window.
            for w in a.events.windows(2) {
                assert!(w[0].at <= w[1].at);
            }
            for e in &a.events {
                assert!(e.at >= SimTime::ZERO + SimDuration::from_secs_f64(0.2 * 30.0));
            }
        }
    }

    #[test]
    fn profiles_draw_their_advertised_faults() {
        let nodes: Vec<NodeId> = (0..12).collect();
        let crashes = FaultPlan::generate(FaultProfile::Crashes, 1, &nodes, 30.0);
        assert!(crashes
            .events
            .iter()
            .all(|e| matches!(e.action, FaultAction::Crash(_))));
        let degr = FaultPlan::generate(FaultProfile::Degradations, 1, &nodes, 30.0);
        let degrades = degr
            .events
            .iter()
            .filter(|e| matches!(e.action, FaultAction::Degrade { .. }))
            .count();
        let restores = degr
            .events
            .iter()
            .filter(|e| matches!(e.action, FaultAction::Restore(_)))
            .count();
        assert!(degrades >= 1);
        assert_eq!(degrades, restores, "every degradation is restored");
        let mixed = FaultPlan::generate(FaultProfile::Mixed, 1, &nodes, 30.0);
        assert!(mixed
            .events
            .iter()
            .any(|e| matches!(e.action, FaultAction::Crash(_))));
        assert!(mixed
            .events
            .iter()
            .any(|e| matches!(e.action, FaultAction::Degrade { .. })));
    }

    #[test]
    fn manual_plans_stay_sorted() {
        let plan = FaultPlan::none()
            .at_secs(9.0, FaultAction::Crash(2))
            .at_secs(3.0, FaultAction::Restore(1))
            .at_secs(6.0, FaultAction::Crash(0));
        let times: Vec<f64> = plan.events.iter().map(|e| e.at.as_secs_f64()).collect();
        assert_eq!(times, vec![3.0, 6.0, 9.0]);
    }
}
