//! The stream-processing runtime (paper §2.1, §3.1–§3.4).
//!
//! The engine ties every substrate together into the system the paper
//! deployed on PlanetLab:
//!
//! 1. a request arrives at its source node; the engine **discovers** the
//!    providers of each requested service through the Pastry DHT and
//!    gathers their statistics, charging every control message to the
//!    simulated NICs (§3.1 steps 1–2),
//! 2. the configured **composer** maps the request onto the overlay
//!    (§3.1 step 3),
//! 3. components are **instantiated** on their nodes and the source
//!    starts emitting data units at the required rate (§3.1 step 4),
//! 4. each node runs its **scheduler** (§3.4): arriving units get a
//!    deadline one period ahead, negative-laxity units are dropped, the
//!    least-laxity unit occupies the CPU,
//! 5. split stages distribute units across their components by smooth
//!    weighted round-robin in proportion to the flow solution,
//! 6. destinations track delivery, order, timeliness, and jitter (§4.2).
//!
//! Everything is deterministic in the engine seed.

mod audit;
mod fault;
mod store;
mod trace;
mod wrr;

pub use audit::{fnv1a64, AuditReport};
pub use fault::{FaultAction, FaultEvent, FaultPlan, FaultProfile};
pub use trace::{Trace, TraceEvent};
pub use wrr::{ChunkedWrr, Wrr};

use crate::catalog::ServiceDirectory;
use crate::compose::{
    apply_reservations, gain_prefix, BatchAdmitter, BatchItem, ComposeError, Composer,
    ComposerKind, ProviderMap, ReconcileStats, ShardedAdmitter,
};
use crate::metrics::{DropCause, RunReport, SubstreamTracker};
use crate::model::{AppId, ExecutionGraph, ServiceCatalog, ServiceRequest};
use crate::view::SystemView;
use audit::Auditor;
use desim::{
    run, run_until, EventQueue, FxHashMap, QueueBackend, SimDuration, SimRng, SimTime, StepOutcome,
    World,
};
use mincostflow::Algorithm;
use monitor::{Ewma, OutcomeWindow, RateEstimator, ThroughputMeter};
use overlay::Overlay;
use sched::{make_scheduler, Job, JobMeta, Policy, Scheduler};
use simnet::{mbps, Network, NetworkConfig, NodeId, NodeSpec, SendOutcome, Topology};
use store::{BatchPool, BatchRef, UnitRef, UnitStore};

/// Tunables for an engine run (defaults follow the paper's setup).
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Which composition algorithm to run.
    pub composer: ComposerKind,
    /// Min-cost flow algorithm (used by the MinCost composer).
    pub flow_algorithm: Algorithm,
    /// Per-node data-unit scheduling policy (§3.4; the paper's is LLF).
    pub policy: Policy,
    /// Ready-queue capacity per node (input-queue-size drops beyond it).
    pub queue_capacity: usize,
    /// Monitoring window size `h` (§3.2).
    pub monitor_window: usize,
    /// Log-normal sigma on per-unit execution times (0 = deterministic).
    pub exec_noise_sigma: f64,
    /// Size of one control-plane message (discovery hop, stats query).
    pub control_bits: u64,
    /// Services hosted per node (§4.1: 5 of 10).
    pub services_per_node: usize,
    /// Fraction of each NIC's rate that composition may consider
    /// admittable (see `SystemView::with_headroom`).
    pub admission_headroom: f64,
    /// Length of the bandwidth-measurement window in seconds (§3.2).
    pub measure_window_secs: f64,
    /// Run length of the split-dispatch striping (see `ChunkedWrr`).
    pub split_chunk: u32,
    /// Event-queue backend for the simulation core. The two backends are
    /// bit-for-bit interchangeable (see [`QueueBackend`]); the hierarchical
    /// timer wheel turns the heap's O(log n) schedule/pop into amortized
    /// O(1) and is the default. `BinaryHeap` remains available as the
    /// reference to benchmark against.
    pub queue_backend: QueueBackend,
    /// Data units coalesced into one link transfer and one CPU burst (NIC
    /// interrupt coalescing). `1` reproduces the per-unit data plane
    /// exactly — every batch carries a single unit, and event counts, RNG
    /// draws, and drop decisions are unchanged. Larger values amortize
    /// event-queue and transfer overhead across a burst at the cost of
    /// coarsening intra-burst timing to the batch boundary; data-unit
    /// conservation stays exact because every ledger counts units, never
    /// batches.
    pub transfer_batch: u32,
    /// Bursty cross traffic on designated nodes (the PlanetLab
    /// "state of the nodes" the paper averaged over). `None` disables.
    pub background: Option<BackgroundTraffic>,
    /// CPU capacity per node, in cores, as a *composition constraint*
    /// (the paper's stated future work, §6: "performance under multiple
    /// resource constraints"). `None` = bandwidth-only composition (the
    /// paper's evaluated configuration); CPU contention then manifests
    /// purely at runtime through queueing and laxity drops.
    pub cpu_cores: Option<f64>,
    /// Enables the [`SystemAuditor`](AuditReport): checkpointed global
    /// invariant checks (unit conservation, ledger consistency, rollback
    /// exactness, sequence exactly-once, queue liveness). Off by default
    /// (zero cost: no auditor is allocated and no event is scheduled);
    /// the default honours the `RASC_AUDIT=1` environment variable so an
    /// entire test run can be audited without touching code.
    pub audit: bool,
    /// Seconds of simulated time between audit checkpoints.
    pub audit_period_secs: f64,
    /// Caps the per-layer candidate-host set the MinCost composer feeds
    /// its flow network (ranked by remaining per-direction bandwidth;
    /// see [`MinCostComposer::with_candidate_cap`]
    /// (crate::compose::MinCostComposer::with_candidate_cap)). `None`
    /// considers every discovered provider — the exact legacy
    /// behaviour. At thousand-node scale this is the knob that keeps
    /// per-request composition cost independent of the overlay size.
    pub candidate_cap: Option<usize>,
    /// Number of admission regions for [`Engine::submit_batch`]. `0`
    /// (the default) runs the global single-view [`BatchAdmitter`];
    /// `>= 1` runs the region-sharded pipeline
    /// ([`ShardedAdmitter`](crate::compose::ShardedAdmitter)): regions
    /// follow the topology's site assignment when it has one
    /// (`power_law` / `datacenter_wan`), else the overlay key space,
    /// and remote capacity reaches each shard through a periodically
    /// refreshed residual digest. `1` is the degenerate sharding that
    /// must reproduce the global path digest-identically.
    pub shards: usize,
    /// Seconds of simulated time between residual-digest refreshes
    /// when sharded admission is on — the declared staleness bound the
    /// auditor holds the digest to.
    pub digest_refresh_secs: f64,
    /// Network model tunables.
    pub net: NetworkConfig,
}

/// Whether `RASC_AUDIT` asks for audited runs by default.
fn audit_from_env() -> bool {
    std::env::var("RASC_AUDIT")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false)
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            composer: ComposerKind::MinCost,
            flow_algorithm: Algorithm::default(),
            policy: Policy::Llf,
            queue_capacity: 64,
            monitor_window: 50,
            exec_noise_sigma: 0.25,
            control_bits: 2_048,
            services_per_node: 5,
            admission_headroom: 0.75,
            measure_window_secs: 4.0,
            split_chunk: 16,
            queue_backend: QueueBackend::TimerWheel,
            transfer_batch: 1,
            background: None,
            cpu_cores: None,
            audit: audit_from_env(),
            audit_period_secs: 2.0,
            candidate_cap: None,
            shards: 0,
            digest_refresh_secs: 4.0,
            net: NetworkConfig::default(),
        }
    }
}

/// Bursty cross traffic injected on a set of nodes.
///
/// PlanetLab hosts were shared with dozens of other slices; their usable
/// bandwidth came and went in bursts. The paper leans on exactly this:
/// its drop-ratio feedback exists because "the value of drops changes
/// dynamically depending on the load of the peer" (§3.2), and its five
/// runs "on different times and days" average over node states (§4.1).
/// Each flaky node alternates exponentially-distributed ON/OFF phases;
/// while ON, cross traffic occupies `load` of both NICs (injected as
/// periodic pulses so foreground units interleave realistically) and is
/// visible to the node's own §3.2 bandwidth monitoring.
#[derive(Clone, Debug)]
pub struct BackgroundTraffic {
    /// The nodes carrying cross traffic.
    pub nodes: Vec<NodeId>,
    /// Mean ON-phase duration in seconds.
    pub on_mean_secs: f64,
    /// Mean OFF-phase duration in seconds.
    pub off_mean_secs: f64,
    /// Fraction of NIC capacity the cross traffic consumes while ON,
    /// drawn per node uniformly from this range.
    pub load: (f64, f64),
    /// Interval between cross-traffic pulses while ON, milliseconds.
    pub pulse_ms: u64,
}

impl BackgroundTraffic {
    /// A typical flaky-host profile: ~25% duty cycle, 40–70% load bursts.
    pub fn flaky(nodes: Vec<NodeId>) -> Self {
        BackgroundTraffic {
            nodes,
            on_mean_secs: 2.0,
            off_mean_secs: 6.0,
            load: (0.5, 0.8),
            pulse_ms: 50,
        }
    }
}

/// Builder for [`Engine`].
pub struct EngineBuilder {
    n: usize,
    catalog: ServiceCatalog,
    seed: u64,
    config: EngineConfig,
    topology: Option<Topology>,
    offers: Option<Vec<Vec<usize>>>,
    faults: FaultPlan,
}

impl EngineBuilder {
    /// Selects the composition algorithm.
    pub fn composer(mut self, kind: ComposerKind) -> Self {
        self.config.composer = kind;
        self
    }

    /// Overrides the full configuration.
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Uses an explicit topology instead of the PlanetLab-like default.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Uses an explicit service assignment (`offers[node]` = service ids)
    /// instead of the random one.
    pub fn offers(mut self, offers: Vec<Vec<usize>>) -> Self {
        self.offers = Some(offers);
        self
    }

    /// Schedules a fault plan's events into the simulation up front.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Finalizes the engine.
    pub fn build(self) -> Engine {
        let EngineBuilder {
            n,
            catalog,
            seed,
            config,
            topology,
            offers,
            faults,
        } = self;
        let topology =
            topology.unwrap_or_else(|| Topology::planetlab_like(n, mbps(1.0), mbps(10.0), seed));
        assert_eq!(topology.len(), n, "topology size mismatch");
        let proximity = |a: usize, b: usize| topology.latency(a, b).as_millis_f64();
        let overlay = Overlay::build(n, seed, &proximity);
        let dir = match offers {
            Some(o) => ServiceDirectory::explicit(&catalog, &overlay, o),
            None => ServiceDirectory::random_assignment(
                &catalog,
                &overlay,
                n,
                config.services_per_node.min(catalog.len()),
                seed,
            ),
        };
        let mut rng = SimRng::new(seed ^ 0x454E47494E455F31);
        let mut latencies = None;
        let composer: Box<dyn Composer> = match config.composer {
            ComposerKind::MinCost => {
                let matrix =
                    std::sync::Arc::new(crate::compose::LatencyMatrix::from_topology(&topology));
                latencies = Some(matrix.clone());
                let mut c = crate::compose::MinCostComposer::with_algorithm(config.flow_algorithm)
                    .with_latencies(matrix);
                if let Some(k) = config.candidate_cap {
                    c = c.with_candidate_cap(k);
                }
                Box::new(c)
            }
            other => other.build(),
        };
        let base_specs: Vec<NodeSpec> = (0..n).map(|v| topology.spec(v)).collect();
        let net = Network::new(
            topology,
            NetworkConfig {
                seed,
                ..config.net.clone()
            },
        );
        let meter_window = SimDuration::from_secs_f64(config.measure_window_secs);
        let nodes = (0..n)
            .map(|v| NodeState {
                sched: make_scheduler(config.policy, config.queue_capacity),
                running: Vec::new(),
                outcomes: OutcomeWindow::new(config.monitor_window),
                in_meter: ThroughputMeter::new(meter_window),
                out_meter: ThroughputMeter::new(meter_window),
                committed_in: 0.0,
                committed_out: 0.0,
                alive: true,
                bg_load: None,
                cpu_meter: ThroughputMeter::new(meter_window),
                committed_cpu: 0.0,
                comps: FxHashMap::default(),
                exec_rng: rng.fork(v as u64),
            })
            .collect();
        let mut queue = EventQueue::with_backend(config.queue_backend);
        let auditor = config.audit.then(|| Box::new(Auditor::new()));
        let audit_period = SimDuration::from_secs_f64(config.audit_period_secs.max(0.05));
        let mut state = EngineState {
            now: SimTime::ZERO,
            catalog,
            overlay,
            dir,
            net,
            composer,
            rng,
            nodes,
            apps: Vec::new(),
            report: RunReport::default(),
            trace: None,
            store: UnitStore::new(),
            batches: BatchPool::new(),
            burst_scratch: Vec::new(),
            arrive_scratch: Vec::new(),
            in_flight_net: 0,
            control_drops_out: 0,
            control_drops_in: 0,
            control_lost: 0,
            loss_prob: vec![0.0; n],
            base_specs,
            auditor,
            draining: false,
            latencies,
            batch: None,
            sharded: None,
            config,
        };
        if let Some(bg) = state.config.background.clone() {
            for &v in &bg.nodes {
                // Stagger the first ON phase across the OFF-mean horizon.
                let delay =
                    SimDuration::from_secs_f64(state.rng.exp(1.0 / bg.off_mean_secs.max(0.01)));
                queue.schedule(SimTime::ZERO + delay, Event::BgPhase { node: v, on: true });
            }
        }
        for ev in &faults.events {
            queue.schedule(ev.at, Event::Fault(ev.action.clone()));
        }
        if state.auditor.is_some() {
            queue.schedule(SimTime::ZERO + audit_period, Event::AuditTick);
        }
        if state.config.shards > 0 {
            let period = SimDuration::from_secs_f64(state.config.digest_refresh_secs.max(0.05));
            queue.schedule(SimTime::ZERO + period, Event::DigestRefresh);
        }
        Engine { state, queue }
    }
}

/// Key identifying a component instance on a node.
type CompKey = (AppId, usize, usize); // (app, substream, layer)

/// One running component on a node (§2.1's "instantiation of a service").
struct CompState {
    nominal_rate: f64,
    nominal_exec_secs: f64,
    #[allow(dead_code)] // kept for introspection/debug dumps
    service: usize,
    /// Infers the period `p_ci` from observed arrivals (§3.4).
    arrivals: RateEstimator,
    /// Measured running time `t_ci` (§3.2 statistic (1)).
    exec_est: Ewma,
    /// Dispatch to the next stage's components; `None` = destination.
    downstream: Option<ChunkedWrr>,
}

/// Per-node runtime state.
struct NodeState {
    sched: Box<dyn Scheduler<UnitRef>>,
    /// The units occupying the CPU (with their drawn execution times),
    /// oldest first; empty = idle. One `CpuDone` event covers the whole
    /// burst. The vector is pooled — taken, drained, and handed back —
    /// so its capacity survives across bursts.
    running: Vec<(UnitRef, SimDuration)>,
    /// Drop-ratio feedback window (§3.2 statistic (3)).
    outcomes: OutcomeWindow,
    /// Measured inbound traffic (bits/s), per §3.2's monitoring.
    in_meter: ThroughputMeter,
    /// Measured outbound traffic (bits/s).
    out_meter: ThroughputMeter,
    /// Nominal rates of everything composed onto this node so far
    /// (bits/s in, bits/s out). Composition uses
    /// `max(measured, committed)` per direction: the measurement window
    /// lags a freshly started stream by several seconds, and admitting
    /// against the lagging reading alone over-commits every node during
    /// request bursts.
    committed_in: f64,
    committed_out: f64,
    /// False once the node has failed (crash-stop).
    alive: bool,
    /// Cross-traffic state: `Some(load)` while an ON phase is active.
    bg_load: Option<f64>,
    /// Measured CPU busy time (the meter's "bits" are busy nanoseconds;
    /// its rate is therefore cores in use).
    cpu_meter: ThroughputMeter,
    /// Committed CPU of everything composed onto this node (cores).
    committed_cpu: f64,
    comps: FxHashMap<CompKey, CompState>,
    exec_rng: SimRng,
}

/// A composed, running application.
struct AppState {
    req: ServiceRequest,
    graph: ExecutionGraph,
    /// False once the app has been stopped (sources quiesce, components
    /// removed, commitments released).
    active: bool,
    trackers: Vec<SubstreamTracker>,
    next_seq: Vec<u64>,
    source_wrr: Vec<ChunkedWrr>,
    stage_count: Vec<usize>,
    source_period: Vec<SimDuration>,
    gains: Vec<Vec<f64>>,
}

/// Simulation events.
enum Event {
    /// A request submitted at a point in simulated time.
    Submit(ServiceRequest),
    /// Composition finished; sources may start emitting.
    AppStart(AppId),
    /// A finite-lifetime application reached its end: tear it down.
    AppStop(AppId),
    /// Periodic source emission for one substream.
    SourceEmit { app: AppId, substream: usize },
    /// A batched link transfer fully received at a node. Every transfer
    /// is a batch; with `transfer_batch == 1` each batch carries exactly
    /// one unit and this degenerates to the per-unit data plane.
    BatchArrive { node: NodeId, batch: BatchRef },
    /// A node's CPU finished the burst it was processing.
    CpuDone { node: NodeId },
    /// A flaky node's cross traffic toggles ON/OFF.
    BgPhase { node: NodeId, on: bool },
    /// One cross-traffic pulse on an ON-phase node.
    BgPulse { node: NodeId },
    /// An injected fault (or its scheduled recovery) fires.
    Fault(FaultAction),
    /// Periodic auditor checkpoint (scheduled only when auditing).
    AuditTick,
    /// Periodic residual-digest refresh for sharded admission
    /// (scheduled only when `config.shards > 0`): the monitoring plane
    /// re-captures every node's residual capacity into the sharded
    /// admitter's digest.
    DigestRefresh,
}

struct EngineState {
    now: SimTime,
    catalog: ServiceCatalog,
    overlay: Overlay,
    dir: ServiceDirectory,
    net: Network,
    composer: Box<dyn Composer>,
    rng: SimRng,
    nodes: Vec<NodeState>,
    apps: Vec<AppState>,
    report: RunReport,
    trace: Option<Trace>,
    /// SoA slab holding every live data unit; events, scheduler queues,
    /// and CPU slots hand off 4-byte [`UnitRef`]s instead of moving the
    /// unit struct around.
    store: UnitStore,
    /// Recycled buffers backing batched link transfers.
    batches: BatchPool,
    /// Reusable buffer for CPU burst dispatch (capacity warms to
    /// `transfer_batch`; keeps the steady-state loop allocation-free).
    burst_scratch: Vec<Job<UnitRef>>,
    /// Reusable per-batch component counters for deadline staggering:
    /// how many units of each component have already been seen in the
    /// batch being processed. One entry per distinct component per batch
    /// (usually exactly one), pooled for the zero-alloc steady state.
    arrive_scratch: Vec<(CompKey, u64)>,
    /// Data units currently traversing the network (or same-node IPC):
    /// credited by unit count when a `BatchArrive` is scheduled, debited
    /// (via [`EngineState::debit_in_flight`]) when it fires. Part of the
    /// auditor's conservation equation, but maintained unconditionally —
    /// it is two integer ops per batch.
    in_flight_net: u64,
    /// Control-plane messages lost to NIC overflow, by charged side.
    /// Keeps NIC drop counters attributable: every `stats(v).drops_*`
    /// is either a data-unit drop (in `report.drops`) or one of these.
    control_drops_out: u64,
    control_drops_in: u64,
    /// Control-plane messages lost to injected message-loss windows.
    control_lost: u64,
    /// Per-node control-message loss probability (fault injection).
    loss_prob: Vec<f64>,
    /// Pristine NIC specs, for degrade/restore faults.
    base_specs: Vec<NodeSpec>,
    /// The invariant checker, when `config.audit` is set. Boxed so the
    /// disabled path carries one dead pointer, nothing more.
    auditor: Option<Box<Auditor>>,
    /// Set by `quiesce`: reject further submissions so the event backlog
    /// can drain to empty for the teardown audit.
    draining: bool,
    /// Latency matrix shared with batch-worker composers (MinCost only;
    /// the engine's own composer holds another `Arc` to the same one).
    latencies: Option<std::sync::Arc<crate::compose::LatencyMatrix>>,
    /// Lazily built batch-admission pipeline (`Engine::submit_batch`),
    /// keyed by the worker count it was built for. Worker arenas persist
    /// across batches, so steady-state batch admission rebuilds flow
    /// networks inside retained buffers instead of allocating them.
    batch: Option<(usize, BatchAdmitter)>,
    /// Lazily built region-sharded pipeline (`config.shards > 0`), keyed
    /// by worker count like `batch`. Holds the periodically refreshed
    /// residual-capacity digest that shard-local composers read for
    /// remote hosts.
    sharded: Option<(usize, ShardedAdmitter)>,
    config: EngineConfig,
}

/// What [`Engine::submit_batch`] returns: one admission result per
/// request (index-aligned with the submitted burst) plus the reconcile
/// accounting and the determinism digest of the underlying
/// [`BatchOutcome`](crate::compose::BatchOutcome).
#[derive(Debug)]
pub struct BatchSubmitReport {
    /// Per-request outcome: the installed app id, or why admission was
    /// refused.
    pub apps: Vec<Result<AppId, ComposeError>>,
    /// Request indices that went through conflict replay, ascending.
    pub replayed: Vec<usize>,
    /// Reconcile-phase accounting.
    pub stats: ReconcileStats,
    /// Order-sensitive digest over every composed placement and
    /// rejection — equal digests mean the same apps landed on the same
    /// hosts at the same rates, regardless of worker count.
    pub digest: u64,
    /// Admitted requests with at least one placement outside the source's
    /// home region. Always 0 on the global (`shards == 0`) path.
    pub cross_shard: usize,
}

/// The RASC runtime over a simulated wide-area network.
pub struct Engine {
    state: EngineState,
    queue: EventQueue<Event>,
}

impl Engine {
    /// Starts building an engine over `n` nodes with the given catalog
    /// and master seed.
    pub fn builder(n: usize, catalog: ServiceCatalog, seed: u64) -> EngineBuilder {
        assert!(n >= 2, "need at least a source and a destination");
        EngineBuilder {
            n,
            catalog,
            seed,
            config: EngineConfig::default(),
            topology: None,
            offers: None,
            faults: FaultPlan::none(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.state.now
    }

    /// Submits a request *now*; composes synchronously and returns the
    /// app id (sources start after the discovery latency).
    pub fn submit(&mut self, req: ServiceRequest) -> Result<AppId, ComposeError> {
        let now = self.state.now;
        self.state.handle_submit(now, req, &mut self.queue)
    }

    /// Schedules a request submission at an absolute simulated time.
    pub fn submit_at(&mut self, at: SimTime, req: ServiceRequest) {
        self.queue.schedule(at, Event::Submit(req));
    }

    /// Submits a burst of requests *now* through the batch-admission
    /// pipeline: one measured-view snapshot for the whole burst,
    /// discovery and statistics pulls deduplicated per distinct
    /// `(source, service)` / `(source, candidate)` pair, compositions
    /// run optimistically on `threads` pooled workers, and winners
    /// committed in submission order with conflict replay (see
    /// [`BatchAdmitter`]). `threads == 0` uses the machine default
    /// (`RASC_THREADS` / available parallelism); any positive worker
    /// count yields the identical, digest-checked outcome.
    pub fn submit_batch(&mut self, reqs: Vec<ServiceRequest>, threads: usize) -> BatchSubmitReport {
        let now = self.state.now;
        self.state
            .handle_submit_batch(now, reqs, threads, &mut self.queue)
    }

    /// Runs the simulation until `horizon`.
    pub fn run_until(&mut self, horizon: SimTime) {
        run(&mut self.state, &mut self.queue, horizon);
        self.state.now = self.state.now.max(horizon);
    }

    /// Runs the simulation for `secs` of simulated time.
    pub fn run_for_secs(&mut self, secs: f64) {
        let horizon = self.state.now + SimDuration::from_secs_f64(secs);
        self.run_until(horizon);
    }

    /// Aggregated metrics so far (destination trackers folded in).
    pub fn report(&self) -> RunReport {
        let mut r = self.state.report.clone();
        for app in &self.state.apps {
            for tr in &app.trackers {
                r.absorb_tracker(tr);
            }
        }
        r
    }

    /// The execution graph of a composed app.
    pub fn app_graph(&self, app: AppId) -> &ExecutionGraph {
        &self.state.apps[app].graph
    }

    /// Number of composed apps.
    pub fn app_count(&self) -> usize {
        self.state.apps.len()
    }

    /// A snapshot of the composition-time system view (availability from
    /// the measurement windows) at the current instant.
    pub fn view_snapshot(&mut self) -> SystemView {
        let now = self.state.now;
        self.state.measured_view(now)
    }

    /// The underlying network (counters, topology).
    pub fn network(&self) -> &Network {
        &self.state.net
    }

    /// The service directory (placement ground truth).
    pub fn directory(&self) -> &ServiceDirectory {
        &self.state.dir
    }

    /// Current drop-ratio window reading of a node.
    pub fn node_drop_ratio(&self, v: NodeId) -> f64 {
        self.state.nodes[v].outcomes.ratio()
    }

    /// Enables control-plane tracing, retaining the most recent
    /// `capacity` events (compositions, starts, stops, failures).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.state.trace = Some(Trace::new(capacity));
    }

    /// The trace, if enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.state.trace.as_ref()
    }

    /// Fails node `v` (crash-stop): the overlay routes around it, the
    /// service registry drops its registrations, its queued and running
    /// units are lost, and every application with a component on it is
    /// dynamically re-composed on the surviving nodes (applications whose
    /// *endpoints* died cannot be recomposed and simply stop).
    pub fn fail_node(&mut self, v: NodeId) {
        let now = self.state.now;
        self.state.handle_fail_node(now, v, &mut self.queue);
    }

    /// Whether node `v` is still alive.
    pub fn node_alive(&self, v: NodeId) -> bool {
        self.state.nodes[v].alive
    }

    /// Per-substream delivery counters of one app:
    /// `(delivered, out_of_order, timely)` per substream.
    pub fn app_delivery_stats(&self, app: AppId) -> Vec<(u64, u64, u64)> {
        self.state.apps[app]
            .trackers
            .iter()
            .map(|t| (t.delivered(), t.out_of_order(), t.timely()))
            .collect()
    }

    /// Schedules a fault plan's events into the running simulation.
    pub fn schedule_fault_plan(&mut self, plan: &FaultPlan) {
        for ev in &plan.events {
            self.queue.schedule(ev.at, Event::Fault(ev.action.clone()));
        }
    }

    /// Degrades node `v`'s NIC rates to `factor` of pristine *now*
    /// (see [`FaultAction::Degrade`]).
    pub fn degrade_node(&mut self, v: NodeId, factor: f64) {
        let now = self.state.now;
        self.state.handle_degrade(now, v, factor, &mut self.queue);
    }

    /// Restores node `v`'s pristine NIC rates *now*.
    pub fn restore_node(&mut self, v: NodeId) {
        let now = self.state.now;
        self.state.handle_restore(now, v);
    }

    /// Sets node `v`'s control-message loss probability *now* (sticky
    /// until changed; [`FaultAction::MessageLoss`] windows self-expire).
    pub fn set_message_loss(&mut self, v: NodeId, prob: f64) {
        self.state.loss_prob[v] = prob.clamp(0.0, 1.0);
    }

    /// Control-plane messages lost to injected message-loss windows.
    pub fn control_messages_lost(&self) -> u64 {
        self.state.control_lost
    }

    /// The auditor's report so far, when auditing is enabled.
    pub fn audit_report(&self) -> Option<AuditReport> {
        self.state.auditor.as_ref().map(|a| a.report.clone())
    }

    /// Stops every active application and silences the background-load
    /// generators so the event backlog can drain. Further submissions
    /// are rejected.
    pub fn quiesce(&mut self) {
        for app in 0..self.state.apps.len() {
            if self.state.apps[app].active {
                self.state.handle_app_stop(app);
            }
        }
        self.state.config.background = None;
        for p in &mut self.state.loss_prob {
            *p = 0.0;
        }
        self.state.draining = true;
    }

    /// Ends the run: quiesces, drains the event backlog to empty, and
    /// performs the auditor's teardown check (liveness: no stranded
    /// events or units). Returns the audit report — empty and clean when
    /// auditing is disabled.
    pub fn finish_run(&mut self) -> AuditReport {
        self.quiesce();
        let (t, outcome) = run_until(&mut self.state, &mut self.queue, SimTime::MAX, 200_000_000);
        self.state.now = self.state.now.max(t);
        let drained = outcome == StepOutcome::Drained;
        match self.state.auditor.take() {
            Some(mut aud) => {
                aud.final_check(&self.state, &self.queue, drained);
                let report = aud.report.clone();
                self.state.auditor = Some(aud);
                report
            }
            None => AuditReport::default(),
        }
    }

    /// A deterministic digest of the run's observable outcome: counters,
    /// drop breakdown, event-queue totals, and audit checkpoints. Two
    /// runs with the same seed and fault plan must produce bit-identical
    /// digests, regardless of worker-thread count.
    pub fn run_digest(&self) -> u64 {
        let r = self.report();
        let mut words: Vec<u64> = vec![
            r.composed,
            r.rejected,
            r.generated,
            r.delivered,
            r.timely,
            r.out_of_order,
            r.components,
            r.split_requests,
            r.recompositions,
            r.repairs,
        ];
        words.extend_from_slice(&r.drops);
        words.push(self.queue.total_scheduled());
        words.push(self.queue.total_fired());
        if let Some(aud) = &self.state.auditor {
            words.push(aud.report.checkpoints);
            words.push(aud.report.violation_count());
        }
        fnv1a64(words)
    }
}

// The committed-rate ledger formula shared with the composers and the
// auditor (`audit.rs` reaches it as `super::for_each_commitment`).
pub(crate) use crate::compose::for_each_commitment;

/// The repair contract a composer-returned graph must honour before the
/// engine swaps it in: identical substream/stage shape and services, no
/// placement left on the evacuated node, and per-stage total rates
/// preserved (repair re-routes flow, it never renegotiates admission).
fn repaired_graph_is_sound(old: &ExecutionGraph, new: &ExecutionGraph, dead: NodeId) -> bool {
    old.substreams.len() == new.substreams.len()
        && old.substreams.iter().zip(&new.substreams).all(|(o, n)| {
            o.len() == n.len()
                && o.iter().zip(n).all(|(os, ns)| {
                    os.service == ns.service
                        && !ns.placements.is_empty()
                        && ns.placements.iter().all(|p| p.node != dead && p.rate > 0.0)
                        && (os.total_rate() - ns.total_rate()).abs()
                            <= 1e-6 * os.total_rate().max(1.0)
                })
        })
}

impl World for EngineState {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, q: &mut EventQueue<Event>) {
        self.now = now;
        match event {
            Event::Submit(req) => {
                let _ = self.handle_submit(now, req, q);
            }
            Event::AppStart(app) => self.handle_app_start(now, app, q),
            Event::AppStop(app) => self.handle_app_stop(app),
            Event::SourceEmit { app, substream } => self.handle_source_emit(now, app, substream, q),
            Event::BatchArrive { node, batch } => self.handle_batch_arrive(now, node, batch, q),
            Event::CpuDone { node } => self.handle_cpu_done(now, node, q),
            Event::BgPhase { node, on } => self.handle_bg_phase(now, node, on, q),
            Event::BgPulse { node } => self.handle_bg_pulse(now, node, q),
            Event::Fault(action) => self.handle_fault(now, action, q),
            Event::AuditTick => self.handle_audit_tick(now, q),
            Event::DigestRefresh => self.handle_digest_refresh(now, q),
        }
    }
}

impl EngineState {
    /// §3.1 steps 1–3: discover, gather statistics, compose.
    fn handle_submit(
        &mut self,
        now: SimTime,
        req: ServiceRequest,
        q: &mut EventQueue<Event>,
    ) -> Result<AppId, ComposeError> {
        if self.draining {
            // Teardown is in progress; starting a new application now
            // would emit forever and the backlog could never drain.
            self.report.rejected += 1;
            return Err(ComposeError::InsufficientCapacity { substream: 0 });
        }
        if let Err(_e) = req.validate(&self.catalog) {
            self.report.rejected += 1;
            return Err(ComposeError::UnknownService(usize::MAX));
        }
        // Step 1: DHT discovery of each distinct service, charged hop by
        // hop to the overlay links.
        let mut services: Vec<usize> = req
            .graph
            .substreams
            .iter()
            .flat_map(|s| s.services.iter().copied())
            .collect();
        services.sort_unstable();
        services.dedup();
        let mut providers = ProviderMap::new();
        let mut ready_at = now;
        for &s in &services {
            let (found, path) = self.dir.discover(&self.overlay, req.source, s);
            for hop in path.windows(2) {
                ready_at = ready_at.max(self.charge_control(now, hop[0], hop[1]));
            }
            // The answer travels back directly.
            if let Some(&last) = path.last() {
                if last != req.source {
                    ready_at = ready_at.max(self.charge_control(now, last, req.source));
                }
            }
            providers.insert(s, found);
        }
        // Step 2: pull utilization + drop statistics from each candidate.
        let mut candidates: Vec<NodeId> = providers.values().flatten().copied().collect();
        candidates.sort_unstable();
        candidates.dedup();
        for &c in &candidates {
            if c != req.source {
                ready_at = ready_at.max(self.charge_control(now, req.source, c));
                ready_at = ready_at.max(self.charge_control(now, c, req.source));
            }
        }
        // Step 3: compose against the measured availability + drop
        // feedback snapshot (§3.2).
        let mut view = self.measured_view(now);
        // Rollback-exactness audit: a rejected composition must leave the
        // view bit-equal to this snapshot (composers roll back their own
        // partial reservations via the view's undo journal).
        let audit_backup = self.auditor.is_some().then(|| view.clone());
        match self
            .composer
            .compose(&req, &self.catalog, &providers, &mut view, &mut self.rng)
        {
            Ok(graph) => {
                self.report.composed += 1;
                self.report.components += graph.component_count() as u64;
                if graph.has_splitting() {
                    self.report.split_requests += 1;
                }
                let components = graph.component_count();
                let split = graph.has_splitting();
                let app = self.install_app(req, graph);
                // Let the composer keep its solve state for this app's
                // incremental repair (no-op for the baselines).
                self.composer.retain_for_repair(app);
                if let Some(tr) = &mut self.trace {
                    tr.record(
                        now,
                        TraceEvent::Composed {
                            app,
                            components,
                            split,
                        },
                    );
                }
                q.schedule(ready_at, Event::AppStart(app));
                Ok(app)
            }
            Err(e) => {
                self.report.rejected += 1;
                if let (Some(aud), Some(backup)) = (self.auditor.as_mut(), audit_backup.as_ref()) {
                    if view != *backup {
                        aud.violation(format!(
                            "rollback: view not bit-equal after rejected compose ({e})"
                        ));
                    }
                }
                if let Some(tr) = &mut self.trace {
                    tr.record(
                        now,
                        TraceEvent::Rejected {
                            reason: e.to_string(),
                        },
                    );
                }
                Err(e)
            }
        }
    }

    /// The batch counterpart of [`handle_submit`](Self::handle_submit):
    /// §3.1 steps 1–3 once per burst instead of once per request.
    ///
    /// Control-plane work is deduplicated across the burst — each
    /// distinct `(source, service)` is discovered once and each distinct
    /// `(source, candidate)` statistics pull is charged once (a burst
    /// from one source touching the same services pays one discovery,
    /// not `k`) — and a single measured view serves as every request's
    /// composition snapshot. Admission itself runs through the
    /// [`BatchAdmitter`]: optimistic parallel compose against the shared
    /// snapshot, then a serial, submission-order commit with conflict
    /// replay. Admitted apps all start at the burst's control-plane
    /// `ready_at` horizon.
    ///
    /// Batch-admitted apps are repaired by cold recomposition (worker
    /// arenas keep no per-app solve state; see
    /// [`Composer::set_retention`]).
    fn handle_submit_batch(
        &mut self,
        now: SimTime,
        reqs: Vec<ServiceRequest>,
        threads: usize,
        q: &mut EventQueue<Event>,
    ) -> BatchSubmitReport {
        let threads = if threads == 0 {
            desim::pool::default_threads()
        } else {
            threads
        };
        let mut apps: Vec<Option<Result<AppId, ComposeError>>> =
            (0..reqs.len()).map(|_| None).collect();
        // Gate and validate exactly as the single-request path does;
        // requests that never reach composition are rejected in place.
        let mut items: Vec<BatchItem> = Vec::new();
        let mut item_index: Vec<usize> = Vec::new(); // item -> request index
        let mut ready_at = now;
        let mut discovered: FxHashMap<(NodeId, usize), Vec<NodeId>> = FxHashMap::default();
        let mut polled: desim::hash::FxHashSet<(NodeId, NodeId)> = Default::default();
        for (r, req) in reqs.into_iter().enumerate() {
            if self.draining {
                self.report.rejected += 1;
                apps[r] = Some(Err(ComposeError::InsufficientCapacity { substream: 0 }));
                continue;
            }
            if req.validate(&self.catalog).is_err() {
                self.report.rejected += 1;
                apps[r] = Some(Err(ComposeError::UnknownService(usize::MAX)));
                continue;
            }
            // Step 1: discovery, once per distinct (source, service).
            let mut services: Vec<usize> = req
                .graph
                .substreams
                .iter()
                .flat_map(|s| s.services.iter().copied())
                .collect();
            services.sort_unstable();
            services.dedup();
            let mut providers = ProviderMap::new();
            for &s in &services {
                let found = match discovered.get(&(req.source, s)) {
                    Some(f) => f.clone(),
                    None => {
                        let (found, path) = self.dir.discover(&self.overlay, req.source, s);
                        for hop in path.windows(2) {
                            ready_at = ready_at.max(self.charge_control(now, hop[0], hop[1]));
                        }
                        if let Some(&last) = path.last() {
                            if last != req.source {
                                ready_at = ready_at.max(self.charge_control(now, last, req.source));
                            }
                        }
                        discovered.insert((req.source, s), found.clone());
                        found
                    }
                };
                providers.insert(s, found);
            }
            // Step 2: statistics, once per distinct (source, candidate).
            let mut candidates: Vec<NodeId> = providers.values().flatten().copied().collect();
            candidates.sort_unstable();
            candidates.dedup();
            for &c in &candidates {
                if c != req.source && polled.insert((req.source, c)) {
                    ready_at = ready_at.max(self.charge_control(now, req.source, c));
                    ready_at = ready_at.max(self.charge_control(now, c, req.source));
                }
            }
            item_index.push(r);
            items.push((req, providers));
        }
        // Step 3: one snapshot for the whole burst, then the pipeline.
        let mut view = self.measured_view(now);
        let audit_backup = self.auditor.is_some().then(|| view.clone());
        let seed = self.rng.next_u64();
        let (outcome, cross_shard) = if self.config.shards > 0 {
            let reuse = matches!(self.sharded, Some((t, _)) if t == threads);
            if !reuse {
                let regions = self.region_map();
                let mut adm = ShardedAdmitter::new(regions, threads, 0, self.worker_factory());
                // Capture the first digest at creation so the declared
                // staleness bound holds from the very first batch; the
                // DigestRefresh event keeps it fresh from here on.
                adm.refresh_digest(&view, now.as_secs_f64());
                self.sharded = Some((threads, adm));
            }
            let (_, admitter) = self.sharded.as_mut().expect("just built");
            let out = admitter.admit_batch(&mut view, &self.catalog, &items, seed);
            (out.outcome, out.cross_shard)
        } else {
            let reuse = matches!(self.batch, Some((t, _)) if t == threads);
            if !reuse {
                let admitter = BatchAdmitter::new(threads, self.worker_factory());
                self.batch = Some((threads, admitter));
            }
            let admitter = &self.batch.as_ref().expect("just built").1;
            let outcome = admitter.admit_batch(&mut view, &self.catalog, &items, seed);
            (outcome, 0)
        };
        let digest = outcome.digest();
        // Ledger-exactness audit: the pipeline's view must carry exactly
        // the admitted reservations on top of the snapshot it was given.
        if let (Some(_), Some(backup)) = (self.auditor.as_ref(), audit_backup) {
            let mut expect = backup;
            for ((req, _), r) in items.iter().zip(&outcome.results) {
                if let Ok(g) = r {
                    apply_reservations(req, &self.catalog, g, &mut expect);
                }
            }
            if expect != view {
                self.auditor
                    .as_mut()
                    .expect("checked above")
                    .violation("batch ledger: view != snapshot + admitted reservations".into());
            }
        }
        // Install winners and record rejections in submission order.
        let replayed: Vec<usize> = outcome.replayed.iter().map(|&i| item_index[i]).collect();
        let stats = outcome.stats.clone();
        for (((req, _), result), &r) in items.into_iter().zip(outcome.results).zip(&item_index) {
            match result {
                Ok(graph) => {
                    self.report.composed += 1;
                    self.report.components += graph.component_count() as u64;
                    if graph.has_splitting() {
                        self.report.split_requests += 1;
                    }
                    let components = graph.component_count();
                    let split = graph.has_splitting();
                    let app = self.install_app(req, graph);
                    if let Some(tr) = &mut self.trace {
                        tr.record(
                            now,
                            TraceEvent::Composed {
                                app,
                                components,
                                split,
                            },
                        );
                    }
                    q.schedule(ready_at, Event::AppStart(app));
                    apps[r] = Some(Ok(app));
                }
                Err(e) => {
                    self.report.rejected += 1;
                    if let Some(tr) = &mut self.trace {
                        tr.record(
                            now,
                            TraceEvent::Rejected {
                                reason: e.to_string(),
                            },
                        );
                    }
                    apps[r] = Some(Err(e));
                }
            }
        }
        BatchSubmitReport {
            apps: apps
                .into_iter()
                .map(|a| a.expect("every request got an outcome"))
                .collect(),
            replayed,
            stats,
            digest,
            cross_shard,
        }
    }

    /// The composer factory shared by both admission pipelines: every
    /// worker builds the configured composer kind, wired to the same
    /// latency matrix and candidate cap as the engine's own composer.
    fn worker_factory(&self) -> impl Fn() -> Box<dyn Composer + Send> + Send + Sync + 'static {
        let kind = self.config.composer;
        let algorithm = self.config.flow_algorithm;
        let cap = self.config.candidate_cap;
        let lat = self.latencies.clone();
        move || -> Box<dyn Composer + Send> {
            match kind {
                ComposerKind::MinCost => {
                    let mut c = crate::compose::MinCostComposer::with_algorithm(algorithm);
                    if let Some(m) = &lat {
                        c = c.with_latencies(m.clone());
                    }
                    if let Some(k) = cap {
                        c = c.with_candidate_cap(k);
                    }
                    Box::new(c)
                }
                other => other.build(),
            }
        }
    }

    /// Region assignment for the sharded pipeline: clustered topologies
    /// shard along their site structure, dense ones fall back to
    /// key-space partitioning over node ids.
    fn region_map(&self) -> overlay::RegionMap {
        let topo = self.net.topology();
        match topo.site_assignment() {
            Some(sites) => overlay::RegionMap::from_sites(sites, self.config.shards),
            None => overlay::RegionMap::key_space(topo.len(), self.config.shards),
        }
    }

    /// Periodic residual-digest refresh (`config.shards > 0`): captures
    /// the current measured view into the sharded admitter's digest so
    /// shard-local composers see remote capacity at bounded staleness.
    fn handle_digest_refresh(&mut self, now: SimTime, q: &mut EventQueue<Event>) {
        if self.draining {
            // Teardown: no further admissions read the digest, and the
            // backlog must be allowed to drain to empty.
            return;
        }
        if self.sharded.is_some() {
            let view = self.measured_view(now);
            if let Some((_, adm)) = &mut self.sharded {
                adm.refresh_digest(&view, now.as_secs_f64());
            }
        }
        let period = SimDuration::from_secs_f64(self.config.digest_refresh_secs.max(0.05));
        q.schedule(now + period, Event::DigestRefresh);
    }

    /// Sends one control-plane message and returns when it lands (drops
    /// fall back to a retransmission penalty).
    fn charge_control(&mut self, now: SimTime, from: NodeId, to: NodeId) -> SimTime {
        match self.net.send(now, from, to, self.config.control_bits) {
            SendOutcome::Delivered(t) => {
                self.record_traffic(now, from, to, self.config.control_bits, true);
                // Injected message loss strikes *after* the NICs accepted
                // the message (lost in transit), so the per-node traffic
                // and drop counters stay attributable; the overlay
                // retransmits, surfacing as added control latency.
                let loss = self.loss_prob[from].max(self.loss_prob[to]);
                if loss > 0.0 && self.rng.chance(loss) {
                    self.control_lost += 1;
                    return now + SimDuration::from_millis(500);
                }
                t
            }
            SendOutcome::Dropped(reason) => {
                if reason == simnet::DropReason::ReceiverOverflow {
                    self.record_traffic(now, from, to, self.config.control_bits, false);
                    self.control_drops_in += 1;
                } else {
                    self.control_drops_out += 1;
                }
                now + SimDuration::from_millis(200)
            }
        }
    }

    /// Feeds the throughput meters. Both directions count the *offered*
    /// load: a receiver that is dropping from overflow is saturated, and
    /// advertising the dropped bits as "available" would invite further
    /// placements onto it (a positive feedback loop). Measuring offered
    /// rather than carried traffic is what a node observing its own
    /// inbound packet stream sees anyway (§3.2).
    fn record_traffic(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        bits: u64,
        _accepted: bool,
    ) {
        self.nodes[from].out_meter.record(now, bits);
        self.nodes[to].in_meter.record(now, bits);
    }

    /// The paper's composition-time snapshot: per-node availability =
    /// admittable capacity − measured traffic, plus the drop-ratio
    /// windows (§3.2).
    fn measured_view(&mut self, now: SimTime) -> SystemView {
        let mut view =
            SystemView::with_headroom(self.net.topology(), self.config.admission_headroom);
        let n = self.nodes.len();
        let usage: Vec<(f64, f64)> = (0..n)
            .map(|v| {
                (
                    self.nodes[v]
                        .in_meter
                        .rate(now)
                        .max(self.nodes[v].committed_in),
                    self.nodes[v]
                        .out_meter
                        .rate(now)
                        .max(self.nodes[v].committed_out),
                )
            })
            .collect();
        for (v, &(in_bps, out_bps)) in usage.iter().enumerate() {
            if self.nodes[v].alive {
                view.consume_measured(v, in_bps, out_bps);
                view.set_drop_ratio(v, self.nodes[v].outcomes.ratio());
            } else {
                view.consume_measured(v, f64::MAX, f64::MAX);
                view.set_drop_ratio(v, 1.0);
            }
        }
        if let Some(cores) = self.config.cpu_cores {
            for v in 0..n {
                view.set_cpu_capacity(v, cores * self.config.admission_headroom);
                let measured = self.nodes[v].cpu_meter.rate(now) / 1e9;
                let used = measured.max(self.nodes[v].committed_cpu);
                view.consume_measured_cpu(v, used);
            }
        }
        view
    }

    /// Striping run length for a split stage. Long runs minimize
    /// reordering, but a branch receives the *full* stream rate for the
    /// duration of its run; if its per-unit service time (CPU or NIC
    /// serialization) exceeds the stream period, backlog builds at
    /// `deficit = per_unit − stream_period` per unit and must stay
    /// within the branch's deadline slack. The chunk is capped so a
    /// full run never builds more backlog than the slowest branch can
    /// absorb.
    fn stage_chunk(&self, targets: &[(NodeId, f64)], service: usize, unit_bits: u64) -> u32 {
        let max_chunk = self.config.split_chunk.max(1);
        if targets.len() < 2 {
            return max_chunk;
        }
        let total_rate: f64 = targets.iter().map(|&(_, r)| r).sum();
        if total_rate <= 0.0 {
            return max_chunk;
        }
        let stream_period = 1.0 / total_rate;
        let exec = self.catalog.get(service).exec_time.as_secs_f64();
        let mut chunk = max_chunk;
        for &(node, rate) in targets {
            if rate <= 0.0 {
                continue;
            }
            let spec = self.net.topology().spec(node);
            let tx = unit_bits as f64 / spec.bw_in.max(1.0);
            let per_unit = exec.max(tx);
            let deficit = per_unit - stream_period;
            if deficit > 0.0 {
                let slack = (1.0 / rate - per_unit).max(0.0);
                let bound = (slack / deficit).floor().max(1.0) as u32;
                chunk = chunk.min(bound);
            }
        }
        chunk.max(1)
    }

    /// §3.1 step 4: instantiate components and wire the dispatch graph.
    fn install_app(&mut self, req: ServiceRequest, graph: ExecutionGraph) -> AppId {
        let app = self.apps.len();
        let mut trackers = Vec::new();
        let mut source_wrr = Vec::new();
        let mut stage_count = Vec::new();
        let mut source_period = Vec::new();
        let mut gains = Vec::new();
        {
            let nodes = &mut self.nodes;
            for_each_commitment(&self.catalog, &req, &graph, &mut |v, din, dout, dcpu| {
                nodes[v].committed_in += din;
                nodes[v].committed_out += dout;
                nodes[v].committed_cpu += dcpu;
            });
        }
        for (l, stages) in graph.substreams.iter().enumerate() {
            let services = &req.graph.substreams[l].services;
            let g = gain_prefix(&self.catalog, services);
            let src_rate = req.rates[l] / g[services.len()];
            // Data units stay 1:1 through components (rate ratios scale
            // unit *size*); the destination therefore paces its schedule
            // by the source's unit rate.
            trackers.push(SubstreamTracker::new(src_rate));
            stage_count.push(stages.len());
            source_period.push(SimDuration::from_secs_f64(1.0 / src_rate));
            let first_targets: Vec<(NodeId, f64)> = stages[0]
                .placements
                .iter()
                .map(|p| (p.node, p.rate))
                .collect();
            let first_chunk = self.stage_chunk(&first_targets, stages[0].service, req.unit_bits);
            source_wrr.push(ChunkedWrr::new(Wrr::new(first_targets), first_chunk));
            // Instantiate each placement's component with its downstream.
            for (i, stage) in stages.iter().enumerate() {
                let next: Option<Vec<(NodeId, f64)>> = stages
                    .get(i + 1)
                    .map(|nxt| nxt.placements.iter().map(|p| (p.node, p.rate)).collect());
                for p in &stage.placements {
                    let svc = self.catalog.get(stage.service);
                    let comp = CompState {
                        nominal_rate: p.rate,
                        nominal_exec_secs: svc.exec_time.as_secs_f64(),
                        service: stage.service,
                        arrivals: RateEstimator::new(self.config.monitor_window.max(2)),
                        exec_est: Ewma::new(0.2),
                        downstream: next.clone().map(|t| {
                            let chunk = self.stage_chunk(&t, stages[i + 1].service, req.unit_bits);
                            ChunkedWrr::new(Wrr::new(t), chunk)
                        }),
                    };
                    self.nodes[p.node].comps.insert((app, l, i), comp);
                }
            }
            gains.push(g);
        }
        self.apps.push(AppState {
            req,
            graph,
            active: true,
            trackers,
            next_seq: vec![0; stage_count.len()],
            source_wrr,
            stage_count,
            source_period,
            gains,
        });
        app
    }

    fn handle_app_start(&mut self, now: SimTime, app: AppId, q: &mut EventQueue<Event>) {
        if let Some(tr) = &mut self.trace {
            tr.record(now, TraceEvent::AppStarted { app });
        }
        if let Some(lifetime) = self.apps[app].req.lifetime {
            q.schedule(now + lifetime, Event::AppStop(app));
        }
        let substreams = self.apps[app].stage_count.len();
        for l in 0..substreams {
            // Random phase within the first period avoids artificial
            // alignment of all sources on the same tick.
            let period = self.apps[app].source_period[l];
            let phase = period.mul_f64(self.rng.f64());
            q.schedule(now + phase, Event::SourceEmit { app, substream: l });
        }
    }

    fn handle_source_emit(
        &mut self,
        now: SimTime,
        app: AppId,
        substream: usize,
        q: &mut EventQueue<Event>,
    ) {
        if !self.apps[app].active {
            return;
        }
        let burst = self.config.transfer_batch.max(1);
        let (source, unit_bits, period) = {
            let a = &self.apps[app];
            (a.req.source, a.req.unit_bits, a.source_period[substream])
        };
        self.report.generated += burst as u64;
        // Emit the whole burst now, grouped into per-target batches by
        // walking the WRR's runs (O(runs), not O(units)); one emission
        // event then covers `burst` periods. Consecutive runs toward the
        // same target coalesce into one batch — the striping run length
        // only matters where the stream actually splits, and fragmenting
        // a single-target burst would multiply transfer events and stack
        // sub-batches behind each other's CPU bursts. With `burst == 1`
        // this is exactly the per-unit source: one pick, one single-unit
        // batch.
        let mut left = burst;
        let mut open: Option<(NodeId, BatchRef)> = None;
        while left > 0 {
            let (target, n) = self.apps[app].source_wrr[substream].pick_run(left);
            let batch = match open {
                Some((t, b)) if t == target => b,
                Some((t, b)) => {
                    self.send_batch(now, source, t, b, q);
                    let b = self.batches.take();
                    open = Some((target, b));
                    b
                }
                None => {
                    let b = self.batches.take();
                    open = Some((target, b));
                    b
                }
            };
            for _ in 0..n {
                let seq = self.apps[app].next_seq[substream];
                self.apps[app].next_seq[substream] += 1;
                let u = self.store.alloc(app, substream, 0, seq, now, unit_bits);
                self.batches.push(batch, u);
            }
            left -= n;
        }
        if let Some((t, b)) = open {
            self.send_batch(now, source, t, b, q);
        }
        q.schedule(
            now + period.saturating_mul(burst as u64),
            Event::SourceEmit { app, substream },
        );
    }

    /// Transfers a batch over the network as one coalesced link event,
    /// charging drops to the overflowing NIC's node. A dropped transfer
    /// loses every unit in the batch — the all-or-nothing loss a
    /// coalesced NIC ring slot exhibits. Transfers between two components
    /// on the same node never touch the network: the paper models
    /// same-node edges as infinite-capacity (§3.5), and a real node hands
    /// the data unit between components in memory.
    fn send_batch(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        batch: BatchRef,
        q: &mut EventQueue<Event>,
    ) {
        let count = self.batches.len(batch) as u64;
        debug_assert!(count > 0, "empty batch sent");
        if !self.nodes[to].alive {
            self.drop_batch(batch, DropCause::NodeFailed, None);
            return;
        }
        if from == to {
            let ipc = SimDuration::from_micros(200);
            self.in_flight_net += count;
            q.schedule(now + ipc, Event::BatchArrive { node: to, batch });
            return;
        }
        let bits: u64 = self
            .batches
            .units(batch)
            .iter()
            .map(|&u| self.store.bits(u))
            .sum();
        match self.net.send(now, from, to, bits) {
            SendOutcome::Delivered(t) => {
                self.record_traffic(now, from, to, bits, true);
                self.in_flight_net += count;
                q.schedule(t, Event::BatchArrive { node: to, batch });
            }
            SendOutcome::Dropped(simnet::DropReason::SenderOverflow) => {
                self.drop_batch(batch, DropCause::NetSender, Some(from));
            }
            SendOutcome::Dropped(simnet::DropReason::ReceiverOverflow) => {
                self.record_traffic(now, from, to, bits, false);
                self.drop_batch(batch, DropCause::NetReceiver, Some(to));
            }
        }
    }

    /// Drops every unit in a still-attached batch, charging `cause` (and
    /// the drop-ratio feedback window of `blame`, when one node is at
    /// fault) once per unit, then releases the units' storage.
    fn drop_batch(&mut self, batch: BatchRef, cause: DropCause, blame: Option<NodeId>) {
        for i in 0..self.batches.len(batch) {
            let u = self.batches.units(batch)[i];
            self.report.count_drop(cause);
            if let Some(v) = blame {
                self.nodes[v].outcomes.record(true);
            }
            self.store.release(u);
        }
        self.batches.discard(batch);
    }

    /// Removes `n` units from the in-network ledger. A debit exceeding
    /// the ledger means an arrival fired twice or a send was never
    /// credited; `saturating_sub` would silently mask that bookkeeping
    /// bug, so debug builds assert and audited runs record the violation
    /// before clamping.
    fn debit_in_flight(&mut self, n: u64) {
        debug_assert!(
            self.in_flight_net >= n,
            "in_flight_net underflow: debit {n} exceeds ledger {}",
            self.in_flight_net
        );
        if let Some(rest) = self.in_flight_net.checked_sub(n) {
            self.in_flight_net = rest;
        } else {
            if let Some(aud) = self.auditor.as_mut() {
                aud.violation(format!(
                    "conservation: in_flight_net underflow (debit {n} exceeds ledger {})",
                    self.in_flight_net
                ));
            }
            self.in_flight_net = 0;
        }
    }

    fn handle_batch_arrive(
        &mut self,
        now: SimTime,
        node: NodeId,
        batch: BatchRef,
        q: &mut EventQueue<Event>,
    ) {
        let buf = self.batches.detach(batch);
        // The units left the network whatever happens to them next.
        self.debit_in_flight(buf.len() as u64);
        if !self.nodes[node].alive {
            for &u in &buf {
                self.report.count_drop(DropCause::NodeFailed);
                self.store.release(u);
            }
            self.batches.recycle(batch, buf);
            return;
        }
        // Process the batch as *runs* of consecutive same-component units
        // (a batch is usually one run): one map lookup, one estimator
        // update block, and one period computation cover the whole run.
        // With `transfer_batch == 1` every run is a single unit and this
        // is exactly the per-unit arrival path.
        let mut seen = std::mem::take(&mut self.arrive_scratch);
        seen.clear();
        let mut enqueued_any = false;
        let mut i = 0;
        while i < buf.len() {
            let app = self.store.app(buf[i]);
            let substream = self.store.substream(buf[i]);
            let layer = self.store.layer(buf[i]);
            let key: CompKey = (app, substream, layer);
            let mut j = i + 1;
            while j < buf.len()
                && self.store.app(buf[j]) == app
                && self.store.substream(buf[j]) == substream
                && self.store.layer(buf[j]) == layer
            {
                j += 1;
            }
            let run = j - i;
            // How many units of this component preceded this run in the
            // batch (non-zero only when runs of one component interleave).
            let base = match seen.iter_mut().find(|(k, _)| *k == key) {
                Some((_, n)) => {
                    let b = *n;
                    *n += run as u64;
                    b
                }
                None => {
                    seen.push((key, run as u64));
                    0
                }
            };
            let stages = self.apps[app].stage_count[substream];
            if layer >= stages {
                // Destination delivery (§4.2 metrics).
                debug_assert_eq!(node, self.apps[app].req.destination);
                for &u in &buf[i..j] {
                    let seq = self.store.seq(u);
                    if let Some(aud) = self.auditor.as_mut() {
                        let bound = self.apps[app].next_seq[substream];
                        aud.record_delivery(app, substream, seq, bound);
                    }
                    let created = self.store.created(u);
                    self.apps[app].trackers[substream].on_delivery(seq, created, now);
                    self.nodes[node].outcomes.record(false);
                    self.store.release(u);
                }
                i = j;
                continue;
            }
            if !self.nodes[node].comps.contains_key(&key) {
                // The application was torn down while these units were in
                // flight; they die quietly at the now-vacant node.
                for &u in &buf[i..j] {
                    self.report.count_drop(DropCause::Terminated);
                    self.store.release(u);
                }
                i = j;
                continue;
            }
            let (period, exec_est) = {
                let comp = self.nodes[node]
                    .comps
                    .get_mut(&key)
                    .expect("component checked above");
                for _ in 0..run {
                    comp.arrivals.record(now);
                }
                // Deadline basis: expected arrival of the next unit
                // (§3.4), from the measured period once enough samples
                // exist.
                let period = if comp.arrivals.len() >= 4 {
                    comp.arrivals
                        .period()
                        .unwrap_or_else(|| SimDuration::from_secs_f64(1.0 / comp.nominal_rate))
                } else {
                    SimDuration::from_secs_f64(1.0 / comp.nominal_rate)
                };
                let est = comp.exec_est.value_or(comp.nominal_exec_secs);
                (period, SimDuration::from_secs_f64(est))
            };
            for (off, &u) in buf[i..j].iter().enumerate() {
                // A batched transfer coalesces units whose uncoalesced
                // stream would have arrived one period apart; each unit
                // keeps the deadline of its *nominal* arrival slot — the
                // j-th same-component unit of this batch is due j periods
                // later — so coalescing never manufactures laxity drops.
                // At `transfer_batch == 1` the ordinal is always 0 and
                // this is the per-unit deadline `arr + p_ci` (§3.4)
                // exactly.
                let ordinal = base + off as u64;
                let job = Job {
                    meta: JobMeta {
                        arrival: now,
                        deadline: now + period.saturating_mul(ordinal + 1),
                        exec_time: exec_est,
                    },
                    payload: u,
                };
                if self.nodes[node].sched.enqueue(job).is_err() {
                    self.report.count_drop(DropCause::QueueFull);
                    self.nodes[node].outcomes.record(true);
                    self.store.release(u);
                    continue;
                }
                enqueued_any = true;
            }
            i = j;
        }
        self.arrive_scratch = seen;
        self.batches.recycle(batch, buf);
        if enqueued_any && self.nodes[node].running.is_empty() {
            self.start_cpu(now, node, q);
        }
    }

    /// Dispatches up to `transfer_batch` units onto the node's CPU
    /// (§3.4) as one burst covered by a single `CpuDone` event. Each
    /// unit still gets its own execution-time draw, so per-unit timing
    /// statistics are preserved; with `transfer_batch == 1` this is
    /// exactly the per-unit dispatch.
    fn start_cpu(&mut self, now: SimTime, node: NodeId, q: &mut EventQueue<Event>) {
        debug_assert!(
            self.nodes[node].running.is_empty(),
            "start_cpu on a busy node"
        );
        let burst = self.config.transfer_batch.max(1) as usize;
        let mut chosen = std::mem::take(&mut self.burst_scratch);
        chosen.clear();
        let dropped = self.nodes[node]
            .sched
            .dispatch_burst(now, burst, &mut chosen);
        for job in dropped {
            self.report.count_drop(DropCause::Laxity);
            self.nodes[node].outcomes.record(true);
            self.store.release(job.payload);
        }
        let mut total_ns = 0u64;
        // Consecutive chosen units usually share a component; cache the
        // last (key, base) pair to skip the map lookup on runs.
        let mut last: Option<(CompKey, f64)> = None;
        for job in chosen.drain(..) {
            let u = job.payload;
            let key: CompKey = (
                self.store.app(u),
                self.store.substream(u),
                self.store.layer(u),
            );
            let base = match last {
                Some((k, b)) if k == key => b,
                _ => {
                    let b = self.nodes[node]
                        .comps
                        .get(&key)
                        .map(|c| c.nominal_exec_secs)
                        .unwrap_or(0.002);
                    last = Some((key, b));
                    b
                }
            };
            let noise = if self.config.exec_noise_sigma > 0.0 {
                self.nodes[node]
                    .exec_rng
                    .log_normal(0.0, self.config.exec_noise_sigma)
                    .clamp(0.2, 5.0)
            } else {
                1.0
            };
            let exec = SimDuration::from_secs_f64(base * noise);
            total_ns += exec.as_nanos();
            self.nodes[node].running.push((u, exec));
        }
        self.burst_scratch = chosen;
        if !self.nodes[node].running.is_empty() {
            q.schedule(
                now + SimDuration::from_nanos(total_ns),
                Event::CpuDone { node },
            );
        }
    }

    /// Crash-stops node `v` and dynamically re-composes the affected
    /// applications (§1's "composes stream processing applications
    /// dynamically" under churn; the overlay's §3.3 failure handling
    /// keeps discovery working).
    fn handle_fail_node(&mut self, now: SimTime, v: NodeId, q: &mut EventQueue<Event>) {
        if !self.nodes[v].alive {
            return;
        }
        if let Some(tr) = &mut self.trace {
            tr.record(now, TraceEvent::NodeFailed { node: v });
        }
        // Overlay + registry route around the corpse.
        self.overlay.remove(v);
        self.dir.handle_failure(&self.overlay, v);
        // Everything on the node dies with it — including the burst that
        // occupied its CPU, which must be counted like the queued units or
        // the data-unit conservation ledger leaks per crash of a busy
        // node (its CpuDone event still fires, finding nothing). The
        // queue is drained rather than discarded so every casualty's
        // storage goes back to the unit store.
        self.nodes[v].alive = false;
        self.nodes[v].bg_load = None;
        let queued = self.nodes[v].sched.drain();
        let busy = std::mem::take(&mut self.nodes[v].running);
        self.nodes[v].comps.clear();
        let mut lost = 0u64;
        for job in queued {
            self.store.release(job.payload);
            lost += 1;
        }
        for (u, _) in busy {
            self.store.release(u);
            lost += 1;
        }
        for _ in 0..lost {
            self.report.count_drop(DropCause::NodeFailed);
        }
        // Injected degradations die with the node too.
        self.loss_prob[v] = 0.0;
        self.net.set_latency_factor(v, 1.0);
        self.recompose_affected(now, v, q);
    }

    /// Stops every active application touching `v` and re-submits those
    /// whose endpoints are still alive (§1's "composes stream processing
    /// applications dynamically"). Shared by crash-stop and bandwidth
    /// degradation: after a crash the endpoint-dead applications simply
    /// stop; under degradation `v` is still alive, so even its own
    /// endpoints' applications re-compose against the shrunken capacity.
    fn recompose_affected(&mut self, now: SimTime, v: NodeId, q: &mut EventQueue<Event>) {
        let affected: Vec<AppId> = (0..self.apps.len())
            .filter(|&a| {
                let app = &self.apps[a];
                app.active
                    && (app.req.source == v
                        || app.req.destination == v
                        || app
                            .graph
                            .substreams
                            .iter()
                            .flatten()
                            .any(|st| st.placements.iter().any(|p| p.node == v)))
            })
            .collect();
        for app in affected {
            let req = self.apps[app].req.clone();
            let endpoints_alive = self.nodes[req.source].alive && self.nodes[req.destination].alive;
            // Adaptation hot path: repair the retained composition in
            // place — re-route only the rate the lost node carried —
            // and fall back to the cold stop-and-resubmit round trip
            // when the composer declines (no retained state, repair
            // shortfall, stale prices, or moved capacity).
            if endpoints_alive && self.try_repair_app(now, app, v) {
                continue;
            }
            self.handle_app_stop(app);
            if endpoints_alive {
                self.report.recompositions += 1;
                if let Ok(new_app) = self.handle_submit(now, req, q) {
                    if let Some(tr) = &mut self.trace {
                        tr.record(now, TraceEvent::Recomposed { new_app });
                    }
                }
            }
        }
    }

    /// Attempts the composer's in-place repair for `app` after `v`
    /// became unusable. On success the execution graph is swapped under
    /// the same app id (ledger, components, and dispatch rewired), so
    /// delivery resumes without a teardown/resubmit round trip.
    fn try_repair_app(&mut self, now: SimTime, app: AppId, v: NodeId) -> bool {
        let touches_v = self.apps[app]
            .graph
            .substreams
            .iter()
            .flatten()
            .any(|st| st.placements.iter().any(|p| p.node == v));
        if !touches_v {
            // Nothing to evacuate: the app was swept up because `v` is
            // one of its endpoints (degradation path), and repair
            // cannot move an endpoint — recompose cold.
            return false;
        }
        let req = self.apps[app].req.clone();
        let old_graph = self.apps[app].graph.clone();
        // Validate the repair against the current measured view with
        // the app's own ledger credited back — exactly the capacity a
        // cold stop-and-resubmit would negotiate against.
        self.shift_commitments(&req, &old_graph, -1.0);
        let view = self.measured_view(now);
        self.shift_commitments(&req, &old_graph, 1.0);
        let Some(new_graph) = self
            .composer
            .repair(app, &req, &self.catalog, &old_graph, v, &view)
        else {
            return false;
        };
        if !repaired_graph_is_sound(&old_graph, &new_graph, v) {
            // The composer broke the repair contract (rates or shape
            // changed, or the dead node is still placed). Never install
            // such a graph; surface the bug when auditing is on.
            if let Some(aud) = self.auditor.as_mut() {
                aud.violation(format!(
                    "repair: unsound graph for app {app} after node {v}"
                ));
            }
            self.composer.discard_retained(app);
            return false;
        }
        self.rewire_app(app, new_graph);
        self.report.recompositions += 1;
        self.report.repairs += 1;
        if let Some(tr) = &mut self.trace {
            tr.record(now, TraceEvent::Repaired { app });
        }
        true
    }

    /// Adds (`sign = 1.0`) or releases (`sign = -1.0`) one graph's
    /// committed-rate ledger entries.
    fn shift_commitments(&mut self, req: &ServiceRequest, graph: &ExecutionGraph, sign: f64) {
        let nodes = &mut self.nodes;
        for_each_commitment(&self.catalog, req, graph, &mut |v, din, dout, dcpu| {
            let node = &mut nodes[v];
            node.committed_in = (node.committed_in + sign * din).max(0.0);
            node.committed_out = (node.committed_out + sign * dout).max(0.0);
            node.committed_cpu = (node.committed_cpu + sign * dcpu).max(0.0);
        });
    }

    /// Swaps a repaired execution graph under `app`'s existing id:
    /// releases the old graph's ledger commitments and component
    /// instances, installs the new graph's, and rebuilds the dispatch
    /// (WRR) state. Trackers, sequence numbers, pacing, and gains carry
    /// over untouched — services and rates are repair-invariant. Units
    /// in flight toward a removed component are dropped on arrival as
    /// `Terminated`, exactly like the cold path's casualties.
    fn rewire_app(&mut self, app: AppId, new_graph: ExecutionGraph) {
        let req = self.apps[app].req.clone();
        let old_graph = std::mem::replace(&mut self.apps[app].graph, new_graph.clone());
        self.shift_commitments(&req, &old_graph, -1.0);
        self.shift_commitments(&req, &new_graph, 1.0);
        for (l, stages) in old_graph.substreams.iter().enumerate() {
            for (i, stage) in stages.iter().enumerate() {
                for p in &stage.placements {
                    self.nodes[p.node].comps.remove(&(app, l, i));
                }
            }
        }
        for (l, stages) in new_graph.substreams.iter().enumerate() {
            let first_targets: Vec<(NodeId, f64)> = stages[0]
                .placements
                .iter()
                .map(|p| (p.node, p.rate))
                .collect();
            let first_chunk = self.stage_chunk(&first_targets, stages[0].service, req.unit_bits);
            self.apps[app].source_wrr[l] = ChunkedWrr::new(Wrr::new(first_targets), first_chunk);
            for (i, stage) in stages.iter().enumerate() {
                let next: Option<Vec<(NodeId, f64)>> = stages
                    .get(i + 1)
                    .map(|nxt| nxt.placements.iter().map(|p| (p.node, p.rate)).collect());
                for p in &stage.placements {
                    let svc = self.catalog.get(stage.service);
                    let comp = CompState {
                        nominal_rate: p.rate,
                        nominal_exec_secs: svc.exec_time.as_secs_f64(),
                        service: stage.service,
                        arrivals: RateEstimator::new(self.config.monitor_window.max(2)),
                        exec_est: Ewma::new(0.2),
                        downstream: next.clone().map(|t| {
                            let chunk = self.stage_chunk(&t, stages[i + 1].service, req.unit_bits);
                            ChunkedWrr::new(Wrr::new(t), chunk)
                        }),
                    };
                    self.nodes[p.node].comps.insert((app, l, i), comp);
                }
            }
        }
    }

    /// Applies one injected fault action.
    fn handle_fault(&mut self, now: SimTime, action: FaultAction, q: &mut EventQueue<Event>) {
        match action {
            FaultAction::Crash(v) => self.handle_fail_node(now, v, q),
            FaultAction::Degrade { node, factor } => self.handle_degrade(now, node, factor, q),
            FaultAction::Restore(v) => self.handle_restore(now, v),
            FaultAction::LatencySpike {
                node,
                factor,
                duration,
            } => {
                if self.nodes[node].alive {
                    self.net.set_latency_factor(node, factor.max(1.0));
                    q.schedule(now + duration, Event::Fault(FaultAction::LatencyCalm(node)));
                }
            }
            FaultAction::LatencyCalm(v) => self.net.set_latency_factor(v, 1.0),
            FaultAction::MessageLoss {
                node,
                prob,
                duration,
            } => {
                if self.nodes[node].alive {
                    self.loss_prob[node] = prob.clamp(0.0, 1.0);
                    q.schedule(now + duration, Event::Fault(FaultAction::LossCalm(node)));
                }
            }
            FaultAction::LossCalm(v) => self.loss_prob[v] = 0.0,
        }
    }

    /// Degrades a node's NIC rates to `factor` of pristine. If the
    /// shrunken capacity can no longer honour the ledger's commitments,
    /// the node's applications re-compose against the degraded
    /// availability (splitting across other hosts, shedding load, or
    /// rejecting outright) — the paper's dynamic adaptation is not only
    /// crash-stop. Within the admission bound the commitments still fit
    /// and the applications ride out the slowdown in place.
    fn handle_degrade(&mut self, now: SimTime, v: NodeId, factor: f64, q: &mut EventQueue<Event>) {
        if !self.nodes[v].alive {
            return;
        }
        let f = factor.clamp(0.05, 1.0);
        let base = self.base_specs[v];
        self.net
            .set_node_bandwidth(v, base.bw_in * f, base.bw_out * f);
        if let Some(tr) = &mut self.trace {
            tr.record(now, TraceEvent::Degraded { node: v, factor: f });
        }
        let head = self.config.admission_headroom;
        if self.nodes[v].committed_in > base.bw_in * f * head + 1e-6
            || self.nodes[v].committed_out > base.bw_out * f * head + 1e-6
        {
            self.recompose_affected(now, v, q);
        }
    }

    /// Restores a degraded node's pristine NIC rates.
    fn handle_restore(&mut self, now: SimTime, v: NodeId) {
        if !self.nodes[v].alive {
            return;
        }
        let base = self.base_specs[v];
        self.net.set_node_bandwidth(v, base.bw_in, base.bw_out);
        // Every retained composition priced `v` at its degraded
        // capacity (or evacuated it outright); repairing against those
        // stale graphs would keep avoiding a healthy node forever, so
        // the next adaptation of each app re-solves cold instead.
        self.composer.discard_all_retained();
        if let Some(tr) = &mut self.trace {
            tr.record(now, TraceEvent::Restored { node: v });
        }
    }

    /// One auditor checkpoint; reschedules itself while the simulation
    /// still has work so the cadence survives arbitrarily long runs yet
    /// lets the backlog drain to empty at teardown.
    fn handle_audit_tick(&mut self, now: SimTime, q: &mut EventQueue<Event>) {
        if let Some(mut aud) = self.auditor.take() {
            aud.checkpoint(self, q);
            self.auditor = Some(aud);
        }
        if q.pending_len() > 0 {
            let period = SimDuration::from_secs_f64(self.config.audit_period_secs.max(0.05));
            q.schedule(now + period, Event::AuditTick);
        }
    }

    /// Tears an application down: sources quiesce, its components leave
    /// their nodes, and its committed rates are released so later
    /// compositions can reuse the capacity.
    fn handle_app_stop(&mut self, app: AppId) {
        if !self.apps[app].active {
            return;
        }
        self.apps[app].active = false;
        self.composer.discard_retained(app);
        let stop_time = self.now;
        if let Some(tr) = &mut self.trace {
            tr.record(stop_time, TraceEvent::AppStopped { app });
        }
        let req = self.apps[app].req.clone();
        let graph = self.apps[app].graph.clone();
        {
            let nodes = &mut self.nodes;
            for_each_commitment(&self.catalog, &req, &graph, &mut |v, din, dout, dcpu| {
                let node = &mut nodes[v];
                node.committed_in = (node.committed_in - din).max(0.0);
                node.committed_out = (node.committed_out - dout).max(0.0);
                node.committed_cpu = (node.committed_cpu - dcpu).max(0.0);
            });
        }
        for (l, stages) in graph.substreams.iter().enumerate() {
            for (i, stage) in stages.iter().enumerate() {
                for p in &stage.placements {
                    self.nodes[p.node].comps.remove(&(app, l, i));
                }
            }
        }
    }

    fn handle_bg_phase(&mut self, now: SimTime, node: NodeId, on: bool, q: &mut EventQueue<Event>) {
        let Some(bg) = self.config.background.clone() else {
            return;
        };
        if on {
            let load = self.rng.range_f64(bg.load.0, bg.load.1);
            self.nodes[node].bg_load = Some(load);
            q.schedule(now, Event::BgPulse { node });
            let dur = SimDuration::from_secs_f64(self.rng.exp(1.0 / bg.on_mean_secs.max(0.01)));
            q.schedule(now + dur, Event::BgPhase { node, on: false });
        } else {
            self.nodes[node].bg_load = None;
            let dur = SimDuration::from_secs_f64(self.rng.exp(1.0 / bg.off_mean_secs.max(0.01)));
            q.schedule(now + dur, Event::BgPhase { node, on: true });
        }
    }

    fn handle_bg_pulse(&mut self, now: SimTime, node: NodeId, q: &mut EventQueue<Event>) {
        let Some(bg) = self.config.background.clone() else {
            return;
        };
        if !self.nodes[node].alive {
            return;
        }
        let Some(load) = self.nodes[node].bg_load else {
            return; // phase ended; stop pulsing
        };
        let pulse = SimDuration::from_millis(bg.pulse_ms.max(1));
        let occupy = pulse.mul_f64(load);
        self.net.occupy(now, node, occupy, occupy);
        // The node's own monitoring sees the cross traffic (§3.2).
        let spec = self.net.topology().spec(node);
        let in_bits = (spec.bw_in * occupy.as_secs_f64()) as u64;
        let out_bits = (spec.bw_out * occupy.as_secs_f64()) as u64;
        self.nodes[node].in_meter.record(now, in_bits);
        self.nodes[node].out_meter.record(now, out_bits);
        q.schedule(now + pulse, Event::BgPulse { node });
    }

    fn handle_cpu_done(&mut self, now: SimTime, node: NodeId, q: &mut EventQueue<Event>) {
        let finished = std::mem::take(&mut self.nodes[node].running);
        if finished.is_empty() {
            // The node failed while this burst occupied its CPU.
            return;
        }
        // Outputs are grouped into per-target batches: consecutive units
        // bound for the same next hop share one link transfer. With a
        // burst of one this degenerates to exactly one single-unit send.
        let mut open: Option<(NodeId, BatchRef)> = None;
        for &(u, exec) in &finished {
            self.nodes[node].outcomes.record(false);
            self.nodes[node].cpu_meter.record(now, exec.as_nanos());
            // Update the running-time estimate and pick the next hop.
            let app = self.store.app(u);
            let substream = self.store.substream(u);
            let layer = self.store.layer(u);
            let next_layer = layer + 1;
            let (stages, destination) = {
                let a = &self.apps[app];
                (a.stage_count[substream], a.req.destination)
            };
            let out_gain = self.apps[app].gains[substream][next_layer];
            let out_bits = (self.apps[app].req.unit_bits as f64 * out_gain).round() as u64;
            let comp: CompKey = (app, substream, layer);
            let target = match self.nodes[node].comps.get_mut(&comp) {
                None => {
                    // Torn down while the unit occupied the CPU.
                    self.report.count_drop(DropCause::Terminated);
                    self.store.release(u);
                    continue;
                }
                Some(c) => {
                    c.exec_est.record(exec.as_secs_f64());
                    if next_layer >= stages {
                        destination
                    } else {
                        c.downstream
                            .as_mut()
                            .expect("non-final component lacks downstream")
                            .pick()
                    }
                }
            };
            self.store.advance(u, next_layer, out_bits.max(1));
            match open {
                Some((t, b)) if t == target => self.batches.push(b, u),
                _ => {
                    if let Some((t, b)) = open {
                        self.send_batch(now, node, t, b, q);
                    }
                    let b = self.batches.take();
                    self.batches.push(b, u);
                    open = Some((target, b));
                }
            }
        }
        if let Some((t, b)) = open {
            self.send_batch(now, node, t, b, q);
        }
        // Hand the (now consumed) burst vector back so its capacity is
        // reused by the next dispatch.
        let mut finished = finished;
        finished.clear();
        self.nodes[node].running = finished;
        self.start_cpu(now, node, q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ServiceRequest;
    use simnet::{kbps, TopologyBuilder};

    fn tiny_engine(config: EngineConfig) -> Engine {
        let catalog = ServiceCatalog::synthetic(2, 1);
        let mut b = TopologyBuilder::new().default_latency(SimDuration::from_millis(10));
        for _ in 0..4 {
            b.node(kbps(2_000.0), kbps(2_000.0));
        }
        Engine::builder(4, catalog, 1)
            .topology(b.build())
            .offers(vec![vec![0, 1], vec![0, 1], vec![], vec![]])
            .config(config)
            .build()
    }

    #[test]
    fn measured_view_reflects_commitments() {
        let mut engine = tiny_engine(EngineConfig::default());
        let before = engine.view_snapshot();
        engine
            .submit(ServiceRequest::chain(&[0], 20.0, 2, 3))
            .unwrap();
        let after = engine.view_snapshot();
        // The provider hosting the component lost ~20 du/s of headroom.
        let delta: f64 = (0..2)
            .map(|v| before.in_rate_capacity(v, 8192) - after.in_rate_capacity(v, 8192))
            .sum();
        assert!((delta - 20.0).abs() < 1.0, "committed delta {delta}");
        // The source's uplink and destination's downlink shrank too.
        assert!(after.out_rate_capacity(2, 8192) < before.out_rate_capacity(2, 8192));
        assert!(after.in_rate_capacity(3, 8192) < before.in_rate_capacity(3, 8192));
    }

    #[test]
    fn stage_chunk_adapts_to_branch_speed() {
        let engine = tiny_engine(EngineConfig::default());
        let state = &engine.state;
        // Single target: always the configured maximum.
        assert_eq!(
            state.stage_chunk(&[(0, 10.0)], 0, 8192),
            state.config.split_chunk
        );
        // Fast branches (2 Mbps NICs, ms-scale exec): no deficit, full chunk.
        assert_eq!(
            state.stage_chunk(&[(0, 10.0), (1, 10.0)], 0, 8192),
            state.config.split_chunk
        );
    }

    #[test]
    fn stage_chunk_shrinks_for_slow_service() {
        let catalog = ServiceCatalog::new(vec![crate::model::Service {
            id: 0,
            name: "heavy".into(),
            exec_time: SimDuration::from_millis(40),
            rate_ratio: 1.0,
        }]);
        let mut b = TopologyBuilder::new().default_latency(SimDuration::from_millis(10));
        for _ in 0..4 {
            b.node(kbps(10_000.0), kbps(10_000.0));
        }
        let engine = Engine::builder(4, catalog, 1)
            .topology(b.build())
            .offers(vec![vec![0], vec![0], vec![], vec![]])
            .build();
        // Two branches at 15 du/s each: stream period 33 ms < exec 40 ms,
        // so the chunk must shrink well below the default of 16.
        let chunk = engine.state.stage_chunk(&[(0, 15.0), (1, 15.0)], 0, 8192);
        assert!(chunk < 8, "chunk {chunk} too large for a 40 ms service");
        assert!(chunk >= 1);
    }

    #[test]
    fn invalid_request_counts_as_rejected() {
        let mut engine = tiny_engine(EngineConfig::default());
        assert!(engine
            .submit(ServiceRequest::chain(&[99], 5.0, 2, 3))
            .is_err());
        assert_eq!(engine.report().rejected, 1);
        assert_eq!(engine.report().composed, 0);
    }

    #[test]
    fn background_phases_toggle_load() {
        let config = EngineConfig {
            background: Some(BackgroundTraffic::flaky(vec![0, 1])),
            ..Default::default()
        };
        let mut engine = tiny_engine(config);
        // Run long enough for several ON/OFF cycles; the flaky nodes'
        // NICs must show occupancy (bits metered by the pulses).
        engine.run_for_secs(30.0);
        let mut v = engine.view_snapshot();
        let _ = &mut v;
        let busy0 = engine.state.nodes[0].in_meter.total_bits();
        let busy2 = engine.state.nodes[2].in_meter.total_bits();
        assert!(busy0 > 0, "flaky node never saw cross traffic");
        assert_eq!(busy2, 0, "non-flaky node saw cross traffic");
    }

    #[test]
    fn report_components_and_splits_track_graphs() {
        let mut engine = tiny_engine(EngineConfig::default());
        engine
            .submit(ServiceRequest::chain(&[0, 1], 10.0, 2, 3))
            .unwrap();
        let r = engine.report();
        assert_eq!(r.composed, 1);
        assert_eq!(r.components as usize, engine.app_graph(0).component_count());
    }
}
