//! Lightweight control-plane tracing for debugging and demos.
//!
//! When enabled, the engine records one entry per *control-plane* event
//! (compositions, starts, stops, failures — never per data unit, which
//! would dwarf memory) into a bounded ring. The trace can be inspected
//! programmatically or dumped as CSV.

use crate::model::AppId;
use desim::SimTime;
use simnet::NodeId;
use std::collections::VecDeque;

/// One control-plane event.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A request was composed into `app` with the given component count.
    Composed {
        /// The new application id.
        app: AppId,
        /// Number of component instances in its execution graph.
        components: usize,
        /// Whether any stage was split.
        split: bool,
    },
    /// A request was rejected.
    Rejected {
        /// Human-readable rejection reason.
        reason: String,
    },
    /// An application's sources began emitting.
    AppStarted {
        /// The application.
        app: AppId,
    },
    /// An application was torn down (end of lifetime or failure).
    AppStopped {
        /// The application.
        app: AppId,
    },
    /// A node crash-stopped.
    NodeFailed {
        /// The node.
        node: NodeId,
    },
    /// An application was re-composed after a failure.
    Recomposed {
        /// The replacement application id (a fresh id).
        new_app: AppId,
    },
    /// An application's composition was repaired in place (incremental
    /// recomposition: same app id, only the lost rate re-routed).
    Repaired {
        /// The application (keeps its id across the repair).
        app: AppId,
    },
    /// A node's NIC bandwidth degraded to a fraction of nominal.
    Degraded {
        /// The node.
        node: NodeId,
        /// Remaining fraction of the pristine NIC rates.
        factor: f64,
    },
    /// A degraded node's pristine NIC bandwidth was restored.
    Restored {
        /// The node.
        node: NodeId,
    },
}

/// A bounded ring of timestamped control-plane events.
#[derive(Clone, Debug)]
pub struct Trace {
    ring: VecDeque<(SimTime, TraceEvent)>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a trace retaining the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "trace capacity must be positive");
        Trace {
            ring: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event.
    pub fn record(&mut self, at: SimTime, event: TraceEvent) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back((at, event));
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(SimTime, TraceEvent)> {
        self.ring.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events evicted by the ring bound.
    pub fn evicted(&self) -> u64 {
        self.dropped
    }

    /// Renders the retained events as CSV (`time_s,event,detail`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s,event,detail\n");
        for (t, ev) in &self.ring {
            let (name, detail) = match ev {
                TraceEvent::Composed {
                    app,
                    components,
                    split,
                } => (
                    "composed",
                    format!("app={app} components={components} split={split}"),
                ),
                TraceEvent::Rejected { reason } => ("rejected", reason.clone()),
                TraceEvent::AppStarted { app } => ("app_started", format!("app={app}")),
                TraceEvent::AppStopped { app } => ("app_stopped", format!("app={app}")),
                TraceEvent::NodeFailed { node } => ("node_failed", format!("node={node}")),
                TraceEvent::Recomposed { new_app } => ("recomposed", format!("new_app={new_app}")),
                TraceEvent::Repaired { app } => ("repaired", format!("app={app}")),
                TraceEvent::Degraded { node, factor } => {
                    ("degraded", format!("node={node} factor={factor:.3}"))
                }
                TraceEvent::Restored { node } => ("restored", format!("node={node}")),
            };
            out.push_str(&format!("{:.6},{},{}\n", t.as_secs_f64(), name, detail));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn records_in_order() {
        let mut tr = Trace::new(8);
        tr.record(t(1), TraceEvent::AppStarted { app: 0 });
        tr.record(t(2), TraceEvent::AppStopped { app: 0 });
        assert_eq!(tr.len(), 2);
        let got: Vec<_> = tr.events().cloned().collect();
        assert_eq!(got[0].0, t(1));
        assert_eq!(got[1].1, TraceEvent::AppStopped { app: 0 });
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut tr = Trace::new(2);
        for i in 0..5 {
            tr.record(t(i), TraceEvent::AppStarted { app: i as usize });
        }
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.evicted(), 3);
        assert_eq!(tr.events().next().unwrap().0, t(3));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut tr = Trace::new(4);
        tr.record(t(1), TraceEvent::NodeFailed { node: 7 });
        tr.record(
            t(2),
            TraceEvent::Composed {
                app: 3,
                components: 5,
                split: true,
            },
        );
        let csv = tr.to_csv();
        assert!(csv.starts_with("time_s,event,detail\n"));
        assert!(csv.contains("node_failed,node=7"));
        assert!(csv.contains("composed,app=3 components=5 split=true"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        Trace::new(0);
    }
}
