//! RASC — RAte Splitting Composition (Drougas & Kalogeraki, IPDPS 2007).
//!
//! The paper's contribution: a distributed stream processing system that
//! composes applications *dynamically* while meeting their **rate**
//! requirements, by reducing per-substream component selection + rate
//! assignment to a minimum-cost flow problem. Where a single node cannot
//! sustain a service's required rate, RASC instantiates the service as
//! several components on different nodes, each handling a fraction of the
//! stream ("rate splitting").
//!
//! Crate layout (mirroring the paper's §3 system components):
//!
//! * [`model`] — services, service request graphs, substreams, rate
//!   requirement vectors, execution graphs (§2),
//! * [`catalog`] — the service catalog and DHT-backed component discovery
//!   (§3.3),
//! * [`view`] — the composition-time view of the system: availability
//!   vectors and drop-ratio feedback per node (§3.2),
//! * [`compose`] — the minimum-cost composition algorithm (§3.5) plus the
//!   paper's two baselines (random, greedy),
//! * [`engine`] — the stream-processing runtime: sources, component
//!   queues, LLF scheduling (§3.4), rate-splitting dispatch, destination
//!   tracking — driven by `desim` over `simnet`,
//! * [`metrics`] — every quantity Figures 6–11 plot (composed requests,
//!   end-to-end delay, delivered fraction, timeliness, out-of-order
//!   fraction, jitter).
//!
//! # Quick start
//!
//! See the `rasc` facade crate's `examples/quickstart.rs` for an
//! end-to-end run; the short version:
//!
//! ```
//! use rasc_core::compose::ComposerKind;
//! use rasc_core::engine::{Engine, EngineConfig};
//! use rasc_core::model::{ServiceCatalog, ServiceRequest};
//!
//! // 8 nodes, 4 services, deterministic seed.
//! let catalog = ServiceCatalog::synthetic(4, 7);
//! let mut engine = Engine::builder(8, catalog, 7)
//!     .composer(ComposerKind::MinCost)
//!     .build();
//! let req = ServiceRequest::chain(&[0, 1], 10.0, 0, 7);
//! let outcome = engine.submit(req);
//! assert!(outcome.is_ok());
//! engine.run_for_secs(5.0);
//! let report = engine.report();
//! assert!(report.delivered > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod compose;
pub mod engine;
pub mod metrics;
pub mod model;
pub mod view;
