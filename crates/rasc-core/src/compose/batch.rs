//! Parallel batch admission: compose many requests concurrently against
//! one snapshot, then commit deterministically.
//!
//! The single-request path costs one measured-view snapshot plus one
//! composition per request, serially. At thousand-node scale the
//! snapshot alone is `O(n)`, and requests arrive in bursts — so the
//! batch pipeline amortizes the snapshot over the burst and runs the
//! expensive part (composition) on `desim::pool` workers:
//!
//! 1. **Optimistic phase (parallel).** Every item composes against the
//!    *same* base snapshot — not against earlier items' reservations —
//!    on a pooled worker arena (a retained [`Composer`] whose
//!    `FlowNetwork`/solver buffers survive across items and batches)
//!    and a pooled clone of the base view. The worker wraps each
//!    attempt in an outer view transaction and rolls it back after
//!    recording the result, so the pooled view returns to the base
//!    state bit-exactly (the undo log restores clamped values by
//!    snapshot) and is reused for the next item. Before each item the
//!    arena drops its warm-start state
//!    ([`Composer::forget_warm_state`]): warm starts never change
//!    composition cost, but they can tilt equal-cost tie-breaking, and
//!    the pipeline must produce identical placements no matter which
//!    worker — with whatever solve history — picks an item up.
//!    Composing everything against the base (rather than a racing,
//!    partially-updated view) is what makes the phase order-free:
//!    item `i`'s proposal never depends on how items were scheduled.
//!
//! 2. **Reconcile phase (serial, commit order).** Proposals are
//!    committed in the order the admitter's [`OrderPolicy`] dictates —
//!    first-submitted by default, or a weighted ordering (lightest or
//!    heaviest requested load first, after Benoit et al.'s analysis of
//!    admission orderings) when contended capacity should go to a
//!    different winner than arrival order picks. The policy is a pure
//!    function of the items, so it cannot perturb determinism. Each
//!    proposal is checked against the *authoritative* view (base plus
//!    every earlier winner) with the committed-rate ledger formula
//!    (`overcommits_a_host`, the same arithmetic the engine's install
//!    path and the auditor use): a proposal that still fits is applied
//!    as-is; one that lost its capacity to an earlier winner is a
//!    **conflict**, and the item is *replayed* — recomposed serially
//!    against the authoritative view, exactly like single-request
//!    admission — so a burst colliding on one hot host degrades to the
//!    serial outcome instead of rejecting work that still fits
//!    elsewhere. Items whose optimistic compose already failed are
//!    rejected outright: the authoritative view is the base minus
//!    winners' capacity, so what failed against the base cannot
//!    succeed later.
//!
//! Both phases are deterministic functions of (base view, items, seed):
//! running with one worker or sixteen yields digest-equal outcomes,
//! which `tests/batch_determinism.rs` asserts and
//! [`BatchOutcome::digest`] makes cheap to compare.

use super::{Composer, ComposerKind};
use crate::compose::mincost::overcommits_a_host;
use crate::compose::{apply_reservations, ComposeError, ProviderMap};
use crate::model::{ExecutionGraph, ServiceCatalog, ServiceRequest};
use crate::view::SystemView;
use desim::SimRng;
use std::hash::Hasher;
use std::sync::Mutex;

/// One request of a batch: what `Engine::handle_submit` hands its
/// composer, minus the view (the admitter owns the snapshot).
pub type BatchItem = (ServiceRequest, ProviderMap);

/// Reconcile-phase accounting (all deterministic given the inputs).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReconcileStats {
    /// Items whose optimistic compose failed against the base snapshot.
    pub optimistic_failures: usize,
    /// Proposals that no longer fit the authoritative view at commit
    /// time (an earlier winner took the capacity).
    pub conflicts: usize,
    /// Conflicted items admitted by their serial replay.
    pub replayed_ok: usize,
    /// Conflicted items whose replay was rejected too.
    pub replay_rejected: usize,
}

/// Per-batch results, in item order.
#[derive(Debug)]
pub struct BatchOutcome {
    /// One admission result per item, index-aligned with the input. On
    /// `Ok` the graph's reservations have been applied to the view the
    /// batch ran against.
    pub results: Vec<Result<ExecutionGraph, ComposeError>>,
    /// Item indices that went through conflict replay, ascending.
    pub replayed: Vec<usize>,
    /// Reconcile-phase accounting.
    pub stats: ReconcileStats,
}

impl BatchOutcome {
    /// Order-sensitive digest of every per-item outcome (placements at
    /// full bit precision, rejections by error identity) — two digest-
    /// equal batches admitted the same apps onto the same hosts at the
    /// same rates. Serial (one worker) and pooled runs must match.
    pub fn digest(&self) -> u64 {
        let mut h = desim::hash::FxHasher::default();
        for (i, r) in self.results.iter().enumerate() {
            h.write_usize(i);
            match r {
                Ok(graph) => {
                    h.write_u8(1);
                    for sub in &graph.substreams {
                        h.write_usize(sub.len());
                        for stage in sub {
                            h.write_usize(stage.service);
                            for p in &stage.placements {
                                h.write_usize(p.node);
                                h.write_u64(p.rate.to_bits());
                            }
                        }
                    }
                }
                Err(ComposeError::NoProviders(s)) => {
                    h.write_u8(2);
                    h.write_usize(*s);
                }
                Err(ComposeError::InsufficientCapacity { substream }) => {
                    h.write_u8(3);
                    h.write_usize(*substream);
                }
                Err(ComposeError::UnknownService(s)) => {
                    h.write_u8(4);
                    h.write_usize(*s);
                }
            }
        }
        for &i in &self.replayed {
            h.write_usize(i);
        }
        h.finish()
    }

    /// Number of admitted items.
    pub fn admitted(&self) -> usize {
        self.results.iter().filter(|r| r.is_ok()).count()
    }
}

/// SplitMix64 (same constants as `simnet`'s jitter hash): decorrelates
/// per-item RNG streams from the batch seed.
pub(crate) fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Salt of the conflict-replay RNG stream (`"REPLAY"` in ASCII), so a
/// replay never re-rolls its optimistic phase's random choices.
pub(crate) const REPLAY_SALT: u64 = 0x5245504C4159;

/// Which proposal wins contended capacity: the commit order of the
/// reconcile phase. Benoit et al. (PAPERS.md) analyze how admission
/// orderings trade throughput against fairness on heterogeneous
/// platforms; the pipeline exposes the knob while keeping every policy a
/// pure, deterministic function of the submitted items.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OrderPolicy {
    /// Commit in submission order — first submitted wins (the default,
    /// and the only policy with no information about request weight).
    #[default]
    FirstSubmitted,
    /// Lightest requested load (total bits/s) first, ties by submission
    /// order: favors admitted-count, starving heavy requests last.
    SmallestFirst,
    /// Heaviest requested load first: a throughput-weighted priority
    /// that lets big tenants claim contended capacity.
    LargestFirst,
}

impl OrderPolicy {
    /// The commit order, as indices into `items`. Always a permutation;
    /// ties never reorder (submission index breaks them), so the order
    /// is deterministic for any input.
    pub(crate) fn commit_order(self, items: &[BatchItem]) -> Vec<usize> {
        let mut order: Vec<usize> = (0..items.len()).collect();
        let weight = |i: usize| items[i].0.total_bits_per_sec();
        match self {
            OrderPolicy::FirstSubmitted => {}
            OrderPolicy::SmallestFirst => {
                order.sort_by(|&a, &b| weight(a).total_cmp(&weight(b)).then(a.cmp(&b)));
            }
            OrderPolicy::LargestFirst => {
                order.sort_by(|&a, &b| weight(b).total_cmp(&weight(a)).then(a.cmp(&b)));
            }
        }
        order
    }

    /// Bench/report label.
    pub fn label(self) -> &'static str {
        match self {
            OrderPolicy::FirstSubmitted => "first_submitted",
            OrderPolicy::SmallestFirst => "smallest_first",
            OrderPolicy::LargestFirst => "largest_first",
        }
    }
}

/// The serial validate-and-commit pass shared by the global
/// [`BatchAdmitter`] and the region-sharded admitter: walk proposals in
/// commit order against the authoritative `view`, apply what still fits,
/// replay conflicts with the per-item replay RNG stream. Sharing this
/// code (rather than re-implementing it per pipeline) is what makes the
/// shard-count=1 pipeline digest-identical to the global one by
/// construction: identical proposals in, identical commits out.
pub(crate) fn reconcile_proposals(
    view: &mut SystemView,
    catalog: &ServiceCatalog,
    items: &[BatchItem],
    proposals: Vec<Result<ExecutionGraph, ComposeError>>,
    order: &[usize],
    seed: u64,
    arena: &mut dyn Composer,
) -> BatchOutcome {
    debug_assert_eq!(items.len(), proposals.len());
    debug_assert_eq!(items.len(), order.len());
    let mut stats = ReconcileStats::default();
    let mut replayed = Vec::new();
    let mut slots: Vec<Option<Result<ExecutionGraph, ComposeError>>> =
        proposals.into_iter().map(Some).collect();
    for &i in order {
        let (req, providers) = &items[i];
        let outcome = match slots[i].take().expect("commit order is a permutation") {
            Err(e) => {
                // Failed against the base snapshot; the view only has
                // less capacity now.
                stats.optimistic_failures += 1;
                Err(e)
            }
            Ok(graph) => {
                if !overcommits_a_host(req, catalog, view, &graph) {
                    apply_reservations(req, catalog, &graph, view);
                    Ok(graph)
                } else {
                    stats.conflicts += 1;
                    replayed.push(i);
                    arena.forget_warm_state();
                    let mut rng = SimRng::new(mix(seed ^ i as u64 ^ REPLAY_SALT));
                    let r = arena.compose(req, catalog, providers, view, &mut rng);
                    match &r {
                        Ok(_) => stats.replayed_ok += 1,
                        Err(_) => stats.replay_rejected += 1,
                    }
                    r
                }
            }
        };
        slots[i] = Some(outcome);
    }
    replayed.sort_unstable();
    BatchOutcome {
        results: slots
            .into_iter()
            .map(|s| s.expect("every index committed exactly once"))
            .collect(),
        replayed,
        stats,
    }
}

/// The batch admission pipeline. Owns a pool of worker arenas
/// (composers) that persist across batches, so the steady state rebuilds
/// flow networks inside retained buffers instead of allocating them.
pub struct BatchAdmitter {
    threads: usize,
    order: OrderPolicy,
    factory: Box<dyn Fn() -> Box<dyn Composer + Send> + Send + Sync>,
    arenas: Mutex<Vec<Box<dyn Composer + Send>>>,
    /// Worker copies of base snapshots from previous batches (at most one
    /// per worker). Re-synced to the current base with
    /// `SystemView::clone_from`, which reuses every heap buffer — so a
    /// steady-state batch performs zero snapshot allocations where a
    /// fresh `clone()` would perform `O(n)` per worker.
    views: Mutex<Vec<SystemView>>,
}

impl std::fmt::Debug for BatchAdmitter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchAdmitter")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl BatchAdmitter {
    /// An admitter running `threads` optimistic workers whose arenas are
    /// built by `factory`. `threads == 1` composes inline — the
    /// reference execution the parallel runs must digest-match.
    pub fn new(
        threads: usize,
        factory: impl Fn() -> Box<dyn Composer + Send> + Send + Sync + 'static,
    ) -> Self {
        assert!(threads > 0, "thread count must be positive");
        BatchAdmitter {
            threads,
            order: OrderPolicy::default(),
            factory: Box::new(factory),
            arenas: Mutex::new(Vec::new()),
            views: Mutex::new(Vec::new()),
        }
    }

    /// A default-configuration admitter over `kind` composers.
    pub fn for_kind(threads: usize, kind: ComposerKind) -> Self {
        Self::new(threads, move || kind.build())
    }

    /// Replaces the commit-ordering policy (default: first submitted).
    pub fn with_order(mut self, order: OrderPolicy) -> Self {
        self.order = order;
        self
    }

    fn take_arena(&self) -> Box<dyn Composer + Send> {
        self.arenas.lock().unwrap().pop().unwrap_or_else(|| {
            let mut c = (self.factory)();
            // Worker arenas are shared by every item of every batch, so
            // per-app retained-repair state would be misaddressed; the
            // engine repairs batch-admitted apps by cold recomposition.
            c.set_retention(false);
            c
        })
    }

    fn put_arena(&self, arena: Box<dyn Composer + Send>) {
        self.arenas.lock().unwrap().push(arena);
    }

    /// Admits `items` against `view` (the batch's base snapshot): runs
    /// the optimistic phase on the worker pool, then commits winners and
    /// replays conflicts in item order. On return, `view` carries
    /// exactly the admitted results' reservations.
    ///
    /// `seed` feeds the per-item RNG streams (`mix(seed, index)`), so
    /// outcomes are a pure function of (view, items, seed) — worker
    /// count and scheduling cannot shift them.
    pub fn admit_batch(
        &self,
        view: &mut SystemView,
        catalog: &ServiceCatalog,
        items: &[BatchItem],
        seed: u64,
    ) -> BatchOutcome {
        assert!(!view.in_transaction(), "batch over a half-open snapshot");
        // Pooled base-view copies, populated lazily: at most one per
        // worker per batch, reused across that worker's items via
        // rollback (bit-exact, so item k sees the same base as item 0).
        // `synced` holds views already at *this* batch's base; stale
        // views from earlier batches live in `self.views` and are
        // re-synced allocation-free on first use.
        let synced: Mutex<Vec<SystemView>> = Mutex::new(Vec::new());
        let base: &SystemView = view;
        let proposals: Vec<Result<ExecutionGraph, ComposeError>> =
            desim::pool::parallel_map_threads(self.threads, items, |i, (req, providers)| {
                let mut arena = self.take_arena();
                let mut work = synced.lock().unwrap().pop().unwrap_or_else(|| {
                    match self.views.lock().unwrap().pop() {
                        Some(mut stale) => {
                            stale.clone_from(base);
                            stale
                        }
                        None => base.clone(),
                    }
                });
                arena.forget_warm_state();
                let mut rng = SimRng::new(mix(seed ^ i as u64));
                work.begin_transaction();
                let result = arena.compose(req, catalog, providers, &mut work, &mut rng);
                work.rollback_transaction();
                synced.lock().unwrap().push(work);
                self.put_arena(arena);
                result
            });
        // Return worker views to the cross-batch pool.
        self.views
            .lock()
            .unwrap()
            .append(&mut synced.into_inner().unwrap());

        // Serial reconcile in the policy's commit order: the first
        // committed proposal wins its capacity; later conflicting
        // proposals replay against what is actually left.
        let order = self.order.commit_order(items);
        let mut arena = self.take_arena();
        let outcome = reconcile_proposals(
            view,
            catalog,
            items,
            proposals,
            &order,
            seed,
            arena.as_mut(),
        );
        self.put_arena(arena);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::MinCostComposer;
    use crate::model::ServiceCatalog;
    use desim::SimDuration;
    use simnet::Topology;

    fn setup(n: usize) -> (ServiceCatalog, SystemView, ProviderMap) {
        let catalog = ServiceCatalog::synthetic(4, 1);
        let view = SystemView::fresh(&Topology::uniform(
            n,
            1_000_000.0,
            SimDuration::from_millis(10),
        ));
        let mut providers = ProviderMap::new();
        for s in 0..4 {
            providers.insert(s, (1..n - 1).collect());
        }
        (catalog, view, providers)
    }

    fn requests(k: usize, rate: f64, n: usize) -> Vec<BatchItem> {
        let (_, _, providers) = setup(n);
        (0..k)
            .map(|_| {
                (
                    ServiceRequest::chain(&[0, 2], rate, 0, n - 1),
                    providers.clone(),
                )
            })
            .collect()
    }

    fn mincost_admitter(threads: usize) -> BatchAdmitter {
        BatchAdmitter::new(threads, || Box::new(MinCostComposer::default()))
    }

    #[test]
    fn serial_and_parallel_batches_digest_equal() {
        let n = 10;
        let (catalog, base, _) = setup(n);
        let items = requests(12, 8.0, n);
        let mut v1 = base.clone();
        let out1 = mincost_admitter(1).admit_batch(&mut v1, &catalog, &items, 7);
        let mut v4 = base.clone();
        let out4 = mincost_admitter(4).admit_batch(&mut v4, &catalog, &items, 7);
        assert_eq!(out1.digest(), out4.digest());
        assert!(v1 == v4, "ledgers diverged");
        assert!(out1.admitted() > 0);
    }

    #[test]
    fn conflicts_are_replayed_and_capacity_is_respected() {
        // 4 nodes: source 0, two hosts 1..=2, destination 3 at 1 Mbps.
        // Each request wants most of a host; optimistically they all
        // fit, but committed together they overrun — later items must
        // replay, and what cannot fit must be rejected.
        let catalog = ServiceCatalog::synthetic(1, 3);
        let view = SystemView::fresh(&Topology::uniform(
            4,
            1_000_000.0,
            SimDuration::from_millis(5),
        ));
        let mut providers = ProviderMap::new();
        providers.insert(0, vec![1, 2]);
        // ~122 du/s per NIC; 70 du/s each means one per host fits, the
        // third conflicts wherever it lands.
        let items: Vec<BatchItem> = (0..3)
            .map(|_| (ServiceRequest::chain(&[0], 70.0, 0, 3), providers.clone()))
            .collect();
        let mut v = view.clone();
        let out = mincost_admitter(2).admit_batch(&mut v, &catalog, &items, 1);
        assert!(out.stats.conflicts > 0, "expected capacity conflicts");
        // The view carries exactly the admitted reservations: replaying
        // them onto a fresh copy reproduces it.
        let mut replay = view.clone();
        for (item, r) in items.iter().zip(&out.results) {
            if let Ok(g) = r {
                apply_reservations(&item.0, &catalog, g, &mut replay);
            }
        }
        assert!(replay == v, "view must equal base + admitted reservations");
        // And a parallel run agrees.
        let mut v2 = view.clone();
        let out2 = mincost_admitter(3).admit_batch(&mut v2, &catalog, &items, 1);
        assert_eq!(out.digest(), out2.digest());
    }

    #[test]
    fn order_policy_decides_the_contention_winner() {
        // One provider host at 1 Mbps (~122 du/s per direction); a
        // 60 du/s and an 80 du/s request each fit alone, never together.
        let catalog = ServiceCatalog::synthetic(1, 3);
        let view = SystemView::fresh(&Topology::uniform(
            4,
            1_000_000.0,
            SimDuration::from_millis(5),
        ));
        let mut providers = ProviderMap::new();
        providers.insert(0, vec![1]);
        let items: Vec<BatchItem> = [60.0, 80.0]
            .iter()
            .map(|&r| (ServiceRequest::chain(&[0], r, 0, 3), providers.clone()))
            .collect();
        let run = |policy: OrderPolicy| {
            let mut v = view.clone();
            let out = mincost_admitter(2)
                .with_order(policy)
                .admit_batch(&mut v, &catalog, &items, 5);
            (out.results[0].is_ok(), out.results[1].is_ok(), out)
        };
        // Submission order and lightest-first both admit the 60 du/s
        // request; heaviest-first hands the host to the 80 du/s one.
        assert_eq!(
            (true, false),
            (
                run(OrderPolicy::FirstSubmitted).0,
                run(OrderPolicy::FirstSubmitted).1
            )
        );
        assert_eq!(
            (true, false),
            (
                run(OrderPolicy::SmallestFirst).0,
                run(OrderPolicy::SmallestFirst).1
            )
        );
        let (big0, big1, out) = run(OrderPolicy::LargestFirst);
        assert_eq!((false, true), (big0, big1));
        assert_eq!(out.stats.conflicts, 1);
        assert_eq!(out.stats.replay_rejected, 1);
    }

    #[test]
    fn batch_of_one_matches_plain_compose() {
        let n = 8;
        let (catalog, base, providers) = setup(n);
        let req = ServiceRequest::chain(&[0, 2], 10.0, 0, n - 1);
        let mut direct_view = base.clone();
        let mut composer = MinCostComposer::default();
        let direct = composer
            .compose(
                &req,
                &catalog,
                &providers,
                &mut direct_view,
                &mut SimRng::new(99),
            )
            .unwrap();
        let mut batch_view = base.clone();
        let out =
            mincost_admitter(1).admit_batch(&mut batch_view, &catalog, &[(req, providers)], 123);
        let batched = out.results[0].as_ref().unwrap();
        assert_eq!(&direct, batched, "single-item batch must match direct");
        assert!(direct_view == batch_view);
    }
}
