//! The random-placement baseline (§4.1): one uniformly random feasible
//! host per service, no splitting.

use super::single::{compose_single_placement, PickFn};
use super::{ComposeError, Composer, ProviderMap};
use crate::model::{ExecutionGraph, ServiceCatalog, ServiceRequest};
use crate::view::SystemView;
use desim::SimRng;

/// Places each service on one uniformly random host with enough capacity.
#[derive(Clone, Copy, Debug, Default)]
pub struct RandomComposer;

impl Composer for RandomComposer {
    fn compose(
        &mut self,
        req: &ServiceRequest,
        catalog: &ServiceCatalog,
        providers: &ProviderMap,
        view: &mut SystemView,
        rng: &mut SimRng,
    ) -> Result<ExecutionGraph, ComposeError> {
        let pick: PickFn<'_> = &mut |feasible, _view, rng| *rng.choose(feasible);
        compose_single_placement(req, catalog, providers, view, rng, pick)
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::Composer;
    use crate::model::ServiceCatalog;
    use desim::SimDuration;
    use simnet::Topology;
    use std::collections::HashMap;

    fn setup() -> (ServiceCatalog, SystemView, ProviderMap) {
        let catalog = ServiceCatalog::synthetic(2, 1);
        let view = SystemView::fresh(&Topology::uniform(
            6,
            1_000_000.0,
            SimDuration::from_millis(10),
        ));
        let mut providers = HashMap::new();
        providers.insert(0usize, vec![1, 2, 3]);
        providers.insert(1usize, vec![2, 3, 4]);
        (catalog, view, providers)
    }

    #[test]
    fn places_one_component_per_service() {
        let (catalog, mut view, providers) = setup();
        let req = ServiceRequest::chain(&[0, 1], 10.0, 0, 5);
        let g = RandomComposer
            .compose(&req, &catalog, &providers, &mut view, &mut SimRng::new(3))
            .unwrap();
        assert_eq!(g.component_count(), 2);
        assert!(!g.has_splitting());
        for (stage, hosts) in g.substreams[0].iter().zip([vec![1, 2, 3], vec![2, 3, 4]]) {
            assert_eq!(stage.placements.len(), 1);
            assert!(hosts.contains(&stage.placements[0].node));
            assert!((stage.total_rate() - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn different_seeds_vary_choices() {
        let (catalog, view, providers) = setup();
        let req = ServiceRequest::chain(&[0], 10.0, 0, 5);
        let mut nodes = std::collections::BTreeSet::new();
        for seed in 0..20 {
            let mut v = view.clone();
            let g = RandomComposer
                .compose(&req, &catalog, &providers, &mut v, &mut SimRng::new(seed))
                .unwrap();
            nodes.insert(g.substreams[0][0].placements[0].node);
        }
        assert!(nodes.len() >= 2, "random placement never varied: {nodes:?}");
    }

    #[test]
    fn rejects_rates_no_single_host_can_carry() {
        let (catalog, mut view, providers) = setup();
        let before = view.clone();
        // 1 Mbps host tops out at ~122 du/s.
        let req = ServiceRequest::chain(&[0], 200.0, 0, 5);
        let err = RandomComposer
            .compose(&req, &catalog, &providers, &mut view, &mut SimRng::new(0))
            .unwrap_err();
        assert_eq!(err, ComposeError::InsufficientCapacity { substream: 0 });
        for v in 0..6 {
            assert_eq!(view.avail(v), before.avail(v));
        }
    }
}
