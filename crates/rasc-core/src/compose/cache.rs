//! Retained composition state for incremental recomposition (the
//! adaptation hot path).
//!
//! A successful min-cost composition leaves, per substream, a solved
//! flow network whose internal (host) arcs carry the placement rates.
//! Retaining that network — plus the solver whose final potentials
//! certify the solution — turns adaptation into a *repair* problem:
//! when a host becomes unusable, its internal arcs are disabled,
//! stranding the flow they carried as an excess/deficit imbalance at
//! their endpoints, and only the lost rate is re-routed over the
//! residual network, warm-started from the retained potentials
//! (`FlowSolver::repair_deletions`). The repaired flow is exactly
//! min-cost for its value, so the placements read back off the arcs
//! match what a cold re-solve of the damaged graph would produce, at a
//! fraction of the cost (`BENCH_compose.json`'s `adapt/` family).
//!
//! Repair falls back to cold recomposition (returns `None`) whenever
//! its preconditions break:
//!
//! * the repair reports a shortfall — the damaged graph cannot carry
//!   the substream's rate, so admission must be renegotiated cold;
//! * any retained host's arc cost drifted past [`COST_DRIFT_BOUND`]
//!   since compose time — the cached prices are stale, and re-pricing
//!   the whole graph *is* a cold solve;
//! * the repaired placements overcommit the **current** measured view —
//!   capacity moved underneath the cached arc capacities;
//! * the substream was composed by one of the conservative fallback
//!   paths (role-split or single-placement), whose graphs are not
//!   cached.
//!
//! Any `None` drops the retained entry — a half-repaired cache must
//! never survive — so the subsequent cold path starts from scratch.

use super::gain_prefix;
use super::mincost::{cost_of, overcommits_a_host, RATE_SCALE};
use crate::model::{ExecutionGraph, Placement, ServiceCatalog, ServiceRequest, Stage};
use crate::view::SystemView;
use mincostflow::{EdgeId, FlowNetwork, FlowSolver, RepairOutcome, RepairTier};
use std::collections::HashMap;

/// Repair aborts when any retained host's arc cost moved more than this
/// since compose time. On the milli-drop cost scale, 200 is a 0.2 swing
/// in observed drop ratio — twice the whole utilization-prior span — so
/// ordinary load wobble repairs in place while a genuinely re-priced
/// system re-solves cold. This is the documented optimality bound: a
/// completed repair is exactly min-cost against the compose-time costs,
/// and every per-host cost is within `COST_DRIFT_BOUND` of current.
pub(crate) const COST_DRIFT_BOUND: i64 = 200;

/// One substream's retained solve: the arena the composer built (with
/// the optimal flow installed) and the solver that produced it.
#[derive(Clone, Debug)]
pub(crate) struct CachedSubstream {
    pub(crate) net: FlowNetwork,
    pub(crate) solver: FlowSolver,
    /// Internal (node-split) arcs per layer, parallel to the services.
    pub(crate) layers: Vec<Vec<(EdgeId, simnet::NodeId)>>,
    /// Compose-time arc cost of every candidate layer host, for the
    /// drift check (endpoints are excluded: their arcs price every
    /// path equally, so drift there cannot change the optimum).
    pub(crate) host_costs: Vec<(simnet::NodeId, i64)>,
}

/// Per-application retained compositions, keyed by the engine's app id.
///
/// The composer records the in-progress compose via
/// [`begin_compose`](Self::begin_compose) /
/// [`note_substream`](Self::note_substream) /
/// [`finish_compose`](Self::finish_compose); the engine claims the
/// finished state under its app id with [`retain`](Self::retain) once
/// the application is installed.
#[derive(Clone, Debug, Default)]
pub(crate) struct CompositionCache {
    map: HashMap<usize, Vec<CachedSubstream>>,
    pending: Vec<Option<CachedSubstream>>,
    last: Option<Vec<CachedSubstream>>,
}

impl CompositionCache {
    pub(crate) fn begin_compose(&mut self) {
        self.pending.clear();
        self.last = None;
    }

    /// Records one substream of the in-progress compose (`None` when it
    /// went through an uncacheable fallback path).
    pub(crate) fn note_substream(&mut self, sub: Option<CachedSubstream>) {
        self.pending.push(sub);
    }

    /// Seals the in-progress compose. The state is kept only when every
    /// substream was cacheable — repair must either cover the whole
    /// application or not pretend to.
    pub(crate) fn finish_compose(&mut self) {
        self.last = self.pending.drain(..).collect::<Option<Vec<_>>>();
    }

    /// Claims the most recent sealed compose under `key`.
    pub(crate) fn retain(&mut self, key: usize) {
        if let Some(subs) = self.last.take() {
            self.map.insert(key, subs);
        }
    }

    pub(crate) fn discard(&mut self, key: usize) {
        self.map.remove(&key);
    }

    pub(crate) fn discard_all(&mut self) {
        self.map.clear();
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    /// Attempts to evacuate `dead` from `key`'s retained composition.
    ///
    /// On success the retained networks now hold the repaired flow (so
    /// later adaptation events keep repairing incrementally) and the
    /// rebuilt execution graph is returned; the caller swaps it in
    /// place. On `None` the retained entry is dropped and the caller
    /// must recompose cold. `view` is the current measured snapshot
    /// with the application's own ledger credited back.
    pub(crate) fn repair(
        &mut self,
        key: usize,
        req: &ServiceRequest,
        catalog: &ServiceCatalog,
        graph: &ExecutionGraph,
        dead: simnet::NodeId,
        view: &SystemView,
    ) -> Option<ExecutionGraph> {
        // Take the entry up front: every early return leaves the cache
        // consistent with the cold path that will follow.
        let mut subs = self.map.remove(&key)?;
        if subs.len() != req.graph.substreams.len() {
            return None;
        }
        // Hosts to evacuate: the trigger itself, plus any candidate the
        // current view marks failed (a node can die without affecting
        // this application's placements — its arcs must still never
        // carry repaired flow, and its maximal cost is not "drift").
        let unusable = |h: simnet::NodeId| h == dead || view.drop_ratio(h) >= 0.999;
        // Price-drift bound: the repair is optimal against compose-time
        // costs, which must still be near the truth for surviving
        // candidates.
        for cs in &subs {
            for &(host, then) in &cs.host_costs {
                if !unusable(host) && (cost_of(view, host) - then).abs() > COST_DRIFT_BOUND {
                    return None;
                }
            }
        }
        let mut substreams = Vec::with_capacity(subs.len());
        for (l, cs) in subs.iter_mut().enumerate() {
            // Disable every unusable host's capacity arcs (not just
            // flow-carrying ones) so no later repair routes through
            // them either; re-disabling an evacuated arc drains zero
            // flow and is free.
            let dead_edges: Vec<EdgeId> = cs
                .layers
                .iter()
                .flatten()
                .filter(|&&(_, h)| unusable(h))
                .map(|&(e, _)| e)
                .collect();
            if dead_edges.is_empty() {
                substreams.push(graph.substreams[l].clone());
                continue;
            }
            let out = cs.solver.repair_deletions(&mut cs.net, &dead_edges);
            cs.host_costs.retain(|&(h, _)| !unusable(h));
            if !out.complete() {
                return None;
            }
            if audit_enabled() {
                audit_repair(cs, &out);
            }
            if out.routed == 0 {
                // The dead host carried no flow here; placements stand.
                substreams.push(graph.substreams[l].clone());
                continue;
            }
            substreams.push(read_stages(req, catalog, cs, l)?);
        }
        let candidate = ExecutionGraph { substreams };
        // Capacity may have moved under the cached arc capacities; the
        // repaired commitments must fit what the system has *now*.
        if overcommits_a_host(req, catalog, view, &candidate) {
            return None;
        }
        self.map.insert(key, subs);
        Some(candidate)
    }
}

/// Whether `RASC_AUDIT=1` asks repaired flows to be re-certified.
fn audit_enabled() -> bool {
    std::env::var("RASC_AUDIT")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false)
}

/// Re-certifies a completed repair in place. A warm-basis repair must
/// present dual-feasible potentials for the repaired arena
/// ([`check_certificate`](mincostflow::validate::check_certificate),
/// `O(m)` — the stronger check, since it validates the *retained*
/// certificate later repairs will warm-start from); the fallback tiers
/// keep no certificate, so they get the negative-residual-cycle oracle
/// instead. Panics on violation: a silently suboptimal repaired flow
/// would poison every later incremental repair of this application.
fn audit_repair(cs: &CachedSubstream, out: &RepairOutcome) {
    if out.tier == RepairTier::WarmBasis {
        let pot = cs
            .solver
            .certificate_potentials()
            .expect("a warm-basis repair leaves a valid basis");
        if let Err(v) = mincostflow::validate::check_certificate(&cs.net, pot) {
            panic!("audit: warm-basis repair is not dual-feasible: {v:?}");
        }
    } else if let Err(v) = mincostflow::validate::check_optimality(&cs.net) {
        panic!("audit: repaired flow is not min-cost: {v:?}");
    }
}

/// Reads substream `l`'s stages back off the repaired flow (the same
/// conversion the composer applies after a cold solve).
fn read_stages(
    req: &ServiceRequest,
    catalog: &ServiceCatalog,
    cs: &CachedSubstream,
    l: usize,
) -> Option<Vec<Stage>> {
    let services = &req.graph.substreams[l].services;
    let gains = gain_prefix(catalog, services);
    let mut stages = Vec::with_capacity(services.len());
    for (i, &service) in services.iter().enumerate() {
        let mut placements = Vec::new();
        for &(e, host) in &cs.layers[i] {
            let flow = cs.net.flow_on(e);
            if flow > 0 {
                placements.push(Placement {
                    node: host,
                    rate: flow as f64 / RATE_SCALE * gains[i],
                });
            }
        }
        if placements.is_empty() {
            // A complete repair conserves flow through every layer;
            // reaching this means the cache no longer matches the
            // application and must not be trusted.
            return None;
        }
        stages.push(Stage {
            service,
            placements,
        });
    }
    Some(stages)
}

#[cfg(test)]
mod tests {
    use super::super::{Composer, ProviderMap};
    use super::*;
    use crate::compose::MinCostComposer;
    use desim::{SimDuration, SimRng};
    use simnet::Topology;

    fn providers_for(pairs: &[(usize, &[usize])]) -> ProviderMap {
        pairs
            .iter()
            .map(|&(s, hosts)| (s, hosts.to_vec()))
            .collect()
    }

    /// 5 nodes at 1 Mbps; node 0 = source, node 4 = destination.
    fn flat_view() -> SystemView {
        SystemView::fresh(&Topology::uniform(
            5,
            1_000_000.0,
            SimDuration::from_millis(10),
        ))
    }

    /// The pre-compose view with `dead` marked unusable — what the
    /// engine's measured snapshot shows after crediting the app's own
    /// ledger back.
    fn view_without(base: &SystemView, dead: usize) -> SystemView {
        let mut v = base.clone();
        v.consume_measured(dead, f64::MAX, f64::MAX);
        v.set_drop_ratio(dead, 1.0);
        v
    }

    fn placed_hosts(g: &ExecutionGraph) -> Vec<usize> {
        let mut hosts: Vec<usize> = g
            .substreams
            .iter()
            .flatten()
            .flat_map(|s| s.placements.iter().map(|p| p.node))
            .collect();
        hosts.sort_unstable();
        hosts.dedup();
        hosts
    }

    #[test]
    fn repair_evacuates_failed_host_at_full_rate() {
        let catalog = crate::model::ServiceCatalog::synthetic(1, 1);
        let base = flat_view();
        let mut view = base.clone();
        // Host 1 is cheaper; the solve lands there.
        view.set_drop_ratio(1, 0.0);
        view.set_drop_ratio(2, 0.05);
        let pre = view.clone();
        let req = ServiceRequest::chain(&[0], 40.0, 0, 4);
        let providers = providers_for(&[(0, &[1, 2])]);
        let mut comp = MinCostComposer::default();
        let g = comp
            .compose(&req, &catalog, &providers, &mut view, &mut SimRng::new(0))
            .unwrap();
        assert_eq!(placed_hosts(&g), vec![1]);
        comp.retain_for_repair(7);
        let after = view_without(&pre, 1);
        let repaired = comp
            .repair(7, &req, &catalog, &g, 1, &after)
            .expect("repair must evacuate host 1");
        assert_eq!(placed_hosts(&repaired), vec![2]);
        let total: f64 = repaired.substreams[0][0].total_rate();
        assert!((total - 40.0).abs() < 1e-6, "rate preserved, got {total}");
    }

    #[test]
    fn repeated_repairs_keep_evacuating() {
        let catalog = crate::model::ServiceCatalog::synthetic(1, 2);
        let base = flat_view();
        let mut view = base.clone();
        view.set_drop_ratio(2, 0.02);
        view.set_drop_ratio(3, 0.05);
        let pre = view.clone();
        let req = ServiceRequest::chain(&[0], 30.0, 0, 4);
        let providers = providers_for(&[(0, &[1, 2, 3])]);
        let mut comp = MinCostComposer::default();
        let g = comp
            .compose(&req, &catalog, &providers, &mut view, &mut SimRng::new(0))
            .unwrap();
        assert_eq!(placed_hosts(&g), vec![1]);
        comp.retain_for_repair(0);
        let after1 = view_without(&pre, 1);
        let g2 = comp.repair(0, &req, &catalog, &g, 1, &after1).unwrap();
        assert_eq!(placed_hosts(&g2), vec![2]);
        let after2 = view_without(&after1, 2);
        let g3 = comp.repair(0, &req, &catalog, &g2, 2, &after2).unwrap();
        assert_eq!(placed_hosts(&g3), vec![3]);
        assert!((g3.substreams[0][0].total_rate() - 30.0).abs() < 1e-6);
    }

    #[test]
    fn simplex_composer_repairs_on_the_warm_basis_tier() {
        use mincostflow::Algorithm;
        let catalog = crate::model::ServiceCatalog::synthetic(1, 8);
        let base = flat_view();
        let mut view = base.clone();
        view.set_drop_ratio(1, 0.0);
        view.set_drop_ratio(2, 0.05);
        let pre = view.clone();
        let req = ServiceRequest::chain(&[0], 40.0, 0, 4);
        let providers = providers_for(&[(0, &[1, 2])]);
        let mut comp = MinCostComposer::with_algorithm(Algorithm::NetworkSimplex);
        let g = comp
            .compose(&req, &catalog, &providers, &mut view, &mut SimRng::new(0))
            .unwrap();
        assert_eq!(placed_hosts(&g), vec![1]);
        comp.retain_for_repair(11);
        let after = view_without(&pre, 1);
        let repaired = comp
            .repair(11, &req, &catalog, &g, 1, &after)
            .expect("repair must evacuate host 1");
        assert_eq!(placed_hosts(&repaired), vec![2]);
        assert!((repaired.substreams[0][0].total_rate() - 40.0).abs() < 1e-6);
        // The retained entry must have been repaired on the warm-basis
        // tier: only that tier keeps a live certificate (the fallback
        // tiers invalidate the basis), and the repaired arena must pass
        // the same dual-feasibility audit the chaos soak applies.
        let cs = &comp.cache.map[&11][0];
        let pot = cs
            .solver
            .certificate_potentials()
            .expect("warm-basis repair retains its certificate");
        mincostflow::validate::check_certificate(&cs.net, pot).unwrap();
    }

    #[test]
    fn cost_drift_past_bound_forces_cold_path() {
        let catalog = crate::model::ServiceCatalog::synthetic(1, 3);
        let mut view = flat_view();
        let pre = view.clone();
        let req = ServiceRequest::chain(&[0], 20.0, 0, 4);
        let providers = providers_for(&[(0, &[1, 2])]);
        let mut comp = MinCostComposer::default();
        let g = comp
            .compose(&req, &catalog, &providers, &mut view, &mut SimRng::new(0))
            .unwrap();
        comp.retain_for_repair(3);
        // A surviving candidate's drop ratio exploded since compose.
        let mut after = view_without(&pre, 1);
        after.set_drop_ratio(2, 0.9);
        assert!(comp.repair(3, &req, &catalog, &g, 1, &after).is_none());
        // The entry is gone: a second attempt doesn't even try.
        let calm = view_without(&pre, 1);
        assert!(comp.repair(3, &req, &catalog, &g, 1, &calm).is_none());
    }

    #[test]
    fn stale_capacity_is_validated_against_the_current_view() {
        let catalog = crate::model::ServiceCatalog::synthetic(1, 4);
        let mut view = flat_view();
        view.set_drop_ratio(1, 0.0);
        view.set_drop_ratio(2, 0.01);
        let pre = view.clone();
        let req = ServiceRequest::chain(&[0], 40.0, 0, 4);
        let providers = providers_for(&[(0, &[1, 2])]);
        let mut comp = MinCostComposer::default();
        let g = comp
            .compose(&req, &catalog, &providers, &mut view, &mut SimRng::new(0))
            .unwrap();
        assert_eq!(placed_hosts(&g), vec![1]);
        comp.retain_for_repair(9);
        // Host 2 is the only escape, but its NICs are now nearly fully
        // consumed by measured cross-traffic the cached arcs predate.
        let mut after = view_without(&pre, 1);
        let spare = after.in_rate_capacity(2, req.unit_bits);
        after.consume_measured(2, (spare - 5.0) * req.unit_bits as f64, 0.0);
        assert!(
            comp.repair(9, &req, &catalog, &g, 1, &after).is_none(),
            "overcommitting repair must fall back cold"
        );
    }

    #[test]
    fn retention_is_per_key_and_discardable() {
        let catalog = crate::model::ServiceCatalog::synthetic(1, 5);
        let mut view = flat_view();
        let req = ServiceRequest::chain(&[0], 10.0, 0, 4);
        let providers = providers_for(&[(0, &[1, 2])]);
        let mut comp = MinCostComposer::default();
        let g = comp
            .compose(&req, &catalog, &providers, &mut view, &mut SimRng::new(0))
            .unwrap();
        comp.retain_for_repair(1);
        // Claiming again without a new compose retains nothing.
        comp.retain_for_repair(2);
        assert_eq!(comp.cache.len(), 1);
        comp.discard_retained(1);
        let after = view_without(&view, 1);
        assert!(comp.repair(1, &req, &catalog, &g, 1, &after).is_none());
        // A fresh compose + retain under a new key works again.
        let g = comp
            .compose(&req, &catalog, &providers, &mut view, &mut SimRng::new(0))
            .unwrap();
        comp.retain_for_repair(2);
        comp.discard_all_retained();
        assert!(comp.repair(2, &req, &catalog, &g, 1, &after).is_none());
    }
}
