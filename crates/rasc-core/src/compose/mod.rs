//! Application composition (paper §3.5 and §4.1 baselines).
//!
//! Given a request, a composer chooses which node(s) instantiate each
//! service of each substream and at what rate, subject to the bandwidth
//! availability in the [`SystemView`]. Three algorithms are provided:
//!
//! * [`MinCostComposer`] — **RASC**: per substream, a layered composition
//!   graph over the candidate hosts is solved as a minimum-cost flow
//!   (capacity = `r_max` of the host, cost = its observed drop ratio);
//!   the flow splits a service across hosts whenever that is cheaper or
//!   necessary (Algorithm 1),
//! * [`RandomComposer`] — places each service on one uniformly random
//!   host with sufficient capacity,
//! * [`GreedyComposer`] — places each service on the feasible host with
//!   the smallest drop ratio, reading the statistics once per composition
//!   (so it keeps piling onto the currently-best nodes, the behaviour the
//!   paper critiques in §4.2).
//!
//! All composers apply the same admission rule: if any substream cannot
//! be carried within remaining capacities, the whole request is rejected
//! and the view is left untouched (reservations are rolled back).

mod batch;
mod cache;
mod greedy;
mod mincost;
mod random;
mod shard;
mod single;

pub use batch::{BatchAdmitter, BatchItem, BatchOutcome, OrderPolicy, ReconcileStats};
pub use greedy::GreedyComposer;
pub use mincost::{CandidateSelection, LatencyMatrix, MinCostComposer};
pub use random::RandomComposer;
pub use shard::{ShardOutcome, ShardedAdmitter};

use crate::model::{ExecutionGraph, ServiceCatalog, ServiceId, ServiceRequest};
use crate::view::SystemView;
use desim::SimRng;
use simnet::NodeId;
use std::collections::HashMap;

/// The provider sets discovered for the services a request names.
pub type ProviderMap = HashMap<ServiceId, Vec<NodeId>>;

/// Why a request could not be composed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ComposeError {
    /// A requested service has no (known) provider.
    NoProviders(ServiceId),
    /// A substream's rate cannot be carried within remaining capacities.
    InsufficientCapacity {
        /// Index of the substream that failed.
        substream: usize,
    },
    /// The request names a service outside the catalog.
    UnknownService(ServiceId),
}

impl std::fmt::Display for ComposeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ComposeError::NoProviders(s) => write!(f, "no providers for service {s}"),
            ComposeError::InsufficientCapacity { substream } => {
                write!(f, "insufficient capacity for substream {substream}")
            }
            ComposeError::UnknownService(s) => write!(f, "unknown service {s}"),
        }
    }
}

impl std::error::Error for ComposeError {}

/// A composition algorithm.
///
/// On `Ok`, the returned execution graph's reservations have been applied
/// to `view`; on `Err`, `view` is unchanged.
pub trait Composer {
    /// Composes `req` against the current system view.
    fn compose(
        &mut self,
        req: &ServiceRequest,
        catalog: &ServiceCatalog,
        providers: &ProviderMap,
        view: &mut SystemView,
        rng: &mut SimRng,
    ) -> Result<ExecutionGraph, ComposeError>;

    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Retains the most recent successful [`compose`](Self::compose)'s
    /// internal state under `key` (the engine's application id) for
    /// later incremental repair. Composers without retained state — the
    /// baselines — ignore this, so the engine's adaptation path works
    /// uniformly and merely degrades to cold recomposition.
    fn retain_for_repair(&mut self, _key: usize) {}

    /// Drops any state retained under `key` (the application stopped).
    fn discard_retained(&mut self, _key: usize) {}

    /// Drops all retained state (e.g. capacities were restored, so
    /// every cached composition is priced against a stale world).
    fn discard_all_retained(&mut self) {}

    /// Attempts an in-place repair of `key`'s retained composition
    /// after node `dead` became unusable: evacuates its placements by
    /// re-routing only the lost rate. Returns the repaired execution
    /// graph — same substream rates, no placements on `dead` — or
    /// `None` when the engine must recompose cold. `view` is the
    /// current measured snapshot with the application's own ledger
    /// credited back; no reservations are applied to it (the engine
    /// maintains the ledger through the swap). The default has no
    /// retained state and always answers `None`.
    fn repair(
        &mut self,
        _key: usize,
        _req: &ServiceRequest,
        _catalog: &ServiceCatalog,
        _graph: &ExecutionGraph,
        _dead: NodeId,
        _view: &SystemView,
    ) -> Option<ExecutionGraph> {
        None
    }

    /// Drops any cross-compose warm-start state (e.g. carried solver
    /// potentials) so the next [`compose`](Self::compose) is a pure
    /// function of its inputs. Warm starts never change composition
    /// *cost*, but among equal-cost placements they can tilt which one
    /// the solver lands on — the batch pipeline calls this before every
    /// item so pooled arenas produce identical placements no matter
    /// which items they happened to process earlier. Stateless
    /// composers have nothing to drop.
    fn forget_warm_state(&mut self) {}

    /// Enables or disables retention of compose state for incremental
    /// repair. Batch-worker arenas disable it: retention clones the
    /// solved arena per substream, and a pooled arena's cache could
    /// never be claimed under a stable app id anyway. Composers with no
    /// retained state ignore this.
    fn set_retention(&mut self, _on: bool) {}
}

/// Which composer an engine runs (select-by-config for experiments).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ComposerKind {
    /// RASC's minimum-cost composition.
    #[default]
    MinCost,
    /// Uniform-random placement baseline.
    Random,
    /// Smallest-drop-ratio placement baseline.
    Greedy,
}

impl ComposerKind {
    /// Instantiates the composer.
    pub fn build(self) -> Box<dyn Composer + Send> {
        match self {
            ComposerKind::MinCost => Box::new(MinCostComposer::default()),
            ComposerKind::Random => Box::new(RandomComposer),
            ComposerKind::Greedy => Box::new(GreedyComposer),
        }
    }

    /// Display label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            ComposerKind::MinCost => "mincost",
            ComposerKind::Random => "random",
            ComposerKind::Greedy => "greedy",
        }
    }

    /// All kinds, in the order the paper's figures list them.
    pub const ALL: [ComposerKind; 3] = [
        ComposerKind::MinCost,
        ComposerKind::Random,
        ComposerKind::Greedy,
    ];
}

/// Runs `f` inside a [`SystemView`] reservation transaction: commits
/// its reservations on `Ok`, rolls every one of them back on `Err`.
///
/// This is the single implementation of the composers' all-or-nothing
/// admission rule. It replaces the `let backup = view.clone(); …;
/// *view = backup;` pattern each composer used to carry: the undo log
/// touches only the nodes the attempt actually reserved on, which is
/// O(placements) instead of O(nodes) per rejected request.
pub(crate) fn with_rollback<T>(
    view: &mut SystemView,
    f: impl FnOnce(&mut SystemView) -> Result<T, ComposeError>,
) -> Result<T, ComposeError> {
    view.begin_transaction();
    match f(view) {
        Ok(t) => {
            view.commit_transaction();
            Ok(t)
        }
        Err(e) => {
            view.rollback_transaction();
            Err(e)
        }
    }
}

/// Pre-checks shared by all composers. Returns an error if a named
/// service is unknown or has no provider.
pub(crate) fn precheck(
    req: &ServiceRequest,
    catalog: &ServiceCatalog,
    providers: &ProviderMap,
) -> Result<(), ComposeError> {
    for sub in &req.graph.substreams {
        for &s in &sub.services {
            if s >= catalog.len() {
                return Err(ComposeError::UnknownService(s));
            }
            if providers.get(&s).is_none_or(|p| p.is_empty()) {
                return Err(ComposeError::NoProviders(s));
            }
        }
    }
    Ok(())
}

/// The cumulative rate gain before each stage of a substream: `g[i]` is
/// the factor by which the source rate has been scaled when entering
/// stage `i`; `g[len]` is the delivery-side gain. With unit rate ratios
/// (the paper's evaluated case) every entry is 1.
pub(crate) fn gain_prefix(catalog: &ServiceCatalog, services: &[ServiceId]) -> Vec<f64> {
    let mut g = Vec::with_capacity(services.len() + 1);
    let mut acc = 1.0;
    g.push(acc);
    for &s in services {
        acc *= catalog.get(s).rate_ratio;
        g.push(acc);
    }
    g
}

/// Applies an execution graph's bandwidth reservations to the view
/// (components, source uplink, destination downlink). Public so the
/// determinism suites can replay "base snapshot + admitted graphs" and
/// assert it reproduces a batch's committed ledger bit-for-bit.
pub fn apply_reservations(
    req: &ServiceRequest,
    catalog: &ServiceCatalog,
    graph: &ExecutionGraph,
    view: &mut SystemView,
) {
    for (l, stages) in graph.substreams.iter().enumerate() {
        let services = &req.graph.substreams[l].services;
        let gains = gain_prefix(catalog, services);
        let source_rate = req.rates[l] / gains[services.len()];
        view.reserve_source(req.source, req.unit_bits, source_rate);
        view.reserve_destination(req.destination, req.unit_bits, req.rates[l]);
        for stage in stages {
            let svc = catalog.get(stage.service);
            for p in &stage.placements {
                view.reserve_component(p.node, req.unit_bits, svc.rate_ratio, p.rate);
                view.reserve_cpu(p.node, svc.exec_time.as_secs_f64(), p.rate);
            }
        }
    }
}

/// Enumerates one application's committed-rate ledger contributions:
/// calls `f(node, d_in_bits, d_out_bits, d_cpu_cores)` once per entry.
/// The engine's `install_app` adds these, `handle_app_stop` subtracts
/// them, the auditor recomputes the ledger from the live applications,
/// and the min-cost composer checks a candidate substream against the
/// remaining availability — one formula, so the books cannot drift.
///
/// A component's NIC demand excludes the share of traffic that stays on
/// the same node between consecutive stages (same-node transfers are
/// in-memory; see the engine's `send_unit`). Under WRR dispatch, the
/// fraction of stage-i traffic on node X that came from X's own
/// stage-(i−1) component is X's rate share in stage i−1, and
/// symmetrically for the outgoing side.
pub(crate) fn for_each_commitment(
    catalog: &ServiceCatalog,
    req: &ServiceRequest,
    graph: &ExecutionGraph,
    f: &mut dyn FnMut(NodeId, f64, f64, f64),
) {
    let unit_bits = req.unit_bits as f64;
    let share_of = |stage: &crate::model::Stage, node: NodeId| -> f64 {
        let total = stage.total_rate();
        if total <= 0.0 {
            return 0.0;
        }
        stage
            .placements
            .iter()
            .find(|p| p.node == node)
            .map_or(0.0, |p| p.rate / total)
    };
    for (l, stages) in graph.substreams.iter().enumerate() {
        let services = &req.graph.substreams[l].services;
        let g = gain_prefix(catalog, services);
        let src_rate = req.rates[l] / g[services.len()];
        f(req.source, 0.0, src_rate * unit_bits, 0.0);
        f(req.destination, req.rates[l] * unit_bits, 0.0, 0.0);
        for (i, stage) in stages.iter().enumerate() {
            let svc = catalog.get(stage.service);
            let ratio = svc.rate_ratio;
            let exec_secs = svc.exec_time.as_secs_f64();
            for p in &stage.placements {
                let from_self = match i {
                    0 => 0.0, // stage 0 receives from the source node
                    _ => share_of(&stages[i - 1], p.node),
                };
                let to_self = match stages.get(i + 1) {
                    Some(next) => share_of(next, p.node),
                    None => 0.0, // last stage sends to the destination
                };
                f(
                    p.node,
                    p.rate * unit_bits * (1.0 - from_self),
                    p.rate * ratio * unit_bits * (1.0 - to_self),
                    p.rate * exec_secs,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Service;
    use desim::SimDuration;

    fn catalog_with_ratios(ratios: &[f64]) -> ServiceCatalog {
        ServiceCatalog::new(
            ratios
                .iter()
                .enumerate()
                .map(|(id, &r)| Service {
                    id,
                    name: format!("s{id}"),
                    exec_time: SimDuration::from_millis(2),
                    rate_ratio: r,
                })
                .collect(),
        )
    }

    #[test]
    fn gain_prefix_multiplies() {
        let c = catalog_with_ratios(&[2.0, 0.5, 3.0]);
        let g = gain_prefix(&c, &[0, 1, 2]);
        assert_eq!(g, vec![1.0, 2.0, 1.0, 3.0]);
    }

    #[test]
    fn precheck_flags_missing_providers() {
        let c = catalog_with_ratios(&[1.0, 1.0]);
        let req = ServiceRequest::chain(&[0, 1], 5.0, 0, 1);
        let mut providers = ProviderMap::new();
        providers.insert(0, vec![2]);
        assert_eq!(
            precheck(&req, &c, &providers),
            Err(ComposeError::NoProviders(1))
        );
        providers.insert(1, vec![]);
        assert_eq!(
            precheck(&req, &c, &providers),
            Err(ComposeError::NoProviders(1))
        );
        providers.insert(1, vec![3]);
        assert_eq!(precheck(&req, &c, &providers), Ok(()));
    }

    #[test]
    fn precheck_flags_unknown_service() {
        let c = catalog_with_ratios(&[1.0]);
        let req = ServiceRequest::chain(&[9], 5.0, 0, 1);
        assert_eq!(
            precheck(&req, &c, &ProviderMap::new()),
            Err(ComposeError::UnknownService(9))
        );
    }

    #[test]
    fn kind_builds_matching_names() {
        for kind in ComposerKind::ALL {
            let c = kind.build();
            assert_eq!(c.name(), kind.label());
        }
    }
}
