//! Shared machinery for the single-placement baselines (random, greedy):
//! one component per service, full substream rate, explicit endpoint
//! capacity checks, all-or-nothing reservation.

use super::{gain_prefix, precheck, with_rollback, ComposeError, ProviderMap};
use crate::model::{ExecutionGraph, Placement, ServiceCatalog, ServiceRequest, Stage};
use crate::view::SystemView;
use desim::SimRng;
use simnet::NodeId;

/// Chooses one host from a non-empty feasible set.
pub type PickFn<'a> = &'a mut dyn FnMut(&[NodeId], &SystemView, &mut SimRng) -> NodeId;

/// Composes `req` placing exactly one component per service invocation.
/// Reserves capacity as it goes inside a view transaction; every
/// reservation is rolled back on failure (see [`with_rollback`]).
pub fn compose_single_placement(
    req: &ServiceRequest,
    catalog: &ServiceCatalog,
    providers: &ProviderMap,
    view: &mut SystemView,
    rng: &mut SimRng,
    pick: PickFn<'_>,
) -> Result<ExecutionGraph, ComposeError> {
    precheck(req, catalog, providers)?;
    with_rollback(view, |view| {
        let mut substreams = Vec::with_capacity(req.graph.substreams.len());
        for (l, sub) in req.graph.substreams.iter().enumerate() {
            let gains = gain_prefix(catalog, &sub.services);
            let delivery_gain = gains[sub.services.len()];
            let source_rate = req.rates[l] / delivery_gain;
            // Endpoint capacity checks (the flow formulation does these
            // via edge capacities; here they are explicit).
            if view.out_rate_capacity(req.source, req.unit_bits) < source_rate
                || view.in_rate_capacity(req.destination, req.unit_bits) < req.rates[l]
            {
                return Err(ComposeError::InsufficientCapacity { substream: l });
            }
            view.reserve_source(req.source, req.unit_bits, source_rate);
            view.reserve_destination(req.destination, req.unit_bits, req.rates[l]);

            let mut stages = Vec::with_capacity(sub.services.len());
            for (i, &service) in sub.services.iter().enumerate() {
                let svc = catalog.get(service);
                let ratio = svc.rate_ratio;
                let exec_secs = svc.exec_time.as_secs_f64();
                let ingest = source_rate * gains[i];
                let feasible: Vec<NodeId> = providers[&service]
                    .iter()
                    .copied()
                    .filter(|&n| {
                        view.max_rate_with_cpu(n, req.unit_bits, ratio, exec_secs) >= ingest
                    })
                    .collect();
                if feasible.is_empty() {
                    return Err(ComposeError::InsufficientCapacity { substream: l });
                }
                let node = pick(&feasible, view, rng);
                debug_assert!(feasible.contains(&node), "pick outside feasible set");
                view.reserve_component(node, req.unit_bits, ratio, ingest);
                view.reserve_cpu(node, exec_secs, ingest);
                stages.push(Stage {
                    service,
                    placements: vec![Placement { node, rate: ingest }],
                });
            }
            substreams.push(stages);
        }
        Ok(ExecutionGraph { substreams })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::Composer;
    use crate::compose::{GreedyComposer, RandomComposer};
    use crate::model::ServiceCatalog;
    use desim::SimDuration;
    use simnet::Topology;
    use std::collections::HashMap;

    /// Both baselines must reject exactly when the endpoints are the
    /// bottleneck, leaving the view untouched.
    #[test]
    fn endpoint_bottleneck_rejects_and_rolls_back() {
        let catalog = ServiceCatalog::synthetic(1, 1);
        let mut view = SystemView::fresh(&Topology::uniform(
            3,
            1_000_000.0,
            SimDuration::from_millis(5),
        ));
        // Exhaust the source's uplink.
        view.reserve_source(0, 8192, 120.0);
        let mut providers = HashMap::new();
        providers.insert(0usize, vec![1]);
        let req = ServiceRequest::chain(&[0], 10.0, 0, 2);
        let before = view.clone();
        for result in [
            RandomComposer.compose(&req, &catalog, &providers, &mut view, &mut SimRng::new(0)),
            GreedyComposer.compose(&req, &catalog, &providers, &mut view, &mut SimRng::new(0)),
        ] {
            assert!(matches!(
                result,
                Err(ComposeError::InsufficientCapacity { substream: 0 })
            ));
        }
        for v in 0..3 {
            assert_eq!(view.avail(v), before.avail(v));
        }
    }

    /// Reservations accumulate within a multi-substream request, so a
    /// shared middle host can run out halfway and the *whole* request
    /// must roll back.
    #[test]
    fn partial_success_rolls_back_whole_request() {
        let catalog = ServiceCatalog::synthetic(2, 2);
        let mut view = SystemView::fresh(&Topology::uniform(
            4,
            1_000_000.0,
            SimDuration::from_millis(5),
        ));
        let mut providers = HashMap::new();
        providers.insert(0usize, vec![1]);
        providers.insert(1usize, vec![1]);
        // Node 1 fits 122 du/s; two substreams of 70 each exceed it.
        let req = ServiceRequest::multi(vec![vec![0], vec![1]], vec![70.0, 70.0], 0, 3);
        let before = view.clone();
        let err = GreedyComposer
            .compose(&req, &catalog, &providers, &mut view, &mut SimRng::new(0))
            .unwrap_err();
        assert_eq!(err, ComposeError::InsufficientCapacity { substream: 1 });
        for v in 0..4 {
            assert_eq!(view.avail(v), before.avail(v));
        }
    }
}
