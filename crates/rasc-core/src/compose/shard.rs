//! Region-sharded admission: parallel shard-local composition over
//! partial views, serial validate-and-commit against the authoritative
//! ledger.
//!
//! The global [`BatchAdmitter`](super::BatchAdmitter) parallelizes
//! composition, but every worker still re-syncs a full `O(n)` copy of the
//! base snapshot per batch and composes with global information — the
//! single-consistent-view assumption that caps scaling. The sharded
//! pipeline drops that assumption the way decentralized resource-mapping
//! systems do (Asaduzzaman & Maheswaran's bi-modal scheme: authoritative
//! local state plus gossiped summaries of everyone else):
//!
//! * The overlay is partitioned into **regions** by an
//!   [`overlay::RegionMap`] — site-clustered for the `power_law` /
//!   `datacenter_wan` generators, key-space otherwise. Each region's
//!   shard holds a persistent partial [`SystemView`] in which *only its
//!   own members are authoritative*: they are re-synced from the base
//!   snapshot every batch ([`SystemView::sync_nodes_from`], `O(n/s)` per
//!   shard instead of `O(n)`).
//! * Every other node appears through a [`ResidualDigest`] — a
//!   monitoring-plane summary of residual capacity refreshed
//!   periodically (every `refresh_every` batches here; fed by simulation
//!   events in the engine). Remote entries are therefore **declared
//!   stale**: between refreshes a shard composes cross-region placements
//!   against capacity numbers up to one refresh interval old. Views are
//!   patched from the digest only when its version actually changed, so
//!   the remote-patch cost amortizes to `O(n / refresh_every)` per shard
//!   per batch.
//! * Requests route to the shard owning their *source* region; shards
//!   compose their items concurrently on `desim::pool`, each item
//!   against the shard's partial view inside a rolled-back transaction
//!   (order-free, exactly like the global optimistic phase).
//! * Commit is the **shared** serial reconcile
//!   ([`reconcile_proposals`]): proposals are validated in commit order
//!   against the authoritative view with the committed-rate ledger
//!   formula (`overcommits_a_host`) and conflicting items are replayed.
//!   Staleness can only produce *proposals* that no longer fit — never a
//!   commit that overcommits — so every ledger invariant the auditor
//!   checks holds exactly, and the conflict/replay rate is the (measured)
//!   price of staleness.
//!
//! With one shard there are no remote nodes and no staleness: the shard's
//! partial view re-syncs fully from the base, per-item RNG streams and
//! the reconcile code are shared with the global pipeline, and the
//! outcome is digest-identical to [`BatchAdmitter`](super::BatchAdmitter)
//! by construction (`tests/shard_equivalence.rs` asserts it).

use super::batch::{mix, reconcile_proposals, BatchItem, BatchOutcome, OrderPolicy};
use super::{Composer, ComposerKind};
use crate::compose::ComposeError;
use crate::model::{ExecutionGraph, ServiceCatalog};
use crate::view::SystemView;
use desim::SimRng;
use monitor::ResidualDigest;
use overlay::RegionMap;
use simnet::NodeId;
use std::sync::Mutex;

/// A shard's persistent composition state: the partial view (own region
/// authoritative, rest digest-patched) and the digest version the remote
/// entries currently reflect.
struct ShardSlot {
    view: SystemView,
    patched_version: u64,
}

/// Outcome of one sharded batch: the per-item results (digest-comparable
/// with the global pipeline's) plus shard-level accounting.
#[derive(Debug)]
pub struct ShardOutcome {
    /// Per-item results, replay set, and reconcile stats — same shape
    /// and digest as the global [`BatchAdmitter`](super::BatchAdmitter).
    pub outcome: BatchOutcome,
    /// Admitted requests with at least one placement outside the
    /// submitting source's home region — the proposals that rode on
    /// digest (possibly stale) information.
    pub cross_shard: usize,
    /// Digest version the batch composed against (0 = never refreshed:
    /// remote entries still carry their creation-time snapshot).
    pub digest_version: u64,
}

/// The region-sharded admission pipeline. See the module docs for the
/// protocol; construction fixes the region map, worker count, and
/// digest refresh period, all of which are part of the deterministic
/// input (outcomes are a pure function of base view, items, seed, and
/// this configuration — never of worker scheduling).
pub struct ShardedAdmitter {
    regions: RegionMap,
    /// Per shard: every node *not* in the shard, ascending — the digest
    /// patch set.
    remotes: Vec<Vec<NodeId>>,
    threads: usize,
    /// Refresh the digest from the batch's base view every this many
    /// batches; 0 disables the automatic refresh (an external driver —
    /// the engine's monitoring events — calls
    /// [`refresh_digest`](Self::refresh_digest) instead).
    refresh_every: u64,
    order: OrderPolicy,
    factory: Box<dyn Fn() -> Box<dyn Composer + Send> + Send + Sync>,
    arenas: Mutex<Vec<Box<dyn Composer + Send>>>,
    slots: Mutex<Vec<Option<ShardSlot>>>,
    digest: ResidualDigest,
    batches: u64,
}

impl std::fmt::Debug for ShardedAdmitter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedAdmitter")
            .field("shards", &self.regions.regions())
            .field("threads", &self.threads)
            .field("refresh_every", &self.refresh_every)
            .finish_non_exhaustive()
    }
}

impl ShardedAdmitter {
    /// An admitter over `regions` shards whose arenas are built by
    /// `factory`, composing shards concurrently on up to `threads`
    /// workers. `refresh_every` is the digest staleness knob: refresh
    /// the remote-capacity digest every that many batches (0 = external
    /// refresh only).
    pub fn new(
        regions: RegionMap,
        threads: usize,
        refresh_every: u64,
        factory: impl Fn() -> Box<dyn Composer + Send> + Send + Sync + 'static,
    ) -> Self {
        assert!(threads > 0, "thread count must be positive");
        assert!(!regions.is_empty(), "region map covers no nodes");
        let n = regions.len();
        let remotes = (0..regions.regions())
            .map(|r| {
                (0..n)
                    .filter(|&v| regions.region_of(v) != r as u32)
                    .collect()
            })
            .collect();
        let shards = regions.regions();
        ShardedAdmitter {
            regions,
            remotes,
            threads,
            refresh_every,
            order: OrderPolicy::default(),
            factory: Box::new(factory),
            arenas: Mutex::new(Vec::new()),
            slots: Mutex::new((0..shards).map(|_| None).collect()),
            digest: ResidualDigest::new(n),
            batches: 0,
        }
    }

    /// A default-configuration admitter over `kind` composers.
    pub fn for_kind(
        regions: RegionMap,
        threads: usize,
        refresh_every: u64,
        kind: ComposerKind,
    ) -> Self {
        Self::new(regions, threads, refresh_every, move || kind.build())
    }

    /// Replaces the commit-ordering policy (default: first submitted).
    pub fn with_order(mut self, order: OrderPolicy) -> Self {
        self.order = order;
        self
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.regions.regions()
    }

    /// The digest's current version and age-relevant capture time; the
    /// auditor bounds staleness with these.
    pub fn digest(&self) -> &ResidualDigest {
        &self.digest
    }

    /// Captures `view`'s residual capacities into the digest at time
    /// `at` (the caller's clock: simulation seconds in the engine, the
    /// batch counter in self-refreshing mode). Until the next call,
    /// every shard composes cross-region placements against this
    /// snapshot.
    pub fn refresh_digest(&mut self, view: &SystemView, at: f64) {
        self.digest.refresh(at, |v| {
            let a = view.avail(v);
            (a.get(0), a.get(1), view.cpu_avail(v), view.drop_ratio(v))
        });
    }

    fn take_arena(&self) -> Box<dyn Composer + Send> {
        self.arenas.lock().unwrap().pop().unwrap_or_else(|| {
            let mut c = (self.factory)();
            // Same rule as the global pipeline: arenas are shared across
            // items and batches, so per-app retained-repair state would
            // be misaddressed.
            c.set_retention(false);
            c
        })
    }

    fn put_arena(&self, arena: Box<dyn Composer + Send>) {
        self.arenas.lock().unwrap().push(arena);
    }

    /// Admits `items` against `view` (the authoritative base snapshot):
    /// routes each item to the shard owning its source, composes the
    /// shards' work concurrently against their partial views, then
    /// validates-and-commits every proposal against `view` in commit
    /// order via the shared reconcile pass. On return, `view` carries
    /// exactly the admitted results' reservations.
    pub fn admit_batch(
        &mut self,
        view: &mut SystemView,
        catalog: &ServiceCatalog,
        items: &[BatchItem],
        seed: u64,
    ) -> ShardOutcome {
        assert!(!view.in_transaction(), "batch over a half-open snapshot");
        assert_eq!(view.len(), self.regions.len(), "view/region size mismatch");
        if self.refresh_every > 0 && self.batches.is_multiple_of(self.refresh_every) {
            self.refresh_digest(view, self.batches as f64);
        }
        self.batches += 1;

        // Route items to the shard owning their source's region.
        let mut jobs: Vec<(usize, Vec<usize>)> = Vec::new();
        {
            let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); self.regions.regions()];
            for (i, (req, _)) in items.iter().enumerate() {
                per_shard[self.regions.region_of(req.source) as usize].push(i);
            }
            for (s, idxs) in per_shard.into_iter().enumerate() {
                if !idxs.is_empty() {
                    jobs.push((s, idxs));
                }
            }
        }

        // Shard-parallel optimistic phase. Each shard composes its items
        // serially against its partial view (local slice re-synced from
        // the base, remote entries patched from the digest only when its
        // version changed), every item inside a rolled-back transaction
        // so the phase stays order-free.
        let this = &*self;
        let base: &SystemView = view;
        let shard_results: Vec<Vec<(usize, Result<ExecutionGraph, ComposeError>)>> =
            desim::pool::parallel_map_threads(self.threads, &jobs, |_, (s, idxs)| {
                let mut arena = this.take_arena();
                let mut slot = match this.slots.lock().unwrap()[*s].take() {
                    Some(slot) => slot,
                    None => ShardSlot {
                        // First use: full clone, so remote entries start
                        // from the creation-time base even before the
                        // first digest refresh reaches this shard.
                        view: base.clone(),
                        patched_version: this.digest.version(),
                    },
                };
                if slot.patched_version != this.digest.version() {
                    slot.view
                        .apply_residual_digest(&this.digest, &this.remotes[*s]);
                    slot.patched_version = this.digest.version();
                }
                slot.view.sync_nodes_from(base, this.regions.members(*s));
                let mut out = Vec::with_capacity(idxs.len());
                for &i in idxs {
                    let (req, providers) = &items[i];
                    arena.forget_warm_state();
                    let mut rng = SimRng::new(mix(seed ^ i as u64));
                    slot.view.begin_transaction();
                    let result = arena.compose(req, catalog, providers, &mut slot.view, &mut rng);
                    slot.view.rollback_transaction();
                    out.push((i, result));
                }
                this.slots.lock().unwrap()[*s] = Some(slot);
                this.put_arena(arena);
                out
            });

        // Scatter shard proposals back to global item order.
        let mut scattered: Vec<Option<Result<ExecutionGraph, ComposeError>>> =
            (0..items.len()).map(|_| None).collect();
        for (i, r) in shard_results.into_iter().flatten() {
            scattered[i] = Some(r);
        }
        let proposals = scattered
            .into_iter()
            .map(|p| p.expect("every item routed to exactly one shard"))
            .collect();

        // Shared serial validate-and-commit against the authoritative
        // view — identical code, order, and replay RNG streams as the
        // global pipeline.
        let order = self.order.commit_order(items);
        let mut arena = self.take_arena();
        let outcome = reconcile_proposals(
            view,
            catalog,
            items,
            proposals,
            &order,
            seed,
            arena.as_mut(),
        );
        self.put_arena(arena);

        let cross_shard = items
            .iter()
            .zip(&outcome.results)
            .filter(|((req, _), r)| {
                let home = self.regions.region_of(req.source);
                r.as_ref().is_ok_and(|g| {
                    g.substreams.iter().flatten().any(|stage| {
                        stage
                            .placements
                            .iter()
                            .any(|p| self.regions.region_of(p.node) != home)
                    })
                })
            })
            .count();
        ShardOutcome {
            outcome,
            cross_shard,
            digest_version: self.digest.version(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::{BatchAdmitter, MinCostComposer, ProviderMap};
    use crate::model::{ServiceCatalog, ServiceRequest};
    use desim::SimDuration;
    use simnet::Topology;

    fn setup(n: usize) -> (ServiceCatalog, SystemView, ProviderMap) {
        let catalog = ServiceCatalog::synthetic(4, 1);
        let view = SystemView::fresh(&Topology::uniform(
            n,
            1_000_000.0,
            SimDuration::from_millis(10),
        ));
        let mut providers = ProviderMap::new();
        for s in 0..4 {
            providers.insert(s, (0..n).collect());
        }
        (catalog, view, providers)
    }

    fn items(k: usize, rate: f64, n: usize) -> Vec<BatchItem> {
        let (_, _, providers) = setup(n);
        (0..k)
            .map(|i| {
                (
                    ServiceRequest::chain(&[0, 2], rate, i % n, (i + 1) % n),
                    providers.clone(),
                )
            })
            .collect()
    }

    #[test]
    fn one_shard_is_digest_identical_to_the_global_pipeline() {
        let n = 12;
        let (catalog, base, _) = setup(n);
        let batch = items(10, 6.0, n);
        let mut global_view = base.clone();
        let global = BatchAdmitter::new(3, || Box::new(MinCostComposer::default())).admit_batch(
            &mut global_view,
            &catalog,
            &batch,
            77,
        );
        let mut sharded_view = base.clone();
        let mut admitter = ShardedAdmitter::new(RegionMap::single(n), 3, 4, || {
            Box::new(MinCostComposer::default())
        });
        let sharded = admitter.admit_batch(&mut sharded_view, &catalog, &batch, 77);
        assert_eq!(global.digest(), sharded.outcome.digest());
        assert!(global_view == sharded_view, "ledgers diverged");
        assert_eq!(sharded.cross_shard, 0, "one shard has no remote nodes");
    }

    #[test]
    fn multi_shard_commits_exactly_the_admitted_reservations() {
        let n = 16;
        let (catalog, base, _) = setup(n);
        let batch = items(12, 10.0, n);
        let mut v = base.clone();
        let mut admitter =
            ShardedAdmitter::for_kind(RegionMap::key_space(n, 4), 2, 2, ComposerKind::MinCost);
        let out = admitter.admit_batch(&mut v, &catalog, &batch, 3);
        assert!(out.outcome.admitted() > 0);
        let mut replay = base.clone();
        for (item, r) in batch.iter().zip(&out.outcome.results) {
            if let Ok(g) = r {
                crate::compose::apply_reservations(&item.0, &catalog, g, &mut replay);
            }
        }
        assert!(replay == v, "view must equal base + admitted reservations");
        v.check_index_coherence();
        // And the run is deterministic at a different worker count.
        let mut v2 = base.clone();
        let mut admitter2 =
            ShardedAdmitter::for_kind(RegionMap::key_space(n, 4), 5, 2, ComposerKind::MinCost);
        let out2 = admitter2.admit_batch(&mut v2, &catalog, &batch, 3);
        assert_eq!(out.outcome.digest(), out2.outcome.digest());
        assert_eq!(out.cross_shard, out2.cross_shard);
        assert!(v == v2);
    }

    #[test]
    fn stale_digest_conflicts_are_resolved_at_commit() {
        // Two shards, all capacity on one contended host outside shard
        // 1's region; with a long refresh interval, shard 1 keeps
        // composing against the stale creation-time capacity, and the
        // commit pass must convert the staleness into conflicts/replays,
        // never an overcommitted ledger.
        let catalog = ServiceCatalog::synthetic(1, 3);
        let base = SystemView::fresh(&Topology::uniform(
            4,
            1_000_000.0,
            SimDuration::from_millis(5),
        ));
        // Regions by site: node 1 alone in region 0 (the host), the
        // rest in region 1.
        let sites = vec![1, 0, 1, 1];
        let regions = RegionMap::from_sites(&sites, 2);
        let mut providers = ProviderMap::new();
        providers.insert(0, vec![1]);
        // ~122 du/s available on host 1; three 50 du/s requests from
        // shard-1 sources can't all fit.
        let batch: Vec<BatchItem> = (0..3)
            .map(|i| {
                (
                    ServiceRequest::chain(&[0], 50.0, [0, 2, 3][i], 3),
                    providers.clone(),
                )
            })
            .collect();
        let mut v = base.clone();
        let mut admitter = ShardedAdmitter::for_kind(regions, 2, 1_000_000, ComposerKind::MinCost);
        let out = admitter.admit_batch(&mut v, &catalog, &batch, 9);
        assert!(out.outcome.stats.conflicts > 0, "expected stale conflicts");
        assert_eq!(out.outcome.admitted(), 2);
        assert!(out.cross_shard > 0, "placements crossed regions");
        // Ledger exactness despite staleness.
        let mut replay = base.clone();
        for (item, r) in batch.iter().zip(&out.outcome.results) {
            if let Ok(g) = r {
                crate::compose::apply_reservations(&item.0, &catalog, g, &mut replay);
            }
        }
        assert!(replay == v);
    }
}
