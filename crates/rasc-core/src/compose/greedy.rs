//! The greedy baseline (§4.1): each service goes to the feasible host
//! with the smallest drop ratio.
//!
//! The statistics are read once per composition (the view is a snapshot),
//! so — exactly as the paper critiques in §4.2 — greedy "keeps creating
//! components on nodes with low miss ratio, until their maximum capacity
//! is reached": within a request, every service piles onto the same
//! lowest-drop host as long as capacity remains.

use super::single::{compose_single_placement, PickFn};
use super::{ComposeError, Composer, ProviderMap};
use crate::model::{ExecutionGraph, ServiceCatalog, ServiceRequest};
use crate::view::SystemView;
use desim::SimRng;

/// Places each service on the feasible host with the lowest drop ratio
/// (ties broken by lowest node id, deterministically).
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedyComposer;

impl Composer for GreedyComposer {
    fn compose(
        &mut self,
        req: &ServiceRequest,
        catalog: &ServiceCatalog,
        providers: &ProviderMap,
        view: &mut SystemView,
        rng: &mut SimRng,
    ) -> Result<ExecutionGraph, ComposeError> {
        let pick: PickFn<'_> = &mut |feasible, view, _rng| {
            *feasible
                .iter()
                .min_by(|&&a, &&b| {
                    view.drop_ratio(a)
                        .partial_cmp(&view.drop_ratio(b))
                        .expect("drop ratios are finite")
                        .then(a.cmp(&b))
                })
                .expect("feasible set checked non-empty")
        };
        compose_single_placement(req, catalog, providers, view, rng, pick)
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::Composer;
    use crate::model::ServiceCatalog;
    use desim::SimDuration;
    use simnet::Topology;
    use std::collections::HashMap;

    fn setup() -> (ServiceCatalog, SystemView, ProviderMap) {
        let catalog = ServiceCatalog::synthetic(2, 1);
        let view = SystemView::fresh(&Topology::uniform(
            6,
            1_000_000.0,
            SimDuration::from_millis(10),
        ));
        let mut providers = HashMap::new();
        providers.insert(0usize, vec![1, 2, 3]);
        providers.insert(1usize, vec![1, 2, 3]);
        (catalog, view, providers)
    }

    #[test]
    fn picks_lowest_drop_ratio() {
        let (catalog, mut view, providers) = setup();
        view.set_drop_ratio(1, 0.3);
        view.set_drop_ratio(2, 0.05);
        view.set_drop_ratio(3, 0.2);
        let req = ServiceRequest::chain(&[0], 10.0, 0, 5);
        let g = GreedyComposer
            .compose(&req, &catalog, &providers, &mut view, &mut SimRng::new(0))
            .unwrap();
        assert_eq!(g.substreams[0][0].placements[0].node, 2);
    }

    #[test]
    fn piles_every_service_onto_the_best_node() {
        let (catalog, mut view, providers) = setup();
        view.set_drop_ratio(1, 0.3);
        view.set_drop_ratio(2, 0.05);
        view.set_drop_ratio(3, 0.2);
        // Both services fit on node 2 (10+10 du/s ≪ 122): greedy stacks.
        let req = ServiceRequest::chain(&[0, 1], 10.0, 0, 5);
        let g = GreedyComposer
            .compose(&req, &catalog, &providers, &mut view, &mut SimRng::new(0))
            .unwrap();
        assert_eq!(g.substreams[0][0].placements[0].node, 2);
        assert_eq!(g.substreams[0][1].placements[0].node, 2);
    }

    #[test]
    fn spills_to_next_best_when_best_is_full() {
        let (catalog, mut view, providers) = setup();
        view.set_drop_ratio(1, 0.3);
        view.set_drop_ratio(2, 0.05);
        view.set_drop_ratio(3, 0.2);
        // Fill node 2 down to ~17 du/s of headroom: room for one 10 du/s
        // component but not two.
        view.reserve_component(2, 8192, 1.0, 105.0);
        let req = ServiceRequest::chain(&[0, 1], 10.0, 0, 5);
        let g = GreedyComposer
            .compose(&req, &catalog, &providers, &mut view, &mut SimRng::new(0))
            .unwrap();
        // Node 2 can still fit one 10 du/s component but not two.
        let nodes: Vec<_> = g.substreams[0]
            .iter()
            .map(|s| s.placements[0].node)
            .collect();
        assert_eq!(nodes, vec![2, 3]);
    }

    #[test]
    fn tie_breaks_deterministically() {
        let (catalog, view, providers) = setup();
        let req = ServiceRequest::chain(&[0], 10.0, 0, 5);
        // All drop ratios zero: lowest node id (1) wins, repeatably.
        for seed in 0..5 {
            let mut v = view.clone();
            let g = GreedyComposer
                .compose(&req, &catalog, &providers, &mut v, &mut SimRng::new(seed))
                .unwrap();
            assert_eq!(g.substreams[0][0].placements[0].node, 1);
        }
    }
}
