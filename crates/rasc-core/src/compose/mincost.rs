//! RASC's minimum-cost composition (paper §3.5, Algorithm 1).
//!
//! Per substream, a layered composition graph is built over the candidate
//! hosts of each service in the chain and solved as a minimum-cost flow:
//!
//! ```text
//!  SRC ──cap: source uplink──> ┌layer 0┐      ┌layer 1┐       ──> DST
//!        cost: drops(source)   │ n_a ■ │ ───> │ n_c ■ │  ...
//!                              │ n_b ■ │      │ n_d ■ │
//!                              └───────┘      └───────┘
//! ```
//!
//! Each candidate host is *node-split*: an internal arc carries capacity
//! `r_max(c_i, n) = min(b_in, b_out)/u` (the most scarce NIC resource,
//! §3.5) and cost equal to the host's observed drop ratio — so flow
//! through a host is bounded by what it can ingest/forward and priced by
//! how congested it recently was. Inter-layer arcs are free and
//! uncapacitated (the paper's rule: an edge's capacity is the maximum
//! incoming rate of the node at its end, which the node-split expresses
//! exactly once per host rather than once per edge).
//!
//! Rate ratios ≠ 1 are handled exactly for chain substreams: every path
//! through layer `i` has seen the same cumulative gain `g_i = Π_{j<i} R_j`
//! (paths differ in hosts, never in services), so capacities are expressed
//! in *source-rate units* by dividing by `g_i`, reducing the generalized
//! problem to a plain min-cost flow.
//!
//! After each substream is solved its placements are reserved in the
//! view, so later substreams (and later requests) see reduced capacity —
//! Algorithm 1's "update the node capacities" step.

use super::cache::{CachedSubstream, CompositionCache};
use super::{
    apply_reservations, for_each_commitment, gain_prefix, precheck, with_rollback, ComposeError,
    Composer, ProviderMap,
};
use crate::model::{ExecutionGraph, Placement, ServiceCatalog, ServiceRequest, Stage};
use crate::view::SystemView;
use desim::SimRng;
use mincostflow::{Algorithm, FlowNetwork, FlowSolver};
use std::collections::HashMap;
use std::sync::Arc;

/// Rates are scaled to integer milli-data-units/second for the solver.
pub(crate) const RATE_SCALE: f64 = 1000.0;
/// Drop ratios are scaled to integer milli-drops for arc costs.
const COST_SCALE: f64 = 1000.0;
/// Weight of the utilization term in arc costs. The paper's cost is the
/// *expected* number of dropped units (Eq. 1), estimated from feedback;
/// since "the probability of dropping a data unit increases with the
/// load of a node" (§2.2), the estimate combines the observed window
/// ratio with a load-proportional prior. The prior is an order of
/// magnitude weaker, so observed drops always dominate; it breaks ties
/// on a fresh system so the solver spreads load instead of packing the
/// first zero-cost host it finds.
const UTIL_WEIGHT: f64 = 100.0;
/// "Uncapacitated" arcs: far above any node capacity after scaling.
const INF_CAP: i64 = i64::MAX / 8;
/// Cost per millisecond of link latency on transfer edges. Small against
/// drops (0–1000) and utilization (0–100): it never overrides congestion
/// signals, but among equally-loaded hosts it clusters consecutive
/// stages — and the branches of a split — on nearby nodes, which keeps
/// end-to-end delay down and bounds the inter-branch latency skew that
/// splitting would otherwise convert into out-of-order deliveries (the
/// "timing and synchronization problems" the paper's §4.2 discusses).
const LATENCY_WEIGHT: f64 = 0.5;

/// One-way link latencies in milliseconds, shared with the engine.
///
/// Either an explicit row-major table, or a handle to the topology's own
/// latency model — the latter costs whatever the topology stores
/// (`O(n + clusters²)` for the large-topology generators), never a
/// separately materialized `n²` table.
#[derive(Clone, Debug)]
pub struct LatencyMatrix {
    repr: LatRepr,
}

#[derive(Clone, Debug)]
enum LatRepr {
    Dense { n: usize, ms: Vec<f64> },
    Model(simnet::Topology),
}

impl LatencyMatrix {
    /// Builds a matrix from a row-major `n × n` table.
    pub fn new(n: usize, ms: Vec<f64>) -> Self {
        assert_eq!(ms.len(), n * n, "latency table must be n x n");
        LatencyMatrix {
            repr: LatRepr::Dense { n, ms },
        }
    }

    /// Wraps the topology's latency model directly (no dense table is
    /// built — the matrix costs what the topology's model costs).
    pub fn from_topology(topology: &simnet::Topology) -> Self {
        LatencyMatrix {
            repr: LatRepr::Model(topology.clone()),
        }
    }

    /// One-way latency `u → v` in milliseconds.
    pub fn get(&self, u: usize, v: usize) -> f64 {
        match &self.repr {
            LatRepr::Dense { n, ms } => ms[u * n + v],
            LatRepr::Model(t) => t.latency(u, v).as_millis_f64(),
        }
    }
}

/// Memoizes the per-host arc cost for the duration of one substream
/// solve (the view, and with it utilization, changes between
/// substreams). Epoch-stamped so "resetting" between substreams is a
/// single increment instead of clearing the table.
#[derive(Clone, Debug, Default)]
struct CostMemo {
    val: Vec<i64>,
    stamp: Vec<u64>,
    epoch: u64,
}

impl CostMemo {
    /// Starts a fresh memoization scope over `n` hosts.
    fn begin(&mut self, n: usize) {
        if self.val.len() < n {
            self.val.resize(n, 0);
            self.stamp.resize(n, 0);
        }
        self.epoch += 1;
    }

    /// The arc cost of `host`, computed at most once per scope.
    fn get(&mut self, view: &SystemView, host: simnet::NodeId) -> i64 {
        if self.stamp[host] != self.epoch {
            self.stamp[host] = self.epoch;
            self.val[host] = cost_of(view, host);
        }
        self.val[host]
    }
}

/// Retained allocations reused across substream solves: the flow-network
/// arena, the host-cost memo, and the flow solver itself (scratch
/// buffers plus warm-start potentials — successive substream graphs are
/// rebuilt in the same arena with similar shape, so the previous solve's
/// potential snapshot usually revalidates and skips the seeding pass).
/// Composition is called once per request in the engine's steady state,
/// so this converts the hot path from allocate-solve-drop to reset-solve.
#[derive(Clone, Debug, Default)]
struct Scratch {
    net: FlowNetwork,
    costs: CostMemo,
    solver: FlowSolver,
    /// Cacheable description of the most recent plain-path solve (the
    /// internal arcs per layer and the compose-time host costs); `None`
    /// after a conservative re-solve, whose graph repair cannot reuse.
    last_meta: Option<SolveMeta>,
    /// Capped candidate set of the layer being wired (reused buffer).
    selected: Vec<simnet::NodeId>,
    /// Sorted copy of an unsorted provider list (selection needs
    /// ascending ids for its binary-search membership test).
    sorted_hosts: Vec<simnet::NodeId>,
}

/// What [`CachedSubstream`] needs beyond the arena itself.
#[derive(Clone, Debug)]
struct SolveMeta {
    layers: Vec<Vec<(mincostflow::EdgeId, simnet::NodeId)>>,
    host_costs: Vec<(simnet::NodeId, i64)>,
}

/// Which top-k implementation trims candidate sets when
/// [`MinCostComposer::candidate_cap`] is set. Both produce identical
/// candidate sets (`SystemView::select_top_candidates_{indexed,linear}`
/// share one exact ranking); `Linear` exists as the reference the
/// equivalence suite compares against.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CandidateSelection {
    /// Capacity-bucket walk — candidate enumeration independent of the
    /// node count at fixed provider density.
    #[default]
    Indexed,
    /// Full provider scan (the reference implementation).
    Linear,
}

/// The RASC composer.
#[derive(Clone, Debug)]
pub struct MinCostComposer {
    /// Which min-cost flow algorithm to run (ablation hook).
    pub algorithm: Algorithm,
    /// Optional link latencies; when present, transfer edges carry a
    /// small latency-proportional cost (see [`LATENCY_WEIGHT`]).
    pub latencies: Option<Arc<LatencyMatrix>>,
    /// When set, each layer considers only the `k` providers with the
    /// most remaining bottleneck bandwidth instead of all of them —
    /// the knob that keeps composition cost independent of topology
    /// size at 1k–10k nodes. `None` (the default) preserves the
    /// classic consider-everyone behaviour exactly.
    pub candidate_cap: Option<usize>,
    /// How the cap is computed (equivalence-suite hook).
    pub selection: CandidateSelection,
    /// Whether successful solves are snapshotted for incremental repair
    /// (cloning the arena per substream). Batch-worker arenas turn this
    /// off — see [`Composer::set_retention`].
    retain_solves: bool,
    scratch: Scratch,
    /// Retained solves for incremental repair (see `compose::cache`).
    pub(crate) cache: CompositionCache,
}

impl Default for MinCostComposer {
    fn default() -> Self {
        MinCostComposer {
            algorithm: Algorithm::default(),
            latencies: None,
            candidate_cap: None,
            selection: CandidateSelection::default(),
            retain_solves: true,
            scratch: Scratch::default(),
            cache: CompositionCache::default(),
        }
    }
}

impl Composer for MinCostComposer {
    fn compose(
        &mut self,
        req: &ServiceRequest,
        catalog: &ServiceCatalog,
        providers: &ProviderMap,
        view: &mut SystemView,
        _rng: &mut SimRng,
    ) -> Result<ExecutionGraph, ComposeError> {
        precheck(req, catalog, providers)?;
        self.cache.begin_compose();
        with_rollback(view, |view| {
            let mut substream_stages = Vec::with_capacity(req.graph.substreams.len());
            for (l, sub) in req.graph.substreams.iter().enumerate() {
                let stages = self.compose_substream(req, catalog, providers, view, l)?;
                let partial_req = one_substream_request(req, l, sub.services.clone());
                let mut partial = ExecutionGraph {
                    substreams: vec![stages],
                };
                // The layered graph gives a host an independent capacity
                // arc in every layer that lists it, so one solve may route
                // flow through several copies of the same host and exceed
                // its *aggregate* remaining NIC capacity (the coupling
                // constraint Σ_i g_i·f_{h,i} ≤ r_max(h) is not expressible
                // as arc capacities). When the solved flow's true ledger
                // commitment — same-node transfer discounts included —
                // exceeds what any host has left, re-solve with each
                // host's capacity split evenly across its roles (safe by
                // construction, merely conservative); if even that fails,
                // fall back to an exhaustive single-placement search, so
                // min-cost still admits anything the single-placement
                // baselines could (a single placement is a feasible flow).
                if overcommits_a_host(&partial_req, catalog, view, &partial) {
                    self.scratch.last_meta = None;
                    partial.substreams[0] =
                        match self.compose_substream_conservative(req, catalog, providers, view, l)
                        {
                            Ok(stages) => stages,
                            Err(e) => single_placement_search(req, catalog, providers, view, l)
                                .ok_or(e)?,
                        };
                }
                // Snapshot the solved arena for incremental repair while
                // it still holds the plain-path flow (the meta is `None`
                // whenever a fallback path produced these stages).
                let meta = self.scratch.last_meta.take().filter(|_| self.retain_solves);
                let cached = meta.map(|m| CachedSubstream {
                    net: self.scratch.net.clone(),
                    solver: self.scratch.solver.clone(),
                    layers: m.layers,
                    host_costs: m.host_costs,
                });
                self.cache.note_substream(cached);
                // Reserve before the next substream (Algorithm 1).
                apply_reservations(&partial_req, catalog, &partial, view);
                substream_stages.push(partial.substreams.pop().expect("one substream"));
            }
            self.cache.finish_compose();
            Ok(ExecutionGraph {
                substreams: substream_stages,
            })
        })
    }

    fn name(&self) -> &'static str {
        "mincost"
    }

    fn retain_for_repair(&mut self, key: usize) {
        self.cache.retain(key);
    }

    fn discard_retained(&mut self, key: usize) {
        self.cache.discard(key);
    }

    fn discard_all_retained(&mut self) {
        self.cache.discard_all();
    }

    fn repair(
        &mut self,
        key: usize,
        req: &ServiceRequest,
        catalog: &ServiceCatalog,
        graph: &ExecutionGraph,
        dead: simnet::NodeId,
        view: &SystemView,
    ) -> Option<ExecutionGraph> {
        self.cache.repair(key, req, catalog, graph, dead, view)
    }

    fn forget_warm_state(&mut self) {
        // The potential snapshot is the only solver state that can tilt
        // equal-cost tie-breaking between solves; the buffers it leaves
        // allocated are results-neutral.
        self.scratch.solver.forget();
    }

    fn set_retention(&mut self, on: bool) {
        self.retain_solves = on;
        if !on {
            self.cache.discard_all();
        }
    }
}

/// A single-substream copy of `req` (for reservation bookkeeping).
fn one_substream_request(req: &ServiceRequest, l: usize, services: Vec<usize>) -> ServiceRequest {
    ServiceRequest {
        graph: crate::model::ServiceRequestGraph {
            substreams: vec![crate::model::Substream { services }],
        },
        rates: vec![req.rates[l]],
        source: req.source,
        destination: req.destination,
        unit_bits: req.unit_bits,
        lifetime: req.lifetime,
    }
}

impl MinCostComposer {
    /// Creates a composer running a specific flow algorithm.
    pub fn with_algorithm(algorithm: Algorithm) -> Self {
        MinCostComposer {
            algorithm,
            ..Default::default()
        }
    }

    /// Attaches link latencies for latency-aware transfer costs.
    pub fn with_latencies(mut self, latencies: Arc<LatencyMatrix>) -> Self {
        self.latencies = Some(latencies);
        self
    }

    /// Caps every layer to the `k` best-capacity candidates.
    pub fn with_candidate_cap(mut self, k: usize) -> Self {
        self.candidate_cap = Some(k);
        self
    }

    fn compose_substream(
        &mut self,
        req: &ServiceRequest,
        catalog: &ServiceCatalog,
        providers: &ProviderMap,
        view: &SystemView,
        l: usize,
    ) -> Result<Vec<Stage>, ComposeError> {
        self.solve_substream(req, catalog, providers, view, l, None)
    }

    /// Re-solve with every host's capacity divided by the number of roles
    /// (source, destination, candidate layers) it plays in this
    /// substream: each role then stays within its share per NIC
    /// dimension, so their sum cannot exceed the host's remaining
    /// capacity no matter how the flow distributes.
    fn compose_substream_conservative(
        &mut self,
        req: &ServiceRequest,
        catalog: &ServiceCatalog,
        providers: &ProviderMap,
        view: &SystemView,
        l: usize,
    ) -> Result<Vec<Stage>, ComposeError> {
        let mut roles: HashMap<simnet::NodeId, f64> = HashMap::new();
        *roles.entry(req.source).or_default() += 1.0;
        *roles.entry(req.destination).or_default() += 1.0;
        for &service in &req.graph.substreams[l].services {
            for &host in &providers[&service] {
                *roles.entry(host).or_default() += 1.0;
            }
        }
        self.solve_substream(req, catalog, providers, view, l, Some(&roles))
    }

    fn solve_substream(
        &mut self,
        req: &ServiceRequest,
        catalog: &ServiceCatalog,
        providers: &ProviderMap,
        view: &SystemView,
        l: usize,
        shrink: Option<&HashMap<simnet::NodeId, f64>>,
    ) -> Result<Vec<Stage>, ComposeError> {
        let share = |host: simnet::NodeId| -> f64 {
            shrink.map_or(1.0, |r| r.get(&host).copied().unwrap_or(1.0))
        };
        let services = &req.graph.substreams[l].services;
        let gains = gain_prefix(catalog, services);
        let delivery_gain = gains[services.len()];
        // Required flow in source-rate units.
        let source_rate = req.rates[l] / delivery_gain;
        let target = (source_rate * RATE_SCALE).round() as i64;
        if target == 0 {
            return Err(ComposeError::InsufficientCapacity { substream: l });
        }

        // Transfer-edge cost between two hosts, hoisted so the scratch
        // borrows below don't alias `self`.
        let latencies = self.latencies.clone();
        let hop_cost = |from: usize, to: usize| -> i64 {
            match &latencies {
                Some(m) => (m.get(from, to) * LATENCY_WEIGHT).round() as i64,
                None => 0,
            }
        };

        // Reuse the retained arena and cost memo (reservations between
        // substreams change the view, so the memo scope is one solve).
        // The retained solver is rebuilt only if the (public) algorithm
        // selection changed since the last solve.
        if self.scratch.solver.algorithm() != self.algorithm {
            self.scratch.solver = FlowSolver::new(self.algorithm);
        }
        let Scratch {
            net,
            costs,
            solver,
            last_meta,
            selected,
            sorted_hosts,
        } = &mut self.scratch;
        let candidate_cap = self.candidate_cap;
        let selection = self.selection;
        let retain_solves = self.retain_solves;
        *last_meta = None;
        net.reset(2);
        costs.begin(view.len());
        let src = 0usize;
        let dst = 1usize;

        // Source uplink: SRC -> gate, capacity = remaining output rate of
        // the origin node (in source units, which *are* its native units),
        // cost = the origin's drop ratio.
        let src_gate = net.add_node();
        net.add_edge(
            src,
            src_gate,
            to_milli(view.out_rate_capacity(req.source, req.unit_bits) / share(req.source)),
            costs.get(view, req.source),
        );

        // Per layer: candidate hosts, each node-split. Hosts whose r_max
        // rounds to zero capacity are pruned before graph construction —
        // they could never carry flow, and on a loaded system they would
        // otherwise inflate every inter-layer edge product.
        let mut layer_nodes: Vec<Vec<(usize, usize, usize)>> = Vec::new(); // (in, out, host)
        let mut internal_edges: Vec<Vec<mincostflow::EdgeId>> = Vec::new();
        for (i, &service) in services.iter().enumerate() {
            let ratio = catalog.get(service).rate_ratio;
            let all_hosts = &providers[&service];
            // Capped enumeration: keep only the k candidates with the
            // most remaining bottleneck bandwidth. Selection is a pure
            // function of (view, providers, k) — the view does not move
            // between the plain solve and a conservative re-solve of the
            // same substream, so both see the same candidate set.
            let hosts: &[simnet::NodeId] = match candidate_cap {
                Some(k) if all_hosts.len() > k => {
                    let sorted: &[simnet::NodeId] = if all_hosts.windows(2).all(|w| w[0] < w[1]) {
                        all_hosts
                    } else {
                        sorted_hosts.clear();
                        sorted_hosts.extend_from_slice(all_hosts);
                        sorted_hosts.sort_unstable();
                        sorted_hosts.dedup();
                        sorted_hosts
                    };
                    match selection {
                        CandidateSelection::Indexed => {
                            view.select_top_candidates_indexed(sorted, k, selected)
                        }
                        CandidateSelection::Linear => {
                            view.select_top_candidates_linear(sorted, k, selected)
                        }
                    }
                    selected
                }
                _ => all_hosts,
            };
            let mut this_layer = Vec::with_capacity(hosts.len());
            let mut this_edges = Vec::with_capacity(hosts.len());
            let exec_secs = catalog.get(service).exec_time.as_secs_f64();
            for &host in hosts {
                // Native r_max expressed in source units (divide by gain),
                // bounded by the host's NICs and (when enabled) its CPU.
                let native = view.max_rate_with_cpu(host, req.unit_bits, ratio, exec_secs);
                let cap = to_milli(native / share(host) / gains[i]);
                if cap <= 0 {
                    continue;
                }
                let v_in = net.add_node();
                let v_out = net.add_node();
                // Per-host cost hoisted out of the edge wiring below and
                // memoized across layers (provider sets overlap).
                let e = net.add_edge(v_in, v_out, cap, costs.get(view, host));
                this_layer.push((v_in, v_out, host));
                this_edges.push(e);
            }
            if this_layer.is_empty() {
                // Every candidate is saturated; no flow can cross this
                // layer, so the substream is unadmittable as a whole.
                return Err(ComposeError::InsufficientCapacity { substream: l });
            }
            // Wire from previous layer (or the source gate).
            match layer_nodes.last() {
                None => {
                    for &(v_in, _, host) in &this_layer {
                        net.add_edge(src_gate, v_in, INF_CAP, hop_cost(req.source, host));
                    }
                }
                Some(prev) => {
                    for &(_, p_out, p_host) in prev {
                        for &(v_in, _, host) in &this_layer {
                            net.add_edge(p_out, v_in, INF_CAP, hop_cost(p_host, host));
                        }
                    }
                }
            }
            layer_nodes.push(this_layer);
            internal_edges.push(this_edges);
        }

        // Destination downlink, in source units.
        let dst_gate = net.add_node();
        for &(_, v_out, host) in layer_nodes.last().expect("non-empty substream") {
            net.add_edge(v_out, dst_gate, INF_CAP, hop_cost(host, req.destination));
        }
        net.add_edge(
            dst_gate,
            dst,
            to_milli(
                view.in_rate_capacity(req.destination, req.unit_bits)
                    / share(req.destination)
                    / delivery_gain,
            ),
            costs.get(view, req.destination),
        );

        match solver.solve(net, src, dst, target) {
            Ok(_) => {}
            Err(_) => return Err(ComposeError::InsufficientCapacity { substream: l }),
        }

        // Record what incremental repair needs (plain path only: the
        // conservative shares bake role-split capacities into the arcs,
        // which a later repair must not treat as the host's true r_max).
        // With retention off — the batch admitter's worker arenas — the
        // snapshot would be discarded unread, so skip its allocations.
        if shrink.is_none() && retain_solves {
            let layers: Vec<Vec<(mincostflow::EdgeId, simnet::NodeId)>> = layer_nodes
                .iter()
                .zip(&internal_edges)
                .map(|(nodes, edges)| {
                    nodes
                        .iter()
                        .zip(edges)
                        .map(|(&(_, _, host), &e)| (e, host))
                        .collect()
                })
                .collect();
            // Layer hosts only: the endpoint arcs are shared by every
            // path, so a uniform cost shift there never changes which
            // placements are optimal and must not poison the repair
            // path's drift check.
            let mut hosts: Vec<simnet::NodeId> = layers.iter().flatten().map(|&(_, h)| h).collect();
            hosts.sort_unstable();
            hosts.dedup();
            let host_costs = hosts.into_iter().map(|h| (h, costs.get(view, h))).collect();
            *last_meta = Some(SolveMeta { layers, host_costs });
        }

        // Read placements off the internal edges.
        let mut stages = Vec::with_capacity(services.len());
        for (i, &service) in services.iter().enumerate() {
            let mut placements = Vec::new();
            for (slot, &(_, _, host)) in layer_nodes[i].iter().enumerate() {
                let flow = net.flow_on(internal_edges[i][slot]);
                if flow > 0 {
                    // Convert back to the host's native ingest rate.
                    let native = flow as f64 / RATE_SCALE * gains[i];
                    placements.push(Placement {
                        node: host,
                        rate: native,
                    });
                }
            }
            debug_assert!(!placements.is_empty(), "positive flow crosses every layer");
            stages.push(Stage {
                service,
                placements,
            });
        }
        Ok(stages)
    }
}

#[inline]
fn to_milli(rate: f64) -> i64 {
    (rate.max(0.0) * RATE_SCALE).floor() as i64
}

/// Whether the solved substream's aggregate demand on any host exceeds
/// its remaining availability. Per layer the flow respects the capacity
/// arcs, so an overshoot can only come from one host carrying flow in
/// several layers (plus possibly serving as an endpoint) of the same
/// solve. Demand is the *ledger* commitment ([`for_each_commitment`],
/// same-node transfer discounts included) — exactly what the engine
/// will commit on admission — so passing this check per substream
/// guarantees, by induction over substreams, that the admission bound
/// (committed ≤ capacity × headroom) holds. `req`/`graph` are the
/// single-substream pair during composition; the repair path reuses the
/// check over a whole candidate graph (the formula is per-ledger-entry,
/// so it aggregates correctly either way).
pub(crate) fn overcommits_a_host(
    req: &ServiceRequest,
    catalog: &ServiceCatalog,
    view: &SystemView,
    graph: &ExecutionGraph,
) -> bool {
    let mut used: HashMap<simnet::NodeId, (f64, f64, f64)> = HashMap::new();
    for_each_commitment(catalog, req, graph, &mut |v, din, dout, dcpu| {
        let e = used.entry(v).or_default();
        e.0 += din;
        e.1 += dout;
        e.2 += dcpu;
    });
    // Solver rounding grants at most ~one milli-unit per arc; stay well
    // inside the auditor's admission-bound slack.
    let eps = 32.0;
    used.iter().any(|(&host, &(in_bits, out_bits, cpu))| {
        in_bits > view.avail(host).get(0) + eps
            || out_bits > view.avail(host).get(1) + eps
            || cpu > view.cpu_avail(host) + 1e-9
    })
}

/// Shared context of one exhaustive single-placement search.
struct SearchCtx<'a> {
    req: &'a ServiceRequest,
    catalog: &'a ServiceCatalog,
    providers: &'a ProviderMap,
    services: &'a [usize],
    gains: &'a [f64],
    source_rate: f64,
}

/// Last-resort fallback for one substream: backtracking search over
/// every feasible single-placement assignment, mirroring the baselines'
/// sequential feasibility rule (`compose_single_placement`). Complete
/// over single placements, so whenever the greedy or random baseline
/// could place this substream — whatever hosts they happened to pick —
/// this search finds an assignment too, and min-cost keeps its
/// dominance over them even when the coupled re-solves fail. Sequential
/// reservation keeps it within the admission bound by the same argument
/// that covers the baselines.
fn single_placement_search(
    req: &ServiceRequest,
    catalog: &ServiceCatalog,
    providers: &ProviderMap,
    view: &SystemView,
    l: usize,
) -> Option<Vec<Stage>> {
    let services = &req.graph.substreams[l].services;
    let gains = gain_prefix(catalog, services);
    let delivery_gain = gains[services.len()];
    let source_rate = req.rates[l] / delivery_gain;
    if view.out_rate_capacity(req.source, req.unit_bits) < source_rate
        || view.in_rate_capacity(req.destination, req.unit_bits) < req.rates[l]
    {
        return None;
    }
    let mut scratch = view.clone();
    scratch.reserve_source(req.source, req.unit_bits, source_rate);
    scratch.reserve_destination(req.destination, req.unit_bits, req.rates[l]);
    let ctx = SearchCtx {
        req,
        catalog,
        providers,
        services,
        gains: &gains,
        source_rate,
    };
    let mut chosen = Vec::with_capacity(services.len());
    // Backtracking is exponential in the worst case; the budget bounds
    // pathological catalogs (hundreds of providers per service) without
    // touching realistic ones, which explore a few dozen candidates.
    let mut budget = 10_000usize;
    if !place_from(&ctx, &scratch, 0, &mut chosen, &mut budget) {
        return None;
    }
    Some(
        services
            .iter()
            .zip(&chosen)
            .enumerate()
            .map(|(i, (&service, &node))| Stage {
                service,
                placements: vec![Placement {
                    node,
                    rate: ctx.source_rate * ctx.gains[i],
                }],
            })
            .collect(),
    )
}

/// Recursive step of [`single_placement_search`]: place stage `i` on
/// each feasible host in turn, reserving into a fresh scratch view so
/// deeper stages see the choice, and backtrack on dead ends.
fn place_from(
    ctx: &SearchCtx<'_>,
    view: &SystemView,
    i: usize,
    chosen: &mut Vec<simnet::NodeId>,
    budget: &mut usize,
) -> bool {
    if i == ctx.services.len() {
        return true;
    }
    let svc = ctx.catalog.get(ctx.services[i]);
    let ratio = svc.rate_ratio;
    let exec_secs = svc.exec_time.as_secs_f64();
    let ingest = ctx.source_rate * ctx.gains[i];
    for &host in &ctx.providers[&ctx.services[i]] {
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        if view.max_rate_with_cpu(host, ctx.req.unit_bits, ratio, exec_secs) < ingest {
            continue;
        }
        let mut next = view.clone();
        next.reserve_component(host, ctx.req.unit_bits, ratio, ingest);
        next.reserve_cpu(host, exec_secs, ingest);
        chosen.push(host);
        if place_from(ctx, &next, i + 1, chosen, budget) {
            return true;
        }
        chosen.pop();
    }
    false
}

/// Arc cost of routing through a host: observed drop ratio plus the
/// load-proportional prior (see [`UTIL_WEIGHT`]).
#[inline]
pub(crate) fn cost_of(view: &SystemView, host: simnet::NodeId) -> i64 {
    let observed = (view.drop_ratio(host).clamp(0.0, 1.0) * COST_SCALE).round() as i64;
    let prior = (view.utilization(host) * UTIL_WEIGHT).round() as i64;
    observed + prior
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ServiceCatalog;
    use desim::{SimDuration, SimRng};
    use simnet::{kbps, Topology, TopologyBuilder};

    fn providers_for(pairs: &[(usize, &[usize])]) -> ProviderMap {
        pairs
            .iter()
            .map(|&(s, hosts)| (s, hosts.to_vec()))
            .collect()
    }

    /// 4 nodes at 1 Mbps; node 0 = source, node 3 = destination.
    fn flat_view() -> SystemView {
        SystemView::fresh(&Topology::uniform(
            4,
            1_000_000.0,
            SimDuration::from_millis(10),
        ))
    }

    #[test]
    fn single_host_carries_whole_rate() {
        let catalog = ServiceCatalog::synthetic(1, 1);
        let mut view = flat_view();
        let req = ServiceRequest::chain(&[0], 20.0, 0, 3);
        let providers = providers_for(&[(0, &[1])]);
        let g = MinCostComposer::default()
            .compose(&req, &catalog, &providers, &mut view, &mut SimRng::new(0))
            .unwrap();
        assert_eq!(g.substreams.len(), 1);
        let stage = &g.substreams[0][0];
        assert_eq!(stage.placements.len(), 1);
        assert_eq!(stage.placements[0].node, 1);
        assert!((stage.total_rate() - 20.0).abs() < 1e-6);
        assert!(!g.has_splitting());
        // Reservations applied: node 1 lost 20 du/s both ways.
        let expect = 1_000_000.0 / 8192.0 - 20.0;
        assert!((view.in_rate_capacity(1, 8192) - expect).abs() < 1e-3);
    }

    #[test]
    fn splits_when_one_host_is_too_small() {
        // Host 1 can take only ~60 du/s (500 Kbps NICs), host 2 is big.
        let catalog = ServiceCatalog::synthetic(1, 2);
        let mut b = TopologyBuilder::new().default_latency(SimDuration::from_millis(10));
        b.node(kbps(10_000.0), kbps(10_000.0)); // 0: source
        b.node(kbps(500.0), kbps(500.0)); // 1: small host
        b.node(kbps(10_000.0), kbps(10_000.0)); // 2: big host
        b.node(kbps(10_000.0), kbps(10_000.0)); // 3: destination
        let mut view = SystemView::fresh(&b.build());
        // Make host 2 look congested so the solver prefers host 1 first.
        view.set_drop_ratio(2, 0.2);
        let req = ServiceRequest::chain(&[0], 100.0, 0, 3);
        let providers = providers_for(&[(0, &[1, 2])]);
        let g = MinCostComposer::default()
            .compose(&req, &catalog, &providers, &mut view, &mut SimRng::new(0))
            .unwrap();
        let stage = &g.substreams[0][0];
        assert_eq!(stage.placements.len(), 2, "expected rate splitting");
        assert!(g.has_splitting());
        assert!((stage.total_rate() - 100.0).abs() < 1e-3);
        // The cheap small host is saturated (~61 du/s), remainder spills.
        let small = stage.placements.iter().find(|p| p.node == 1).unwrap();
        assert!(
            small.rate > 55.0 && small.rate < 62.0,
            "small {}",
            small.rate
        );
    }

    #[test]
    fn prefers_low_drop_hosts() {
        let catalog = ServiceCatalog::synthetic(1, 3);
        let mut view = flat_view();
        view.set_drop_ratio(1, 0.5);
        view.set_drop_ratio(2, 0.01);
        let req = ServiceRequest::chain(&[0], 10.0, 0, 3);
        let providers = providers_for(&[(0, &[1, 2])]);
        let g = MinCostComposer::default()
            .compose(&req, &catalog, &providers, &mut view, &mut SimRng::new(0))
            .unwrap();
        let stage = &g.substreams[0][0];
        assert_eq!(stage.placements.len(), 1);
        assert_eq!(stage.placements[0].node, 2);
    }

    #[test]
    fn rejects_when_capacity_missing_and_view_untouched() {
        let catalog = ServiceCatalog::synthetic(1, 4);
        let mut view = flat_view();
        let before = view.clone();
        // 1 Mbps NIC ≈ 122 du/s; ask for 400.
        let req = ServiceRequest::chain(&[0], 400.0, 0, 3);
        let providers = providers_for(&[(0, &[1, 2])]);
        let err = MinCostComposer::default()
            .compose(&req, &catalog, &providers, &mut view, &mut SimRng::new(0))
            .unwrap_err();
        assert_eq!(err, ComposeError::InsufficientCapacity { substream: 0 });
        for v in 0..4 {
            assert_eq!(view.avail(v), before.avail(v), "view mutated at {v}");
        }
    }

    #[test]
    fn splitting_admits_what_single_placement_cannot() {
        // Two 500 Kbps hosts: each caps at ~61 du/s, together 122.
        let catalog = ServiceCatalog::synthetic(1, 5);
        let mut b = TopologyBuilder::new().default_latency(SimDuration::from_millis(10));
        b.node(kbps(10_000.0), kbps(10_000.0));
        b.node(kbps(500.0), kbps(500.0));
        b.node(kbps(500.0), kbps(500.0));
        b.node(kbps(10_000.0), kbps(10_000.0));
        let mut view = SystemView::fresh(&b.build());
        let req = ServiceRequest::chain(&[0], 100.0, 0, 3);
        let providers = providers_for(&[(0, &[1, 2])]);
        let g = MinCostComposer::default()
            .compose(&req, &catalog, &providers, &mut view, &mut SimRng::new(0))
            .unwrap();
        assert_eq!(g.substreams[0][0].placements.len(), 2);
    }

    #[test]
    fn multi_substream_updates_capacity_between_solves() {
        // Destination downlink fits 122 du/s total; two substreams of 70
        // each must fail on the second solve.
        let catalog = ServiceCatalog::synthetic(2, 6);
        let mut view = flat_view();
        let req = ServiceRequest::multi(vec![vec![0], vec![1]], vec![70.0, 70.0], 0, 3);
        let providers = providers_for(&[(0, &[1]), (1, &[2])]);
        let err = MinCostComposer::default()
            .compose(&req, &catalog, &providers, &mut view, &mut SimRng::new(0))
            .unwrap_err();
        assert_eq!(err, ComposeError::InsufficientCapacity { substream: 1 });
        // A pair that fits together is accepted.
        let req2 = ServiceRequest::multi(vec![vec![0], vec![1]], vec![50.0, 50.0], 0, 3);
        let g = MinCostComposer::default()
            .compose(&req2, &catalog, &providers, &mut view, &mut SimRng::new(0))
            .unwrap();
        assert_eq!(g.substreams.len(), 2);
    }

    #[test]
    fn rate_ratio_scales_downstream_capacity() {
        // Service 0 doubles the rate (R=2): a downstream-ish check that
        // delivery of 40 du/s needs only 20 du/s ingest at the component.
        let catalog = ServiceCatalog::new(vec![crate::model::Service {
            id: 0,
            name: "upsample".into(),
            exec_time: SimDuration::from_millis(2),
            rate_ratio: 2.0,
        }]);
        let mut view = flat_view();
        let req = ServiceRequest::chain(&[0], 40.0, 0, 3);
        let providers = providers_for(&[(0, &[1])]);
        let g = MinCostComposer::default()
            .compose(&req, &catalog, &providers, &mut view, &mut SimRng::new(0))
            .unwrap();
        let stage = &g.substreams[0][0];
        assert!(
            (stage.total_rate() - 20.0).abs() < 1e-6,
            "{}",
            stage.total_rate()
        );
    }

    #[test]
    fn multi_layer_reuse_cannot_overcommit_a_host() {
        // Host 1 provides layers 0 and 2 (layer 1 lives elsewhere), so
        // the layered graph offers it two independent capacity arcs. A
        // rate that fits either arc alone but not both (~122 du/s NICs,
        // 2 × 80 du/s aggregate) must be rejected: the admission bound
        // is on the host's aggregate commitment, and before the
        // overcommit check one solve would happily route through both
        // copies of the host.
        let catalog = ServiceCatalog::synthetic(3, 9);
        let mut b = TopologyBuilder::new().default_latency(SimDuration::from_millis(10));
        b.node(kbps(10_000.0), kbps(10_000.0)); // 0: source
        b.node(kbps(1_000.0), kbps(1_000.0)); // 1: reused host
        b.node(kbps(10_000.0), kbps(10_000.0)); // 2: middle host
        b.node(kbps(10_000.0), kbps(10_000.0)); // 3: destination
        let mut view = SystemView::fresh(&b.build());
        let providers = providers_for(&[(0, &[1]), (1, &[2]), (2, &[1])]);
        let before = view.clone();
        let req = ServiceRequest::chain(&[0, 1, 2], 80.0, 0, 3);
        let err = MinCostComposer::default()
            .compose(&req, &catalog, &providers, &mut view, &mut SimRng::new(0))
            .unwrap_err();
        assert_eq!(err, ComposeError::InsufficientCapacity { substream: 0 });
        for v in 0..4 {
            assert_eq!(view.avail(v), before.avail(v), "view mutated at {v}");
        }
        // A rate both visits fit together (2 × 50 ≤ 122) is admitted,
        // and the reused host's reservation covers both visits.
        let req = ServiceRequest::chain(&[0, 1, 2], 50.0, 0, 3);
        MinCostComposer::default()
            .compose(&req, &catalog, &providers, &mut view, &mut SimRng::new(0))
            .unwrap();
        assert!(view.in_rate_capacity(1, 8192) < 23.0);
    }

    #[test]
    fn falls_back_to_single_placement_when_split_resolve_fails() {
        // Same shape, but layer 2 has an alternative (congested) host.
        // The solver prefers routing layers 0 and 2 through host 1,
        // which overcommits it; the conservative role-split re-solve
        // also fails (half of host 1's capacity cannot carry layer 0
        // alone). The single-placement fallback must still admit by
        // pushing layer 2 onto host 2 — whatever a sequential baseline
        // can place, min-cost places too.
        let catalog = ServiceCatalog::synthetic(3, 10);
        let mut b = TopologyBuilder::new().default_latency(SimDuration::from_millis(10));
        b.node(kbps(10_000.0), kbps(10_000.0)); // 0: source
        b.node(kbps(1_000.0), kbps(1_000.0)); // 1: preferred host
        b.node(kbps(10_000.0), kbps(10_000.0)); // 2: congested alternative
        b.node(kbps(10_000.0), kbps(10_000.0)); // 3: destination
        let mut view = SystemView::fresh(&b.build());
        view.set_drop_ratio(2, 0.5);
        let providers = providers_for(&[(0, &[1]), (1, &[2]), (2, &[1, 2])]);
        let req = ServiceRequest::chain(&[0, 1, 2], 80.0, 0, 3);
        let g = MinCostComposer::default()
            .compose(&req, &catalog, &providers, &mut view, &mut SimRng::new(0))
            .unwrap();
        let last = &g.substreams[0][2];
        assert_eq!(last.placements.len(), 1);
        assert_eq!(last.placements[0].node, 2, "layer 2 must avoid host 1");
        assert!((last.total_rate() - 80.0).abs() < 1e-6);
    }

    #[test]
    fn all_flow_algorithms_give_equal_cost_compositions() {
        use mincostflow::Algorithm;
        let catalog = ServiceCatalog::synthetic(2, 7);
        let req = ServiceRequest::chain(&[0, 1], 90.0, 0, 3);
        let providers = providers_for(&[(0, &[1, 2]), (1, &[1, 2])]);
        let run = |alg| {
            let mut view = flat_view();
            view.set_drop_ratio(1, 0.1);
            MinCostComposer::with_algorithm(alg)
                .compose(&req, &catalog, &providers, &mut view, &mut SimRng::new(0))
                .map(|g| {
                    // Total "cost" proxy: rate-weighted drop ratio.
                    g.substreams
                        .iter()
                        .flatten()
                        .flat_map(|s| s.placements.iter())
                        .map(|p| p.rate * if p.node == 1 { 0.1 } else { 0.0 })
                        .sum::<f64>()
                })
        };
        let a = run(Algorithm::DijkstraSsp).unwrap();
        let b = run(Algorithm::SpfaSsp).unwrap();
        let c = run(Algorithm::CostScaling).unwrap();
        let d = run(Algorithm::DialSsp).unwrap();
        let e = run(Algorithm::CapacityScaling).unwrap();
        assert!((a - b).abs() < 1e-6);
        assert!((a - c).abs() < 1e-6);
        assert!((a - d).abs() < 1e-6);
        assert!((a - e).abs() < 1e-6);
    }
}
