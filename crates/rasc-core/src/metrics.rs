//! Run metrics: everything Figures 6–11 plot (paper §4.2).
//!
//! Destination-side bookkeeping follows the paper's definitions exactly:
//!
//! * **delivered** — the unit reached the destination at all (Fig. 8's
//!   numerator),
//! * **out of order** — a later-sequence unit of the same substream had
//!   already arrived, "rendering useless the data carried" (Fig. 10),
//! * **timely** — delivered in order *and* within the schedule dictated
//!   by the previous unit's arrival and the required period (Fig. 9),
//! * **jitter** — the amount by which a unit missed the deadline set by
//!   its predecessor's arrival plus the period (Fig. 11); on-time units
//!   contribute zero,
//! * **end-to-end delay** — destination arrival minus creation (Fig. 7).

use desim::{SimDuration, SimTime};
use monitor::{Histogram, Welford};

/// Slack factor on the per-unit schedule before a unit counts as late:
/// a unit is "timely" if it arrives within `(1 + slack) × period` of its
/// predecessor. The paper says "much later"; 50% grace reads that.
pub const TIMELINESS_SLACK: f64 = 0.5;

/// Per-substream delivery tracker living at the destination.
#[derive(Clone, Debug)]
pub struct SubstreamTracker {
    period: SimDuration,
    /// Highest sequence number seen so far (for order checks).
    max_seq_seen: Option<u64>,
    /// Arrival time of the previous in-order unit.
    prev_arrival: Option<SimTime>,
    delivered: u64,
    out_of_order: u64,
    timely: u64,
    delay: Welford,
    delay_hist: Histogram,
    jitter: Welford,
}

impl SubstreamTracker {
    /// Creates a tracker for a substream with the given required rate
    /// (data units per second).
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        SubstreamTracker {
            period: SimDuration::from_secs_f64(1.0 / rate),
            max_seq_seen: None,
            prev_arrival: None,
            delivered: 0,
            out_of_order: 0,
            timely: 0,
            delay: Welford::new(),
            delay_hist: Histogram::for_latency_ms(),
            jitter: Welford::new(),
        }
    }

    /// Records the arrival of unit `seq` created at `created`.
    pub fn on_delivery(&mut self, seq: u64, created: SimTime, arrival: SimTime) {
        self.delivered += 1;
        let delay_ms = arrival.saturating_since(created).as_millis_f64();
        self.delay.record(delay_ms);
        self.delay_hist.record(delay_ms);

        let in_order = match self.max_seq_seen {
            None => true,
            Some(max) => seq > max,
        };
        if !in_order {
            self.out_of_order += 1;
            // Out-of-order units are useless to the application: they do
            // not advance the schedule and are not timely.
            return;
        }
        self.max_seq_seen = Some(seq);

        // Jitter and timeliness relative to the predecessor's schedule.
        match self.prev_arrival {
            None => {
                // First unit sets the schedule and is timely by definition.
                self.timely += 1;
                self.jitter.record(0.0);
            }
            Some(prev) => {
                let deadline = prev + self.period;
                let late = arrival.saturating_since(deadline).as_millis_f64();
                self.jitter.record(late);
                let grace = self.period.mul_f64(1.0 + TIMELINESS_SLACK);
                if arrival.saturating_since(prev) <= grace {
                    self.timely += 1;
                }
            }
        }
        self.prev_arrival = Some(arrival);
    }

    /// Units delivered (any order).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Units delivered out of order.
    pub fn out_of_order(&self) -> u64 {
        self.out_of_order
    }

    /// Units delivered in order and on schedule.
    pub fn timely(&self) -> u64 {
        self.timely
    }

    /// End-to-end delay accumulator (milliseconds).
    pub fn delay(&self) -> &Welford {
        &self.delay
    }

    /// End-to-end delay distribution (milliseconds).
    pub fn delay_histogram(&self) -> &Histogram {
        &self.delay_hist
    }

    /// Jitter accumulator (milliseconds of lateness).
    pub fn jitter(&self) -> &Welford {
        &self.jitter
    }
}

/// Where in the pipeline a data unit died.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DropCause {
    /// A NIC queue overflowed at the sender.
    NetSender,
    /// A NIC queue overflowed at the receiver.
    NetReceiver,
    /// A node's ready queue was full on arrival.
    QueueFull,
    /// The scheduler discarded the unit (negative laxity, §3.4).
    Laxity,
    /// The unit's application was torn down while it was in flight.
    Terminated,
    /// The unit was headed to (or queued on) a node that failed.
    NodeFailed,
}

/// Aggregate counters for one engine run.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Requests successfully composed (Fig. 6).
    pub composed: u64,
    /// Requests rejected at composition.
    pub rejected: u64,
    /// Data units emitted by sources.
    pub generated: u64,
    /// Data units that reached their destination.
    pub delivered: u64,
    /// Of the delivered: in order and on schedule (Fig. 9).
    pub timely: u64,
    /// Of the delivered: out of order (Fig. 10).
    pub out_of_order: u64,
    /// Units dropped, by cause.
    pub drops: [u64; 6],
    /// End-to-end delay stats in ms (Fig. 7).
    pub delay_ms: Welford,
    /// End-to-end delay distribution in ms (for tail reporting).
    pub delay_hist_ms: Option<Histogram>,
    /// Jitter stats in ms (Fig. 11).
    pub jitter_ms: Welford,
    /// Total component instances deployed.
    pub components: u64,
    /// Requests whose execution graph split at least one service.
    pub split_requests: u64,
    /// Applications re-composed after a node failure.
    pub recompositions: u64,
    /// Of the recompositions: adapted by in-place incremental repair
    /// of the retained composition (no cold re-solve, same app id).
    pub repairs: u64,
}

impl RunReport {
    /// Records a drop.
    pub fn count_drop(&mut self, cause: DropCause) {
        self.drops[cause as usize] += 1;
    }

    /// Total drops across causes.
    pub fn total_drops(&self) -> u64 {
        self.drops.iter().sum()
    }

    /// Fraction of generated units that were delivered (Fig. 8's y-axis).
    pub fn delivered_fraction(&self) -> f64 {
        ratio(self.delivered, self.generated)
    }

    /// Fraction of delivered units that were timely (Fig. 9's y-axis).
    pub fn timely_fraction(&self) -> f64 {
        ratio(self.timely, self.delivered)
    }

    /// Fraction of delivered units that arrived out of order (Fig. 10).
    pub fn out_of_order_fraction(&self) -> f64 {
        ratio(self.out_of_order, self.delivered)
    }

    /// Folds a substream tracker's totals into the report.
    pub fn absorb_tracker(&mut self, t: &SubstreamTracker) {
        self.delivered += t.delivered();
        self.timely += t.timely();
        self.out_of_order += t.out_of_order();
        self.delay_ms.merge(t.delay());
        match &mut self.delay_hist_ms {
            Some(h) => h.merge(t.delay_histogram()),
            None => self.delay_hist_ms = Some(t.delay_histogram().clone()),
        }
        self.jitter_ms.merge(t.jitter());
    }

    /// Delay at quantile `q`, when any units were delivered.
    pub fn delay_quantile_ms(&self, q: f64) -> Option<f64> {
        self.delay_hist_ms.as_ref().and_then(|h| h.quantile(q))
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn in_order_on_time_stream_is_all_timely() {
        let mut tr = SubstreamTracker::new(10.0); // period 100 ms
        for i in 0..10u64 {
            tr.on_delivery(i, t(i * 100), t(i * 100 + 40));
        }
        assert_eq!(tr.delivered(), 10);
        assert_eq!(tr.timely(), 10);
        assert_eq!(tr.out_of_order(), 0);
        assert!((tr.delay().mean() - 40.0).abs() < 1e-9);
        assert_eq!(tr.jitter().mean(), 0.0);
    }

    #[test]
    fn out_of_order_detected_and_excluded_from_schedule() {
        let mut tr = SubstreamTracker::new(10.0);
        tr.on_delivery(0, t(0), t(50));
        tr.on_delivery(2, t(200), t(230)); // skips seq 1
        tr.on_delivery(1, t(100), t(240)); // late straggler: out of order
        tr.on_delivery(3, t(300), t(330));
        assert_eq!(tr.delivered(), 4);
        assert_eq!(tr.out_of_order(), 1);
        // Units 0, 2, 3 advance the schedule, but unit 2 lands two
        // periods after unit 0 (seq 1 went missing) — beyond the grace,
        // so it is late by the paper's definition. 0 and 3 are timely.
        assert_eq!(tr.timely(), 2);
    }

    #[test]
    fn late_units_add_jitter_and_lose_timeliness() {
        let mut tr = SubstreamTracker::new(10.0); // period 100 ms, grace 150
        tr.on_delivery(0, t(0), t(10));
        tr.on_delivery(1, t(100), t(310)); // 300 ms after prev: late
        assert_eq!(tr.timely(), 1); // only the first
                                    // Jitter of the late unit: 310 - (10 + 100) = 200 ms.
        assert!((tr.jitter().max().unwrap() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn unit_within_grace_is_timely_with_small_jitter() {
        let mut tr = SubstreamTracker::new(10.0);
        tr.on_delivery(0, t(0), t(10));
        tr.on_delivery(1, t(100), t(140)); // 130 ms gap ≤ 150 grace
        assert_eq!(tr.timely(), 2);
        // Jitter: 140 - 110 = 30 ms.
        assert!((tr.jitter().max().unwrap() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn report_fractions() {
        let mut r = RunReport {
            generated: 100,
            delivered: 80,
            timely: 60,
            out_of_order: 4,
            ..Default::default()
        };
        r.count_drop(DropCause::NetSender);
        r.count_drop(DropCause::Laxity);
        r.count_drop(DropCause::Laxity);
        assert_eq!(r.total_drops(), 3);
        assert!((r.delivered_fraction() - 0.8).abs() < 1e-12);
        assert!((r.timely_fraction() - 0.75).abs() < 1e-12);
        assert!((r.out_of_order_fraction() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn empty_report_fractions_are_zero() {
        let r = RunReport::default();
        assert_eq!(r.delivered_fraction(), 0.0);
        assert_eq!(r.timely_fraction(), 0.0);
        assert_eq!(r.out_of_order_fraction(), 0.0);
    }

    #[test]
    fn absorb_tracker_merges() {
        let mut tr = SubstreamTracker::new(20.0);
        tr.on_delivery(0, t(0), t(30));
        tr.on_delivery(1, t(50), t(80));
        let mut r = RunReport::default();
        r.absorb_tracker(&tr);
        assert_eq!(r.delivered, 2);
        assert_eq!(r.timely, 2);
        assert_eq!(r.delay_ms.count(), 2);
        assert!((r.delay_ms.mean() - 30.0).abs() < 1e-9);
    }
}
