//! The paper's application model (§2): services, request graphs,
//! substreams, rate requirements, and execution graphs.

use desim::{SimDuration, SimRng};
use simnet::NodeId;

/// Identifies a service (a processing *function*, e.g. "transcode").
pub type ServiceId = usize;

/// Identifies a submitted application within an engine run.
pub type AppId = usize;

/// Static description of one service.
#[derive(Clone, Debug)]
pub struct Service {
    /// Dense id.
    pub id: ServiceId,
    /// Human-readable name (also the DHT registration key input).
    pub name: String,
    /// Mean CPU time to process one data unit (`t_ci`'s ground truth; the
    /// runtime adds noise and the monitors re-estimate it).
    pub exec_time: SimDuration,
    /// Output rate / input rate (`R_ci`, §2.2). 1.0 for the paper's
    /// evaluated configuration.
    pub rate_ratio: f64,
}

/// The set of services that exist in a deployment.
#[derive(Clone, Debug)]
pub struct ServiceCatalog {
    services: Vec<Service>,
}

impl ServiceCatalog {
    /// Builds a catalog from explicit services.
    pub fn new(services: Vec<Service>) -> Self {
        assert!(!services.is_empty(), "catalog cannot be empty");
        for (i, s) in services.iter().enumerate() {
            assert_eq!(s.id, i, "service ids must be dense and in order");
            assert!(s.rate_ratio > 0.0, "rate ratio must be positive");
        }
        ServiceCatalog { services }
    }

    /// A synthetic catalog of `n` services with exec times spread over
    /// 1–8 ms and unit rate ratios (the paper's evaluated case),
    /// deterministic in `seed`.
    pub fn synthetic(n: usize, seed: u64) -> Self {
        let mut rng = SimRng::new(seed ^ 0x5345525649434553);
        let services = (0..n)
            .map(|id| Service {
                id,
                name: format!("service-{id}"),
                exec_time: SimDuration::from_micros(rng.range_u64(1_000, 8_000)),
                rate_ratio: 1.0,
            })
            .collect();
        ServiceCatalog::new(services)
    }

    /// Number of services.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// True when the catalog is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }

    /// The service with the given id.
    pub fn get(&self, id: ServiceId) -> &Service {
        &self.services[id]
    }

    /// All services.
    pub fn iter(&self) -> impl Iterator<Item = &Service> {
        self.services.iter()
    }
}

/// One substream of a request: a chain of services the stream traverses
/// in order, from the source to the destination (§2.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Substream {
    /// The service chain, in processing order.
    pub services: Vec<ServiceId>,
}

/// The service request graph `G_req`: one or more substreams that all
/// originate at the request's source and terminate at its destination.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServiceRequestGraph {
    /// The `m` substreams.
    pub substreams: Vec<Substream>,
}

impl ServiceRequestGraph {
    /// Total number of service invocations across substreams.
    pub fn total_services(&self) -> usize {
        self.substreams.iter().map(|s| s.services.len()).sum()
    }
}

/// A user's stream processing request: `req = <G_req, r_req>` plus the
/// endpoints and the data-unit size (application-defined, §2.1).
#[derive(Clone, Debug)]
pub struct ServiceRequest {
    /// The service request graph.
    pub graph: ServiceRequestGraph,
    /// Rate requirement vector: required *delivery* rate (data units per
    /// second at the destination) per substream.
    pub rates: Vec<f64>,
    /// The node where the stream originates.
    pub source: NodeId,
    /// The node that presents results to the user.
    pub destination: NodeId,
    /// Size of one data unit in bits.
    pub unit_bits: u64,
    /// How long the stream runs once started; `None` = until the end of
    /// the simulation (the paper's continuous-stream case).
    pub lifetime: Option<SimDuration>,
}

/// Default data-unit size: 8 kilobits (1 KiB), a typical media chunk.
pub const DEFAULT_UNIT_BITS: u64 = 8_192;

impl ServiceRequest {
    /// Convenience constructor: a single substream through `services` at
    /// `rate` data units per second.
    pub fn chain(services: &[ServiceId], rate: f64, source: NodeId, destination: NodeId) -> Self {
        assert!(!services.is_empty(), "empty service chain");
        assert!(rate > 0.0, "rate must be positive");
        ServiceRequest {
            graph: ServiceRequestGraph {
                substreams: vec![Substream {
                    services: services.to_vec(),
                }],
            },
            rates: vec![rate],
            source,
            destination,
            unit_bits: DEFAULT_UNIT_BITS,
            lifetime: None,
        }
    }

    /// Limits the stream to `lifetime` of emission once it starts; the
    /// engine then tears the application down and releases its
    /// capacity commitments.
    pub fn with_lifetime(mut self, lifetime: SimDuration) -> Self {
        assert!(lifetime > SimDuration::ZERO, "lifetime must be positive");
        self.lifetime = Some(lifetime);
        self
    }

    /// Multi-substream constructor mirroring the paper's Figure 2.
    pub fn multi(
        substreams: Vec<Vec<ServiceId>>,
        rates: Vec<f64>,
        source: NodeId,
        destination: NodeId,
    ) -> Self {
        assert_eq!(substreams.len(), rates.len(), "one rate per substream");
        assert!(!substreams.is_empty(), "at least one substream");
        assert!(substreams.iter().all(|s| !s.is_empty()), "empty substream");
        assert!(rates.iter().all(|&r| r > 0.0), "rates must be positive");
        ServiceRequest {
            graph: ServiceRequestGraph {
                substreams: substreams
                    .into_iter()
                    .map(|services| Substream { services })
                    .collect(),
            },
            rates,
            source,
            destination,
            unit_bits: DEFAULT_UNIT_BITS,
            lifetime: None,
        }
    }

    /// Aggregate requested delivery rate in bits/s (for reporting).
    pub fn total_bits_per_sec(&self) -> f64 {
        self.rates.iter().sum::<f64>() * self.unit_bits as f64
    }

    /// Validates service ids against a catalog.
    pub fn validate(&self, catalog: &ServiceCatalog) -> Result<(), String> {
        for sub in &self.graph.substreams {
            for &s in &sub.services {
                if s >= catalog.len() {
                    return Err(format!("unknown service id {s}"));
                }
            }
        }
        Ok(())
    }
}

/// One deployed component: an instance of a service on a node carrying a
/// fraction of a substream's rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Placement {
    /// The hosting node.
    pub node: NodeId,
    /// Input rate assigned to this instance (data units per second).
    pub rate: f64,
}

/// All instances of one service invocation (one "stage" of a substream).
/// Rate splitting ⇒ possibly more than one placement.
#[derive(Clone, Debug, PartialEq)]
pub struct Stage {
    /// The service this stage instantiates.
    pub service: ServiceId,
    /// The component instances and their rate shares.
    pub placements: Vec<Placement>,
}

impl Stage {
    /// Total input rate across instances.
    pub fn total_rate(&self) -> f64 {
        self.placements.iter().map(|p| p.rate).sum()
    }
}

/// The execution graph: the mapping of a request onto the overlay
/// (§2.3) — per substream, the ordered stages with their placements.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecutionGraph {
    /// Per-substream stage chains, aligned with the request's substreams.
    pub substreams: Vec<Vec<Stage>>,
}

impl ExecutionGraph {
    /// Number of component instances overall.
    pub fn component_count(&self) -> usize {
        self.substreams
            .iter()
            .flatten()
            .map(|st| st.placements.len())
            .sum()
    }

    /// Whether any stage was split across multiple nodes.
    pub fn has_splitting(&self) -> bool {
        self.substreams
            .iter()
            .flatten()
            .any(|st| st.placements.len() > 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_catalog_is_deterministic() {
        let a = ServiceCatalog::synthetic(10, 3);
        let b = ServiceCatalog::synthetic(10, 3);
        assert_eq!(a.len(), 10);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.exec_time, y.exec_time);
            assert_eq!(x.name, y.name);
        }
        assert!(a.iter().all(|s| s.rate_ratio == 1.0));
        assert!(a.iter().all(|s| s.exec_time >= SimDuration::from_millis(1)
            && s.exec_time <= SimDuration::from_millis(8)));
    }

    #[test]
    fn chain_request_shape() {
        let r = ServiceRequest::chain(&[2, 0, 1], 12.5, 3, 9);
        assert_eq!(r.graph.substreams.len(), 1);
        assert_eq!(r.graph.total_services(), 3);
        assert_eq!(r.rates, vec![12.5]);
        assert_eq!(r.source, 3);
        assert_eq!(r.destination, 9);
        assert!((r.total_bits_per_sec() - 12.5 * 8192.0).abs() < 1e-9);
    }

    #[test]
    fn multi_request_mirrors_figure_2() {
        // Figure 2: substream 1 through s1, s2; substream 2 through s3.
        let r = ServiceRequest::multi(vec![vec![1, 2], vec![3]], vec![10.0, 5.0], 0, 7);
        assert_eq!(r.graph.substreams.len(), 2);
        assert_eq!(r.graph.substreams[0].services, vec![1, 2]);
        assert_eq!(r.graph.substreams[1].services, vec![3]);
    }

    #[test]
    fn validate_catches_unknown_service() {
        let catalog = ServiceCatalog::synthetic(3, 1);
        let ok = ServiceRequest::chain(&[0, 2], 5.0, 0, 1);
        let bad = ServiceRequest::chain(&[0, 7], 5.0, 0, 1);
        assert!(ok.validate(&catalog).is_ok());
        assert!(bad.validate(&catalog).is_err());
    }

    #[test]
    fn execution_graph_accounting() {
        let g = ExecutionGraph {
            substreams: vec![vec![
                Stage {
                    service: 0,
                    placements: vec![
                        Placement { node: 1, rate: 6.0 },
                        Placement { node: 2, rate: 4.0 },
                    ],
                },
                Stage {
                    service: 1,
                    placements: vec![Placement {
                        node: 3,
                        rate: 10.0,
                    }],
                },
            ]],
        };
        assert_eq!(g.component_count(), 3);
        assert!(g.has_splitting());
        assert!((g.substreams[0][0].total_rate() - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one rate per substream")]
    fn multi_rate_mismatch_panics() {
        ServiceRequest::multi(vec![vec![0]], vec![1.0, 2.0], 0, 1);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn catalog_requires_dense_ids() {
        ServiceCatalog::new(vec![Service {
            id: 5,
            name: "x".into(),
            exec_time: SimDuration::from_millis(1),
            rate_ratio: 1.0,
        }]);
    }
}
