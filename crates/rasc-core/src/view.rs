//! The composition-time view of the system (§3.2's monitoring output).
//!
//! When a request arrives, RASC gathers from the candidate hosts their
//! availability vectors `A_n = [b_in, b_out]` and recent drop ratios.
//! The [`SystemView`] is that snapshot. The engine builds a fresh view
//! per composition from its measurement windows and committed-rate
//! ledger (`max(measured, committed)` per NIC direction); within one
//! composition, the composers additionally reserve into the view as they
//! place substreams, so multi-substream requests account for their own
//! earlier placements (Algorithm 1's capacity update). All three
//! composition algorithms read the same snapshot, so they face identical
//! capacity constraints.
//!
//! At thousand-node scale the view also answers *which hosts are worth
//! considering*: a per-direction capacity-bucketed index (power-of-two
//! buckets over remaining bandwidth, kept coherent through every
//! mutation and rollback) lets [`select_top_candidates_indexed`]
//! (SystemView::select_top_candidates_indexed) return the best-k
//! providers without scanning the whole provider list — and provably
//! returns the same set as the linear reference scan.

use monitor::{ResidualDigest, ResourceVector};
use simnet::{NodeId, Topology};

/// One undo-log record: the pre-mutation value of the field it names.
/// Snapshots (not arithmetic inverses) are required because
/// [`ResourceVector::consume`] clamps at zero, which a release cannot
/// invert exactly.
#[derive(Clone, Debug, PartialEq)]
enum Undo {
    Avail(NodeId, ResourceVector),
    Cpu(NodeId, f64),
}

/// Power-of-two capacity buckets. Bucket 0 holds availabilities below
/// 1 bit/s (effectively exhausted); bucket `b ≥ 1` holds values in
/// `[2^(b-1), 2^b)`. 64 buckets cover every bandwidth up to ~4.6e18
/// bits/s; anything larger clamps into the top bucket.
const NBUCKETS: usize = 64;

/// Bucket of availability `a` (see [`NBUCKETS`]).
fn bucket_of_value(a: f64) -> usize {
    if a < 1.0 {
        0
    } else {
        // floor(log2 a) via the IEEE-754 exponent; exact for a >= 1.
        let e = ((a.to_bits() >> 52) & 0x7FF) as usize - 1023;
        (e + 1).min(NBUCKETS - 1)
    }
}

/// One direction's bucket index: node ids grouped by the power-of-two
/// bucket of their remaining bandwidth, with `O(1)` swap-remove moves.
/// Bucket-internal order is history-dependent (swap-remove), so the
/// index never participates in `PartialEq` — only the multiset of
/// (node, bucket) pairs is meaningful, and that is a pure function of
/// `avail`.
#[derive(Debug, Default)]
struct DirIndex {
    buckets: Vec<Vec<u32>>,
    bucket_of: Vec<u8>,
    pos: Vec<u32>,
}

impl Clone for DirIndex {
    fn clone(&self) -> Self {
        DirIndex {
            buckets: self.buckets.clone(),
            bucket_of: self.bucket_of.clone(),
            pos: self.pos.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        // `Vec::clone_from` recurses into the per-bucket vectors, so a
        // pooled index re-synced every batch stops allocating once its
        // buckets have grown to their working size.
        self.buckets.clone_from(&source.buckets);
        self.bucket_of.clone_from(&source.bucket_of);
        self.pos.clone_from(&source.pos);
    }
}

impl DirIndex {
    fn build(vals: impl ExactSizeIterator<Item = f64>) -> Self {
        let mut idx = DirIndex {
            buckets: vec![Vec::new(); NBUCKETS],
            bucket_of: Vec::with_capacity(vals.len()),
            pos: Vec::with_capacity(vals.len()),
        };
        for (v, a) in vals.enumerate() {
            let b = bucket_of_value(a);
            idx.bucket_of.push(b as u8);
            idx.pos.push(idx.buckets[b].len() as u32);
            idx.buckets[b].push(v as u32);
        }
        idx
    }

    fn update(&mut self, v: NodeId, val: f64) {
        let b = bucket_of_value(val);
        let old = self.bucket_of[v] as usize;
        if old == b {
            return;
        }
        let p = self.pos[v] as usize;
        let bucket = &mut self.buckets[old];
        bucket.swap_remove(p);
        if let Some(&moved) = bucket.get(p) {
            self.pos[moved as usize] = p as u32;
        }
        self.bucket_of[v] = b as u8;
        self.pos[v] = self.buckets[b].len() as u32;
        self.buckets[b].push(v as u32);
    }
}

/// Per-node availability snapshot used by the composers.
///
/// `PartialEq` compares the availability state bit-for-bit (floats by
/// exact equality) — this is deliberate: the auditor's rollback-exactness
/// check asserts that a rejected composition leaves the view *bit-equal*
/// to its pre-compose snapshot, not merely approximately restored. The
/// capacity index and the transaction journal are excluded: the index is
/// derived state whose bucket-internal order is history-dependent, and
/// audited comparisons happen outside transactions.
#[derive(Debug)]
pub struct SystemView {
    /// Remaining (unreserved) capacity per node: `[b_in, b_out]` bits/s.
    avail: Vec<ResourceVector>,
    /// Admittable capacity per node (NIC rate × headroom), the reference
    /// for utilization computations.
    cap: Vec<ResourceVector>,
    /// Remaining CPU per node, in cores. `INFINITY` = unconstrained
    /// (the paper's evaluated configuration; finite values implement its
    /// stated future work, "multiple resource constraints", §6).
    cpu_avail: Vec<f64>,
    /// Admittable CPU per node, in cores.
    cpu_cap: Vec<f64>,
    /// Most recent drop ratio per node (0..=1), from the monitoring
    /// windows.
    drop_ratio: Vec<f64>,
    /// Undo log of the open transaction stack (see [`begin_transaction`]
    /// (Self::begin_transaction)); empty outside one. The buffer is
    /// retained across transactions so the all-or-nothing composition
    /// path allocates nothing in steady state.
    journal: Vec<Undo>,
    /// Journal watermarks of the open transactions, innermost last:
    /// rolling back pops the journal to the top watermark, so
    /// transactions nest (a batch admitter wraps whole compositions —
    /// which open their own transactions — in an outer one it unwinds).
    marks: Vec<usize>,
    /// Per-direction capacity bucket index over `avail`.
    in_index: DirIndex,
    out_index: DirIndex,
}

impl Clone for SystemView {
    fn clone(&self) -> Self {
        SystemView {
            avail: self.avail.clone(),
            cap: self.cap.clone(),
            cpu_avail: self.cpu_avail.clone(),
            cpu_cap: self.cpu_cap.clone(),
            drop_ratio: self.drop_ratio.clone(),
            journal: self.journal.clone(),
            marks: self.marks.clone(),
            in_index: self.in_index.clone(),
            out_index: self.out_index.clone(),
        }
    }

    /// Re-syncs an existing view to `source` while reusing every heap
    /// buffer (per-node resource vectors included). A fresh `clone()` of
    /// an `n`-node view performs `O(n)` allocations because each node's
    /// [`ResourceVector`] is heap-backed; `clone_from` onto a same-sized
    /// view performs none. The batch admitter leans on this: pooled
    /// worker views are re-synced to each batch's base snapshot instead
    /// of being re-cloned.
    fn clone_from(&mut self, source: &Self) {
        self.avail.clone_from(&source.avail);
        self.cap.clone_from(&source.cap);
        self.cpu_avail.clone_from(&source.cpu_avail);
        self.cpu_cap.clone_from(&source.cpu_cap);
        self.drop_ratio.clone_from(&source.drop_ratio);
        self.journal.clone_from(&source.journal);
        self.marks.clone_from(&source.marks);
        self.in_index.clone_from(&source.in_index);
        self.out_index.clone_from(&source.out_index);
    }
}

impl PartialEq for SystemView {
    fn eq(&self, other: &Self) -> bool {
        self.avail == other.avail
            && self.cap == other.cap
            && self.cpu_avail == other.cpu_avail
            && self.cpu_cap == other.cpu_cap
            && self.drop_ratio == other.drop_ratio
    }
}

impl SystemView {
    /// Builds a view with full capacities from the topology and zero
    /// drop ratios (fresh system).
    pub fn fresh(topology: &Topology) -> Self {
        Self::with_headroom(topology, 1.0)
    }

    /// Builds a view that only admits up to `headroom` (0, 1] of each
    /// NIC's rate. Keeping reservations below the physical rate bounds
    /// per-node utilization, and with it queueing delay — a NIC reserved
    /// to 100% runs at ρ≈1 and its delay diverges, which no admission
    /// controller deployed on a shared testbed would allow.
    pub fn with_headroom(topology: &Topology, headroom: f64) -> Self {
        assert!(headroom > 0.0 && headroom <= 1.0, "headroom in (0, 1]");
        let cap: Vec<ResourceVector> = (0..topology.len())
            .map(|v| {
                let s = topology.spec(v);
                ResourceVector::bandwidth(s.bw_in * headroom, s.bw_out * headroom)
            })
            .collect();
        let in_index = DirIndex::build(cap.iter().map(|rv| rv.get(0)));
        let out_index = DirIndex::build(cap.iter().map(|rv| rv.get(1)));
        SystemView {
            avail: cap.clone(),
            drop_ratio: vec![0.0; topology.len()],
            cpu_avail: vec![f64::INFINITY; topology.len()],
            cpu_cap: vec![f64::INFINITY; topology.len()],
            cap,
            journal: Vec::new(),
            marks: Vec::new(),
            in_index,
            out_index,
        }
    }

    /// Opens a reservation transaction: every subsequent mutation of the
    /// availability state (`avail` / `cpu_avail`) is journaled until the
    /// transaction is [committed](Self::commit_transaction) or
    /// [rolled back](Self::rollback_transaction).
    ///
    /// This replaces the composers' former whole-view `clone()` backup:
    /// a failed composition undoes only the handful of nodes it touched
    /// instead of copying (and restoring) every node's vectors.
    ///
    /// Transactions nest by journal watermark: an inner commit keeps its
    /// entries on the journal (so an enclosing rollback still restores
    /// them), an inner rollback unwinds only past its own watermark, and
    /// the journal is freed when the outermost transaction commits.
    pub fn begin_transaction(&mut self) {
        self.marks.push(self.journal.len());
    }

    /// Closes the innermost open transaction, keeping all mutations.
    pub fn commit_transaction(&mut self) {
        self.marks.pop().expect("no open transaction");
        if self.marks.is_empty() {
            self.journal.clear();
        }
    }

    /// Closes the innermost open transaction, restoring every field it
    /// journaled to its pre-transaction value (applied in reverse
    /// mutation order).
    pub fn rollback_transaction(&mut self) {
        let mark = self.marks.pop().expect("no open transaction");
        while self.journal.len() > mark {
            match self.journal.pop().unwrap() {
                Undo::Avail(v, rv) => {
                    self.avail[v] = rv;
                    self.reindex(v);
                }
                Undo::Cpu(v, c) => self.cpu_avail[v] = c,
            }
        }
    }

    /// Whether a reservation transaction is currently open.
    pub fn in_transaction(&self) -> bool {
        !self.marks.is_empty()
    }

    fn log_avail(&mut self, v: NodeId) {
        if !self.marks.is_empty() {
            self.journal.push(Undo::Avail(v, self.avail[v].clone()));
        }
    }

    fn log_cpu(&mut self, v: NodeId) {
        if !self.marks.is_empty() {
            self.journal.push(Undo::Cpu(v, self.cpu_avail[v]));
        }
    }

    /// Re-files node `v` in the capacity index after an `avail` change.
    fn reindex(&mut self, v: NodeId) {
        self.in_index.update(v, self.avail[v].get(0));
        self.out_index.update(v, self.avail[v].get(1));
    }

    /// Enables the CPU dimension for node `v` with `cores` of admittable
    /// processing capacity (already headroom-scaled by the caller).
    pub fn set_cpu_capacity(&mut self, v: NodeId, cores: f64) {
        assert!(cores >= 0.0 && cores.is_finite(), "invalid CPU capacity");
        debug_assert!(
            !self.in_transaction(),
            "capacity reconfiguration inside a reservation transaction"
        );
        self.cpu_cap[v] = cores;
        self.cpu_avail[v] = cores;
    }

    /// Deducts measured/committed CPU usage (in cores) from `v`.
    pub fn consume_measured_cpu(&mut self, v: NodeId, cores_in_use: f64) {
        self.log_cpu(v);
        if self.cpu_avail[v].is_finite() {
            self.cpu_avail[v] = (self.cpu_avail[v] - cores_in_use.max(0.0)).max(0.0);
        }
    }

    /// Remaining CPU of `v` in cores (`INFINITY` when unconstrained).
    pub fn cpu_avail(&self, v: NodeId) -> f64 {
        self.cpu_avail[v]
    }

    /// Reserved fraction of the node's binding resource (0 = idle,
    /// 1 = fully reserved). The paper observes that drop probability
    /// grows with load (§2.2); composers may fold this into edge costs
    /// as the predictive part of the drop signal.
    pub fn utilization(&self, v: NodeId) -> f64 {
        let mut u: f64 = 0.0;
        for j in 0..self.cap[v].dims() {
            let cap = self.cap[v].get(j);
            if cap > 0.0 {
                u = u.max(1.0 - self.avail[v].get(j) / cap);
            }
        }
        if self.cpu_cap[v].is_finite() && self.cpu_cap[v] > 0.0 {
            u = u.max(1.0 - self.cpu_avail[v] / self.cpu_cap[v]);
        }
        u.clamp(0.0, 1.0)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.avail.len()
    }

    /// True when the view covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.avail.is_empty()
    }

    /// Remaining availability vector of `v`.
    pub fn avail(&self, v: NodeId) -> &ResourceVector {
        &self.avail[v]
    }

    /// Last observed drop ratio of `v`.
    pub fn drop_ratio(&self, v: NodeId) -> f64 {
        self.drop_ratio[v]
    }

    /// Updates the drop-ratio feedback for `v` (the engine pushes fresh
    /// window readings before each composition).
    pub fn set_drop_ratio(&mut self, v: NodeId, ratio: f64) {
        assert!((0.0..=1.0).contains(&ratio), "ratio out of range: {ratio}");
        self.drop_ratio[v] = ratio;
    }

    /// Re-syncs only the listed nodes' entries from `source`, reusing
    /// every heap buffer — the shard-local analogue of `clone_from`:
    /// a shard owning `m` of `n` nodes pays `O(m)` per batch to refresh
    /// its authoritative slice instead of `O(n)` for the whole view.
    /// The remaining entries keep whatever the caller last put there
    /// (typically a declared-stale digest patch).
    pub fn sync_nodes_from(&mut self, source: &SystemView, members: &[NodeId]) {
        assert_eq!(self.len(), source.len(), "view size mismatch");
        assert!(
            !self.in_transaction() && !source.in_transaction(),
            "partial sync inside a reservation transaction"
        );
        for &v in members {
            self.avail[v].clone_from(&source.avail[v]);
            self.cap[v].clone_from(&source.cap[v]);
            self.cpu_avail[v] = source.cpu_avail[v];
            self.cpu_cap[v] = source.cpu_cap[v];
            self.drop_ratio[v] = source.drop_ratio[v];
            self.reindex(v);
        }
    }

    /// Patches the listed nodes' availability state from a monitoring
    /// digest of reported residuals. This is how a shard sees the rest
    /// of the system: remote entries reflect the digest's capture time,
    /// not the present — *declared* staleness the optimistic commit path
    /// resolves against the authoritative view.
    pub fn apply_residual_digest(&mut self, digest: &ResidualDigest, members: &[NodeId]) {
        assert_eq!(self.len(), digest.len(), "digest size mismatch");
        assert!(
            !self.in_transaction(),
            "digest patch inside a reservation transaction"
        );
        for &v in members {
            let (in_bps, out_bps, cpu, drop) = digest.get(v);
            self.avail[v].set(0, in_bps);
            self.avail[v].set(1, out_bps);
            self.cpu_avail[v] = cpu;
            self.drop_ratio[v] = drop;
            self.reindex(v);
        }
    }

    /// `r_max(c, n)` for a component whose unit occupies `unit_bits` on
    /// both NIC directions scaled by the rate ratio on output (§3.5):
    /// the largest ingest rate (du/s) node `v` can still accept.
    pub fn max_rate(&self, v: NodeId, unit_bits: u64, rate_ratio: f64) -> f64 {
        let per_unit = Self::per_unit(unit_bits, rate_ratio);
        self.avail[v].max_rate(&per_unit)
    }

    /// [`max_rate`](Self::max_rate) with the CPU dimension: the largest
    /// ingest rate for a component that also needs `exec_secs` of CPU
    /// per data unit. Equals `max_rate` when `v`'s CPU is unconstrained.
    pub fn max_rate_with_cpu(
        &self,
        v: NodeId,
        unit_bits: u64,
        rate_ratio: f64,
        exec_secs: f64,
    ) -> f64 {
        let bw = self.max_rate(v, unit_bits, rate_ratio);
        if self.cpu_avail[v].is_finite() && exec_secs > 0.0 {
            bw.min(self.cpu_avail[v] / exec_secs)
        } else {
            bw
        }
    }

    /// Reserves bandwidth on `v` for a component ingesting at `rate`
    /// du/s. `rate_ratio` scales the output-side reservation.
    pub fn reserve_component(&mut self, v: NodeId, unit_bits: u64, rate_ratio: f64, rate: f64) {
        self.log_avail(v);
        let per_unit = Self::per_unit(unit_bits, rate_ratio);
        self.avail[v].consume(&per_unit, rate);
        self.reindex(v);
    }

    /// Reserves the CPU of a component processing `rate` du/s at
    /// `exec_secs` each. No-op when `v`'s CPU is unconstrained.
    pub fn reserve_cpu(&mut self, v: NodeId, exec_secs: f64, rate: f64) {
        self.log_cpu(v);
        if self.cpu_avail[v].is_finite() {
            self.cpu_avail[v] = (self.cpu_avail[v] - exec_secs * rate).max(0.0);
        }
    }

    /// Releases a component's reservation (teardown).
    pub fn release_component(&mut self, v: NodeId, unit_bits: u64, rate_ratio: f64, rate: f64) {
        self.log_avail(v);
        let per_unit = Self::per_unit(unit_bits, rate_ratio);
        self.avail[v].release(&per_unit, rate);
        self.reindex(v);
    }

    /// Deducts *measured* traffic (bits/s, from the throughput meters)
    /// from the node's availability — the paper's §3.2 monitoring path:
    /// "the input and output bandwidth utilized are calculated by
    /// continuously monitoring the rates of incoming and outgoing data
    /// units".
    pub fn consume_measured(&mut self, v: NodeId, in_bps: f64, out_bps: f64) {
        self.log_avail(v);
        self.avail[v].consume(&ResourceVector::bandwidth(in_bps, out_bps), 1.0);
        self.reindex(v);
    }

    /// Reserves source-side output bandwidth (the origin emits at `rate`).
    pub fn reserve_source(&mut self, v: NodeId, unit_bits: u64, rate: f64) {
        self.log_avail(v);
        self.avail[v].consume(&ResourceVector::bandwidth(0.0, unit_bits as f64), rate);
        self.reindex(v);
    }

    /// Reserves destination-side input bandwidth.
    pub fn reserve_destination(&mut self, v: NodeId, unit_bits: u64, rate: f64) {
        self.log_avail(v);
        self.avail[v].consume(&ResourceVector::bandwidth(unit_bits as f64, 0.0), rate);
        self.reindex(v);
    }

    /// Remaining output-side rate capacity of `v` in du/s.
    pub fn out_rate_capacity(&self, v: NodeId, unit_bits: u64) -> f64 {
        self.avail[v].get(1) / unit_bits as f64
    }

    /// Remaining input-side rate capacity of `v` in du/s.
    pub fn in_rate_capacity(&self, v: NodeId, unit_bits: u64) -> f64 {
        self.avail[v].get(0) / unit_bits as f64
    }

    fn per_unit(unit_bits: u64, rate_ratio: f64) -> ResourceVector {
        ResourceVector::bandwidth(unit_bits as f64, unit_bits as f64 * rate_ratio)
    }

    /// The metric top-k candidate selection ranks hosts by: the host's
    /// bottleneck remaining bandwidth, `min(avail_in, avail_out)` bits/s.
    pub fn candidate_metric(&self, v: NodeId) -> f64 {
        self.avail[v].get(0).min(self.avail[v].get(1))
    }

    /// Reference top-k selection: scans every provider, ranks by
    /// ([`candidate_metric`](Self::candidate_metric) descending, node id
    /// ascending), returns the best `k` sorted by node id. `O(p log p)`
    /// in the provider count.
    pub fn select_top_candidates_linear(
        &self,
        providers: &[NodeId],
        k: usize,
        out: &mut Vec<NodeId>,
    ) {
        out.clear();
        if k == 0 {
            return;
        }
        let mut scored: Vec<(f64, NodeId)> = providers
            .iter()
            .map(|&v| (self.candidate_metric(v), v))
            .collect();
        Self::rank_and_emit(&mut scored, k, out);
    }

    /// Indexed top-k selection: walks the capacity buckets from the
    /// highest down, collecting providers whose *joint* bucket (the
    /// bucket of their bottleneck direction) is the one being visited,
    /// and stops as soon as `k` candidates are in hand — every
    /// still-unvisited provider's metric is then strictly below the
    /// current bucket's lower bound, hence below all `k` collected
    /// metrics, so the exact final ranking cannot involve it. Returns
    /// exactly the [linear](Self::select_top_candidates_linear) result.
    ///
    /// `providers` must be sorted ascending (membership is a binary
    /// search). Cost: `O(scanned × log p + k log k)` where `scanned`
    /// stops growing once `k` providers are found — with provider
    /// density `p/n` roughly constant across topology sizes, that is
    /// independent of the node count, where the linear scan is `O(p)`
    /// with `p ∝ n`.
    pub fn select_top_candidates_indexed(
        &self,
        providers: &[NodeId],
        k: usize,
        out: &mut Vec<NodeId>,
    ) {
        debug_assert!(
            providers.windows(2).all(|w| w[0] < w[1]),
            "providers must be sorted ascending without duplicates"
        );
        out.clear();
        if k == 0 || providers.is_empty() {
            return;
        }
        let mut scored: Vec<(f64, NodeId)> = Vec::with_capacity(k.min(providers.len()) * 2);
        for b in (0..NBUCKETS).rev() {
            // Joint-bucket-b members: bottleneck direction files here,
            // the other direction at b or above. Nodes with both
            // directions in b come from the in-walk only (the out-walk
            // requires strictly-greater in-bucket), so nothing repeats.
            for &v in &self.in_index.buckets[b] {
                let v = v as usize;
                if self.out_index.bucket_of[v] as usize >= b && providers.binary_search(&v).is_ok()
                {
                    scored.push((self.candidate_metric(v), v));
                }
            }
            for &v in &self.out_index.buckets[b] {
                let v = v as usize;
                if self.in_index.bucket_of[v] as usize > b && providers.binary_search(&v).is_ok() {
                    scored.push((self.candidate_metric(v), v));
                }
            }
            if scored.len() >= k {
                break;
            }
        }
        Self::rank_and_emit(&mut scored, k, out);
    }

    /// Shared tail of both selections: exact (metric desc, id asc)
    /// ranking, truncate to `k`, emit sorted by id.
    fn rank_and_emit(scored: &mut Vec<(f64, NodeId)>, k: usize, out: &mut Vec<NodeId>) {
        scored.sort_unstable_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .expect("availability is never NaN")
                .then(a.1.cmp(&b.1))
        });
        scored.truncate(k);
        out.extend(scored.iter().map(|&(_, v)| v));
        out.sort_unstable();
    }

    /// Validates the capacity index against a from-scratch rebuild
    /// (test/audit hook): every node filed in the bucket of its current
    /// availability, positions consistent.
    #[doc(hidden)]
    pub fn check_index_coherence(&self) {
        for (dir, idx) in [(0, &self.in_index), (1, &self.out_index)] {
            let mut seen = 0usize;
            for (b, bucket) in idx.buckets.iter().enumerate() {
                for (p, &v) in bucket.iter().enumerate() {
                    let v = v as usize;
                    assert_eq!(idx.bucket_of[v] as usize, b, "bucket_of mismatch at {v}");
                    assert_eq!(idx.pos[v] as usize, p, "pos mismatch at {v}");
                    assert_eq!(
                        bucket_of_value(self.avail[v].get(dir)),
                        b,
                        "node {v} filed in stale bucket (dir {dir})"
                    );
                    seen += 1;
                }
            }
            assert_eq!(seen, self.len(), "index lost or duplicated nodes");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::{SimDuration, SimRng};
    use simnet::Topology;

    fn view() -> SystemView {
        // 2 nodes at 1 Mbps symmetric.
        SystemView::fresh(&Topology::uniform(
            2,
            1_000_000.0,
            SimDuration::from_millis(10),
        ))
    }

    #[test]
    fn fresh_view_has_full_capacity_and_zero_drops() {
        let v = view();
        assert_eq!(v.len(), 2);
        assert_eq!(v.drop_ratio(0), 0.0);
        // 1 Mbps / 8192 bits ≈ 122 du/s.
        let r = v.max_rate(0, 8192, 1.0);
        assert!((r - 1_000_000.0 / 8192.0).abs() < 1e-9);
    }

    #[test]
    fn reservation_reduces_max_rate() {
        let mut v = view();
        v.reserve_component(0, 8192, 1.0, 50.0);
        let r = v.max_rate(0, 8192, 1.0);
        assert!((r - (1_000_000.0 / 8192.0 - 50.0)).abs() < 1e-9);
        v.release_component(0, 8192, 1.0, 50.0);
        assert!((v.max_rate(0, 8192, 1.0) - 1_000_000.0 / 8192.0).abs() < 1e-9);
    }

    #[test]
    fn rate_ratio_weights_output_side() {
        let mut v = view();
        // Ratio 2: output is the bottleneck at half the input rate.
        let r = v.max_rate(0, 8192, 2.0);
        assert!((r - 1_000_000.0 / (2.0 * 8192.0)).abs() < 1e-9);
        v.reserve_component(0, 8192, 2.0, 10.0);
        assert!((v.in_rate_capacity(0, 8192) - (1_000_000.0 / 8192.0 - 10.0)).abs() < 1e-9);
        assert!((v.out_rate_capacity(0, 8192) - (1_000_000.0 / 8192.0 - 20.0)).abs() < 1e-9);
    }

    #[test]
    fn endpoint_reservations_are_one_sided() {
        let mut v = view();
        v.reserve_source(0, 8192, 30.0);
        assert!((v.in_rate_capacity(0, 8192) - 1_000_000.0 / 8192.0).abs() < 1e-9);
        assert!((v.out_rate_capacity(0, 8192) - (1_000_000.0 / 8192.0 - 30.0)).abs() < 1e-9);
        v.reserve_destination(1, 8192, 30.0);
        assert!((v.in_rate_capacity(1, 8192) - (1_000_000.0 / 8192.0 - 30.0)).abs() < 1e-9);
    }

    #[test]
    fn drop_ratio_updates() {
        let mut v = view();
        v.set_drop_ratio(1, 0.25);
        assert_eq!(v.drop_ratio(1), 0.25);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_ratio_rejected() {
        view().set_drop_ratio(0, 1.5);
    }

    /// Rollback must restore the exact pre-transaction state even when a
    /// reservation clamped at zero (an arithmetic release could not).
    #[test]
    fn rollback_restores_exactly_despite_clamping() {
        let mut v = view();
        v.reserve_component(0, 8192, 1.0, 10.0);
        let before_in = v.in_rate_capacity(0, 8192);
        let before_out = v.out_rate_capacity(1, 8192);

        v.begin_transaction();
        assert!(v.in_transaction());
        // Over-reserve far past capacity: avail clamps at 0.
        v.reserve_component(0, 8192, 1.0, 1e9);
        v.reserve_source(1, 8192, 1e9);
        v.reserve_destination(1, 8192, 5.0);
        v.consume_measured(0, 123.0, 456.0);
        assert_eq!(v.in_rate_capacity(0, 8192), 0.0);
        v.rollback_transaction();

        assert!(!v.in_transaction());
        assert!((v.in_rate_capacity(0, 8192) - before_in).abs() < 1e-12);
        assert!((v.out_rate_capacity(1, 8192) - before_out).abs() < 1e-12);
        v.check_index_coherence();
    }

    #[test]
    fn commit_keeps_reservations() {
        let mut v = view();
        v.begin_transaction();
        v.reserve_component(0, 8192, 1.0, 40.0);
        v.commit_transaction();
        assert!((v.max_rate(0, 8192, 1.0) - (1_000_000.0 / 8192.0 - 40.0)).abs() < 1e-9);
    }

    #[test]
    fn cpu_reservations_roll_back() {
        let mut v = view();
        v.set_cpu_capacity(0, 4.0);
        v.begin_transaction();
        v.reserve_cpu(0, 0.5, 6.0);
        v.consume_measured_cpu(0, 0.5);
        assert!((v.cpu_avail(0) - 0.5).abs() < 1e-12);
        v.rollback_transaction();
        assert!((v.cpu_avail(0) - 4.0).abs() < 1e-12);
    }

    /// Transactions nest by watermark: the inner commit's mutations
    /// survive until the outer rollback unwinds everything, and an inner
    /// rollback leaves the outer transaction's mutations standing.
    #[test]
    fn transactions_nest_by_watermark() {
        let mut v = view();
        let base = v.clone();
        v.begin_transaction();
        v.reserve_component(0, 8192, 1.0, 10.0);

        v.begin_transaction();
        v.reserve_component(1, 8192, 1.0, 20.0);
        v.commit_transaction();
        assert!(v.in_transaction());
        assert!((v.in_rate_capacity(1, 8192) - (1_000_000.0 / 8192.0 - 20.0)).abs() < 1e-9);

        v.begin_transaction();
        v.reserve_component(1, 8192, 1.0, 30.0);
        v.rollback_transaction();
        // Inner rollback: node 1 back to the inner-commit state, node 0
        // still reserved.
        assert!((v.in_rate_capacity(1, 8192) - (1_000_000.0 / 8192.0 - 20.0)).abs() < 1e-9);
        assert!((v.in_rate_capacity(0, 8192) - (1_000_000.0 / 8192.0 - 10.0)).abs() < 1e-9);

        // Outer rollback: everything — including the inner-committed
        // reservation — restored bit-exactly.
        v.rollback_transaction();
        assert!(!v.in_transaction());
        assert!(v == base, "outer rollback must restore the base state");
        v.check_index_coherence();
    }

    #[test]
    #[should_panic(expected = "no open transaction")]
    fn rollback_without_begin_panics() {
        view().rollback_transaction();
    }

    #[test]
    fn index_stays_coherent_under_random_churn() {
        let topo = Topology::planetlab_like(48, 300_000.0, 3_000_000.0, 5);
        let mut v = SystemView::fresh(&topo);
        let mut rng = SimRng::new(17);
        for step in 0..600 {
            let node = rng.range_u64(0, 48) as usize;
            match step % 5 {
                0 => v.reserve_component(node, 8192, 1.0, rng.f64() * 40.0),
                1 => v.consume_measured(node, rng.f64() * 1e5, rng.f64() * 1e5),
                2 => v.release_component(node, 8192, 1.0, rng.f64() * 40.0),
                3 => v.reserve_source(node, 8192, rng.f64() * 20.0),
                _ => v.reserve_destination(node, 8192, rng.f64() * 20.0),
            }
            if step % 7 == 0 {
                v.begin_transaction();
                v.reserve_component(node, 8192, 1.0, 1e9);
                v.rollback_transaction();
            }
        }
        v.check_index_coherence();
    }

    #[test]
    fn indexed_selection_matches_linear_reference() {
        let topo = Topology::planetlab_like(96, 300_000.0, 3_000_000.0, 9);
        let mut v = SystemView::fresh(&topo);
        let mut rng = SimRng::new(23);
        // Dirty the view so metrics are heterogeneous.
        for _ in 0..200 {
            let node = rng.range_u64(0, 96) as usize;
            v.consume_measured(node, rng.f64() * 2e6, rng.f64() * 2e6);
        }
        let mut providers: Vec<usize> = rng.sample_indices(96, 40);
        providers.sort_unstable();
        let (mut lin, mut idx) = (Vec::new(), Vec::new());
        for k in [0, 1, 3, 16, 40, 64] {
            v.select_top_candidates_linear(&providers, k, &mut lin);
            v.select_top_candidates_indexed(&providers, k, &mut idx);
            assert_eq!(lin, idx, "selection diverged at k={k}");
            assert_eq!(lin.len(), k.min(providers.len()));
        }
    }
}
