//! The composition-time view of the system (§3.2's monitoring output).
//!
//! When a request arrives, RASC gathers from the candidate hosts their
//! availability vectors `A_n = [b_in, b_out]` and recent drop ratios.
//! The [`SystemView`] is that snapshot. The engine builds a fresh view
//! per composition from its measurement windows and committed-rate
//! ledger (`max(measured, committed)` per NIC direction); within one
//! composition, the composers additionally reserve into the view as they
//! place substreams, so multi-substream requests account for their own
//! earlier placements (Algorithm 1's capacity update). All three
//! composition algorithms read the same snapshot, so they face identical
//! capacity constraints.

use monitor::ResourceVector;
use simnet::{NodeId, Topology};

/// One undo-log record: the pre-mutation value of the field it names.
/// Snapshots (not arithmetic inverses) are required because
/// [`ResourceVector::consume`] clamps at zero, which a release cannot
/// invert exactly.
#[derive(Clone, Debug, PartialEq)]
enum Undo {
    Avail(NodeId, ResourceVector),
    Cpu(NodeId, f64),
}

/// Per-node availability snapshot used by the composers.
///
/// `PartialEq` compares the full state bit-for-bit (floats by exact
/// equality) — this is deliberate: the auditor's rollback-exactness check
/// asserts that a rejected composition leaves the view *bit-equal* to its
/// pre-compose snapshot, not merely approximately restored.
#[derive(Clone, Debug, PartialEq)]
pub struct SystemView {
    /// Remaining (unreserved) capacity per node: `[b_in, b_out]` bits/s.
    avail: Vec<ResourceVector>,
    /// Admittable capacity per node (NIC rate × headroom), the reference
    /// for utilization computations.
    cap: Vec<ResourceVector>,
    /// Remaining CPU per node, in cores. `INFINITY` = unconstrained
    /// (the paper's evaluated configuration; finite values implement its
    /// stated future work, "multiple resource constraints", §6).
    cpu_avail: Vec<f64>,
    /// Admittable CPU per node, in cores.
    cpu_cap: Vec<f64>,
    /// Most recent drop ratio per node (0..=1), from the monitoring
    /// windows.
    drop_ratio: Vec<f64>,
    /// Undo log of an open transaction (see [`begin_transaction`]
    /// (Self::begin_transaction)); empty and inactive outside one. The
    /// buffer is retained across transactions so the all-or-nothing
    /// composition path allocates nothing in steady state.
    journal: Vec<Undo>,
    /// Whether reservation mutations are currently being journaled.
    recording: bool,
}

impl SystemView {
    /// Builds a view with full capacities from the topology and zero
    /// drop ratios (fresh system).
    pub fn fresh(topology: &Topology) -> Self {
        Self::with_headroom(topology, 1.0)
    }

    /// Builds a view that only admits up to `headroom` (0, 1] of each
    /// NIC's rate. Keeping reservations below the physical rate bounds
    /// per-node utilization, and with it queueing delay — a NIC reserved
    /// to 100% runs at ρ≈1 and its delay diverges, which no admission
    /// controller deployed on a shared testbed would allow.
    pub fn with_headroom(topology: &Topology, headroom: f64) -> Self {
        assert!(headroom > 0.0 && headroom <= 1.0, "headroom in (0, 1]");
        let cap: Vec<ResourceVector> = (0..topology.len())
            .map(|v| {
                let s = topology.spec(v);
                ResourceVector::bandwidth(s.bw_in * headroom, s.bw_out * headroom)
            })
            .collect();
        SystemView {
            avail: cap.clone(),
            drop_ratio: vec![0.0; topology.len()],
            cpu_avail: vec![f64::INFINITY; topology.len()],
            cpu_cap: vec![f64::INFINITY; topology.len()],
            cap,
            journal: Vec::new(),
            recording: false,
        }
    }

    /// Opens a reservation transaction: every subsequent mutation of the
    /// availability state (`avail` / `cpu_avail`) is journaled until the
    /// transaction is [committed](Self::commit_transaction) or
    /// [rolled back](Self::rollback_transaction).
    ///
    /// This replaces the composers' former whole-view `clone()` backup:
    /// a failed composition undoes only the handful of nodes it touched
    /// instead of copying (and restoring) every node's vectors.
    /// Transactions do not nest.
    pub fn begin_transaction(&mut self) {
        assert!(!self.recording, "transaction already open");
        self.recording = true;
    }

    /// Closes the open transaction, keeping all mutations.
    pub fn commit_transaction(&mut self) {
        assert!(self.recording, "no open transaction");
        self.recording = false;
        self.journal.clear();
    }

    /// Closes the open transaction, restoring every journaled field to
    /// its pre-transaction value (applied in reverse mutation order).
    pub fn rollback_transaction(&mut self) {
        assert!(self.recording, "no open transaction");
        self.recording = false;
        while let Some(entry) = self.journal.pop() {
            match entry {
                Undo::Avail(v, rv) => self.avail[v] = rv,
                Undo::Cpu(v, c) => self.cpu_avail[v] = c,
            }
        }
    }

    /// Whether a reservation transaction is currently open.
    pub fn in_transaction(&self) -> bool {
        self.recording
    }

    fn log_avail(&mut self, v: NodeId) {
        if self.recording {
            self.journal.push(Undo::Avail(v, self.avail[v].clone()));
        }
    }

    fn log_cpu(&mut self, v: NodeId) {
        if self.recording {
            self.journal.push(Undo::Cpu(v, self.cpu_avail[v]));
        }
    }

    /// Enables the CPU dimension for node `v` with `cores` of admittable
    /// processing capacity (already headroom-scaled by the caller).
    pub fn set_cpu_capacity(&mut self, v: NodeId, cores: f64) {
        assert!(cores >= 0.0 && cores.is_finite(), "invalid CPU capacity");
        debug_assert!(
            !self.recording,
            "capacity reconfiguration inside a reservation transaction"
        );
        self.cpu_cap[v] = cores;
        self.cpu_avail[v] = cores;
    }

    /// Deducts measured/committed CPU usage (in cores) from `v`.
    pub fn consume_measured_cpu(&mut self, v: NodeId, cores_in_use: f64) {
        self.log_cpu(v);
        if self.cpu_avail[v].is_finite() {
            self.cpu_avail[v] = (self.cpu_avail[v] - cores_in_use.max(0.0)).max(0.0);
        }
    }

    /// Remaining CPU of `v` in cores (`INFINITY` when unconstrained).
    pub fn cpu_avail(&self, v: NodeId) -> f64 {
        self.cpu_avail[v]
    }

    /// Reserved fraction of the node's binding resource (0 = idle,
    /// 1 = fully reserved). The paper observes that drop probability
    /// grows with load (§2.2); composers may fold this into edge costs
    /// as the predictive part of the drop signal.
    pub fn utilization(&self, v: NodeId) -> f64 {
        let mut u: f64 = 0.0;
        for j in 0..self.cap[v].dims() {
            let cap = self.cap[v].get(j);
            if cap > 0.0 {
                u = u.max(1.0 - self.avail[v].get(j) / cap);
            }
        }
        if self.cpu_cap[v].is_finite() && self.cpu_cap[v] > 0.0 {
            u = u.max(1.0 - self.cpu_avail[v] / self.cpu_cap[v]);
        }
        u.clamp(0.0, 1.0)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.avail.len()
    }

    /// True when the view covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.avail.is_empty()
    }

    /// Remaining availability vector of `v`.
    pub fn avail(&self, v: NodeId) -> &ResourceVector {
        &self.avail[v]
    }

    /// Last observed drop ratio of `v`.
    pub fn drop_ratio(&self, v: NodeId) -> f64 {
        self.drop_ratio[v]
    }

    /// Updates the drop-ratio feedback for `v` (the engine pushes fresh
    /// window readings before each composition).
    pub fn set_drop_ratio(&mut self, v: NodeId, ratio: f64) {
        assert!((0.0..=1.0).contains(&ratio), "ratio out of range: {ratio}");
        self.drop_ratio[v] = ratio;
    }

    /// `r_max(c, n)` for a component whose unit occupies `unit_bits` on
    /// both NIC directions scaled by the rate ratio on output (§3.5):
    /// the largest ingest rate (du/s) node `v` can still accept.
    pub fn max_rate(&self, v: NodeId, unit_bits: u64, rate_ratio: f64) -> f64 {
        let per_unit = Self::per_unit(unit_bits, rate_ratio);
        self.avail[v].max_rate(&per_unit)
    }

    /// [`max_rate`](Self::max_rate) with the CPU dimension: the largest
    /// ingest rate for a component that also needs `exec_secs` of CPU
    /// per data unit. Equals `max_rate` when `v`'s CPU is unconstrained.
    pub fn max_rate_with_cpu(
        &self,
        v: NodeId,
        unit_bits: u64,
        rate_ratio: f64,
        exec_secs: f64,
    ) -> f64 {
        let bw = self.max_rate(v, unit_bits, rate_ratio);
        if self.cpu_avail[v].is_finite() && exec_secs > 0.0 {
            bw.min(self.cpu_avail[v] / exec_secs)
        } else {
            bw
        }
    }

    /// Reserves bandwidth on `v` for a component ingesting at `rate`
    /// du/s. `rate_ratio` scales the output-side reservation.
    pub fn reserve_component(&mut self, v: NodeId, unit_bits: u64, rate_ratio: f64, rate: f64) {
        self.log_avail(v);
        let per_unit = Self::per_unit(unit_bits, rate_ratio);
        self.avail[v].consume(&per_unit, rate);
    }

    /// Reserves the CPU of a component processing `rate` du/s at
    /// `exec_secs` each. No-op when `v`'s CPU is unconstrained.
    pub fn reserve_cpu(&mut self, v: NodeId, exec_secs: f64, rate: f64) {
        self.log_cpu(v);
        if self.cpu_avail[v].is_finite() {
            self.cpu_avail[v] = (self.cpu_avail[v] - exec_secs * rate).max(0.0);
        }
    }

    /// Releases a component's reservation (teardown).
    pub fn release_component(&mut self, v: NodeId, unit_bits: u64, rate_ratio: f64, rate: f64) {
        self.log_avail(v);
        let per_unit = Self::per_unit(unit_bits, rate_ratio);
        self.avail[v].release(&per_unit, rate);
    }

    /// Deducts *measured* traffic (bits/s, from the throughput meters)
    /// from the node's availability — the paper's §3.2 monitoring path:
    /// "the input and output bandwidth utilized are calculated by
    /// continuously monitoring the rates of incoming and outgoing data
    /// units".
    pub fn consume_measured(&mut self, v: NodeId, in_bps: f64, out_bps: f64) {
        self.log_avail(v);
        self.avail[v].consume(&ResourceVector::bandwidth(in_bps, out_bps), 1.0);
    }

    /// Reserves source-side output bandwidth (the origin emits at `rate`).
    pub fn reserve_source(&mut self, v: NodeId, unit_bits: u64, rate: f64) {
        self.log_avail(v);
        self.avail[v].consume(&ResourceVector::bandwidth(0.0, unit_bits as f64), rate);
    }

    /// Reserves destination-side input bandwidth.
    pub fn reserve_destination(&mut self, v: NodeId, unit_bits: u64, rate: f64) {
        self.log_avail(v);
        self.avail[v].consume(&ResourceVector::bandwidth(unit_bits as f64, 0.0), rate);
    }

    /// Remaining output-side rate capacity of `v` in du/s.
    pub fn out_rate_capacity(&self, v: NodeId, unit_bits: u64) -> f64 {
        self.avail[v].get(1) / unit_bits as f64
    }

    /// Remaining input-side rate capacity of `v` in du/s.
    pub fn in_rate_capacity(&self, v: NodeId, unit_bits: u64) -> f64 {
        self.avail[v].get(0) / unit_bits as f64
    }

    fn per_unit(unit_bits: u64, rate_ratio: f64) -> ResourceVector {
        ResourceVector::bandwidth(unit_bits as f64, unit_bits as f64 * rate_ratio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimDuration;
    use simnet::Topology;

    fn view() -> SystemView {
        // 2 nodes at 1 Mbps symmetric.
        SystemView::fresh(&Topology::uniform(
            2,
            1_000_000.0,
            SimDuration::from_millis(10),
        ))
    }

    #[test]
    fn fresh_view_has_full_capacity_and_zero_drops() {
        let v = view();
        assert_eq!(v.len(), 2);
        assert_eq!(v.drop_ratio(0), 0.0);
        // 1 Mbps / 8192 bits ≈ 122 du/s.
        let r = v.max_rate(0, 8192, 1.0);
        assert!((r - 1_000_000.0 / 8192.0).abs() < 1e-9);
    }

    #[test]
    fn reservation_reduces_max_rate() {
        let mut v = view();
        v.reserve_component(0, 8192, 1.0, 50.0);
        let r = v.max_rate(0, 8192, 1.0);
        assert!((r - (1_000_000.0 / 8192.0 - 50.0)).abs() < 1e-9);
        v.release_component(0, 8192, 1.0, 50.0);
        assert!((v.max_rate(0, 8192, 1.0) - 1_000_000.0 / 8192.0).abs() < 1e-9);
    }

    #[test]
    fn rate_ratio_weights_output_side() {
        let mut v = view();
        // Ratio 2: output is the bottleneck at half the input rate.
        let r = v.max_rate(0, 8192, 2.0);
        assert!((r - 1_000_000.0 / (2.0 * 8192.0)).abs() < 1e-9);
        v.reserve_component(0, 8192, 2.0, 10.0);
        assert!((v.in_rate_capacity(0, 8192) - (1_000_000.0 / 8192.0 - 10.0)).abs() < 1e-9);
        assert!((v.out_rate_capacity(0, 8192) - (1_000_000.0 / 8192.0 - 20.0)).abs() < 1e-9);
    }

    #[test]
    fn endpoint_reservations_are_one_sided() {
        let mut v = view();
        v.reserve_source(0, 8192, 30.0);
        assert!((v.in_rate_capacity(0, 8192) - 1_000_000.0 / 8192.0).abs() < 1e-9);
        assert!((v.out_rate_capacity(0, 8192) - (1_000_000.0 / 8192.0 - 30.0)).abs() < 1e-9);
        v.reserve_destination(1, 8192, 30.0);
        assert!((v.in_rate_capacity(1, 8192) - (1_000_000.0 / 8192.0 - 30.0)).abs() < 1e-9);
    }

    #[test]
    fn drop_ratio_updates() {
        let mut v = view();
        v.set_drop_ratio(1, 0.25);
        assert_eq!(v.drop_ratio(1), 0.25);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_ratio_rejected() {
        view().set_drop_ratio(0, 1.5);
    }

    /// Rollback must restore the exact pre-transaction state even when a
    /// reservation clamped at zero (an arithmetic release could not).
    #[test]
    fn rollback_restores_exactly_despite_clamping() {
        let mut v = view();
        v.reserve_component(0, 8192, 1.0, 10.0);
        let before_in = v.in_rate_capacity(0, 8192);
        let before_out = v.out_rate_capacity(1, 8192);

        v.begin_transaction();
        assert!(v.in_transaction());
        // Over-reserve far past capacity: avail clamps at 0.
        v.reserve_component(0, 8192, 1.0, 1e9);
        v.reserve_source(1, 8192, 1e9);
        v.reserve_destination(1, 8192, 5.0);
        v.consume_measured(0, 123.0, 456.0);
        assert_eq!(v.in_rate_capacity(0, 8192), 0.0);
        v.rollback_transaction();

        assert!(!v.in_transaction());
        assert!((v.in_rate_capacity(0, 8192) - before_in).abs() < 1e-12);
        assert!((v.out_rate_capacity(1, 8192) - before_out).abs() < 1e-12);
    }

    #[test]
    fn commit_keeps_reservations() {
        let mut v = view();
        v.begin_transaction();
        v.reserve_component(0, 8192, 1.0, 40.0);
        v.commit_transaction();
        assert!((v.max_rate(0, 8192, 1.0) - (1_000_000.0 / 8192.0 - 40.0)).abs() < 1e-9);
    }

    #[test]
    fn cpu_reservations_roll_back() {
        let mut v = view();
        v.set_cpu_capacity(0, 4.0);
        v.begin_transaction();
        v.reserve_cpu(0, 0.5, 6.0);
        v.consume_measured_cpu(0, 0.5);
        assert!((v.cpu_avail(0) - 0.5).abs() < 1e-12);
        v.rollback_transaction();
        assert!((v.cpu_avail(0) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "already open")]
    fn transactions_do_not_nest() {
        let mut v = view();
        v.begin_transaction();
        v.begin_transaction();
    }

    #[test]
    #[should_panic(expected = "no open transaction")]
    fn rollback_without_begin_panics() {
        view().rollback_transaction();
    }
}
