//! Randomized equivalence suite for the indexed `SystemView` (ISSUE 9,
//! tentpole part 2): across seeds, topology families, and transaction
//! histories — including rollbacks from arbitrary mid-transaction points
//! — the capacity-bucket index must (a) stay coherent with `avail`, (b)
//! enumerate *exactly* the candidate set the linear reference scan
//! produces, and (c) leave capped composition decisions bit-identical
//! between `CandidateSelection::Indexed` and `::Linear`.

use desim::SimRng;
use rasc_core::compose::{CandidateSelection, Composer, MinCostComposer, ProviderMap};
use rasc_core::model::{ServiceCatalog, ServiceRequest, DEFAULT_UNIT_BITS};
use rasc_core::view::SystemView;
use simnet::{kbps, Topology};

/// The families the ISSUE names, at sizes big enough that buckets are
/// populated unevenly but small enough for the suite to stay fast.
fn families(seed: u64) -> Vec<(&'static str, Topology)> {
    vec![
        (
            "power_law",
            Topology::power_law(160, kbps(200.0), kbps(5000.0), seed),
        ),
        (
            "datacenter_wan",
            Topology::datacenter_wan(160, 4, kbps(500.0), kbps(4000.0), seed),
        ),
        (
            "planetlab",
            Topology::planetlab_like(160, kbps(200.0), kbps(3000.0), seed),
        ),
        (
            "uniform",
            Topology::uniform(160, kbps(1500.0), desim::SimDuration::from_millis(10)),
        ),
    ]
}

/// A sorted, deduplicated random provider subset.
fn random_providers(rng: &mut SimRng, n: usize) -> Vec<usize> {
    let count = rng.range_usize(1, n / 2);
    let mut p: Vec<usize> = (0..count).map(|_| rng.range_usize(0, n)).collect();
    p.sort_unstable();
    p.dedup();
    p
}

/// One random view mutation through the public (journaled) surface.
fn mutate(view: &mut SystemView, rng: &mut SimRng) {
    let v = rng.range_usize(0, view.len());
    match rng.range_usize(0, 3) {
        0 => view.reserve_component(v, DEFAULT_UNIT_BITS, 1.0, rng.range_f64(0.1, 40.0)),
        1 => view.release_component(v, DEFAULT_UNIT_BITS, 1.0, rng.range_f64(0.1, 10.0)),
        _ => {
            // Large enough to move a node across several buckets.
            let r = rng.range_f64(0.1, 120.0);
            view.reserve_component(v, DEFAULT_UNIT_BITS, 1.0, r);
        }
    }
}

fn assert_selections_match(view: &SystemView, providers: &[usize], label: &str) {
    let mut linear = Vec::new();
    let mut indexed = Vec::new();
    for k in [1usize, 2, 5, 16, providers.len(), providers.len() + 7] {
        view.select_top_candidates_linear(providers, k, &mut linear);
        view.select_top_candidates_indexed(providers, k, &mut indexed);
        assert_eq!(
            linear,
            indexed,
            "candidate sets diverged ({label}, k={k}, p={})",
            providers.len()
        );
    }
}

#[test]
fn indexed_selection_matches_linear_across_families_and_histories() {
    for seed in 0..8u64 {
        for (family, topo) in families(seed) {
            let mut rng = SimRng::new(seed ^ 0x1DE0);
            let mut view = SystemView::fresh(&topo);
            let providers = random_providers(&mut rng, view.len());
            assert_selections_match(&view, &providers, family);

            // Committed (non-transactional) mutations.
            for step in 0..40 {
                mutate(&mut view, &mut rng);
                if step % 8 == 0 {
                    view.check_index_coherence();
                    assert_selections_match(&view, &providers, family);
                }
            }
            view.check_index_coherence();
            assert_selections_match(&view, &providers, family);
        }
    }
}

#[test]
fn rollback_from_any_midpoint_restores_selection_equivalence() {
    for seed in 0..6u64 {
        let topo = Topology::power_law(128, kbps(300.0), kbps(3000.0), seed);
        let mut rng = SimRng::new(seed ^ 0xB0B0);
        let mut view = SystemView::fresh(&topo);
        // Pre-transaction warm-up so the rollback target isn't pristine.
        for _ in 0..20 {
            mutate(&mut view, &mut rng);
        }
        let providers = random_providers(&mut rng, view.len());
        let mut reference = Vec::new();
        view.select_top_candidates_linear(&providers, 16, &mut reference);

        // Roll back from every prefix length of a mutation script: the
        // index must match the linear scan *inside* the transaction at
        // the cut point and be restored exactly after the rollback.
        for cut in 0..12 {
            view.begin_transaction();
            for _ in 0..=cut {
                mutate(&mut view, &mut rng);
            }
            view.check_index_coherence();
            assert_selections_match(&view, &providers, "mid-transaction");
            view.rollback_transaction();
            view.check_index_coherence();
            assert_selections_match(&view, &providers, "post-rollback");
            let mut after = Vec::new();
            view.select_top_candidates_indexed(&providers, 16, &mut after);
            assert_eq!(reference, after, "rollback did not restore the top-k");
        }
    }
}

#[test]
fn capped_compose_decisions_identical_between_selections() {
    for seed in 0..6u64 {
        for (family, topo) in families(seed) {
            let n = topo.len();
            let catalog = ServiceCatalog::synthetic(4, seed);
            let mut rng = SimRng::new(seed ^ 0xCAB);
            let base = SystemView::fresh(&topo);
            let mut providers = ProviderMap::new();
            for s in 0..4 {
                providers.insert(s, random_providers(&mut rng, n));
            }
            for case in 0..10 {
                let chain = [case % 4, (case + 1) % 4];
                let req = ServiceRequest::chain(
                    &chain,
                    rng.range_f64(1.0, 25.0),
                    rng.range_usize(0, n),
                    rng.range_usize(0, n),
                );
                let run = |selection: CandidateSelection| {
                    let mut c = MinCostComposer::default().with_candidate_cap(8);
                    c.selection = selection;
                    let mut view = base.clone();
                    let r = c.compose(
                        &req,
                        &catalog,
                        &providers,
                        &mut view,
                        &mut SimRng::new(seed * 1000 + case as u64),
                    );
                    (r, view)
                };
                let (ri, vi) = run(CandidateSelection::Indexed);
                let (rl, vl) = run(CandidateSelection::Linear);
                match (&ri, &rl) {
                    (Ok(gi), Ok(gl)) => {
                        assert_eq!(gi, gl, "placements diverged ({family}, case {case})")
                    }
                    (Err(ei), Err(el)) => {
                        assert_eq!(ei, el, "errors diverged ({family}, case {case})")
                    }
                    _ => panic!("admit/reject diverged ({family}, case {case}): {ri:?} vs {rl:?}"),
                }
                assert!(
                    vi == vl,
                    "post-compose views diverged ({family}, case {case})"
                );
            }
        }
    }
}
