//! Property tests over the composition algorithms on random instances:
//! structural validity, rate conservation, rollback discipline, and the
//! dominance property (min-cost admits everything single-placement can).

use desim::SimRng;
use proptest::prelude::*;
use rasc_core::compose::{
    Composer, ComposerKind, GreedyComposer, MinCostComposer, ProviderMap, RandomComposer,
};
use rasc_core::model::{ServiceCatalog, ServiceRequest};
use rasc_core::view::SystemView;
use simnet::{kbps, Topology};

#[derive(Clone, Debug)]
struct Instance {
    nodes: usize,
    bw_kbps: Vec<f64>,
    providers: Vec<Vec<usize>>, // per service
    chain: Vec<usize>,
    rate: f64,
    drop_ratios: Vec<f64>,
}

fn instance_strategy() -> impl Strategy<Value = Instance> {
    (4usize..12, 1usize..4).prop_flat_map(|(nodes, services)| {
        let bw = proptest::collection::vec(100.0f64..2000.0, nodes);
        let provider_sets = proptest::collection::vec(
            proptest::collection::vec(0..nodes.saturating_sub(2), 1..nodes),
            services,
        );
        let chain = proptest::collection::vec(0..services, 1..=services.min(3));
        let drops = proptest::collection::vec(0.0f64..0.5, nodes);
        (bw, provider_sets, chain, 1.0f64..80.0, drops).prop_map(
            move |(bw_kbps, mut providers, chain, rate, drop_ratios)| {
                for p in &mut providers {
                    p.sort_unstable();
                    p.dedup();
                }
                Instance {
                    nodes,
                    bw_kbps,
                    providers,
                    chain,
                    rate,
                    drop_ratios,
                }
            },
        )
    })
}

fn build(inst: &Instance) -> (ServiceCatalog, SystemView, ProviderMap, ServiceRequest) {
    let catalog = ServiceCatalog::synthetic(inst.providers.len(), 1);
    // Uniform topology scaled per node via consume (approximate
    // heterogeneity within the SystemView API).
    let max_bw = inst.bw_kbps.iter().cloned().fold(0.0, f64::max);
    let mut view = SystemView::fresh(&Topology::uniform(
        inst.nodes,
        kbps(max_bw),
        desim::SimDuration::from_millis(10),
    ));
    for (v, &bw) in inst.bw_kbps.iter().enumerate() {
        let excess = kbps(max_bw) - kbps(bw);
        view.consume_measured(v, excess, excess);
        view.set_drop_ratio(v, inst.drop_ratios[v]);
    }
    let mut providers = ProviderMap::new();
    for (s, hosts) in inst.providers.iter().enumerate() {
        providers.insert(s, hosts.clone());
    }
    let req = ServiceRequest::chain(&inst.chain, inst.rate, inst.nodes - 2, inst.nodes - 1);
    (catalog, view, providers, req)
}

fn all_composers() -> Vec<(ComposerKind, Box<dyn Composer>)> {
    vec![
        (ComposerKind::MinCost, Box::new(MinCostComposer::default())),
        (ComposerKind::Random, Box::new(RandomComposer)),
        (ComposerKind::Greedy, Box::new(GreedyComposer)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// On success: every placement is a provider, every stage's rates
    /// sum to the requirement, and reservations landed in the view. On
    /// failure: the view is untouched.
    #[test]
    fn compositions_are_valid_or_rolled_back(inst in instance_strategy()) {
        for (kind, mut composer) in all_composers() {
            let (catalog, mut view, providers, req) = build(&inst);
            let before = view.clone();
            let mut rng = SimRng::new(7);
            match composer.compose(&req, &catalog, &providers, &mut view, &mut rng) {
                Ok(graph) => {
                    for (l, stages) in graph.substreams.iter().enumerate() {
                        prop_assert_eq!(stages.len(), req.graph.substreams[l].services.len());
                        for stage in stages {
                            let total = stage.total_rate();
                            prop_assert!(
                                (total - req.rates[l]).abs() < 1e-2,
                                "{:?}: stage rate {} vs required {}", kind, total, req.rates[l]
                            );
                            for p in &stage.placements {
                                prop_assert!(
                                    providers[&stage.service].contains(&p.node),
                                    "{:?} placed on non-provider", kind
                                );
                                prop_assert!(p.rate > 0.0);
                            }
                        }
                    }
                    // Reservations took effect somewhere.
                    let touched = (0..inst.nodes).any(|v| view.avail(v) != before.avail(v));
                    prop_assert!(touched, "{:?}: success without reservations", kind);
                }
                Err(_) => {
                    for v in 0..inst.nodes {
                        prop_assert_eq!(
                            view.avail(v), before.avail(v),
                            "{:?}: view mutated on failure", kind
                        );
                    }
                }
            }
        }
    }

    /// Dominance: whenever greedy or random can compose a request,
    /// min-cost can too (a single placement is a feasible flow).
    #[test]
    fn mincost_dominates_single_placement(inst in instance_strategy()) {
        let (catalog, view, providers, req) = build(&inst);
        let mut rng = SimRng::new(9);
        let greedy_ok = GreedyComposer
            .compose(&req, &catalog, &providers, &mut view.clone(), &mut rng)
            .is_ok();
        let random_ok = RandomComposer
            .compose(&req, &catalog, &providers, &mut view.clone(), &mut rng)
            .is_ok();
        let mincost_ok = MinCostComposer::default()
            .compose(&req, &catalog, &providers, &mut view.clone(), &mut rng)
            .is_ok();
        if greedy_ok || random_ok {
            prop_assert!(
                mincost_ok,
                "min-cost rejected a request a baseline admitted"
            );
        }
    }

    /// Min-cost compositions route through the cheapest viable hosts:
    /// the rate-weighted drop cost of its graph never exceeds greedy's.
    #[test]
    fn mincost_cost_never_exceeds_greedy(inst in instance_strategy()) {
        let (catalog, view, providers, req) = build(&inst);
        let mut rng = SimRng::new(11);
        let cost_of = |graph: &rasc_core::model::ExecutionGraph, v: &SystemView| {
            graph
                .substreams
                .iter()
                .flatten()
                .flat_map(|s| s.placements.iter())
                .map(|p| p.rate * v.drop_ratio(p.node))
                .sum::<f64>()
        };
        let g = GreedyComposer.compose(&req, &catalog, &providers, &mut view.clone(), &mut rng);
        let m = MinCostComposer::default()
            .compose(&req, &catalog, &providers, &mut view.clone(), &mut rng);
        if let (Ok(gg), Ok(mg)) = (g, m) {
            let (gc, mc) = (cost_of(&gg, &view), cost_of(&mg, &view));
            // Min-cost also prices utilization and latency; allow those
            // weaker terms to trade against at most a whisker of drop
            // cost (both secondary weights are ≤ 1/10 of a drop unit,
            // and rounding to milli-units adds quantization slack).
            prop_assert!(
                mc <= gc + 0.15 * req.rates[0].max(1.0),
                "min-cost drop cost {} far above greedy {}", mc, gc
            );
        }
    }
}
