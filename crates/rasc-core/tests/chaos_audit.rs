//! Fault injection under full audit: seeded chaos runs across fault
//! profiles and composers must finish with zero invariant violations
//! (unit conservation, ledger consistency, rollback exactness,
//! exactly-once delivery, event-queue liveness), re-compose under
//! bandwidth degradation — not only crash-stop — and produce
//! bit-identical run digests for identical (seed, plan) inputs.

use desim::SimDuration;
use rasc_core::compose::ComposerKind;
use rasc_core::engine::{Engine, EngineConfig, FaultPlan, FaultProfile};
use rasc_core::model::{ServiceCatalog, ServiceRequest};
use simnet::{kbps, TopologyBuilder};

const PROVIDERS: usize = 6;
const NODES: usize = PROVIDERS + 2; // + source (6) and destination (7)

/// 6 provider nodes offering both services, 2 endpoint nodes, audit on.
fn engine(seed: u64, composer: ComposerKind, faults: FaultPlan) -> Engine {
    let catalog = ServiceCatalog::synthetic(2, seed);
    let mut b = TopologyBuilder::new().default_latency(SimDuration::from_millis(15));
    for _ in 0..NODES {
        b.node(kbps(2_000.0), kbps(2_000.0));
    }
    let mut offers = vec![vec![0, 1]; PROVIDERS];
    offers.push(vec![]);
    offers.push(vec![]);
    Engine::builder(NODES, catalog, seed)
        .topology(b.build())
        .offers(offers)
        .config(EngineConfig {
            composer,
            audit: true,
            audit_period_secs: 1.0,
            ..Default::default()
        })
        .faults(faults)
        .build()
}

/// A small mixed workload: two finite streams, one open-ended, one
/// oversized request that must be rejected (exercising audited
/// rollback), submitted while faults fire.
fn drive(e: &mut Engine) {
    let _ = e.submit(
        ServiceRequest::chain(&[0, 1], 20.0, PROVIDERS, PROVIDERS + 1)
            .with_lifetime(SimDuration::from_secs_f64(14.0)),
    );
    let _ = e.submit(ServiceRequest::chain(&[0], 15.0, PROVIDERS, PROVIDERS + 1));
    e.run_for_secs(2.0);
    let _ = e.submit(
        ServiceRequest::chain(&[1, 0], 12.0, PROVIDERS, PROVIDERS + 1)
            .with_lifetime(SimDuration::from_secs_f64(10.0)),
    );
    // Far beyond any NIC: rejected, and the auditor checks the rollback.
    assert!(e
        .submit(ServiceRequest::chain(
            &[0, 1],
            5_000.0,
            PROVIDERS,
            PROVIDERS + 1
        ))
        .is_err());
    e.run_for_secs(18.0);
}

#[test]
fn chaos_matrix_runs_clean_across_profiles_and_composers() {
    let candidates: Vec<usize> = (0..PROVIDERS).collect();
    let mut runs = Vec::new();
    for seed in [11u64, 22] {
        for profile in FaultProfile::ALL {
            runs.push((seed, profile, ComposerKind::MinCost));
        }
    }
    runs.push((33, FaultProfile::Mixed, ComposerKind::Random));
    runs.push((33, FaultProfile::Mixed, ComposerKind::Greedy));
    for (seed, profile, composer) in runs {
        let plan = FaultPlan::generate(profile, seed, &candidates, 20.0);
        assert!(!plan.is_empty());
        let mut e = engine(seed, composer, plan);
        drive(&mut e);
        let audit = e.finish_run();
        assert!(
            audit.clean(),
            "seed {seed} {} {composer:?}: {:#?}",
            profile.label(),
            audit.violations
        );
        assert!(audit.final_checked);
        assert!(audit.checkpoints > 0, "auditor never ran a checkpoint");
        let r = e.report();
        assert_eq!(
            r.generated,
            r.delivered + r.total_drops(),
            "seed {seed} {}: units leaked",
            profile.label()
        );
    }
}

#[test]
fn degradation_recomposes_without_violations() {
    let mut e = engine(5, ComposerKind::MinCost, FaultPlan::none());
    let app = e
        .submit(ServiceRequest::chain(
            &[0, 1],
            60.0,
            PROVIDERS,
            PROVIDERS + 1,
        ))
        .unwrap();
    e.run_for_secs(5.0);
    // Starve the app's first host: its commitments no longer fit, so the
    // engine must re-compose (the degraded node stays alive).
    let victim = e.app_graph(app).substreams[0][0].placements[0].node;
    e.degrade_node(victim, 0.15);
    assert!(e.node_alive(victim), "degradation is not a crash");
    assert!(
        e.report().recompositions >= 1,
        "no recomposition under bandwidth degradation"
    );
    e.run_for_secs(6.0);
    e.restore_node(victim);
    e.run_for_secs(4.0);
    let audit = e.finish_run();
    assert!(audit.clean(), "{:#?}", audit.violations);
    assert!(e.report().delivered > 0);
}

#[test]
fn crash_with_unit_on_cpu_conserves_every_unit() {
    // Saturating workload keeps victim CPUs and queues busy, so crashing
    // them loses in-progress units — which must be accounted as
    // NodeFailed drops, never leaked (the conservation bug the auditor
    // originally caught: the running unit vanished uncounted).
    let mut e = engine(7, ComposerKind::MinCost, FaultPlan::none());
    let _ = e.submit(ServiceRequest::chain(
        &[0, 1],
        80.0,
        PROVIDERS,
        PROVIDERS + 1,
    ));
    let _ = e.submit(ServiceRequest::chain(&[1], 60.0, PROVIDERS, PROVIDERS + 1));
    e.run_for_secs(4.0);
    e.fail_node(0);
    e.run_for_secs(3.0);
    e.fail_node(1);
    e.run_for_secs(8.0);
    let audit = e.finish_run();
    assert!(audit.clean(), "{:#?}", audit.violations);
    let r = e.report();
    assert!(r.generated > 0);
    assert_eq!(r.generated, r.delivered + r.total_drops(), "{r:?}");
}

#[test]
fn same_seed_and_plan_give_identical_digests() {
    let candidates: Vec<usize> = (0..PROVIDERS).collect();
    let digest = |seed: u64| {
        let plan = FaultPlan::generate(FaultProfile::Mixed, seed, &candidates, 20.0);
        let mut e = engine(seed, ComposerKind::MinCost, plan);
        drive(&mut e);
        let audit = e.finish_run();
        assert!(audit.clean(), "{:#?}", audit.violations);
        e.run_digest()
    };
    assert_eq!(digest(42), digest(42), "same seed diverged");
    assert_ne!(digest(42), digest(43), "digest ignores the seed");
}

#[test]
fn audit_off_by_default_and_reports_empty() {
    // Unless RASC_AUDIT is set, no auditor exists and finish_run returns
    // an empty (clean) report; the digest still works.
    let audited_env = std::env::var("RASC_AUDIT").is_ok_and(|v| v == "1");
    let e = engine(3, ComposerKind::MinCost, FaultPlan::none());
    if !audited_env {
        let mut plain = Engine::builder(4, ServiceCatalog::synthetic(1, 3), 3).build();
        assert!(plain.audit_report().is_none());
        let rep = plain.finish_run();
        assert!(rep.clean());
        assert_eq!(rep.checkpoints, 0);
    }
    // The explicitly-audited engine reports regardless of environment.
    assert!(e.audit_report().is_some());
    let _ = e.run_digest();
}

#[test]
fn message_loss_surfaces_as_control_retransmissions_only() {
    let mut e = engine(9, ComposerKind::MinCost, FaultPlan::none());
    e.set_message_loss(0, 0.5);
    e.set_message_loss(1, 0.5);
    let _ = e.submit(ServiceRequest::chain(
        &[0, 1],
        25.0,
        PROVIDERS,
        PROVIDERS + 1,
    ));
    e.run_for_secs(10.0);
    assert!(
        e.control_messages_lost() > 0,
        "loss windows never dropped a control message"
    );
    let audit = e.finish_run();
    assert!(audit.clean(), "{:#?}", audit.violations);
    // Data-plane conservation is untouched by control-plane loss.
    let r = e.report();
    assert_eq!(r.generated, r.delivered + r.total_drops());
}
