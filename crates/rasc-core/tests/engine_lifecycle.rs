//! Engine lifecycle tests: finite-lifetime applications quiesce, release
//! their capacity, and leave the runtime clean.

use desim::SimDuration;
use rasc_core::compose::ComposerKind;
use rasc_core::engine::{Engine, EngineConfig};
use rasc_core::model::{ServiceCatalog, ServiceRequest};
use simnet::{kbps, Topology};

fn small_engine() -> Engine {
    let catalog = ServiceCatalog::synthetic(3, 13);
    Engine::builder(6, catalog, 13)
        .topology(Topology::uniform(
            6,
            kbps(2_000.0),
            SimDuration::from_millis(10),
        ))
        .offers(vec![vec![0, 1, 2]; 6])
        .config(EngineConfig {
            composer: ComposerKind::MinCost,
            ..Default::default()
        })
        .build()
}

#[test]
fn finite_lifetime_app_stops_emitting() {
    let mut engine = small_engine();
    let req = ServiceRequest::chain(&[0, 1], 10.0, 0, 5).with_lifetime(SimDuration::from_secs(5));
    engine.submit(req).unwrap();
    engine.run_for_secs(30.0);
    let r = engine.report();
    // ~10 du/s for ~5 s: well under a perpetual stream's 300 units.
    assert!(r.generated >= 40, "too few units: {}", r.generated);
    assert!(
        r.generated <= 60,
        "app kept emitting after its lifetime: {} units",
        r.generated
    );
    assert!(r.delivered > 0);
}

#[test]
fn teardown_releases_capacity_for_later_requests() {
    let catalog = ServiceCatalog::synthetic(1, 17);
    // One tight host: capacity for only one stream at a time.
    let mut b = simnet::TopologyBuilder::new().default_latency(SimDuration::from_millis(10));
    b.node(kbps(2_000.0), kbps(2_000.0)); // source
    b.node(kbps(300.0), kbps(300.0)); // the only provider
    b.node(kbps(2_000.0), kbps(2_000.0)); // destination
    let mut engine = Engine::builder(3, catalog, 17)
        .topology(b.build())
        .offers(vec![vec![], vec![0], vec![]])
        .composer(ComposerKind::MinCost)
        .build();

    let stream = |lifetime| {
        let mut r = ServiceRequest::chain(&[0], 20.0, 0, 2);
        if let Some(l) = lifetime {
            r = r.with_lifetime(l);
        }
        r
    };
    // First app occupies the host for 5 s.
    engine
        .submit(stream(Some(SimDuration::from_secs(5))))
        .expect("first stream fits");
    // While it runs, a second identical stream does not fit.
    engine.run_for_secs(2.0);
    assert!(
        engine.submit(stream(None)).is_err(),
        "second stream admitted while the host is fully committed"
    );
    // After the first app's lifetime (plus meter drain), it fits.
    engine.run_for_secs(15.0);
    engine
        .submit(stream(None))
        .expect("capacity was not released by teardown");
}

#[test]
fn in_flight_units_after_teardown_are_accounted() {
    let mut engine = small_engine();
    let req =
        ServiceRequest::chain(&[0, 1, 2], 20.0, 0, 5).with_lifetime(SimDuration::from_secs(3));
    engine.submit(req).unwrap();
    engine.run_for_secs(20.0);
    let r = engine.report();
    // Conservation still holds with teardown in the mix.
    assert!(r.delivered + r.total_drops() <= r.generated);
    // Nothing should be unaccounted long after quiescence.
    assert!(
        r.generated - r.delivered - r.total_drops() <= 2,
        "units vanished: generated {} delivered {} drops {}",
        r.generated,
        r.delivered,
        r.total_drops()
    );
}

#[test]
fn stopping_twice_is_idempotent() {
    let mut engine = small_engine();
    let req = ServiceRequest::chain(&[0], 10.0, 0, 5).with_lifetime(SimDuration::from_millis(1500));
    engine.submit(req).unwrap();
    // Run far past the lifetime twice; the second pass must not panic
    // or double-release.
    engine.run_for_secs(5.0);
    engine.run_for_secs(5.0);
    let r = engine.report();
    assert!(r.generated > 0);
}
