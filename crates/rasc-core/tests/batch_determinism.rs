//! Batch-admission determinism suite (ISSUE 9, tentpole part 3): a
//! batch admitted serially (one worker) and in parallel (many workers)
//! must produce digest-equal outcomes and bit-equal committed-rate
//! ledgers — including under injected host-capacity conflicts that force
//! the reconcile phase to replay items — at both the `BatchAdmitter`
//! and the `Engine::submit_batch` level.

use desim::{SimDuration, SimRng};
use rasc_core::compose::{
    apply_reservations, BatchAdmitter, BatchItem, MinCostComposer, ProviderMap,
};
use rasc_core::engine::{Engine, EngineConfig};
use rasc_core::model::{ServiceCatalog, ServiceRequest};
use rasc_core::view::SystemView;
use simnet::{kbps, Topology};

fn admitter(threads: usize, cap: Option<usize>) -> BatchAdmitter {
    BatchAdmitter::new(threads, move || {
        let mut c = MinCostComposer::default();
        if let Some(k) = cap {
            c = c.with_candidate_cap(k);
        }
        Box::new(c)
    })
}

/// Random batches over a power-law overlay: mixed chains, spread
/// endpoints, enough aggregate rate that some hosts genuinely contend.
fn random_items(n: usize, count: usize, services: usize, seed: u64) -> Vec<BatchItem> {
    let mut rng = SimRng::new(seed ^ 0xBA7C);
    let mut providers = ProviderMap::new();
    for s in 0..services {
        let mut hosts = rng.sample_indices(n, (n / 8).max(4));
        hosts.sort_unstable();
        hosts.dedup();
        providers.insert(s, hosts);
    }
    (0..count)
        .map(|i| {
            let len = rng.range_usize(1, 4);
            let chain: Vec<usize> = (0..len).map(|_| rng.range_usize(0, services)).collect();
            (
                ServiceRequest::chain(
                    &chain,
                    rng.range_f64(2.0, 30.0),
                    (i * 3) % n,
                    (i * 3 + 1) % n,
                ),
                providers.clone(),
            )
        })
        .collect()
}

#[test]
fn worker_count_never_changes_the_outcome() {
    for seed in 0..6u64 {
        let topo = Topology::power_law(96, kbps(300.0), kbps(2500.0), seed);
        let base = SystemView::fresh(&topo);
        let catalog = ServiceCatalog::synthetic(5, seed);
        let items = random_items(96, 24, 5, seed);
        let mut reference = None;
        for threads in [1usize, 2, 4, 8] {
            let mut view = base.clone();
            let out = admitter(threads, Some(8)).admit_batch(&mut view, &catalog, &items, seed);
            let digest = out.digest();
            match &reference {
                None => reference = Some((digest, view, out)),
                Some((d, v, o)) => {
                    assert_eq!(
                        *d, digest,
                        "digest diverged at {threads} workers (seed {seed})"
                    );
                    assert!(
                        *v == view,
                        "ledger diverged at {threads} workers (seed {seed})"
                    );
                    assert_eq!(o.replayed, out.replayed, "replay set diverged");
                    assert_eq!(o.stats, out.stats, "reconcile stats diverged");
                }
            }
        }
    }
}

#[test]
fn injected_capacity_conflicts_force_replays_and_stay_deterministic() {
    // One deliberately tight provider pool: every request wants most of
    // a host, so optimistic proposals collide and the reconcile phase
    // must replay — serial and parallel runs must still agree exactly.
    let catalog = ServiceCatalog::synthetic(1, 7);
    let view = SystemView::fresh(&Topology::uniform(
        6,
        1_000_000.0,
        SimDuration::from_millis(5),
    ));
    let mut providers = ProviderMap::new();
    providers.insert(0, vec![1, 2, 3]);
    // ~122 du/s per NIC at the default unit size; 80 du/s each means one
    // stream per host fits and the rest conflict wherever they land.
    let items: Vec<BatchItem> = (0..6)
        .map(|_| (ServiceRequest::chain(&[0], 80.0, 0, 5), providers.clone()))
        .collect();
    let mut v1 = view.clone();
    let out1 = admitter(1, None).admit_batch(&mut v1, &catalog, &items, 3);
    assert!(
        out1.stats.conflicts >= 2,
        "scenario failed to inject conflicts: {:?}",
        out1.stats
    );
    assert!(!out1.replayed.is_empty());
    for threads in [2usize, 4] {
        let mut vp = view.clone();
        let outp = admitter(threads, None).admit_batch(&mut vp, &catalog, &items, 3);
        assert_eq!(out1.digest(), outp.digest(), "{threads} workers diverged");
        assert!(v1 == vp, "ledgers diverged at {threads} workers");
    }
    // The committed ledger is exactly base + admitted reservations.
    let mut replayed_view = view.clone();
    for ((req, _), r) in items.iter().zip(&out1.results) {
        if let Ok(g) = r {
            apply_reservations(req, &catalog, g, &mut replayed_view);
        }
    }
    assert!(
        replayed_view == v1,
        "ledger != base + admitted reservations"
    );
}

#[test]
fn every_order_policy_is_deterministic_across_worker_counts() {
    use rasc_core::compose::OrderPolicy;
    for policy in [
        OrderPolicy::FirstSubmitted,
        OrderPolicy::SmallestFirst,
        OrderPolicy::LargestFirst,
    ] {
        for seed in [9u64, 23] {
            let topo = Topology::power_law(96, kbps(300.0), kbps(2500.0), seed);
            let base = SystemView::fresh(&topo);
            let catalog = ServiceCatalog::synthetic(5, seed);
            let items = random_items(96, 24, 5, seed);
            let mut reference = None;
            for threads in [1usize, 3, 6] {
                let mut view = base.clone();
                let out = admitter(threads, Some(8))
                    .with_order(policy)
                    .admit_batch(&mut view, &catalog, &items, seed);
                let digest = out.digest();
                match &reference {
                    None => reference = Some((digest, view, out)),
                    Some((d, v, o)) => {
                        assert_eq!(
                            *d, digest,
                            "{policy:?} digest diverged at {threads} workers (seed {seed})"
                        );
                        assert!(
                            *v == view,
                            "{policy:?} ledger diverged at {threads} workers (seed {seed})"
                        );
                        assert_eq!(o.replayed, out.replayed, "{policy:?} replay set diverged");
                        assert_eq!(o.stats, out.stats, "{policy:?} reconcile stats diverged");
                    }
                }
            }
        }
    }
}

fn batch_engine(n: usize, seed: u64, audit: bool) -> Engine {
    let catalog = ServiceCatalog::synthetic(4, seed);
    let topo = Topology::power_law(n, kbps(400.0), kbps(3000.0), seed);
    let offers: Vec<Vec<usize>> = (0..n)
        .map(|v| (0..4).filter(|s| (v + s) % 7 == 0).collect())
        .collect();
    Engine::builder(n, catalog, seed)
        .topology(topo)
        .offers(offers)
        .config(EngineConfig {
            candidate_cap: Some(8),
            audit,
            audit_period_secs: 2.0,
            ..Default::default()
        })
        .build()
}

#[test]
fn engine_submit_batch_digest_equal_across_worker_counts() {
    let n = 80;
    let reqs = |_| -> Vec<ServiceRequest> {
        (0..16)
            .map(|i| {
                ServiceRequest::chain(
                    &[i % 4, (i + 1) % 4],
                    4.0 + i as f64,
                    (i * 5) % n,
                    (i * 5 + 2) % n,
                )
            })
            .collect()
    };
    let mut e1 = batch_engine(n, 21, false);
    let r1 = e1.submit_batch(reqs(()), 1);
    let mut e4 = batch_engine(n, 21, false);
    let r4 = e4.submit_batch(reqs(()), 4);
    assert_eq!(r1.digest, r4.digest, "engine batch digests diverged");
    assert_eq!(r1.stats, r4.stats);
    assert_eq!(r1.replayed, r4.replayed);
    assert_eq!(
        r1.apps.iter().filter(|a| a.is_ok()).count(),
        r4.apps.iter().filter(|a| a.is_ok()).count()
    );
    assert!(
        r1.apps.iter().any(|a| a.is_ok()),
        "batch admitted nothing: {:?}",
        r1.apps
    );
    // Both engines actually run the admitted apps to completion.
    e1.run_for_secs(10.0);
    e4.run_for_secs(10.0);
    let (rep1, rep4) = (e1.report(), e4.report());
    assert!(rep1.delivered > 0);
    assert_eq!(rep1.delivered, rep4.delivered, "runtime behaviour diverged");
}

#[test]
fn audited_engine_batch_admission_is_clean() {
    // The explicit audit flag exercises the batch path's ledger-exactness
    // check (view == snapshot + admitted reservations) plus the global
    // checkpoint invariants, regardless of the RASC_AUDIT environment.
    let n = 64;
    let mut e = batch_engine(n, 5, true);
    let reqs: Vec<ServiceRequest> = (0..12)
        .map(|i| ServiceRequest::chain(&[i % 4], 6.0 + i as f64, (i * 4) % n, (i * 4 + 3) % n))
        .collect();
    let report = e.submit_batch(reqs, 2);
    assert!(report.apps.iter().any(|a| a.is_ok()));
    e.run_for_secs(12.0);
    let audit = e.finish_run();
    assert!(audit.clean(), "audit violations: {:#?}", audit.violations);
}
