//! Seeded randomized tests over the composition algorithms on random
//! instances: structural validity, rate conservation, rollback
//! discipline, and the dominance property (min-cost admits everything
//! single-placement can). Cases are generated from `desim::SimRng` and
//! reproduce from the case number in the assertion message.

use desim::SimRng;
use rasc_core::compose::{
    Composer, ComposerKind, GreedyComposer, MinCostComposer, ProviderMap, RandomComposer,
};
use rasc_core::model::{ServiceCatalog, ServiceRequest};
use rasc_core::view::SystemView;
use simnet::{kbps, Topology};

#[derive(Clone, Debug)]
struct Instance {
    nodes: usize,
    bw_kbps: Vec<f64>,
    providers: Vec<Vec<usize>>, // per service
    chain: Vec<usize>,
    rate: f64,
    drop_ratios: Vec<f64>,
}

fn random_instance(rng: &mut SimRng) -> Instance {
    let nodes = rng.range_usize(4, 12);
    let services = rng.range_usize(1, 4);
    let bw_kbps: Vec<f64> = (0..nodes).map(|_| rng.range_f64(100.0, 2000.0)).collect();
    let providers: Vec<Vec<usize>> = (0..services)
        .map(|_| {
            let mut p: Vec<usize> = (0..rng.range_usize(1, nodes))
                .map(|_| rng.range_usize(0, nodes.saturating_sub(2).max(1)))
                .collect();
            p.sort_unstable();
            p.dedup();
            p
        })
        .collect();
    let chain: Vec<usize> = (0..rng.range_usize(1, services.min(3) + 1))
        .map(|_| rng.range_usize(0, services))
        .collect();
    let drop_ratios: Vec<f64> = (0..nodes).map(|_| rng.range_f64(0.0, 0.5)).collect();
    Instance {
        nodes,
        bw_kbps,
        providers,
        chain,
        rate: rng.range_f64(1.0, 80.0),
        drop_ratios,
    }
}

fn build(inst: &Instance) -> (ServiceCatalog, SystemView, ProviderMap, ServiceRequest) {
    let catalog = ServiceCatalog::synthetic(inst.providers.len(), 1);
    // Uniform topology scaled per node via consume (approximate
    // heterogeneity within the SystemView API).
    let max_bw = inst.bw_kbps.iter().cloned().fold(0.0, f64::max);
    let mut view = SystemView::fresh(&Topology::uniform(
        inst.nodes,
        kbps(max_bw),
        desim::SimDuration::from_millis(10),
    ));
    for (v, &bw) in inst.bw_kbps.iter().enumerate() {
        let excess = kbps(max_bw) - kbps(bw);
        view.consume_measured(v, excess, excess);
        view.set_drop_ratio(v, inst.drop_ratios[v]);
    }
    let mut providers = ProviderMap::new();
    for (s, hosts) in inst.providers.iter().enumerate() {
        providers.insert(s, hosts.clone());
    }
    let req = ServiceRequest::chain(&inst.chain, inst.rate, inst.nodes - 2, inst.nodes - 1);
    (catalog, view, providers, req)
}

fn all_composers() -> Vec<(ComposerKind, Box<dyn Composer>)> {
    vec![
        (ComposerKind::MinCost, Box::new(MinCostComposer::default())),
        (ComposerKind::Random, Box::new(RandomComposer)),
        (ComposerKind::Greedy, Box::new(GreedyComposer)),
    ]
}

/// On success: every placement is a provider, every stage's rates
/// sum to the requirement, and reservations landed in the view. On
/// failure: the view is untouched.
#[test]
fn compositions_are_valid_or_rolled_back() {
    let mut meta = SimRng::new(0xc09e);
    for case in 0..200u32 {
        let inst = random_instance(&mut meta);
        for (kind, mut composer) in all_composers() {
            let (catalog, mut view, providers, req) = build(&inst);
            let before = view.clone();
            let mut rng = SimRng::new(7);
            match composer.compose(&req, &catalog, &providers, &mut view, &mut rng) {
                Ok(graph) => {
                    for (l, stages) in graph.substreams.iter().enumerate() {
                        assert_eq!(
                            stages.len(),
                            req.graph.substreams[l].services.len(),
                            "case {case}"
                        );
                        for stage in stages {
                            let total = stage.total_rate();
                            assert!(
                                (total - req.rates[l]).abs() < 1e-2,
                                "case {case}: {kind:?}: stage rate {total} vs required {}",
                                req.rates[l]
                            );
                            for p in &stage.placements {
                                assert!(
                                    providers[&stage.service].contains(&p.node),
                                    "case {case}: {kind:?} placed on non-provider"
                                );
                                assert!(p.rate > 0.0, "case {case}");
                            }
                        }
                    }
                    // Reservations took effect somewhere.
                    let touched = (0..inst.nodes).any(|v| view.avail(v) != before.avail(v));
                    assert!(
                        touched,
                        "case {case}: {kind:?}: success without reservations"
                    );
                }
                Err(_) => {
                    for v in 0..inst.nodes {
                        assert_eq!(
                            view.avail(v),
                            before.avail(v),
                            "case {case}: {kind:?}: view mutated on failure"
                        );
                    }
                }
            }
        }
    }
}

/// Dominance: whenever greedy or random can compose a request,
/// min-cost can too (a single placement is a feasible flow).
#[test]
fn mincost_dominates_single_placement() {
    let mut meta = SimRng::new(0xd0a1);
    for case in 0..200u32 {
        let inst = random_instance(&mut meta);
        let (catalog, view, providers, req) = build(&inst);
        let mut rng = SimRng::new(9);
        let greedy_ok = GreedyComposer
            .compose(&req, &catalog, &providers, &mut view.clone(), &mut rng)
            .is_ok();
        let random_ok = RandomComposer
            .compose(&req, &catalog, &providers, &mut view.clone(), &mut rng)
            .is_ok();
        let mincost_ok = MinCostComposer::default()
            .compose(&req, &catalog, &providers, &mut view.clone(), &mut rng)
            .is_ok();
        if greedy_ok || random_ok {
            assert!(
                mincost_ok,
                "case {case}: min-cost rejected a request a baseline admitted"
            );
        }
    }
}

/// Min-cost compositions route through the cheapest viable hosts:
/// the rate-weighted drop cost of its graph never exceeds greedy's.
#[test]
fn mincost_cost_never_exceeds_greedy() {
    let mut meta = SimRng::new(0x90dc);
    for case in 0..200u32 {
        let inst = random_instance(&mut meta);
        let (catalog, view, providers, req) = build(&inst);
        let mut rng = SimRng::new(11);
        let cost_of = |graph: &rasc_core::model::ExecutionGraph, v: &SystemView| {
            graph
                .substreams
                .iter()
                .flatten()
                .flat_map(|s| s.placements.iter())
                .map(|p| p.rate * v.drop_ratio(p.node))
                .sum::<f64>()
        };
        let g = GreedyComposer.compose(&req, &catalog, &providers, &mut view.clone(), &mut rng);
        let m = MinCostComposer::default().compose(
            &req,
            &catalog,
            &providers,
            &mut view.clone(),
            &mut rng,
        );
        if let (Ok(gg), Ok(mg)) = (g, m) {
            let (gc, mc) = (cost_of(&gg, &view), cost_of(&mg, &view));
            // Min-cost also prices utilization and latency; allow those
            // weaker terms to trade against at most a whisker of drop
            // cost (both secondary weights are ≤ 1/10 of a drop unit,
            // and rounding to milli-units adds quantization slack).
            assert!(
                mc <= gc + 0.15 * req.rates[0].max(1.0),
                "case {case}: min-cost drop cost {mc} far above greedy {gc}"
            );
        }
    }
}
