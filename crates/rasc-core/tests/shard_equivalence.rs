//! Sharded-admission equivalence suite (ISSUE 10): at shard-count 1 the
//! region-sharded pipeline must be digest-identical — same outcomes,
//! same replay set, bit-equal committed ledger — to the global
//! `BatchAdmitter` path, both standalone and through
//! `Engine::submit_batch`; and multi-shard runs must stay deterministic
//! across worker counts.

use desim::SimRng;
use overlay::RegionMap;
use rasc_core::compose::{BatchAdmitter, BatchItem, MinCostComposer, ProviderMap, ShardedAdmitter};
use rasc_core::engine::{Engine, EngineConfig};
use rasc_core::model::{ServiceCatalog, ServiceRequest};
use rasc_core::view::SystemView;
use simnet::{kbps, Topology};

fn factory() -> impl Fn() -> Box<dyn rasc_core::compose::Composer + Send> + Send + Sync + 'static {
    || Box::new(MinCostComposer::default().with_candidate_cap(8))
}

fn random_items(n: usize, count: usize, services: usize, seed: u64) -> Vec<BatchItem> {
    let mut rng = SimRng::new(seed ^ 0x5AAD);
    let mut providers = ProviderMap::new();
    for s in 0..services {
        let mut hosts = rng.sample_indices(n, (n / 8).max(4));
        hosts.sort_unstable();
        hosts.dedup();
        providers.insert(s, hosts);
    }
    (0..count)
        .map(|i| {
            let len = rng.range_usize(1, 4);
            let chain: Vec<usize> = (0..len).map(|_| rng.range_usize(0, services)).collect();
            (
                ServiceRequest::chain(
                    &chain,
                    rng.range_f64(2.0, 30.0),
                    (i * 3) % n,
                    (i * 3 + 1) % n,
                ),
                providers.clone(),
            )
        })
        .collect()
}

#[test]
fn one_shard_matches_global_pipeline_on_random_batches() {
    for seed in 0..5u64 {
        let n = 96;
        let topo = Topology::power_law(n, kbps(300.0), kbps(2500.0), seed);
        let base = SystemView::fresh(&topo);
        let catalog = ServiceCatalog::synthetic(5, seed);
        let items = random_items(n, 24, 5, seed);

        let global = BatchAdmitter::new(3, factory());
        let mut view_g = base.clone();
        let out_g = global.admit_batch(&mut view_g, &catalog, &items, seed);

        // Both single-region constructions must match: the trivial map
        // and a site-derived map folded down to one region.
        let sites = topo.site_assignment().expect("power-law is clustered");
        for regions in [RegionMap::single(n), RegionMap::from_sites(sites, 1)] {
            let mut sharded = ShardedAdmitter::new(regions, 3, 4, factory());
            let mut view_s = base.clone();
            let out_s = sharded.admit_batch(&mut view_s, &catalog, &items, seed);
            assert_eq!(
                out_g.digest(),
                out_s.outcome.digest(),
                "seed {seed}: one-shard digest diverged from the global pipeline"
            );
            assert!(view_g == view_s, "seed {seed}: ledgers diverged");
            assert_eq!(out_g.replayed, out_s.outcome.replayed);
            assert_eq!(out_g.stats, out_s.outcome.stats);
            assert_eq!(out_s.cross_shard, 0, "one shard cannot place cross-shard");
        }
    }
}

#[test]
fn multi_shard_outcome_is_deterministic_across_worker_counts() {
    for seed in [3u64, 11] {
        let n = 128;
        let topo = Topology::power_law(n, kbps(300.0), kbps(2500.0), seed);
        let base = SystemView::fresh(&topo);
        let catalog = ServiceCatalog::synthetic(5, seed);
        let items = random_items(n, 32, 5, seed);
        let sites = topo.site_assignment().expect("power-law is clustered");
        let mut reference = None;
        for threads in [1usize, 2, 5] {
            let mut sharded =
                ShardedAdmitter::new(RegionMap::from_sites(sites, 4), threads, 1, factory());
            let mut view = base.clone();
            let out = sharded.admit_batch(&mut view, &catalog, &items, seed);
            match &reference {
                None => reference = Some((out.outcome.digest(), view, out)),
                Some((d, v, o)) => {
                    assert_eq!(*d, out.outcome.digest(), "{threads} workers diverged");
                    assert!(*v == view, "ledger diverged at {threads} workers");
                    assert_eq!(o.cross_shard, out.cross_shard);
                    assert_eq!(o.outcome.replayed, out.outcome.replayed);
                }
            }
        }
    }
}

fn engine(n: usize, seed: u64, shards: usize) -> Engine {
    let catalog = ServiceCatalog::synthetic(4, seed);
    let topo = Topology::power_law(n, kbps(400.0), kbps(3000.0), seed);
    let offers: Vec<Vec<usize>> = (0..n)
        .map(|v| (0..4).filter(|s| (v + s) % 7 == 0).collect())
        .collect();
    Engine::builder(n, catalog, seed)
        .topology(topo)
        .offers(offers)
        .config(EngineConfig {
            candidate_cap: Some(8),
            shards,
            ..Default::default()
        })
        .build()
}

fn burst(n: usize) -> Vec<ServiceRequest> {
    (0..16)
        .map(|i| {
            ServiceRequest::chain(
                &[i % 4, (i + 1) % 4],
                4.0 + i as f64,
                (i * 5) % n,
                (i * 5 + 2) % n,
            )
        })
        .collect()
}

#[test]
fn engine_one_shard_is_digest_identical_to_global_submit_batch() {
    let n = 80;
    let mut global = engine(n, 21, 0);
    let rg = global.submit_batch(burst(n), 2);
    let mut sharded = engine(n, 21, 1);
    let rs = sharded.submit_batch(burst(n), 2);
    assert_eq!(
        rg.digest, rs.digest,
        "engine shards=1 diverged from shards=0"
    );
    assert_eq!(rg.stats, rs.stats);
    assert_eq!(rg.replayed, rs.replayed);
    assert_eq!(rg.cross_shard, 0);
    assert_eq!(rs.cross_shard, 0, "one shard cannot place cross-shard");
    assert!(rg.apps.iter().any(|a| a.is_ok()), "burst admitted nothing");
    // Both engines keep running fine with their respective pipelines.
    global.run_for_secs(8.0);
    sharded.run_for_secs(8.0);
    assert!(global.report().delivered > 0);
    assert!(sharded.report().delivered > 0);
}

#[test]
fn audited_multi_shard_engine_stays_clean() {
    let n = 96;
    let catalog = ServiceCatalog::synthetic(4, 13);
    let topo = Topology::power_law(n, kbps(400.0), kbps(3000.0), 13);
    let offers: Vec<Vec<usize>> = (0..n)
        .map(|v| (0..4).filter(|s| (v + s) % 7 == 0).collect())
        .collect();
    let mut e = Engine::builder(n, catalog, 13)
        .topology(topo)
        .offers(offers)
        .config(EngineConfig {
            candidate_cap: Some(8),
            shards: 4,
            digest_refresh_secs: 1.0,
            audit: true,
            audit_period_secs: 2.0,
            ..Default::default()
        })
        .build();
    let report = e.submit_batch(burst(n), 2);
    assert!(report.apps.iter().any(|a| a.is_ok()), "nothing admitted");
    e.run_for_secs(10.0);
    // A second burst later in the run exercises the periodic digest
    // refresh path (the auditor bounds the digest's age at every
    // checkpoint in between).
    let second = e.submit_batch(burst(n), 2);
    assert!(second.apps.iter().any(|a| a.is_ok()));
    e.run_for_secs(10.0);
    let audit = e.finish_run();
    assert!(audit.clean(), "audit violations: {:#?}", audit.violations);
}
