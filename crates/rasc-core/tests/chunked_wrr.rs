//! Split-dispatch striping coverage: sequence numbers fed through a
//! [`ChunkedWrr`] must be partitioned exactly once across the targets,
//! in aligned runs of `split_chunk` consecutive numbers, with long-run
//! shares converging to the flow weights within one chunk round — the
//! properties the destination-side reordering analysis (and the
//! auditor's exactly-once delivery check) relies on.

use rasc_core::engine::{ChunkedWrr, Wrr};
use std::collections::BTreeMap;

/// Dispatches sequence numbers `0..n`, returning the chosen target per
/// sequence number.
fn dispatch(targets: &[(usize, f64)], chunk: u32, n: usize) -> Vec<usize> {
    let mut wrr = ChunkedWrr::new(Wrr::new(targets.to_vec()), chunk);
    (0..n).map(|_| wrr.pick()).collect()
}

const CASES: &[(&[(usize, f64)], u32)] = &[
    (&[(0, 1.0), (1, 1.0)], 1),
    (&[(0, 3.0), (1, 1.0)], 4),
    (&[(2, 61.0), (5, 39.0)], 16),
    (&[(0, 5.0), (1, 2.0), (2, 3.0)], 8),
    (&[(7, 1.0)], 16),
];

#[test]
fn every_sequence_number_dispatched_exactly_once() {
    for &(targets, chunk) in CASES {
        let n = 4096;
        let assignment = dispatch(targets, chunk, n);
        // Collect the per-target sequence sets; their disjoint union
        // must be exactly 0..n.
        let mut per_target: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (seq, &t) in assignment.iter().enumerate() {
            per_target.entry(t).or_default().push(seq);
        }
        let mut all: Vec<usize> = per_target.values().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>(), "{targets:?}/{chunk}");
        for (t, seqs) in &per_target {
            assert!(
                targets.iter().any(|&(node, _)| node == *t),
                "dispatched to non-target {t}"
            );
            // Within a target the stream is strictly increasing: splits
            // never reorder what a single branch carries.
            assert!(seqs.windows(2).all(|w| w[0] < w[1]), "{targets:?}/{chunk}");
        }
    }
}

#[test]
fn runs_are_aligned_blocks_of_chunk_consecutive_numbers() {
    for &(targets, chunk) in CASES {
        let n = 4096;
        let assignment = dispatch(targets, chunk, n);
        // Every aligned block of `chunk` sequence numbers goes to one
        // target (maximal runs are multiples of `chunk`: adjacent WRR
        // picks of the same target merge their runs).
        for (b, block) in assignment.chunks(chunk as usize).enumerate() {
            assert!(
                block.iter().all(|&t| t == block[0]),
                "{targets:?}/{chunk}: block {b} split across targets: {block:?}"
            );
        }
        if targets.len() > 1 {
            let distinct = {
                let mut v = assignment.clone();
                v.sort_unstable();
                v.dedup();
                v.len()
            };
            assert_eq!(distinct, targets.len(), "a target starved");
        }
    }
}

#[test]
fn weight_shares_converge_within_one_chunk_round() {
    for &(targets, chunk) in CASES {
        let total: f64 = targets.iter().map(|&(_, w)| w).sum();
        // One full round hands each target ~chunk × weight-share picks;
        // smooth WRR keeps every target within one pick of its ideal
        // share per round, so chunking bounds the deviation by `chunk`.
        for rounds in [1usize, 3, 16] {
            let n = rounds * chunk as usize * targets.len();
            let assignment = dispatch(targets, chunk, n);
            for &(node, w) in targets {
                let got = assignment.iter().filter(|&&t| t == node).count() as f64;
                let ideal = n as f64 * w / total;
                assert!(
                    (got - ideal).abs() <= chunk as f64 + 1e-9,
                    "{targets:?}/{chunk}: target {node} got {got} of ideal {ideal} after {n}"
                );
            }
        }
    }
}
