//! Rollback exactness under randomized admitted/rejected interleavings
//! (the auditor's rollback invariant, exercised composer by composer):
//!
//! * locally, every rejected composition leaves the view **bit-equal**
//!   to its pre-compose snapshot (`SystemView`'s exact `PartialEq`, not
//!   an epsilon comparison), and
//! * globally, after a whole interleaving of admissions and rejections,
//!   replaying *only the admitted* execution graphs onto a pristine
//!   clone reproduces the final view bit-for-bit — rejected attempts
//!   left zero residue anywhere, including nodes they briefly reserved
//!   on before failing a later stage.
//!
//! Cases reproduce from the case number in the assertion message.

use desim::{SimDuration, SimRng};
use rasc_core::compose::{ComposerKind, ProviderMap};
use rasc_core::model::{ExecutionGraph, Service, ServiceCatalog, ServiceRequest};
use rasc_core::view::SystemView;
use simnet::{kbps, Topology};

struct Instance {
    nodes: usize,
    catalog: ServiceCatalog,
    providers: ProviderMap,
    view: SystemView,
}

/// Random instance with non-unit rate ratios so the replay must get the
/// gain arithmetic exactly right, not merely the placement bookkeeping.
fn random_instance(rng: &mut SimRng) -> Instance {
    let nodes = rng.range_usize(5, 10);
    let services = rng.range_usize(1, 4);
    let catalog = ServiceCatalog::new(
        (0..services)
            .map(|id| Service {
                id,
                name: format!("s{id}"),
                exec_time: SimDuration::from_micros(rng.range_usize(200, 3000) as u64),
                rate_ratio: *rng.choose(&[0.5, 1.0, 1.0, 2.0]),
            })
            .collect(),
    );
    let mut providers = ProviderMap::new();
    for s in 0..services {
        let mut hosts: Vec<usize> = (0..rng.range_usize(1, nodes - 1))
            .map(|_| rng.range_usize(0, nodes - 2))
            .collect();
        hosts.sort_unstable();
        hosts.dedup();
        providers.insert(s, hosts);
    }
    let mut view = SystemView::fresh(&Topology::uniform(
        nodes,
        kbps(rng.range_f64(1_000.0, 4_000.0)),
        SimDuration::from_millis(10),
    ));
    for v in 0..nodes {
        view.set_drop_ratio(v, rng.range_f64(0.0, 0.4));
    }
    Instance {
        nodes,
        catalog,
        providers,
        view,
    }
}

fn random_request(rng: &mut SimRng, inst: &Instance) -> ServiceRequest {
    let services = inst.catalog.len();
    let chain: Vec<usize> = (0..rng.range_usize(1, services.min(3) + 1))
        .map(|_| rng.range_usize(0, services))
        .collect();
    ServiceRequest::chain(
        &chain,
        rng.range_f64(5.0, 120.0),
        inst.nodes - 2,
        inst.nodes - 1,
    )
}

/// Re-applies an admitted graph's reservations in the composers' order
/// (per substream: source, destination, then each placement) so float
/// accumulation matches the original run operation for operation.
fn replay(
    catalog: &ServiceCatalog,
    req: &ServiceRequest,
    graph: &ExecutionGraph,
    view: &mut SystemView,
) {
    for (l, stages) in graph.substreams.iter().enumerate() {
        let mut gain = 1.0;
        for &s in &req.graph.substreams[l].services {
            gain *= catalog.get(s).rate_ratio;
        }
        view.reserve_source(req.source, req.unit_bits, req.rates[l] / gain);
        view.reserve_destination(req.destination, req.unit_bits, req.rates[l]);
        for stage in stages {
            let svc = catalog.get(stage.service);
            for p in &stage.placements {
                view.reserve_component(p.node, req.unit_bits, svc.rate_ratio, p.rate);
                view.reserve_cpu(p.node, svc.exec_time.as_secs_f64(), p.rate);
            }
        }
    }
}

#[test]
fn rejections_leave_no_residue_and_admissions_replay_bit_identically() {
    let mut totals = (0u32, 0u32); // (admitted, rejected) across all cases
    for kind in ComposerKind::ALL {
        let mut meta = SimRng::new(0xb0_11ba);
        for case in 0..60u32 {
            let inst = random_instance(&mut meta);
            let mut composer = kind.build();
            let mut view = inst.view.clone();
            let pristine = inst.view.clone();
            let mut rng = SimRng::new(u64::from(case) + 13);
            let mut admitted: Vec<(ServiceRequest, ExecutionGraph)> = Vec::new();
            for _ in 0..12 {
                let req = random_request(&mut meta, &inst);
                let before = view.clone();
                match composer.compose(&req, &inst.catalog, &inst.providers, &mut view, &mut rng) {
                    Ok(graph) => {
                        totals.0 += 1;
                        admitted.push((req, graph));
                    }
                    Err(_) => {
                        totals.1 += 1;
                        assert_eq!(
                            view, before,
                            "case {case}: {kind:?}: rejected compose left the view not bit-equal"
                        );
                    }
                }
            }
            let mut replayed = pristine;
            for (req, graph) in &admitted {
                replay(&inst.catalog, req, graph, &mut replayed);
            }
            assert_eq!(
                view, replayed,
                "case {case}: {kind:?}: final view differs from pristine replay of admissions"
            );
        }
    }
    // The interleavings must actually exercise both outcomes, or the
    // invariants above were vacuous.
    assert!(totals.0 > 50, "too few admissions: {totals:?}");
    assert!(totals.1 > 50, "too few rejections: {totals:?}");
}
