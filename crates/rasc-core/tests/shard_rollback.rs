//! Sharded-pipeline rollback exactness (ISSUE 10, satellite): after a
//! sharded batch with forced cross-shard conflicts, the authoritative
//! ledger must be bit-equal to the pre-batch state plus exactly the
//! admitted reservations — replay losers leave no residue — and the
//! capacity index must stay coherent. Also pins down the primitive the
//! pipeline relies on: a transaction rolled back on a digest-patched,
//! partially re-synced view restores it bit-for-bit.

use desim::SimRng;
use monitor::ResidualDigest;
use overlay::RegionMap;
use rasc_core::compose::{
    apply_reservations, BatchItem, MinCostComposer, ProviderMap, ShardedAdmitter,
};
use rasc_core::model::{ServiceCatalog, ServiceRequest};
use rasc_core::view::SystemView;
use simnet::{kbps, Topology};

fn factory() -> impl Fn() -> Box<dyn rasc_core::compose::Composer + Send> + Send + Sync + 'static {
    || Box::new(MinCostComposer::default().with_candidate_cap(8))
}

#[test]
fn randomized_sharded_batches_leave_no_replay_residue() {
    let mut total_conflicts = 0usize;
    for seed in 0..8u64 {
        let n = 96;
        let topo = Topology::power_law(n, kbps(250.0), kbps(2000.0), seed);
        let base = SystemView::fresh(&topo);
        let catalog = ServiceCatalog::synthetic(4, seed);
        let mut rng = SimRng::new(seed ^ 0x0511);
        let mut providers = ProviderMap::new();
        for s in 0..4 {
            let mut hosts = rng.sample_indices(n, 8);
            hosts.sort_unstable();
            hosts.dedup();
            providers.insert(s, hosts);
        }
        // Few providers + heavy rates: optimistic shard-local proposals
        // genuinely collide and the reconcile phase replays or rejects.
        let items: Vec<BatchItem> = (0..20)
            .map(|i| {
                let chain = [i % 4];
                (
                    ServiceRequest::chain(
                        &chain,
                        rng.range_f64(10.0, 40.0),
                        (i * 5) % n,
                        (i * 5 + 2) % n,
                    ),
                    providers.clone(),
                )
            })
            .collect();
        let sites = topo.site_assignment().expect("power-law is clustered");
        let mut admitter = ShardedAdmitter::new(RegionMap::from_sites(sites, 4), 3, 1, factory());
        let mut view = base.clone();
        let out = admitter.admit_batch(&mut view, &catalog, &items, seed);
        // Bit-exactness: committed ledger == base + admitted reservations.
        let mut expect = base.clone();
        for ((req, _), r) in items.iter().zip(&out.outcome.results) {
            if let Ok(g) = r {
                apply_reservations(req, &catalog, g, &mut expect);
            }
        }
        assert!(
            expect == view,
            "seed {seed}: ledger != base + admitted reservations \
             ({} admitted, {} conflicts, {} replay-rejected)",
            out.outcome.admitted(),
            out.outcome.stats.conflicts,
            out.outcome.stats.replay_rejected
        );
        view.check_index_coherence();
        assert!(!view.in_transaction(), "batch left a transaction open");
        total_conflicts += out.outcome.stats.conflicts;
    }
    // The scenario is tight enough that replay actually ran somewhere;
    // without this the residue assertions above would be vacuous.
    assert!(
        total_conflicts > 0,
        "no seed produced a conflict — tighten the scenario"
    );
}

#[test]
fn rollback_on_digest_patched_view_is_bit_exact() {
    let n = 32;
    let topo = Topology::power_law(n, kbps(300.0), kbps(2500.0), 5);
    let base = SystemView::fresh(&topo);

    // A "remote" digest that disagrees with the base view (other shards
    // drained capacity since the snapshot), patched over half the nodes;
    // the other half re-syncs from an authoritative view that also moved.
    let mut digest = ResidualDigest::new(n);
    digest.refresh(3.0, |v| {
        let a = base.avail(v);
        (a.get(0) * 0.7, a.get(1) * 0.5, f64::INFINITY, 0.1)
    });
    let mut authority = base.clone();
    authority.reserve_component(2, 4096, 1.0, 20.0);
    authority.reserve_cpu(2, 0.001, 20.0);

    let remote: Vec<usize> = (0..n / 2).collect();
    let local: Vec<usize> = (n / 2..n).collect();
    let mut view = base.clone();
    view.apply_residual_digest(&digest, &remote);
    view.sync_nodes_from(&authority, &local);
    view.check_index_coherence();

    let pre = view.clone();
    view.begin_transaction();
    view.reserve_component(1, 4096, 1.0, 15.0);
    view.reserve_cpu(1, 0.002, 15.0);
    view.reserve_source(n / 2 + 1, 4096, 8.0);
    view.reserve_destination(n - 1, 4096, 8.0);
    // Nested transaction, as replay does inside an open outer one.
    view.begin_transaction();
    view.reserve_component(3, 4096, 1.0, 9.0);
    view.rollback_transaction();
    view.reserve_component(4, 4096, 1.0, 3.0);
    view.rollback_transaction();

    assert!(pre == view, "rollback left residue on a patched view");
    view.check_index_coherence();
    // And the patch itself did what it declared.
    let a = view.avail(0);
    let b = base.avail(0);
    assert!((a.get(0) - b.get(0) * 0.7).abs() < 1e-9);
    assert!((a.get(1) - b.get(1) * 0.5).abs() < 1e-9);
}
