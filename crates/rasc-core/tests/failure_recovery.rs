//! Failure handling: crash-stopping a node must not panic, must keep
//! the registry consistent, and must dynamically re-compose the affected
//! applications on surviving nodes.

use desim::SimDuration;
use rasc_core::compose::ComposerKind;
use rasc_core::engine::{Engine, EngineConfig};
use rasc_core::metrics::DropCause;
use rasc_core::model::{ServiceCatalog, ServiceRequest};
use simnet::{kbps, TopologyBuilder};

/// 6 provider nodes (all offering both services) + endpoints 6, 7.
fn engine() -> Engine {
    let catalog = ServiceCatalog::synthetic(2, 21);
    let mut b = TopologyBuilder::new().default_latency(SimDuration::from_millis(15));
    for _ in 0..8 {
        b.node(kbps(2_000.0), kbps(2_000.0));
    }
    let mut offers = vec![vec![0, 1]; 6];
    offers.push(vec![]);
    offers.push(vec![]);
    Engine::builder(8, catalog, 21)
        .topology(b.build())
        .offers(offers)
        .config(EngineConfig {
            composer: ComposerKind::MinCost,
            ..Default::default()
        })
        .build()
}

fn hosts_of(engine: &Engine, app: usize) -> Vec<usize> {
    engine
        .app_graph(app)
        .substreams
        .iter()
        .flatten()
        .flat_map(|s| s.placements.iter().map(|p| p.node))
        .collect()
}

#[test]
fn app_recomposes_around_a_failed_provider() {
    let mut e = engine();
    let app = e
        .submit(ServiceRequest::chain(&[0, 1], 15.0, 6, 7))
        .unwrap();
    e.run_for_secs(10.0);
    let delivered_before = e.report().delivered;
    assert!(delivered_before > 0);

    // Kill one of the app's hosts. The min-cost composer repairs its
    // retained composition in place: same app id, no cold re-solve.
    let victim = hosts_of(&e, app)[0];
    e.fail_node(victim);
    assert!(!e.node_alive(victim));
    let r = e.report();
    assert_eq!(r.recompositions, 1);
    assert_eq!(r.repairs, 1, "adaptation should take the repair path");
    assert_eq!(r.composed, 1, "repair must not re-run composition");
    assert_eq!(e.app_count(), 1, "repair keeps the application in place");

    // The repaired graph avoids the corpse and delivery resumes.
    assert!(
        !hosts_of(&e, app).contains(&victim),
        "repaired onto the failed node"
    );
    e.run_for_secs(15.0);
    let r2 = e.report();
    assert!(
        r2.delivered > delivered_before + 100,
        "delivery did not resume: {} -> {}",
        delivered_before,
        r2.delivered
    );
}

#[test]
fn baseline_composers_still_recompose_cold() {
    // The repair path is a min-cost capability; composers without
    // retained state must keep the stop-and-resubmit behaviour.
    let catalog = ServiceCatalog::synthetic(2, 21);
    let mut b = TopologyBuilder::new().default_latency(SimDuration::from_millis(15));
    for _ in 0..8 {
        b.node(kbps(2_000.0), kbps(2_000.0));
    }
    let mut offers = vec![vec![0, 1]; 6];
    offers.push(vec![]);
    offers.push(vec![]);
    let mut e = Engine::builder(8, catalog, 21)
        .topology(b.build())
        .offers(offers)
        .config(EngineConfig {
            composer: ComposerKind::Greedy,
            ..Default::default()
        })
        .build();
    let app = e
        .submit(ServiceRequest::chain(&[0, 1], 15.0, 6, 7))
        .unwrap();
    e.run_for_secs(5.0);
    let victim = hosts_of(&e, app)[0];
    e.fail_node(victim);
    let r = e.report();
    assert_eq!(r.recompositions, 1);
    assert_eq!(r.repairs, 0, "greedy has nothing to repair with");
    assert_eq!(r.composed, 2, "cold recomposition re-ran composition");
    let new_app = e.app_count() - 1;
    assert!(!hosts_of(&e, new_app).contains(&victim));
}

#[test]
fn discovery_forgets_failed_providers() {
    let mut e = engine();
    e.fail_node(2);
    for s in 0..2 {
        let providers = e.directory().providers(s);
        assert!(!providers.contains(&2), "dead node still advertised");
        assert!(providers.len() >= 4, "survivors lost registrations");
    }
}

#[test]
fn endpoint_failure_stops_the_app_without_recomposition() {
    let mut e = engine();
    e.submit(ServiceRequest::chain(&[0], 10.0, 6, 7)).unwrap();
    e.run_for_secs(5.0);
    let generated_before = e.report().generated;
    e.fail_node(6); // the source: nothing to recompose onto
    let r = e.report();
    assert_eq!(r.recompositions, 0);
    e.run_for_secs(10.0);
    let r2 = e.report();
    assert!(
        r2.generated <= generated_before + 2,
        "source kept emitting after its node died"
    );
}

#[test]
fn failing_a_bystander_changes_nothing_for_the_app() {
    let mut e = engine();
    let app = e.submit(ServiceRequest::chain(&[0], 10.0, 6, 7)).unwrap();
    let used = hosts_of(&e, app);
    let bystander = (0..6).find(|v| !used.contains(v)).expect("a free provider");
    e.fail_node(bystander);
    assert_eq!(e.report().recompositions, 0);
    e.run_for_secs(10.0);
    let r = e.report();
    assert!(r.delivered_fraction() > 0.95, "{r:?}");
}

#[test]
fn double_failure_is_idempotent_and_accounted() {
    let mut e = engine();
    e.submit(ServiceRequest::chain(&[0, 1], 12.0, 6, 7))
        .unwrap();
    e.run_for_secs(3.0);
    e.fail_node(0);
    let after_first = e.report().recompositions;
    e.fail_node(0); // again: no-op
    assert_eq!(e.report().recompositions, after_first);
    e.run_for_secs(5.0);
    let r = e.report();
    // Conservation including NodeFailed drops.
    assert!(r.delivered + r.total_drops() <= r.generated);
    let _ = r.drops[DropCause::NodeFailed as usize];
}

#[test]
fn cascading_failures_leave_a_working_system() {
    let mut e = engine();
    e.submit(ServiceRequest::chain(&[0, 1], 10.0, 6, 7))
        .unwrap();
    e.run_for_secs(3.0);
    // Fail half the providers one by one; each time, either recompose or
    // reject — never panic, never corrupt accounting.
    for v in 0..3 {
        e.fail_node(v);
        e.run_for_secs(3.0);
    }
    let r = e.report();
    assert!(r.delivered + r.total_drops() <= r.generated);
    // The final app (whatever its generation) still delivers on the
    // surviving providers.
    let before = e.report().delivered;
    e.run_for_secs(10.0);
    assert!(e.report().delivered > before, "system wedged after churn");
}
