//! Adaptation equivalence for incremental recomposition (warm-restart
//! min-cost repair on the adaptation hot path).
//!
//! * **Composer level** — across randomized instances, when the min-cost
//!   composer repairs its retained composition after a host death, the
//!   repaired placement must preserve every substream rate, avoid the
//!   dead host, and cost the same as a *cold* re-composition on the
//!   identical post-failure view: the successive-shortest-path repair is
//!   exactly min-cost for the re-routed value, so any gap beyond the
//!   alternative-optima tolerance (shared with the solver-equivalence
//!   suite) is a bug, not a heuristic loss.
//! * **Engine level** — bandwidth degradation evacuates the starved host
//!   by in-place repair (same application id, no re-composition);
//!   restoring capacities invalidates every retained composition, so the
//!   next failure recomposes cold.
//! * **Soak** — seeded crash/degrade/restore scripts under full audit
//!   finish with zero invariant violations and exact unit conservation
//!   while the repair path does the adapting.

use desim::{SimDuration, SimRng};
use rasc_core::compose::{Composer, MinCostComposer, ProviderMap};
use rasc_core::engine::{Engine, EngineConfig};
use rasc_core::model::{ExecutionGraph, ServiceCatalog, ServiceRequest};
use rasc_core::view::SystemView;
use simnet::{kbps, Topology, TopologyBuilder};

// ---------------------------------------------------------------------
// Composer-level equivalence
// ---------------------------------------------------------------------

struct Instance {
    catalog: ServiceCatalog,
    view: SystemView,
    providers: ProviderMap,
    req: ServiceRequest,
}

/// A layered instance shaped so post-failure repair is usually feasible:
/// every service keeps at least three candidate hosts, and requested
/// rates stay well inside a single NIC.
fn random_instance(rng: &mut SimRng) -> Instance {
    let nodes = rng.range_usize(7, 13);
    let services = rng.range_usize(1, 4);
    let catalog = ServiceCatalog::synthetic(services, 1);
    let max_bw = 2_000.0;
    let mut view = SystemView::fresh(&Topology::uniform(
        nodes,
        kbps(max_bw),
        SimDuration::from_millis(10),
    ));
    for v in 0..nodes {
        let excess = kbps(max_bw) - kbps(rng.range_f64(400.0, max_bw));
        view.consume_measured(v, excess, excess);
        view.set_drop_ratio(v, rng.range_f64(0.0, 0.4));
    }
    // Endpoints are the last two nodes; providers never include them.
    let mut providers = ProviderMap::new();
    for s in 0..services {
        let mut hosts = Vec::new();
        while hosts.len() < 3 {
            hosts = (0..rng.range_usize(3, nodes.min(8)))
                .map(|_| rng.range_usize(0, nodes - 2))
                .collect();
            hosts.sort_unstable();
            hosts.dedup();
        }
        providers.insert(s, hosts);
    }
    let chain: Vec<usize> = (0..rng.range_usize(1, services + 1))
        .map(|_| rng.range_usize(0, services))
        .collect();
    let rate = rng.range_f64(2.0, 30.0);
    let req = ServiceRequest::chain(&chain, rate, nodes - 2, nodes - 1);
    Instance {
        catalog,
        view,
        providers,
        req,
    }
}

fn drop_cost(graph: &ExecutionGraph, view: &SystemView) -> f64 {
    graph
        .substreams
        .iter()
        .flatten()
        .flat_map(|s| s.placements.iter())
        .map(|p| p.rate * view.drop_ratio(p.node))
        .sum()
}

fn placed_hosts(graph: &ExecutionGraph) -> Vec<usize> {
    graph
        .substreams
        .iter()
        .flatten()
        .flat_map(|s| s.placements.iter().map(|p| p.node))
        .collect()
}

/// Repair reaches a feasible placement whose cost matches a cold
/// re-solve on the same post-failure view. Cases where repair declines
/// (shortfall on the survivors) fall back cold by design and are skipped
/// — but the suite must not be vacuous, so a floor on repaired cases is
/// asserted at the end.
#[test]
fn repair_cost_matches_cold_recomposition() {
    let mut rng = SimRng::new(0xada97);
    let mut repaired = 0u32;
    for case in 0..160u32 {
        let inst = random_instance(&mut rng);
        let mut comp = MinCostComposer::default();
        let mut v1 = inst.view.clone();
        let Ok(g) = comp.compose(
            &inst.req,
            &inst.catalog,
            &inst.providers,
            &mut v1,
            &mut SimRng::new(1),
        ) else {
            continue;
        };
        comp.retain_for_repair(case as usize);
        let Some(&victim) = placed_hosts(&g).first() else {
            continue;
        };
        // The world after the crash: the victim advertises no capacity
        // and total loss; every survivor is exactly as it was.
        let mut after = inst.view.clone();
        after.consume_measured(victim, f64::MAX, f64::MAX);
        after.set_drop_ratio(victim, 1.0);
        let Some(rg) = comp.repair(case as usize, &inst.req, &inst.catalog, &g, victim, &after)
        else {
            continue;
        };
        repaired += 1;

        // Feasibility contract: evacuated, and every rate preserved.
        assert!(
            !placed_hosts(&rg).contains(&victim),
            "case {case}: repaired placement still uses the dead host"
        );
        for (old_sub, new_sub) in g.substreams.iter().zip(&rg.substreams) {
            assert_eq!(old_sub.len(), new_sub.len(), "case {case}: shape changed");
            for (os, ns) in old_sub.iter().zip(new_sub) {
                assert_eq!(os.service, ns.service, "case {case}: service changed");
                let (a, b) = (os.total_rate(), ns.total_rate());
                assert!(
                    (a - b).abs() <= 1e-6 * a.max(1.0),
                    "case {case}: stage rate drifted {a} -> {b}"
                );
            }
        }

        // Optimality contract: a cold re-composition against the same
        // view must admit (repair succeeding proves feasibility) and be
        // equally cheap, within the tolerance that integer scaling plus
        // the secondary utilization/latency terms allow.
        let mut v2 = after.clone();
        let cold = MinCostComposer::default()
            .compose(
                &inst.req,
                &inst.catalog,
                &inst.providers,
                &mut v2,
                &mut SimRng::new(1),
            )
            .unwrap_or_else(|e| {
                panic!("case {case}: repair found a placement but cold re-solve rejected: {e}")
            });
        let (rc, cc) = (drop_cost(&rg, &after), drop_cost(&cold, &after));
        assert!(
            (rc - cc).abs() <= 0.15 * inst.req.rates[0].max(1.0),
            "case {case}: repair cost {rc} vs cold cost {cc}"
        );
    }
    assert!(
        repaired >= 40,
        "suite is vacuous: only {repaired} repairs ran"
    );
}

// ---------------------------------------------------------------------
// Engine-level behaviour
// ---------------------------------------------------------------------

const PROVIDERS: usize = 6;
const NODES: usize = PROVIDERS + 2; // + source (6) and destination (7)

/// 6 provider nodes offering both services, 2 endpoints, audit on.
fn audited_engine(seed: u64) -> Engine {
    let catalog = ServiceCatalog::synthetic(2, seed);
    let mut b = TopologyBuilder::new().default_latency(SimDuration::from_millis(15));
    for _ in 0..NODES {
        b.node(kbps(2_000.0), kbps(2_000.0));
    }
    let mut offers = vec![vec![0, 1]; PROVIDERS];
    offers.push(vec![]);
    offers.push(vec![]);
    Engine::builder(NODES, catalog, seed)
        .topology(b.build())
        .offers(offers)
        .config(EngineConfig {
            audit: true,
            audit_period_secs: 1.0,
            ..Default::default()
        })
        .build()
}

fn hosts_of(engine: &Engine, app: usize) -> Vec<usize> {
    placed_hosts(engine.app_graph(app))
}

#[test]
fn degradation_repairs_in_place_and_restore_invalidates_the_cache() {
    let mut e = audited_engine(5);
    let app = e
        .submit(ServiceRequest::chain(
            &[0, 1],
            25.0,
            PROVIDERS,
            PROVIDERS + 1,
        ))
        .unwrap();
    e.run_for_secs(5.0);

    // Starve one of the app's hosts: the commitments no longer fit, and
    // the degraded (still alive) node is evacuated by in-place repair.
    let victim = hosts_of(&e, app)[0];
    e.degrade_node(victim, 0.02);
    assert!(e.node_alive(victim), "degradation is not a crash");
    let r = e.report();
    assert_eq!(r.recompositions, 1);
    assert_eq!(r.repairs, 1, "degradation should take the repair path");
    assert_eq!(r.composed, 1, "repair must not re-run composition");
    assert_eq!(e.app_count(), 1, "repair keeps the application in place");
    assert!(
        !hosts_of(&e, app).contains(&victim),
        "still routed through the starved node"
    );
    e.run_for_secs(5.0);

    // Restoring bandwidth discards every retained composition (each was
    // priced and evacuated against the degraded world), so the next
    // failure must fall back to cold stop-and-resubmit.
    e.restore_node(victim);
    let casualty = hosts_of(&e, app)[0];
    e.fail_node(casualty);
    let r2 = e.report();
    assert_eq!(r2.recompositions, 2);
    assert_eq!(r2.repairs, 1, "restore must have emptied the repair cache");
    assert_eq!(r2.composed, 2, "cold recomposition re-runs composition");
    let new_app = e.app_count() - 1;
    assert!(!hosts_of(&e, new_app).contains(&casualty));

    e.run_for_secs(5.0);
    let audit = e.finish_run();
    assert!(audit.clean(), "{:#?}", audit.violations);
    let rf = e.report();
    assert_eq!(
        rf.generated,
        rf.delivered + rf.total_drops(),
        "units leaked"
    );
}

/// Seeded crash/degrade/restore scripts under full audit: every run
/// finishes clean with exact conservation, and across the seeds the
/// repair path — not cold recomposition — does most of the adapting.
#[test]
fn audited_fault_scripts_repair_cleanly_across_seeds() {
    let mut total_repairs = 0u64;
    for seed in [3u64, 17, 29, 41, 53] {
        let mut e = audited_engine(seed);
        let a = e
            .submit(ServiceRequest::chain(
                &[0, 1],
                18.0,
                PROVIDERS,
                PROVIDERS + 1,
            ))
            .unwrap();
        let _b = e
            .submit(ServiceRequest::chain(&[1], 12.0, PROVIDERS, PROVIDERS + 1))
            .unwrap();
        e.run_for_secs(4.0);

        // Crash one of the first app's hosts, then starve and restore a
        // survivor, then crash a second node — repairs, invalidation and
        // cold fallback all exercised in one audited run.
        let v1 = hosts_of(&e, a)[0];
        e.fail_node(v1);
        e.run_for_secs(4.0);
        let survivor = (0..PROVIDERS).find(|&v| e.node_alive(v)).unwrap();
        e.degrade_node(survivor, 0.05);
        e.run_for_secs(4.0);
        e.restore_node(survivor);
        e.run_for_secs(2.0);
        let v2 = (0..PROVIDERS)
            .find(|&v| e.node_alive(v) && v != survivor)
            .unwrap();
        e.fail_node(v2);
        e.run_for_secs(4.0);

        let audit = e.finish_run();
        assert!(audit.clean(), "seed {seed}: {:#?}", audit.violations);
        let r = e.report();
        assert_eq!(
            r.generated,
            r.delivered + r.total_drops(),
            "seed {seed}: units leaked"
        );
        assert!(
            r.recompositions >= 1,
            "seed {seed}: the fault script never triggered adaptation"
        );
        total_repairs += r.repairs;
    }
    assert!(
        total_repairs >= 3,
        "repair path almost never taken across seeds: {total_repairs}"
    );
}
