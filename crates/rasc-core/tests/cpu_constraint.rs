//! Tests for the multi-resource extension (the paper's §6 future work):
//! CPU as a composition constraint alongside input/output bandwidth.

use desim::SimDuration;
use rasc_core::compose::ComposerKind;
use rasc_core::engine::{Engine, EngineConfig};
use rasc_core::model::{Service, ServiceCatalog, ServiceRequest};
use rasc_core::view::SystemView;
use simnet::{kbps, mbps, Topology};

/// A deliberately CPU-heavy service: 40 ms per data unit.
fn heavy_catalog() -> ServiceCatalog {
    ServiceCatalog::new(vec![Service {
        id: 0,
        name: "deep-inspect".into(),
        exec_time: SimDuration::from_millis(40),
        rate_ratio: 1.0,
    }])
}

fn engine(cpu_cores: Option<f64>) -> Engine {
    Engine::builder(4, heavy_catalog(), 3)
        .topology(Topology::uniform(
            4,
            mbps(10.0), // bandwidth is never the bottleneck here
            SimDuration::from_millis(10),
        ))
        .offers(vec![vec![], vec![0], vec![0], vec![]])
        .config(EngineConfig {
            composer: ComposerKind::MinCost,
            cpu_cores,
            // Deterministic execution times: the tests below reason
            // about exact CPU budgets.
            exec_noise_sigma: 0.0,
            ..Default::default()
        })
        .build()
}

#[test]
fn view_cpu_dimension_binds_max_rate() {
    let topo = Topology::uniform(2, mbps(10.0), SimDuration::from_millis(5));
    let mut view = SystemView::fresh(&topo);
    // Unconstrained: bandwidth rules (10 Mbps / 8192 ≈ 1220 du/s).
    let bw_only = view.max_rate_with_cpu(0, 8192, 1.0, 0.040);
    assert!((bw_only - 10_000_000.0 / 8192.0).abs() < 1e-6);
    // One core at 40 ms/unit: at most 25 du/s.
    view.set_cpu_capacity(0, 1.0);
    let with_cpu = view.max_rate_with_cpu(0, 8192, 1.0, 0.040);
    assert!((with_cpu - 25.0).abs() < 1e-9, "{with_cpu}");
    // Reserving 10 du/s of CPU leaves 15.
    view.reserve_cpu(0, 0.040, 10.0);
    let after = view.max_rate_with_cpu(0, 8192, 1.0, 0.040);
    assert!((after - 15.0).abs() < 1e-9, "{after}");
    // Utilization reflects the CPU dimension.
    assert!((view.utilization(0) - 0.4).abs() < 1e-9);
}

#[test]
fn cpu_constraint_rejects_what_bandwidth_admits() {
    // Each 1-core provider at 0.75 headroom sustains 18.75 du/s of a
    // 40 ms/unit service; the two together 37.5. A 45 du/s request
    // exceeds even the aggregate: rejected when the CPU dimension is
    // on…
    let mut constrained = engine(Some(1.0));
    let err = constrained
        .submit(ServiceRequest::chain(&[0], 45.0, 0, 3))
        .unwrap_err();
    assert!(matches!(
        err,
        rasc_core::compose::ComposeError::InsufficientCapacity { .. }
    ));
    // …while 30 du/s — beyond any single provider but within the
    // aggregate — is admitted via a CPU-driven split.
    let app = constrained
        .submit(ServiceRequest::chain(&[0], 30.0, 0, 3))
        .expect("two providers jointly carry 30 du/s");
    assert!(
        constrained.app_graph(app).has_splitting(),
        "expected a CPU-driven split"
    );
    // And bandwidth-only composition admits even the 45 du/s request
    // (10 Mbps NICs — it simply cannot see the CPU wall).
    let mut unconstrained = engine(None);
    unconstrained
        .submit(ServiceRequest::chain(&[0], 45.0, 0, 3))
        .expect("bandwidth-only admission ignores CPU");
}

#[test]
fn without_constraint_cpu_overload_shows_up_as_laxity_drops() {
    // Bandwidth-only composition happily admits 30 du/s onto a node
    // whose CPU can only process 25: the scheduler sheds the excess.
    let mut unconstrained = engine(None);
    unconstrained
        .submit(ServiceRequest::chain(&[0], 30.0, 0, 3))
        .expect("bandwidth-only admission");
    unconstrained.run_for_secs(30.0);
    let r = unconstrained.report();
    let laxity = r.drops[rasc_core::metrics::DropCause::Laxity as usize];
    let queue = r.drops[rasc_core::metrics::DropCause::QueueFull as usize];
    assert!(
        laxity + queue > 0,
        "CPU overload produced no scheduler drops: {r:?}"
    );
    assert!(r.delivered_fraction() < 0.95, "overload went unnoticed");
}

#[test]
fn constrained_composition_outperforms_blind_admission() {
    // Same 30 du/s demand: CPU-aware composition splits it across both
    // cores; bandwidth-only packs one node at ρ=1.2 and sheds heavily.
    let run = |cores| {
        let mut e = engine(cores);
        e.submit(ServiceRequest::chain(&[0], 30.0, 0, 3)).unwrap();
        e.run_for_secs(30.0);
        e.report()
    };
    let aware = run(Some(1.0));
    let blind = run(None);
    assert!(
        aware.delivered_fraction() > blind.delivered_fraction() + 0.05,
        "CPU-aware {:.3} should beat blind {:.3} clearly",
        aware.delivered_fraction(),
        blind.delivered_fraction()
    );
    assert!(aware.delivered_fraction() > 0.8, "{aware:?}");
}

#[test]
fn cpu_capacity_releases_on_teardown() {
    let mut e = engine(Some(1.0));
    let short = ServiceRequest::chain(&[0], 25.0, 0, 3).with_lifetime(SimDuration::from_secs(4));
    e.submit(short).unwrap();
    e.run_for_secs(2.0);
    // While running, an identical request does not fit.
    assert!(e.submit(ServiceRequest::chain(&[0], 25.0, 0, 3)).is_err());
    e.run_for_secs(15.0);
    // After teardown + meter drain, it does.
    e.submit(ServiceRequest::chain(&[0], 25.0, 0, 3))
        .expect("CPU not released on teardown");
    let _ = kbps(1.0);
}
