//! Cross-solver equivalence: the min-cost composer must make the same
//! admit/reject decision — and produce equally cheap compositions — no
//! matter which of the five `mincostflow` engines solves the layered
//! composition graph. Instances are randomized via `desim::SimRng` and
//! reproduce from the case number in the assertion message.

use desim::{SimDuration, SimRng};
use mincostflow::Algorithm;
use rasc_core::compose::{Composer, MinCostComposer, ProviderMap};
use rasc_core::model::{ExecutionGraph, ServiceCatalog, ServiceRequest};
use rasc_core::view::SystemView;
use simnet::{kbps, Topology};

const ALGORITHMS: [Algorithm; 5] = [
    Algorithm::DijkstraSsp,
    Algorithm::DialSsp,
    Algorithm::SpfaSsp,
    Algorithm::CostScaling,
    Algorithm::CapacityScaling,
];

struct Instance {
    catalog: ServiceCatalog,
    view: SystemView,
    providers: ProviderMap,
    req: ServiceRequest,
}

/// A layered composition instance: a service chain over a heterogeneous
/// view, with per-service provider sets drawn at random.
fn random_instance(rng: &mut SimRng) -> Instance {
    let nodes = rng.range_usize(5, 14);
    let services = rng.range_usize(1, 4);
    let catalog = ServiceCatalog::synthetic(services, 1);
    let max_bw = 2_000.0;
    let mut view = SystemView::fresh(&Topology::uniform(
        nodes,
        kbps(max_bw),
        SimDuration::from_millis(10),
    ));
    for v in 0..nodes {
        let excess = kbps(max_bw) - kbps(rng.range_f64(100.0, max_bw));
        view.consume_measured(v, excess, excess);
        view.set_drop_ratio(v, rng.range_f64(0.0, 0.5));
    }
    let mut providers = ProviderMap::new();
    for s in 0..services {
        let mut hosts: Vec<usize> = (0..rng.range_usize(1, nodes))
            .map(|_| rng.range_usize(0, nodes - 2))
            .collect();
        hosts.sort_unstable();
        hosts.dedup();
        providers.insert(s, hosts);
    }
    let chain: Vec<usize> = (0..rng.range_usize(1, services + 1))
        .map(|_| rng.range_usize(0, services))
        .collect();
    let rate = rng.range_f64(1.0, 80.0);
    let req = ServiceRequest::chain(&chain, rate, nodes - 2, nodes - 1);
    Instance {
        catalog,
        view,
        providers,
        req,
    }
}

fn drop_cost(graph: &ExecutionGraph, view: &SystemView) -> f64 {
    graph
        .substreams
        .iter()
        .flatten()
        .flat_map(|s| s.placements.iter())
        .map(|p| p.rate * view.drop_ratio(p.node))
        .sum()
}

/// All five flow engines admit the same requests, and admitted
/// compositions are equally cheap (within the tolerance that integer
/// scaling plus the secondary utilization/latency terms allow).
#[test]
fn all_algorithms_agree_on_layered_graphs() {
    let mut rng = SimRng::new(0xe05a1e);
    for case in 0..128u32 {
        let inst = random_instance(&mut rng);
        let results: Vec<Option<f64>> = ALGORITHMS
            .iter()
            .map(|&alg| {
                let mut view = inst.view.clone();
                MinCostComposer::with_algorithm(alg)
                    .compose(
                        &inst.req,
                        &inst.catalog,
                        &inst.providers,
                        &mut view,
                        &mut SimRng::new(1),
                    )
                    .ok()
                    .map(|g| drop_cost(&g, &inst.view))
            })
            .collect();
        let reference = &results[0];
        for (i, r) in results.iter().enumerate().skip(1) {
            match (reference, r) {
                (Some(a), Some(b)) => {
                    // Alternative optima of the same scaled integer
                    // program may trade drop cost against the weaker
                    // utilization/latency terms (each ≤ 1/10 of a drop
                    // unit) plus milli-unit rounding.
                    assert!(
                        (a - b).abs() <= 0.15 * inst.req.rates[0].max(1.0),
                        "case {case}: {:?} cost {b} vs {:?} cost {a}",
                        ALGORITHMS[i],
                        ALGORITHMS[0]
                    );
                }
                (None, None) => {}
                _ => panic!(
                    "case {case}: {:?} and {:?} disagree on admission",
                    ALGORITHMS[0], ALGORITHMS[i]
                ),
            }
        }
    }
}
