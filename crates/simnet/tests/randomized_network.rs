//! Seeded randomized tests for the network substrate: conservation of
//! messages, monotone NIC behaviour, and topology invariants. Cases are
//! generated from `desim::SimRng` and reproduce from the case number in
//! the assertion message.

use desim::{SimDuration, SimRng, SimTime};
use simnet::{kbps, Network, NetworkConfig, Topology};

fn quiet(seed: u64) -> NetworkConfig {
    NetworkConfig {
        latency_jitter_sigma: 0.0,
        congestion_jitter: 0.0,
        seed,
        ..Default::default()
    }
}

/// Every send is accounted exactly once: delivered, dropped at the
/// sender, or dropped at the receiver — and the per-node counters
/// agree with the outcome tally.
#[test]
fn message_accounting_balances() {
    let mut rng = SimRng::new(0xacc7);
    for case in 0..128u32 {
        let n = rng.range_usize(2, 8);
        let bw = rng.range_f64(100.0, 2_000.0);
        let mut sends: Vec<(u64, usize, usize, u64)> = (0..rng.range_usize(1, 200))
            .map(|_| {
                (
                    rng.range_u64(0, 5_000),
                    rng.range_usize(0, 8),
                    rng.range_usize(0, 8),
                    rng.range_u64(1, 100_000),
                )
            })
            .collect();
        sends.sort_by_key(|&(t, ..)| t);
        let topo = Topology::uniform(n, kbps(bw), SimDuration::from_millis(20));
        let mut net = Network::new(topo, quiet(1));
        let (mut delivered, mut s_drop, mut r_drop) = (0u64, 0u64, 0u64);
        for (t_ms, src, dst, bits) in sends {
            let (src, dst) = (src % n, dst % n);
            match net.send(SimTime::from_millis(t_ms), src, dst, bits) {
                simnet::SendOutcome::Delivered(at) => {
                    assert!(
                        at >= SimTime::from_millis(t_ms),
                        "case {case}: delivery in the past"
                    );
                    delivered += 1;
                }
                simnet::SendOutcome::Dropped(simnet::DropReason::SenderOverflow) => s_drop += 1,
                simnet::SendOutcome::Dropped(simnet::DropReason::ReceiverOverflow) => r_drop += 1,
            }
        }
        let total_in: u64 = (0..n).map(|v| net.stats(v).msgs_in).sum();
        let total_out: u64 = (0..n).map(|v| net.stats(v).msgs_out).sum();
        let drops_out: u64 = (0..n).map(|v| net.stats(v).drops_out).sum();
        let drops_in: u64 = (0..n).map(|v| net.stats(v).drops_in).sum();
        assert_eq!(total_in, delivered, "case {case}");
        assert_eq!(total_out, delivered + r_drop, "case {case}");
        assert_eq!(drops_out, s_drop, "case {case}");
        assert_eq!(drops_in, r_drop, "case {case}");
    }
}

/// Back-to-back messages between one pair arrive in FIFO order
/// (without jitter, the pipe preserves ordering).
#[test]
fn single_path_is_fifo_without_jitter() {
    let mut rng = SimRng::new(0xf1f0);
    for case in 0..128u32 {
        let bw = rng.range_f64(200.0, 2_000.0);
        let sizes: Vec<u64> = (0..rng.range_usize(2, 50))
            .map(|_| rng.range_u64(1, 50_000))
            .collect();
        let topo = Topology::uniform(2, kbps(bw), SimDuration::from_millis(15));
        let mut net = Network::new(
            topo,
            NetworkConfig {
                max_nic_backlog: SimDuration::from_secs(3600),
                ..quiet(2)
            },
        );
        let mut last = SimTime::ZERO;
        for bits in sizes {
            match net.send(SimTime::ZERO, 0, 1, bits) {
                simnet::SendOutcome::Delivered(at) => {
                    assert!(at >= last, "case {case}: reordered without jitter");
                    last = at;
                }
                other => panic!("case {case}: unbounded queue dropped: {other:?}"),
            }
        }
    }
}

/// Delivery time decomposes into tx + latency + rx for an idle pair.
#[test]
fn delivery_time_decomposition() {
    let mut rng = SimRng::new(0xdec0);
    for case in 0..128u32 {
        let bw = rng.range_f64(100.0, 5_000.0);
        let lat_ms = rng.range_u64(1, 200);
        let bits = rng.range_u64(1, 500_000);
        let topo = Topology::uniform(2, kbps(bw), SimDuration::from_millis(lat_ms));
        let mut net = Network::new(
            topo,
            NetworkConfig {
                max_nic_backlog: SimDuration::from_secs(3600),
                ..quiet(3)
            },
        );
        match net.send(SimTime::ZERO, 0, 1, bits) {
            simnet::SendOutcome::Delivered(at) => {
                let tx = bits as f64 / kbps(bw);
                let expect = 2.0 * tx + lat_ms as f64 / 1_000.0;
                assert!(
                    (at.as_secs_f64() - expect).abs() < 1e-6,
                    "case {case}: got {} expected {}",
                    at.as_secs_f64(),
                    expect
                );
            }
            other => panic!("case {case}: {other:?}"),
        }
    }
}

/// Heterogeneous topologies keep every band's nodes inside their
/// declared bandwidth range and latencies symmetric.
#[test]
fn heterogeneous_bands_hold() {
    let mut rng = SimRng::new(0x8e7e);
    for case in 0..128u32 {
        let seed = rng.next_u64();
        let a = rng.range_usize(1, 6);
        let b = rng.range_usize(1, 6);
        let topo = Topology::heterogeneous(
            &[
                (a, kbps(100.0), kbps(200.0)),
                (b, kbps(1_000.0), kbps(4_000.0)),
            ],
            seed,
        );
        assert_eq!(topo.len(), a + b, "case {case}");
        for v in 0..a {
            let s = topo.spec(v);
            assert!(
                s.bw_in >= kbps(100.0) && s.bw_in <= kbps(200.0),
                "case {case}"
            );
            assert!(
                s.bw_out >= kbps(100.0) && s.bw_out <= kbps(200.0),
                "case {case}"
            );
        }
        for v in a..a + b {
            let s = topo.spec(v);
            assert!(
                s.bw_in >= kbps(1_000.0) && s.bw_in <= kbps(4_000.0),
                "case {case}"
            );
        }
        for u in 0..topo.len() {
            for v in 0..topo.len() {
                assert_eq!(topo.latency(u, v), topo.latency(v, u), "case {case}");
            }
        }
    }
}

/// Cross-traffic occupancy delays but never reorders or corrupts
/// the accounting.
#[test]
fn occupancy_only_delays() {
    let mut rng = SimRng::new(0x0cc);
    for case in 0..128u32 {
        let occupy_ms = rng.range_u64(1, 2_000);
        let bits = rng.range_u64(1, 50_000);
        let topo = Topology::uniform(2, kbps(1_000.0), SimDuration::from_millis(10));
        let mk = || {
            Network::new(
                topo.clone(),
                NetworkConfig {
                    max_nic_backlog: SimDuration::from_secs(3600),
                    ..quiet(4)
                },
            )
        };
        let mut idle = mk();
        let mut busy = mk();
        busy.occupy(
            SimTime::ZERO,
            0,
            SimDuration::from_millis(occupy_ms),
            SimDuration::from_millis(occupy_ms),
        );
        let t_idle = match idle.send(SimTime::ZERO, 0, 1, bits) {
            simnet::SendOutcome::Delivered(t) => t,
            other => panic!("case {case}: {other:?}"),
        };
        let t_busy = match busy.send(SimTime::ZERO, 0, 1, bits) {
            simnet::SendOutcome::Delivered(t) => t,
            other => panic!("case {case}: {other:?}"),
        };
        let delta = t_busy.saturating_since(t_idle);
        assert_eq!(delta, SimDuration::from_millis(occupy_ms), "case {case}");
    }
}
