//! Property tests for the network substrate: conservation of messages,
//! monotone NIC behaviour, and topology invariants.

use desim::{SimDuration, SimTime};
use proptest::prelude::*;
use simnet::{kbps, Network, NetworkConfig, Topology};

fn quiet(seed: u64) -> NetworkConfig {
    NetworkConfig {
        latency_jitter_sigma: 0.0,
        congestion_jitter: 0.0,
        seed,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every send is accounted exactly once: delivered, dropped at the
    /// sender, or dropped at the receiver — and the per-node counters
    /// agree with the outcome tally.
    #[test]
    fn message_accounting_balances(
        n in 2usize..8,
        bw in 100.0f64..2_000.0,
        sends in proptest::collection::vec((0u64..5_000, 0usize..8, 0usize..8, 1u64..100_000), 1..200),
    ) {
        let topo = Topology::uniform(n, kbps(bw), SimDuration::from_millis(20));
        let mut net = Network::new(topo, quiet(1));
        let (mut delivered, mut s_drop, mut r_drop) = (0u64, 0u64, 0u64);
        let mut sends = sends;
        sends.sort_by_key(|&(t, ..)| t);
        for (t_ms, src, dst, bits) in sends {
            let (src, dst) = (src % n, dst % n);
            match net.send(SimTime::from_millis(t_ms), src, dst, bits) {
                simnet::SendOutcome::Delivered(at) => {
                    prop_assert!(at >= SimTime::from_millis(t_ms), "delivery in the past");
                    delivered += 1;
                }
                simnet::SendOutcome::Dropped(simnet::DropReason::SenderOverflow) => s_drop += 1,
                simnet::SendOutcome::Dropped(simnet::DropReason::ReceiverOverflow) => r_drop += 1,
            }
        }
        let total_in: u64 = (0..n).map(|v| net.stats(v).msgs_in).sum();
        let total_out: u64 = (0..n).map(|v| net.stats(v).msgs_out).sum();
        let drops_out: u64 = (0..n).map(|v| net.stats(v).drops_out).sum();
        let drops_in: u64 = (0..n).map(|v| net.stats(v).drops_in).sum();
        prop_assert_eq!(total_in, delivered);
        prop_assert_eq!(total_out, delivered + r_drop);
        prop_assert_eq!(drops_out, s_drop);
        prop_assert_eq!(drops_in, r_drop);
    }

    /// Back-to-back messages between one pair arrive in FIFO order
    /// (without jitter, the pipe preserves ordering).
    #[test]
    fn single_path_is_fifo_without_jitter(
        bw in 200.0f64..2_000.0,
        sizes in proptest::collection::vec(1u64..50_000, 2..50),
    ) {
        let topo = Topology::uniform(2, kbps(bw), SimDuration::from_millis(15));
        let mut net = Network::new(topo, NetworkConfig {
            max_nic_backlog: SimDuration::from_secs(3600),
            ..quiet(2)
        });
        let mut last = SimTime::ZERO;
        for bits in sizes {
            match net.send(SimTime::ZERO, 0, 1, bits) {
                simnet::SendOutcome::Delivered(at) => {
                    prop_assert!(at >= last, "reordered without jitter");
                    last = at;
                }
                other => prop_assert!(false, "unbounded queue dropped: {:?}", other),
            }
        }
    }

    /// Delivery time decomposes into tx + latency + rx for an idle pair,
    /// and grows monotonically with message size.
    #[test]
    fn delivery_time_decomposition(
        bw in 100.0f64..5_000.0,
        lat_ms in 1u64..200,
        bits in 1u64..500_000,
    ) {
        let topo = Topology::uniform(2, kbps(bw), SimDuration::from_millis(lat_ms));
        let mut net = Network::new(topo, NetworkConfig {
            max_nic_backlog: SimDuration::from_secs(3600),
            ..quiet(3)
        });
        match net.send(SimTime::ZERO, 0, 1, bits) {
            simnet::SendOutcome::Delivered(at) => {
                let tx = bits as f64 / kbps(bw);
                let expect = 2.0 * tx + lat_ms as f64 / 1_000.0;
                prop_assert!((at.as_secs_f64() - expect).abs() < 1e-6,
                    "got {} expected {}", at.as_secs_f64(), expect);
            }
            other => prop_assert!(false, "{:?}", other),
        }
    }

    /// Heterogeneous topologies keep every band's nodes inside their
    /// declared bandwidth range and latencies symmetric.
    #[test]
    fn heterogeneous_bands_hold(seed in any::<u64>(), a in 1usize..6, b in 1usize..6) {
        let topo = Topology::heterogeneous(
            &[(a, kbps(100.0), kbps(200.0)), (b, kbps(1_000.0), kbps(4_000.0))],
            seed,
        );
        prop_assert_eq!(topo.len(), a + b);
        for v in 0..a {
            let s = topo.spec(v);
            prop_assert!(s.bw_in >= kbps(100.0) && s.bw_in <= kbps(200.0));
            prop_assert!(s.bw_out >= kbps(100.0) && s.bw_out <= kbps(200.0));
        }
        for v in a..a + b {
            let s = topo.spec(v);
            prop_assert!(s.bw_in >= kbps(1_000.0) && s.bw_in <= kbps(4_000.0));
        }
        for u in 0..topo.len() {
            for v in 0..topo.len() {
                prop_assert_eq!(topo.latency(u, v), topo.latency(v, u));
            }
        }
    }

    /// Cross-traffic occupancy delays but never reorders or corrupts
    /// the accounting.
    #[test]
    fn occupancy_only_delays(
        occupy_ms in 1u64..2_000,
        bits in 1u64..50_000,
    ) {
        let topo = Topology::uniform(2, kbps(1_000.0), SimDuration::from_millis(10));
        let mk = || Network::new(topo.clone(), NetworkConfig {
            max_nic_backlog: SimDuration::from_secs(3600),
            ..quiet(4)
        });
        let mut idle = mk();
        let mut busy = mk();
        busy.occupy(SimTime::ZERO, 0, SimDuration::from_millis(occupy_ms), SimDuration::from_millis(occupy_ms));
        let t_idle = match idle.send(SimTime::ZERO, 0, 1, bits) {
            simnet::SendOutcome::Delivered(t) => t,
            other => return Err(TestCaseError::fail(format!("{other:?}"))),
        };
        let t_busy = match busy.send(SimTime::ZERO, 0, 1, bits) {
            simnet::SendOutcome::Delivered(t) => t,
            other => return Err(TestCaseError::fail(format!("{other:?}"))),
        };
        let delta = t_busy.saturating_since(t_idle);
        prop_assert_eq!(delta, SimDuration::from_millis(occupy_ms));
    }
}
