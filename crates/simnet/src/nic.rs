//! A rate-served NIC queue modeled analytically by a busy-until timestamp.

use crate::Bandwidth;
use desim::{SimDuration, SimTime};

/// One direction of a node's network interface.
///
/// The NIC serializes messages at its configured rate. Instead of
/// simulating each byte, we track the time at which the interface becomes
/// free; a message arriving at `t` starts transmitting at
/// `max(t, free_at)` and holds the NIC for `bits / rate`. The difference
/// `free_at − now` is the queueing backlog; when it would exceed
/// `max_backlog` the message is dropped (queue overflow).
#[derive(Clone, Debug)]
pub struct Nic {
    rate: Bandwidth,
    free_at: SimTime,
    max_backlog: SimDuration,
}

/// Result of offering a message to a NIC.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NicOutcome {
    /// Accepted; transmission completes at the given time.
    Done(SimTime),
    /// Rejected: the queue already holds more than the backlog bound.
    Overflow,
}

impl Nic {
    /// Creates a NIC with the given service rate and backlog bound.
    pub fn new(rate: Bandwidth, max_backlog: SimDuration) -> Self {
        assert!(rate > 0.0, "NIC rate must be positive");
        Nic {
            rate,
            free_at: SimTime::ZERO,
            max_backlog,
        }
    }

    /// The configured service rate (bits/s).
    pub fn rate(&self) -> Bandwidth {
        self.rate
    }

    /// Re-rates the interface (runtime capacity degradation/restoration).
    /// The busy-until horizon is preserved: traffic already accepted keeps
    /// its departure times; only subsequent messages serialize at the new
    /// rate.
    pub fn set_rate(&mut self, rate: Bandwidth) {
        assert!(rate > 0.0, "NIC rate must be positive");
        self.rate = rate;
    }

    /// Current backlog: how long a message arriving `now` would wait
    /// before starting transmission.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.free_at.saturating_since(now)
    }

    /// Offers a message of `bits` at time `now`.
    pub fn offer(&mut self, now: SimTime, bits: u64) -> NicOutcome {
        if self.backlog(now) > self.max_backlog {
            return NicOutcome::Overflow;
        }
        let start = self.free_at.max(now);
        let tx = SimDuration::from_secs_f64(bits as f64 / self.rate);
        let done = start + tx;
        self.free_at = done;
        NicOutcome::Done(done)
    }

    /// Occupies the interface for `dur` starting no earlier than `now`
    /// (cross traffic from other tenants of a shared link). Queued
    /// foreground messages wait behind it.
    pub fn occupy(&mut self, now: SimTime, dur: SimDuration) {
        let start = self.free_at.max(now);
        self.free_at = start + dur;
    }

    /// Fraction of `window` ending at `now` during which the NIC was busy.
    /// A crude instantaneous utilization signal for monitoring.
    pub fn utilization(&self, now: SimTime, window: SimDuration) -> f64 {
        if window == SimDuration::ZERO {
            return 0.0;
        }
        let busy = self.free_at.saturating_since(now);
        (busy.as_secs_f64() / window.as_secs_f64()).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn idle_nic_transmits_immediately() {
        let mut nic = Nic::new(1_000_000.0, SimDuration::from_secs(1));
        // 1 Mbit at 1 Mbps = 1 s.
        match nic.offer(t(0), 1_000_000) {
            NicOutcome::Done(done) => assert_eq!(done, SimTime::from_secs(1)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn busy_nic_queues() {
        let mut nic = Nic::new(1_000_000.0, SimDuration::from_secs(10));
        nic.offer(t(0), 500_000); // busy until 0.5 s
        match nic.offer(t(0), 500_000) {
            NicOutcome::Done(done) => assert_eq!(done, SimTime::from_secs(1)),
            other => panic!("{other:?}"),
        }
        assert_eq!(nic.backlog(t(0)), SimDuration::from_secs(1));
    }

    #[test]
    fn backlog_drains_over_time() {
        let mut nic = Nic::new(1_000_000.0, SimDuration::from_secs(10));
        nic.offer(t(0), 1_000_000);
        assert_eq!(nic.backlog(t(400)), SimDuration::from_millis(600));
        assert_eq!(nic.backlog(SimTime::from_secs(2)), SimDuration::ZERO);
    }

    #[test]
    fn overflow_when_backlog_exceeded() {
        let mut nic = Nic::new(1_000_000.0, SimDuration::from_millis(100));
        nic.offer(t(0), 1_000_000); // 1 s of backlog
        assert_eq!(nic.offer(t(0), 1), NicOutcome::Overflow);
        // After the backlog drains below the bound, accepted again.
        assert!(matches!(
            nic.offer(SimTime::from_millis(950), 1000),
            NicOutcome::Done(_)
        ));
    }

    #[test]
    fn zero_size_message_is_instant() {
        let mut nic = Nic::new(1_000_000.0, SimDuration::from_secs(1));
        match nic.offer(t(5), 0) {
            NicOutcome::Done(done) => assert_eq!(done, t(5)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn utilization_tracks_busy_period() {
        let mut nic = Nic::new(1_000_000.0, SimDuration::from_secs(10));
        assert_eq!(nic.utilization(t(0), SimDuration::from_secs(1)), 0.0);
        nic.offer(t(0), 500_000);
        let u = nic.utilization(t(0), SimDuration::from_secs(1));
        assert!((u - 0.5).abs() < 1e-9, "{u}");
        assert_eq!(nic.utilization(t(0), SimDuration::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        Nic::new(0.0, SimDuration::ZERO);
    }

    #[test]
    fn occupy_delays_subsequent_traffic() {
        let mut nic = Nic::new(1_000_000.0, SimDuration::from_secs(10));
        nic.occupy(t(0), SimDuration::from_millis(300));
        match nic.offer(t(0), 100_000) {
            NicOutcome::Done(done) => assert_eq!(done, t(400)),
            other => panic!("{other:?}"),
        }
        // Occupying an already-busy NIC extends the busy period.
        nic.occupy(t(0), SimDuration::from_millis(100));
        assert_eq!(nic.backlog(t(0)), SimDuration::from_millis(500));
    }
}
