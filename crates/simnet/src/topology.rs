//! Topologies: node capacities and the pairwise latency model.

use crate::{Bandwidth, NodeId};
use desim::{SimDuration, SimRng};

/// Static capacities of one node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeSpec {
    /// Input NIC bandwidth, bits/s (`b_in` in the paper).
    pub bw_in: Bandwidth,
    /// Output NIC bandwidth, bits/s (`b_out` in the paper).
    pub bw_out: Bandwidth,
}

/// Loopback latency every model reports on the diagonal.
const LOOPBACK: SimDuration = SimDuration::from_micros(50);

/// How pairwise latencies are stored.
///
/// The dense table is exact and arbitrary but costs `n²` entries — fine
/// up to a few hundred nodes, ruinous at 10k (a 10k-node table is 800 MB
/// of `SimDuration`). The clustered model stores one cluster id per node
/// plus a `c × c` inter-cluster base table (`O(n + c²)`) and derives the
/// per-pair value as `base × jitter`, where the jitter is a deterministic
/// hash of the (unordered) pair — so latencies stay symmetric, per-pair
/// heterogeneous, and reproducible without ever materializing the matrix.
#[derive(Clone, Debug)]
enum LatencyModel {
    /// Row-major `n × n` one-way propagation latencies; diagonal is the
    /// loopback latency (tiny but non-zero).
    Dense(Vec<SimDuration>),
    Clustered {
        /// Cluster id per node (`len() == n`).
        cluster_of: Vec<u32>,
        /// Row-major `c × c` symmetric base latency in ms.
        inter_ms: Vec<f64>,
        /// Seed for the per-pair jitter hash.
        jitter_seed: u64,
        /// Multiplicative jitter half-width: the per-pair multiplier is
        /// drawn (deterministically) from `[1 - w, 1 + w]`.
        jitter_width: f64,
    },
}

/// SplitMix64 — the per-pair jitter hash. Full-avalanche, so adjacent
/// pair keys decorrelate completely.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

impl LatencyModel {
    fn get(&self, u: NodeId, v: NodeId, n: usize) -> SimDuration {
        match self {
            LatencyModel::Dense(m) => m[u * n + v],
            LatencyModel::Clustered {
                cluster_of,
                inter_ms,
                jitter_seed,
                jitter_width,
            } => {
                if u == v {
                    return LOOPBACK;
                }
                let c = (inter_ms.len() as f64).sqrt() as usize;
                let (cu, cv) = (cluster_of[u] as usize, cluster_of[v] as usize);
                let base = inter_ms[cu * c + cv];
                // Unordered pair key → symmetric jitter.
                let (a, b) = if u < v { (u, v) } else { (v, u) };
                let h = splitmix64(((a as u64) << 32 | b as u64) ^ jitter_seed);
                let x = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
                let mult = 1.0 - jitter_width + 2.0 * jitter_width * x;
                SimDuration::from_millis_f64(base * mult)
            }
        }
    }

    /// Stored latency entries (the memory-footprint observable the
    /// large-topology tests assert on).
    fn storage_entries(&self) -> usize {
        match self {
            LatencyModel::Dense(m) => m.len(),
            LatencyModel::Clustered {
                cluster_of,
                inter_ms,
                ..
            } => cluster_of.len() + inter_ms.len(),
        }
    }
}

/// Immutable network shape: who can talk to whom, how fast, how far.
///
/// The overlay is a full mesh (any node can send to any other; Pastry picks
/// multi-hop routes on top of it); pairwise latency comes from a
/// [`LatencyModel`] — dense for the hand-sized topologies, clustered for
/// the 1k–10k-node generators so the table never goes `O(n²)`.
#[derive(Clone, Debug)]
pub struct Topology {
    specs: Vec<NodeSpec>,
    latency: LatencyModel,
}

impl Topology {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Capacities of node `v`.
    pub fn spec(&self, v: NodeId) -> NodeSpec {
        self.specs[v]
    }

    /// Overwrites node `v`'s capacities. Runtime bandwidth degradation
    /// (a shared host losing usable bandwidth to other tenants) mutates
    /// the spec so capacity-derived views — admission control reads
    /// `spec(v)` through `SystemView` — see the shrunken node. Callers go
    /// through [`crate::Network::set_node_bandwidth`], which keeps the
    /// NIC service rates in sync.
    pub fn set_spec(&mut self, v: NodeId, spec: NodeSpec) {
        assert!(
            spec.bw_in > 0.0 && spec.bw_out > 0.0,
            "bandwidth must be positive"
        );
        self.specs[v] = spec;
    }

    /// One-way propagation latency `u → v`.
    pub fn latency(&self, u: NodeId, v: NodeId) -> SimDuration {
        self.latency.get(u, v, self.len())
    }

    /// Number of latency entries actually stored — `n²` for dense
    /// models, `O(n + clusters²)` for the large-topology generators.
    pub fn latency_storage(&self) -> usize {
        self.latency.storage_entries()
    }

    /// Per-node cluster/site assignment when the topology uses the
    /// clustered latency model (the `power_law` / `datacenter_wan`
    /// generators); `None` for dense hand-sized topologies. Region
    /// sharding partitions admission along these boundaries so that
    /// shard-local traffic stays on low-latency intra-site paths.
    pub fn site_assignment(&self) -> Option<&[u32]> {
        match &self.latency {
            LatencyModel::Dense(_) => None,
            LatencyModel::Clustered { cluster_of, .. } => Some(cluster_of),
        }
    }

    /// Cluster/site id of node `v`, when clustered (see
    /// [`Topology::site_assignment`]).
    pub fn site_of(&self, v: NodeId) -> Option<u32> {
        self.site_assignment().map(|s| s[v])
    }

    /// PlanetLab-like topology: heterogeneous capacities and wide-area
    /// latencies, deterministic in `seed`.
    ///
    /// * Latencies: log-normal with a ~60 ms median and a heavy tail up to
    ///   a few hundred ms, symmetric per pair — matching published
    ///   PlanetLab all-pairs-ping distributions in shape.
    /// * Bandwidths: log-uniform between `bw_lo` and `bw_hi`, independent
    ///   draws for in/out (PlanetLab slices saw strongly asymmetric and
    ///   heterogeneous usable bandwidth).
    pub fn planetlab_like(n: usize, bw_lo: Bandwidth, bw_hi: Bandwidth, seed: u64) -> Topology {
        assert!(n > 0, "empty topology");
        assert!(bw_lo > 0.0 && bw_hi >= bw_lo, "invalid bandwidth range");
        let mut rng = SimRng::new(seed ^ 0x70706F6C_6F676921);
        let ratio = bw_hi / bw_lo;
        let specs: Vec<NodeSpec> = (0..n)
            .map(|_| {
                let draw = |rng: &mut SimRng| bw_lo * ratio.powf(rng.f64());
                NodeSpec {
                    bw_in: draw(&mut rng),
                    bw_out: draw(&mut rng),
                }
            })
            .collect();
        let mut latency = vec![SimDuration::ZERO; n * n];
        for u in 0..n {
            for v in (u + 1)..n {
                // ln-normal: median 30 ms, sigma 0.5 → 10th pct ~16 ms,
                // 90th pct ~57 ms, tail to a few hundred ms — the shape
                // of continental PlanetLab all-pairs pings.
                let ms = rng.log_normal((30.0f64).ln(), 0.5).clamp(5.0, 300.0);
                let d = SimDuration::from_millis_f64(ms);
                latency[u * n + v] = d;
                latency[v * n + u] = d;
            }
            latency[u * n + u] = LOOPBACK;
        }
        Topology {
            specs,
            latency: LatencyModel::Dense(latency),
        }
    }

    /// Heterogeneous multi-class topology: `bands` lists `(count, bw_lo,
    /// bw_hi)` node classes; each node draws both NIC rates log-uniformly
    /// within its band. Latencies are wide-area draws as in
    /// [`Topology::planetlab_like`]. Node ids are assigned band by band,
    /// in order.
    pub fn heterogeneous(bands: &[(usize, Bandwidth, Bandwidth)], seed: u64) -> Topology {
        assert!(!bands.is_empty(), "empty topology");
        let mut rng = SimRng::new(seed ^ 0x70706F6C_6F676921);
        let mut specs = Vec::new();
        for &(count, lo, hi) in bands {
            assert!(lo > 0.0 && hi >= lo, "invalid band {lo}..{hi}");
            let ratio = hi / lo;
            for _ in 0..count {
                let mut draw = || lo * ratio.powf(rng.f64());
                let bw_in = draw();
                let bw_out = draw();
                specs.push(NodeSpec { bw_in, bw_out });
            }
        }
        let n = specs.len();
        assert!(n > 0, "empty topology");
        let mut latency = vec![SimDuration::ZERO; n * n];
        for u in 0..n {
            for v in (u + 1)..n {
                let ms = rng.log_normal((30.0f64).ln(), 0.5).clamp(5.0, 300.0);
                let d = SimDuration::from_millis_f64(ms);
                latency[u * n + v] = d;
                latency[v * n + u] = d;
            }
            latency[u * n + u] = LOOPBACK;
        }
        Topology {
            specs,
            latency: LatencyModel::Dense(latency),
        }
    }

    /// Homogeneous topology: every node identical, every pair at `lat`.
    /// Useful for tests where heterogeneity is noise.
    pub fn uniform(n: usize, bw: Bandwidth, lat: SimDuration) -> Topology {
        assert!(n > 0, "empty topology");
        let specs = vec![
            NodeSpec {
                bw_in: bw,
                bw_out: bw,
            };
            n
        ];
        let mut latency = vec![lat; n * n];
        for u in 0..n {
            latency[u * n + u] = LOOPBACK;
        }
        Topology {
            specs,
            latency: LatencyModel::Dense(latency),
        }
    }

    /// Power-law overlay at 1k–10k nodes: Pareto-tailed NIC bandwidths
    /// (a few hub-class nodes, a long tail of modest ones — the degree/
    /// capacity skew measured in deployed peer-to-peer overlays) over
    /// `~√n` metro clusters with Zipf-skewed sizes. Intra-cluster pairs
    /// sit at a few ms; inter-cluster base latencies are wide-area
    /// log-normal draws. Uses the clustered latency model: `O(n + c²)`
    /// storage, never an `n²` table.
    pub fn power_law(n: usize, bw_lo: Bandwidth, bw_hi: Bandwidth, seed: u64) -> Topology {
        assert!(n > 1, "power_law needs at least 2 nodes");
        assert!(bw_lo > 0.0 && bw_hi >= bw_lo, "invalid bandwidth range");
        let mut rng = SimRng::new(seed ^ 0x504C_4157); // "PLAW"
                                                       // Pareto(alpha = 1.2) scaled from bw_lo, clamped at bw_hi: the
                                                       // median lands ~1.8× bw_lo while the top percentile pins bw_hi.
        let pareto = |rng: &mut SimRng| {
            let u = (1.0 - rng.f64()).max(1e-12);
            (bw_lo * u.powf(-1.0 / 1.2)).min(bw_hi)
        };
        let specs: Vec<NodeSpec> = (0..n)
            .map(|_| NodeSpec {
                bw_in: pareto(&mut rng),
                bw_out: pareto(&mut rng),
            })
            .collect();
        let c = ((n as f64).sqrt().round() as usize).max(2);
        // Zipf-skewed cluster membership: cluster k drawn with weight
        // 1/(k+1), so a handful of metros hold most of the nodes.
        let weights: Vec<f64> = (0..c).map(|k| 1.0 / (k + 1) as f64).collect();
        let total: f64 = weights.iter().sum();
        let cluster_of: Vec<u32> = (0..n)
            .map(|_| {
                let mut x = rng.f64() * total;
                for (k, w) in weights.iter().enumerate() {
                    if x < *w {
                        return k as u32;
                    }
                    x -= w;
                }
                (c - 1) as u32
            })
            .collect();
        let inter_ms = wan_cluster_matrix(&mut rng, c, 3.0, 40.0, 0.5, 5.0, 300.0);
        Topology {
            specs,
            latency: LatencyModel::Clustered {
                cluster_of,
                inter_ms,
                jitter_seed: splitmix64(seed ^ 0x4A49_5454),
                jitter_width: 0.25,
            },
        }
    }

    /// Datacenter + WAN hybrid: `sites` datacenters of near-equal size,
    /// sub-millisecond latency inside a site (0.2 ms base), log-normal
    /// WAN latency between sites (median 60 ms, clamped 10–250 ms).
    /// Node bandwidths are log-uniform in `[bw_lo, bw_hi]` — datacenter
    /// NICs are provisioned, not scavenged, so no power-law tail.
    /// Clustered latency model: `O(n + sites²)` storage.
    pub fn datacenter_wan(
        n: usize,
        sites: usize,
        bw_lo: Bandwidth,
        bw_hi: Bandwidth,
        seed: u64,
    ) -> Topology {
        assert!(n > 1, "datacenter_wan needs at least 2 nodes");
        assert!(sites > 0 && sites <= n, "invalid site count");
        assert!(bw_lo > 0.0 && bw_hi >= bw_lo, "invalid bandwidth range");
        let mut rng = SimRng::new(seed ^ 0x4443_57414E); // "DCWAN"
        let ratio = bw_hi / bw_lo;
        let specs: Vec<NodeSpec> = (0..n)
            .map(|_| {
                let draw = |rng: &mut SimRng| bw_lo * ratio.powf(rng.f64());
                NodeSpec {
                    bw_in: draw(&mut rng),
                    bw_out: draw(&mut rng),
                }
            })
            .collect();
        // Round-robin site assignment: near-equal rack counts per site.
        let cluster_of: Vec<u32> = (0..n).map(|v| (v % sites) as u32).collect();
        let inter_ms = wan_cluster_matrix(&mut rng, sites, 0.2, 60.0, 0.4, 10.0, 250.0);
        Topology {
            specs,
            latency: LatencyModel::Clustered {
                cluster_of,
                inter_ms,
                jitter_seed: splitmix64(seed ^ 0x4A49_5454),
                jitter_width: 0.25,
            },
        }
    }
}

/// Symmetric `c × c` base-latency matrix in ms: `intra_ms` on the
/// diagonal, log-normal draws (median `inter_median_ms`, given sigma,
/// clamped) off it.
fn wan_cluster_matrix(
    rng: &mut SimRng,
    c: usize,
    intra_ms: f64,
    inter_median_ms: f64,
    sigma: f64,
    clamp_lo: f64,
    clamp_hi: f64,
) -> Vec<f64> {
    let mut m = vec![0.0; c * c];
    for a in 0..c {
        m[a * c + a] = intra_ms;
        for b in (a + 1)..c {
            let ms = rng
                .log_normal(inter_median_ms.ln(), sigma)
                .clamp(clamp_lo, clamp_hi);
            m[a * c + b] = ms;
            m[b * c + a] = ms;
        }
    }
    m
}

/// Builder for hand-crafted topologies (tests, examples).
#[derive(Clone, Debug, Default)]
pub struct TopologyBuilder {
    specs: Vec<NodeSpec>,
    overrides: Vec<(NodeId, NodeId, SimDuration)>,
    default_latency: Option<SimDuration>,
}

impl TopologyBuilder {
    /// Creates an empty builder with a 50 ms default latency.
    pub fn new() -> Self {
        TopologyBuilder {
            specs: Vec::new(),
            overrides: Vec::new(),
            default_latency: None,
        }
    }

    /// Sets the latency used for pairs without an explicit override.
    pub fn default_latency(mut self, lat: SimDuration) -> Self {
        self.default_latency = Some(lat);
        self
    }

    /// Adds a node with the given capacities; returns its id.
    pub fn node(&mut self, bw_in: Bandwidth, bw_out: Bandwidth) -> NodeId {
        assert!(bw_in > 0.0 && bw_out > 0.0, "bandwidth must be positive");
        self.specs.push(NodeSpec { bw_in, bw_out });
        self.specs.len() - 1
    }

    /// Sets the symmetric latency between `u` and `v`.
    pub fn latency(&mut self, u: NodeId, v: NodeId, lat: SimDuration) -> &mut Self {
        self.overrides.push((u, v, lat));
        self
    }

    /// Finalizes the topology.
    pub fn build(self) -> Topology {
        let n = self.specs.len();
        assert!(n > 0, "empty topology");
        let default = self.default_latency.unwrap_or(SimDuration::from_millis(50));
        let mut latency = vec![default; n * n];
        for u in 0..n {
            latency[u * n + u] = LOOPBACK;
        }
        for (u, v, lat) in self.overrides {
            assert!(u < n && v < n, "latency override out of range");
            latency[u * n + v] = lat;
            latency[v * n + u] = lat;
        }
        Topology {
            specs: self.specs,
            latency: LatencyModel::Dense(latency),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mbps;

    #[test]
    fn planetlab_is_deterministic_per_seed() {
        let a = Topology::planetlab_like(16, mbps(1.0), mbps(10.0), 7);
        let b = Topology::planetlab_like(16, mbps(1.0), mbps(10.0), 7);
        let c = Topology::planetlab_like(16, mbps(1.0), mbps(10.0), 8);
        assert_eq!(a.spec(3), b.spec(3));
        assert_eq!(a.latency(1, 9), b.latency(1, 9));
        assert_ne!(a.latency(1, 9), c.latency(1, 9));
    }

    #[test]
    fn planetlab_ranges_sane() {
        let t = Topology::planetlab_like(32, mbps(1.0), mbps(10.0), 42);
        assert_eq!(t.len(), 32);
        for v in 0..t.len() {
            let s = t.spec(v);
            assert!(s.bw_in >= mbps(1.0) && s.bw_in <= mbps(10.0));
            assert!(s.bw_out >= mbps(1.0) && s.bw_out <= mbps(10.0));
        }
        for u in 0..t.len() {
            for v in 0..t.len() {
                let l = t.latency(u, v);
                if u == v {
                    assert_eq!(l, SimDuration::from_micros(50));
                } else {
                    assert!(l >= SimDuration::from_millis(5));
                    assert!(l <= SimDuration::from_millis(500));
                    assert_eq!(l, t.latency(v, u), "symmetry");
                }
            }
        }
    }

    #[test]
    fn latencies_are_heterogeneous() {
        let t = Topology::planetlab_like(16, mbps(1.0), mbps(1.0), 1);
        let mut lats: Vec<f64> = Vec::new();
        for u in 0..t.len() {
            for v in (u + 1)..t.len() {
                lats.push(t.latency(u, v).as_millis_f64());
            }
        }
        let min = lats.iter().cloned().fold(f64::MAX, f64::min);
        let max = lats.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 2.0, "expected spread, got {min}..{max}");
    }

    #[test]
    fn uniform_is_flat() {
        let t = Topology::uniform(4, mbps(2.0), SimDuration::from_millis(30));
        for v in 0..4 {
            assert_eq!(t.spec(v).bw_in, mbps(2.0));
        }
        assert_eq!(t.latency(0, 3), SimDuration::from_millis(30));
    }

    #[test]
    fn builder_overrides_apply() {
        let mut b = TopologyBuilder::new().default_latency(SimDuration::from_millis(10));
        let x = b.node(mbps(1.0), mbps(2.0));
        let y = b.node(mbps(3.0), mbps(4.0));
        let z = b.node(mbps(5.0), mbps(6.0));
        b.latency(x, z, SimDuration::from_millis(99));
        let t = b.build();
        assert_eq!(t.latency(x, y), SimDuration::from_millis(10));
        assert_eq!(t.latency(x, z), SimDuration::from_millis(99));
        assert_eq!(t.latency(z, x), SimDuration::from_millis(99));
        assert_eq!(t.spec(y).bw_out, mbps(4.0));
    }

    #[test]
    #[should_panic(expected = "empty topology")]
    fn empty_builder_panics() {
        TopologyBuilder::new().build();
    }

    #[test]
    fn power_law_never_materializes_a_dense_matrix() {
        let n = 4096;
        let t = Topology::power_law(n, mbps(1.0), mbps(100.0), 3);
        assert_eq!(t.len(), n);
        // O(n + c²), nowhere near n².
        assert!(
            t.latency_storage() < 3 * n,
            "clustered storage blew up: {} entries",
            t.latency_storage()
        );
        // A dense topology of the same size would store n².
        let d = Topology::uniform(64, mbps(1.0), SimDuration::from_millis(1));
        assert_eq!(d.latency_storage(), 64 * 64);
    }

    #[test]
    fn power_law_is_deterministic_symmetric_and_bounded() {
        let a = Topology::power_law(512, mbps(1.0), mbps(50.0), 11);
        let b = Topology::power_law(512, mbps(1.0), mbps(50.0), 11);
        let c = Topology::power_law(512, mbps(1.0), mbps(50.0), 12);
        assert_eq!(a.spec(100), b.spec(100));
        assert_eq!(a.latency(3, 499), b.latency(3, 499));
        assert_ne!(a.latency(3, 499), c.latency(3, 499));
        let mut diff = false;
        for u in 0..64 {
            for v in 0..64 {
                let l = a.latency(u, v);
                if u == v {
                    assert_eq!(l, SimDuration::from_micros(50));
                } else {
                    assert_eq!(l, a.latency(v, u), "symmetry");
                    assert!(l > SimDuration::ZERO);
                    assert!(l <= SimDuration::from_millis(400));
                }
            }
            let s = a.spec(u);
            assert!(s.bw_in >= mbps(1.0) && s.bw_in <= mbps(50.0));
            assert!(s.bw_out >= mbps(1.0) && s.bw_out <= mbps(50.0));
            diff |= a.latency(0, 1) != a.latency(0, u.max(2));
        }
        assert!(diff, "per-pair jitter missing: all latencies equal");
    }

    #[test]
    fn power_law_bandwidths_have_a_heavy_tail() {
        let t = Topology::power_law(2048, mbps(1.0), mbps(1000.0), 5);
        let mut bw: Vec<f64> = (0..t.len()).map(|v| t.spec(v).bw_in).collect();
        bw.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = bw[bw.len() / 2];
        let p99 = bw[bw.len() * 99 / 100];
        // Pareto tail: the 99th percentile dwarfs the median.
        assert!(
            p99 / median > 10.0,
            "tail too light: median {median:.0}, p99 {p99:.0}"
        );
    }

    #[test]
    fn datacenter_wan_separates_intra_and_inter_site() {
        let t = Topology::datacenter_wan(1024, 8, mbps(100.0), mbps(1000.0), 9);
        assert_eq!(t.len(), 1024);
        assert!(t.latency_storage() < 2 * 1024);
        // Same site (round-robin assignment: v and v + 8): sub-ms.
        for v in 0..32 {
            let l = t.latency(v, v + 8);
            assert!(
                l < SimDuration::from_millis(1),
                "intra-site pair {v} too slow: {l:?}"
            );
            assert_eq!(l, t.latency(v + 8, v), "symmetry");
        }
        // Different sites: WAN-scale.
        for v in 0..32 {
            let l = t.latency(v, v + 1);
            assert!(
                l >= SimDuration::from_millis(5),
                "inter-site pair {v} too fast: {l:?}"
            );
        }
    }

    #[test]
    fn datacenter_wan_is_deterministic() {
        let a = Topology::datacenter_wan(256, 4, mbps(10.0), mbps(100.0), 2);
        let b = Topology::datacenter_wan(256, 4, mbps(10.0), mbps(100.0), 2);
        assert_eq!(a.spec(77), b.spec(77));
        assert_eq!(a.latency(10, 201), b.latency(10, 201));
    }

    #[test]
    fn site_assignment_exposes_clusters_and_only_clusters() {
        let dc = Topology::datacenter_wan(64, 4, mbps(10.0), mbps(100.0), 2);
        let sites = dc.site_assignment().expect("clustered model");
        assert_eq!(sites.len(), 64);
        for (v, &site) in sites.iter().enumerate() {
            assert_eq!(site, (v % 4) as u32);
            assert_eq!(dc.site_of(v), Some((v % 4) as u32));
        }
        let pl = Topology::power_law(128, mbps(1.0), mbps(50.0), 11);
        let sites = pl.site_assignment().expect("clustered model");
        assert_eq!(sites.len(), 128);
        // Dense models have no site structure to shard along.
        let dense = Topology::uniform(8, mbps(2.0), SimDuration::from_millis(30));
        assert!(dense.site_assignment().is_none());
        assert_eq!(dense.site_of(0), None);
    }
}
