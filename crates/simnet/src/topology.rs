//! Topologies: node capacities and the pairwise latency matrix.

use crate::{Bandwidth, NodeId};
use desim::{SimDuration, SimRng};

/// Static capacities of one node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeSpec {
    /// Input NIC bandwidth, bits/s (`b_in` in the paper).
    pub bw_in: Bandwidth,
    /// Output NIC bandwidth, bits/s (`b_out` in the paper).
    pub bw_out: Bandwidth,
}

/// Immutable network shape: who can talk to whom, how fast, how far.
///
/// The overlay is a full mesh (any node can send to any other; Pastry picks
/// multi-hop routes on top of it), so the latency matrix is dense.
#[derive(Clone, Debug)]
pub struct Topology {
    specs: Vec<NodeSpec>,
    /// Row-major `n × n` one-way propagation latencies; diagonal is the
    /// loopback latency (tiny but non-zero).
    latency: Vec<SimDuration>,
}

impl Topology {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Capacities of node `v`.
    pub fn spec(&self, v: NodeId) -> NodeSpec {
        self.specs[v]
    }

    /// Overwrites node `v`'s capacities. Runtime bandwidth degradation
    /// (a shared host losing usable bandwidth to other tenants) mutates
    /// the spec so capacity-derived views — admission control reads
    /// `spec(v)` through `SystemView` — see the shrunken node. Callers go
    /// through [`crate::Network::set_node_bandwidth`], which keeps the
    /// NIC service rates in sync.
    pub fn set_spec(&mut self, v: NodeId, spec: NodeSpec) {
        assert!(
            spec.bw_in > 0.0 && spec.bw_out > 0.0,
            "bandwidth must be positive"
        );
        self.specs[v] = spec;
    }

    /// One-way propagation latency `u → v`.
    pub fn latency(&self, u: NodeId, v: NodeId) -> SimDuration {
        self.latency[u * self.len() + v]
    }

    /// PlanetLab-like topology: heterogeneous capacities and wide-area
    /// latencies, deterministic in `seed`.
    ///
    /// * Latencies: log-normal with a ~60 ms median and a heavy tail up to
    ///   a few hundred ms, symmetric per pair — matching published
    ///   PlanetLab all-pairs-ping distributions in shape.
    /// * Bandwidths: log-uniform between `bw_lo` and `bw_hi`, independent
    ///   draws for in/out (PlanetLab slices saw strongly asymmetric and
    ///   heterogeneous usable bandwidth).
    pub fn planetlab_like(n: usize, bw_lo: Bandwidth, bw_hi: Bandwidth, seed: u64) -> Topology {
        assert!(n > 0, "empty topology");
        assert!(bw_lo > 0.0 && bw_hi >= bw_lo, "invalid bandwidth range");
        let mut rng = SimRng::new(seed ^ 0x70706F6C_6F676921);
        let ratio = bw_hi / bw_lo;
        let specs: Vec<NodeSpec> = (0..n)
            .map(|_| {
                let draw = |rng: &mut SimRng| bw_lo * ratio.powf(rng.f64());
                NodeSpec {
                    bw_in: draw(&mut rng),
                    bw_out: draw(&mut rng),
                }
            })
            .collect();
        let mut latency = vec![SimDuration::ZERO; n * n];
        for u in 0..n {
            for v in (u + 1)..n {
                // ln-normal: median 30 ms, sigma 0.5 → 10th pct ~16 ms,
                // 90th pct ~57 ms, tail to a few hundred ms — the shape
                // of continental PlanetLab all-pairs pings.
                let ms = rng.log_normal((30.0f64).ln(), 0.5).clamp(5.0, 300.0);
                let d = SimDuration::from_millis_f64(ms);
                latency[u * n + v] = d;
                latency[v * n + u] = d;
            }
            latency[u * n + u] = SimDuration::from_micros(50);
        }
        Topology { specs, latency }
    }

    /// Heterogeneous multi-class topology: `bands` lists `(count, bw_lo,
    /// bw_hi)` node classes; each node draws both NIC rates log-uniformly
    /// within its band. Latencies are wide-area draws as in
    /// [`Topology::planetlab_like`]. Node ids are assigned band by band,
    /// in order.
    pub fn heterogeneous(bands: &[(usize, Bandwidth, Bandwidth)], seed: u64) -> Topology {
        assert!(!bands.is_empty(), "empty topology");
        let mut rng = SimRng::new(seed ^ 0x70706F6C_6F676921);
        let mut specs = Vec::new();
        for &(count, lo, hi) in bands {
            assert!(lo > 0.0 && hi >= lo, "invalid band {lo}..{hi}");
            let ratio = hi / lo;
            for _ in 0..count {
                let mut draw = || lo * ratio.powf(rng.f64());
                let bw_in = draw();
                let bw_out = draw();
                specs.push(NodeSpec { bw_in, bw_out });
            }
        }
        let n = specs.len();
        assert!(n > 0, "empty topology");
        let mut latency = vec![SimDuration::ZERO; n * n];
        for u in 0..n {
            for v in (u + 1)..n {
                let ms = rng.log_normal((30.0f64).ln(), 0.5).clamp(5.0, 300.0);
                let d = SimDuration::from_millis_f64(ms);
                latency[u * n + v] = d;
                latency[v * n + u] = d;
            }
            latency[u * n + u] = SimDuration::from_micros(50);
        }
        Topology { specs, latency }
    }

    /// Homogeneous topology: every node identical, every pair at `lat`.
    /// Useful for tests where heterogeneity is noise.
    pub fn uniform(n: usize, bw: Bandwidth, lat: SimDuration) -> Topology {
        assert!(n > 0, "empty topology");
        let specs = vec![
            NodeSpec {
                bw_in: bw,
                bw_out: bw,
            };
            n
        ];
        let mut latency = vec![lat; n * n];
        for u in 0..n {
            latency[u * n + u] = SimDuration::from_micros(50);
        }
        Topology { specs, latency }
    }
}

/// Builder for hand-crafted topologies (tests, examples).
#[derive(Clone, Debug, Default)]
pub struct TopologyBuilder {
    specs: Vec<NodeSpec>,
    overrides: Vec<(NodeId, NodeId, SimDuration)>,
    default_latency: Option<SimDuration>,
}

impl TopologyBuilder {
    /// Creates an empty builder with a 50 ms default latency.
    pub fn new() -> Self {
        TopologyBuilder {
            specs: Vec::new(),
            overrides: Vec::new(),
            default_latency: None,
        }
    }

    /// Sets the latency used for pairs without an explicit override.
    pub fn default_latency(mut self, lat: SimDuration) -> Self {
        self.default_latency = Some(lat);
        self
    }

    /// Adds a node with the given capacities; returns its id.
    pub fn node(&mut self, bw_in: Bandwidth, bw_out: Bandwidth) -> NodeId {
        assert!(bw_in > 0.0 && bw_out > 0.0, "bandwidth must be positive");
        self.specs.push(NodeSpec { bw_in, bw_out });
        self.specs.len() - 1
    }

    /// Sets the symmetric latency between `u` and `v`.
    pub fn latency(&mut self, u: NodeId, v: NodeId, lat: SimDuration) -> &mut Self {
        self.overrides.push((u, v, lat));
        self
    }

    /// Finalizes the topology.
    pub fn build(self) -> Topology {
        let n = self.specs.len();
        assert!(n > 0, "empty topology");
        let default = self.default_latency.unwrap_or(SimDuration::from_millis(50));
        let mut latency = vec![default; n * n];
        for u in 0..n {
            latency[u * n + u] = SimDuration::from_micros(50);
        }
        for (u, v, lat) in self.overrides {
            assert!(u < n && v < n, "latency override out of range");
            latency[u * n + v] = lat;
            latency[v * n + u] = lat;
        }
        Topology {
            specs: self.specs,
            latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mbps;

    #[test]
    fn planetlab_is_deterministic_per_seed() {
        let a = Topology::planetlab_like(16, mbps(1.0), mbps(10.0), 7);
        let b = Topology::planetlab_like(16, mbps(1.0), mbps(10.0), 7);
        let c = Topology::planetlab_like(16, mbps(1.0), mbps(10.0), 8);
        assert_eq!(a.spec(3), b.spec(3));
        assert_eq!(a.latency(1, 9), b.latency(1, 9));
        assert_ne!(a.latency(1, 9), c.latency(1, 9));
    }

    #[test]
    fn planetlab_ranges_sane() {
        let t = Topology::planetlab_like(32, mbps(1.0), mbps(10.0), 42);
        assert_eq!(t.len(), 32);
        for v in 0..t.len() {
            let s = t.spec(v);
            assert!(s.bw_in >= mbps(1.0) && s.bw_in <= mbps(10.0));
            assert!(s.bw_out >= mbps(1.0) && s.bw_out <= mbps(10.0));
        }
        for u in 0..t.len() {
            for v in 0..t.len() {
                let l = t.latency(u, v);
                if u == v {
                    assert_eq!(l, SimDuration::from_micros(50));
                } else {
                    assert!(l >= SimDuration::from_millis(5));
                    assert!(l <= SimDuration::from_millis(500));
                    assert_eq!(l, t.latency(v, u), "symmetry");
                }
            }
        }
    }

    #[test]
    fn latencies_are_heterogeneous() {
        let t = Topology::planetlab_like(16, mbps(1.0), mbps(1.0), 1);
        let mut lats: Vec<f64> = Vec::new();
        for u in 0..t.len() {
            for v in (u + 1)..t.len() {
                lats.push(t.latency(u, v).as_millis_f64());
            }
        }
        let min = lats.iter().cloned().fold(f64::MAX, f64::min);
        let max = lats.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 2.0, "expected spread, got {min}..{max}");
    }

    #[test]
    fn uniform_is_flat() {
        let t = Topology::uniform(4, mbps(2.0), SimDuration::from_millis(30));
        for v in 0..4 {
            assert_eq!(t.spec(v).bw_in, mbps(2.0));
        }
        assert_eq!(t.latency(0, 3), SimDuration::from_millis(30));
    }

    #[test]
    fn builder_overrides_apply() {
        let mut b = TopologyBuilder::new().default_latency(SimDuration::from_millis(10));
        let x = b.node(mbps(1.0), mbps(2.0));
        let y = b.node(mbps(3.0), mbps(4.0));
        let z = b.node(mbps(5.0), mbps(6.0));
        b.latency(x, z, SimDuration::from_millis(99));
        let t = b.build();
        assert_eq!(t.latency(x, y), SimDuration::from_millis(10));
        assert_eq!(t.latency(x, z), SimDuration::from_millis(99));
        assert_eq!(t.latency(z, x), SimDuration::from_millis(99));
        assert_eq!(t.spec(y).bw_out, mbps(4.0));
    }

    #[test]
    #[should_panic(expected = "empty topology")]
    fn empty_builder_panics() {
        TopologyBuilder::new().build();
    }
}
