//! Wide-area network substrate for the RASC reproduction.
//!
//! The paper evaluated RASC on 32 PlanetLab hosts. This crate replaces the
//! testbed with a deterministic queueing model of a wide-area overlay:
//!
//! * a [`Topology`] holds per-node input/output NIC bandwidths and a full
//!   pairwise propagation-latency matrix (generators produce
//!   PlanetLab-like heterogeneous draws),
//! * a [`Network`] tracks NIC busy periods: a message of `S` bits sent
//!   `u → v` is serialized through `u`'s output NIC at `b_out(u)`, crosses
//!   the link after `latency(u, v)` (plus optional jitter), then is
//!   serialized through `v`'s input NIC at `b_in(v)` — the "two rate-served
//!   queues + propagation" model standard in overlay simulation,
//! * messages that would wait longer than the configured NIC backlog bound
//!   are **dropped** at the offending NIC, which is how bandwidth overload
//!   manifests to the upper layers (paper §3.2's drop feedback),
//! * per-node [`NodeStats`] counters feed RASC's resource monitoring.
//!
//! The model is analytic (busy-until timestamps), so `send` computes the
//! delivery time immediately; the caller schedules the delivery in its own
//! `desim` event queue. This keeps the substrate composable: the stream
//! runtime, the Pastry overlay, and control messages all share the same
//! NICs and therefore contend for the same bandwidth, as they did on
//! PlanetLab.
//!
//! # Example
//!
//! ```
//! use desim::{SimDuration, SimTime};
//! use simnet::{kbps, Network, NetworkConfig, SendOutcome, Topology};
//!
//! let topo = Topology::uniform(2, kbps(1_000.0), SimDuration::from_millis(20));
//! let mut net = Network::new(topo, NetworkConfig {
//!     latency_jitter_sigma: 0.0,
//!     congestion_jitter: 0.0,
//!     ..Default::default()
//! });
//! // 10 Kbit at 1 Mb/s: ~10 ms tx + 20 ms propagation + ~10 ms rx.
//! match net.send(SimTime::ZERO, 0, 1, 10_000) {
//!     SendOutcome::Delivered(at) => assert_eq!(at, SimTime::from_millis(40)),
//!     other => panic!("{other:?}"),
//! }
//! assert_eq!(net.stats(1).msgs_in, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod network;
mod nic;
mod stats;
mod topology;

pub use network::{DropReason, Network, NetworkConfig, SendOutcome};
pub use nic::Nic;
pub use stats::NodeStats;
pub use topology::{NodeSpec, Topology, TopologyBuilder};

/// Index of a node in the network (dense, `0..n`).
pub type NodeId = usize;

/// Bits per second.
pub type Bandwidth = f64;

/// Converts kilobits/s to bits/s (the paper quotes rates in Kb/s).
#[inline]
pub fn kbps(k: f64) -> Bandwidth {
    k * 1_000.0
}

/// Converts megabits/s to bits/s.
#[inline]
pub fn mbps(m: f64) -> Bandwidth {
    m * 1_000_000.0
}
