//! The live network: topology + NIC states + optional jitter + counters.

use crate::nic::{Nic, NicOutcome};
use crate::stats::NodeStats;
use crate::topology::Topology;
use crate::NodeId;
use desim::{SimDuration, SimRng, SimTime};

/// Tunables for the network model.
#[derive(Clone, Debug)]
pub struct NetworkConfig {
    /// Maximum queueing delay a NIC may accumulate before it starts
    /// dropping (models finite interface queues).
    pub max_nic_backlog: SimDuration,
    /// Multiplicative latency jitter: each message's propagation delay is
    /// scaled by `lognormal(0, latency_jitter_sigma)`. Zero disables.
    pub latency_jitter_sigma: f64,
    /// How much congestion amplifies jitter: the effective sigma grows to
    /// `latency_jitter_sigma * (1 + congestion_jitter * backlog_fraction)`
    /// with the sender's NIC backlog. Shared links under load reorder and
    /// jitter packets (cross traffic, AQM, retransmissions); an analytic
    /// FIFO pipe does not, so this term restores that behaviour.
    pub congestion_jitter: f64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            max_nic_backlog: SimDuration::from_millis(350),
            latency_jitter_sigma: 0.15,
            congestion_jitter: 4.0,
            seed: 0,
        }
    }
}

/// Why a message was dropped by the network.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DropReason {
    /// Sender's output NIC queue overflowed.
    SenderOverflow,
    /// Receiver's input NIC queue overflowed.
    ReceiverOverflow,
}

/// Result of [`Network::send`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SendOutcome {
    /// Message will be fully received at the given time; the caller
    /// schedules its delivery event then.
    Delivered(SimTime),
    /// Message was dropped.
    Dropped(DropReason),
}

/// Mutable network state over an immutable [`Topology`].
#[derive(Clone, Debug)]
pub struct Network {
    topology: Topology,
    nic_in: Vec<Nic>,
    nic_out: Vec<Nic>,
    stats: Vec<NodeStats>,
    rng: SimRng,
    jitter_sigma: f64,
    congestion_jitter: f64,
    max_backlog: SimDuration,
    /// Per-node multiplicative latency scaling (fault injection: a spiked
    /// node stretches every link it touches). 1.0 = nominal.
    latency_factor: Vec<f64>,
}

impl Network {
    /// Creates a network over `topology` with the given config.
    pub fn new(topology: Topology, config: NetworkConfig) -> Self {
        let n = topology.len();
        let nic_in = (0..n)
            .map(|v| Nic::new(topology.spec(v).bw_in, config.max_nic_backlog))
            .collect();
        let nic_out = (0..n)
            .map(|v| Nic::new(topology.spec(v).bw_out, config.max_nic_backlog))
            .collect();
        Network {
            topology,
            nic_in,
            nic_out,
            stats: vec![NodeStats::default(); n],
            rng: SimRng::new(config.seed ^ 0x6E65745F_6A697474),
            jitter_sigma: config.latency_jitter_sigma,
            congestion_jitter: config.congestion_jitter,
            max_backlog: config.max_nic_backlog,
            latency_factor: vec![1.0; n],
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.topology.len()
    }

    /// True when the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.topology.is_empty()
    }

    /// Counters for node `v`.
    pub fn stats(&self, v: NodeId) -> &NodeStats {
        &self.stats[v]
    }

    /// Current output-NIC backlog of `v` (how congested its uplink is).
    pub fn out_backlog(&self, v: NodeId, now: SimTime) -> SimDuration {
        self.nic_out[v].backlog(now)
    }

    /// Current input-NIC backlog of `v`.
    pub fn in_backlog(&self, v: NodeId, now: SimTime) -> SimDuration {
        self.nic_in[v].backlog(now)
    }

    /// Re-rates node `v`'s NICs at runtime (bandwidth degradation or
    /// restoration of a shared host). Both the NIC service rates and the
    /// topology spec are updated so capacity-derived admission views see
    /// the change; traffic already serialized keeps its departure times.
    pub fn set_node_bandwidth(&mut self, v: NodeId, bw_in: f64, bw_out: f64) {
        self.topology
            .set_spec(v, crate::topology::NodeSpec { bw_in, bw_out });
        self.nic_in[v].set_rate(bw_in);
        self.nic_out[v].set_rate(bw_out);
    }

    /// Sets node `v`'s latency scaling: every link touching `v` stretches
    /// by `factor` (a congested access link or re-routed path affects all
    /// of the node's traffic). `1.0` restores nominal propagation.
    pub fn set_latency_factor(&mut self, v: NodeId, factor: f64) {
        assert!(factor > 0.0, "latency factor must be positive");
        self.latency_factor[v] = factor;
    }

    /// Current latency scaling of node `v`.
    pub fn latency_factor(&self, v: NodeId) -> f64 {
        self.latency_factor[v]
    }

    /// Occupies a node's NICs with cross traffic for the given durations
    /// (models other tenants of a shared host/link, e.g. PlanetLab
    /// slices). Foreground traffic queues behind it and may overflow.
    pub fn occupy(&mut self, now: SimTime, v: NodeId, in_dur: SimDuration, out_dur: SimDuration) {
        self.nic_in[v].occupy(now, in_dur);
        self.nic_out[v].occupy(now, out_dur);
    }

    /// Sends `bits` from `src` to `dst` at time `now`.
    ///
    /// On success, returns the time the message is fully received at `dst`;
    /// the caller is responsible for scheduling the delivery event. On
    /// overflow the drop is charged to the overflowing node's counters.
    pub fn send(&mut self, now: SimTime, src: NodeId, dst: NodeId, bits: u64) -> SendOutcome {
        // Congestion level before this message, for the jitter model —
        // the worse of the sender's uplink and the receiver's downlink
        // (either end being saturated scrambles packet spacing).
        let backlog_frac = if self.max_backlog > SimDuration::ZERO {
            let out_b = self.nic_out[src].backlog(now).as_secs_f64();
            let in_b = self.nic_in[dst].backlog(now).as_secs_f64();
            (out_b.max(in_b) / self.max_backlog.as_secs_f64()).min(1.0)
        } else {
            0.0
        };
        let tx_done = match self.nic_out[src].offer(now, bits) {
            NicOutcome::Done(t) => t,
            NicOutcome::Overflow => {
                self.stats[src].drops_out += 1;
                return SendOutcome::Dropped(DropReason::SenderOverflow);
            }
        };
        let mut latency = self.topology.latency(src, dst);
        // A latency spike on either endpoint stretches the whole path.
        let spike = self.latency_factor[src].max(self.latency_factor[dst]);
        if spike != 1.0 {
            latency = latency.mul_f64(spike);
        }
        if self.jitter_sigma > 0.0 && src != dst {
            let sigma = self.jitter_sigma * (1.0 + self.congestion_jitter * backlog_frac);
            let factor = self.rng.log_normal(0.0, sigma);
            latency = latency.mul_f64(factor.clamp(0.25, 4.0));
        }
        let arrival = tx_done + latency;
        match self.nic_in[dst].offer(arrival, bits) {
            NicOutcome::Done(recv_done) => {
                self.stats[src].msgs_out += 1;
                self.stats[src].bits_out += bits;
                self.stats[dst].msgs_in += 1;
                self.stats[dst].bits_in += bits;
                SendOutcome::Delivered(recv_done)
            }
            NicOutcome::Overflow => {
                // The sender spent uplink time anyway (the bits left),
                // but the receiver never got the message.
                self.stats[src].msgs_out += 1;
                self.stats[src].bits_out += bits;
                self.stats[dst].drops_in += 1;
                SendOutcome::Dropped(DropReason::ReceiverOverflow)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;
    use crate::{mbps, Topology};

    fn quiet_config() -> NetworkConfig {
        NetworkConfig {
            latency_jitter_sigma: 0.0,
            ..Default::default()
        }
    }

    fn two_nodes(bw: f64) -> Network {
        let mut b = TopologyBuilder::new().default_latency(SimDuration::from_millis(10));
        b.node(bw, bw);
        b.node(bw, bw);
        Network::new(b.build(), quiet_config())
    }

    #[test]
    fn delivery_time_is_tx_plus_latency_plus_rx() {
        let mut net = two_nodes(mbps(1.0));
        // 100_000 bits at 1 Mbps = 100 ms tx + 10 ms prop + 100 ms rx.
        match net.send(SimTime::ZERO, 0, 1, 100_000) {
            SendOutcome::Delivered(t) => {
                assert_eq!(t, SimTime::from_millis(210));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(net.stats(0).msgs_out, 1);
        assert_eq!(net.stats(1).msgs_in, 1);
        assert_eq!(net.stats(0).bits_out, 100_000);
    }

    #[test]
    fn back_to_back_sends_serialize_on_uplink() {
        let mut net = two_nodes(mbps(1.0));
        let t1 = match net.send(SimTime::ZERO, 0, 1, 100_000) {
            SendOutcome::Delivered(t) => t,
            other => panic!("{other:?}"),
        };
        let t2 = match net.send(SimTime::ZERO, 0, 1, 100_000) {
            SendOutcome::Delivered(t) => t,
            other => panic!("{other:?}"),
        };
        // Second message waits 100 ms for the uplink, then pipelines
        // through the receiver NIC right after the first.
        assert_eq!(t2.saturating_since(t1), SimDuration::from_millis(100));
    }

    #[test]
    fn sender_overflow_drops_and_counts() {
        let mut net = Network::new(
            Topology::uniform(2, mbps(1.0), SimDuration::from_millis(1)),
            NetworkConfig {
                max_nic_backlog: SimDuration::from_millis(50),
                latency_jitter_sigma: 0.0,
                congestion_jitter: 0.0,
                seed: 0,
            },
        );
        // Saturate: 1 Mbit = 1 s of backlog, far over the 50 ms bound.
        assert!(matches!(
            net.send(SimTime::ZERO, 0, 1, 1_000_000),
            SendOutcome::Delivered(_)
        ));
        assert_eq!(
            net.send(SimTime::ZERO, 0, 1, 1000),
            SendOutcome::Dropped(DropReason::SenderOverflow)
        );
        assert_eq!(net.stats(0).drops_out, 1);
        assert!(net.stats(0).drop_ratio() > 0.0);
    }

    #[test]
    fn receiver_overflow_charged_to_receiver() {
        // Two fast senders swamp one slow receiver.
        let mut b = TopologyBuilder::new().default_latency(SimDuration::from_millis(1));
        b.node(mbps(100.0), mbps(100.0));
        b.node(mbps(100.0), mbps(100.0));
        b.node(mbps(0.1), mbps(0.1)); // 100 Kbps receiver
        let mut net = Network::new(
            b.build(),
            NetworkConfig {
                max_nic_backlog: SimDuration::from_millis(100),
                latency_jitter_sigma: 0.0,
                congestion_jitter: 0.0,
                seed: 0,
            },
        );
        let mut dropped = 0;
        for i in 0..20 {
            let from = i % 2;
            if let SendOutcome::Dropped(DropReason::ReceiverOverflow) =
                net.send(SimTime::ZERO, from, 2, 50_000)
            {
                dropped += 1;
            }
        }
        assert!(dropped > 0, "slow receiver never overflowed");
        assert_eq!(net.stats(2).drops_in, dropped);
    }

    #[test]
    fn jitter_perturbs_latency_deterministically() {
        let make = |seed| {
            Network::new(
                Topology::uniform(2, mbps(10.0), SimDuration::from_millis(50)),
                NetworkConfig {
                    latency_jitter_sigma: 0.3,
                    seed,
                    ..Default::default()
                },
            )
        };
        let (mut a, mut b, mut c) = (make(1), make(1), make(2));
        let ta = a.send(SimTime::ZERO, 0, 1, 1000);
        let tb = b.send(SimTime::ZERO, 0, 1, 1000);
        let tc = c.send(SimTime::ZERO, 0, 1, 1000);
        assert_eq!(ta, tb, "same seed, same jitter");
        assert_ne!(ta, tc, "different seed perturbs");
    }

    #[test]
    fn runtime_degradation_slows_and_restores() {
        let mut net = two_nodes(mbps(1.0));
        // Nominal: 100_000 bits = 100 ms tx + 10 ms + 100 ms rx.
        let t0 = match net.send(SimTime::ZERO, 0, 1, 100_000) {
            SendOutcome::Delivered(t) => t,
            other => panic!("{other:?}"),
        };
        assert_eq!(t0, SimTime::from_millis(210));
        // Degrade the receiver to 10%: its rx stage takes 10× longer, and
        // the topology spec (what admission reads) shrinks with it.
        net.set_node_bandwidth(1, mbps(0.1), mbps(0.1));
        assert_eq!(net.topology().spec(1).bw_in, mbps(0.1));
        let far = SimTime::from_secs(100); // both NICs long idle again
        let t1 = match net.send(far, 0, 1, 100_000) {
            SendOutcome::Delivered(t) => t,
            other => panic!("{other:?}"),
        };
        assert_eq!(t1.saturating_since(far), SimDuration::from_millis(1110));
        // Restore: behaviour returns to nominal.
        net.set_node_bandwidth(1, mbps(1.0), mbps(1.0));
        let far2 = SimTime::from_secs(200);
        let t2 = match net.send(far2, 0, 1, 100_000) {
            SendOutcome::Delivered(t) => t,
            other => panic!("{other:?}"),
        };
        assert_eq!(t2.saturating_since(far2), SimDuration::from_millis(210));
    }

    #[test]
    fn latency_spike_stretches_links_of_the_node() {
        let mut b = TopologyBuilder::new().default_latency(SimDuration::from_millis(10));
        b.node(mbps(10.0), mbps(10.0));
        b.node(mbps(10.0), mbps(10.0));
        b.node(mbps(10.0), mbps(10.0));
        let mut net = Network::new(b.build(), quiet_config());
        let base = match net.send(SimTime::ZERO, 0, 1, 10_000) {
            SendOutcome::Delivered(t) => t,
            other => panic!("{other:?}"),
        };
        net.set_latency_factor(1, 5.0);
        assert_eq!(net.latency_factor(1), 5.0);
        let far = SimTime::from_secs(10);
        let spiked = match net.send(far, 0, 1, 10_000) {
            SendOutcome::Delivered(t) => t,
            other => panic!("{other:?}"),
        };
        // 10 ms propagation grew to 50 ms; tx/rx stages unchanged.
        assert_eq!(
            spiked.saturating_since(far),
            base.saturating_since(SimTime::ZERO) + SimDuration::from_millis(40)
        );
        // Links not touching node 1 are unaffected (sent at a separate
        // instant so the sender NIC is idle again).
        let far_o = SimTime::from_secs(15);
        let other = match net.send(far_o, 0, 2, 10_000) {
            SendOutcome::Delivered(t) => t,
            other => panic!("{other:?}"),
        };
        assert_eq!(
            other.saturating_since(far_o),
            base.saturating_since(SimTime::ZERO)
        );
        // Calm restores nominal latency.
        net.set_latency_factor(1, 1.0);
        let far2 = SimTime::from_secs(20);
        let calm = match net.send(far2, 0, 1, 10_000) {
            SendOutcome::Delivered(t) => t,
            other => panic!("{other:?}"),
        };
        assert_eq!(
            calm.saturating_since(far2),
            base.saturating_since(SimTime::ZERO)
        );
    }

    #[test]
    fn loopback_send_is_fast_but_charged() {
        let mut net = two_nodes(mbps(1.0));
        match net.send(SimTime::ZERO, 0, 0, 10_000) {
            SendOutcome::Delivered(t) => {
                // 10 ms tx + 50 us loopback + 10 ms rx.
                assert_eq!(t, SimTime::from_micros(20_050));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(net.stats(0).msgs_out, 1);
        assert_eq!(net.stats(0).msgs_in, 1);
    }
}
