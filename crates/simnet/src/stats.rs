//! Per-node traffic counters, consumed by RASC's resource monitoring.

/// Cumulative traffic counters for one node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Messages successfully received (fully through the input NIC).
    pub msgs_in: u64,
    /// Messages successfully sent (accepted by the output NIC).
    pub msgs_out: u64,
    /// Bits received.
    pub bits_in: u64,
    /// Bits sent.
    pub bits_out: u64,
    /// Messages dropped at this node's output NIC (send-side overflow).
    pub drops_out: u64,
    /// Messages dropped at this node's input NIC (receive-side overflow).
    pub drops_in: u64,
}

impl NodeStats {
    /// Total drops charged to this node.
    pub fn drops(&self) -> u64 {
        self.drops_in + self.drops_out
    }

    /// Drop ratio among messages this node was asked to forward or accept.
    /// Zero when the node saw no traffic.
    pub fn drop_ratio(&self) -> f64 {
        let attempted = self.msgs_in + self.msgs_out + self.drops();
        if attempted == 0 {
            0.0
        } else {
            self.drops() as f64 / attempted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_ratio_zero_without_traffic() {
        assert_eq!(NodeStats::default().drop_ratio(), 0.0);
    }

    #[test]
    fn drop_ratio_counts_both_directions() {
        let s = NodeStats {
            msgs_in: 6,
            msgs_out: 2,
            drops_in: 1,
            drops_out: 1,
            ..Default::default()
        };
        assert_eq!(s.drops(), 2);
        assert!((s.drop_ratio() - 0.2).abs() < 1e-12);
    }
}
