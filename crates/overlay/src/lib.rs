//! A from-scratch Pastry overlay with a DHT service registry.
//!
//! RASC (paper §3.3) discovers the nodes offering a service by hashing the
//! service name to a 128-bit key and routing a lookup through a Pastry
//! overlay [22]. This crate reimplements the parts RASC relies on:
//!
//! * [`NodeKey`] — 128-bit circular identifier space, read as 32 hex
//!   digits (`b = 4`),
//! * [`RoutingTable`] — 32 rows × 16 columns of longest-prefix entries,
//! * [`LeafSet`] — the `L/2` numerically closest neighbors on each side,
//! * [`Overlay`] — membership + prefix routing: [`Overlay::route_path`]
//!   returns the full hop sequence so callers can charge every hop to the
//!   simulated network, and [`Overlay::join`]/[`Overlay::remove`] exercise
//!   the dynamic-membership paths,
//! * [`Dht`] — a multi-value store mapping keys to provider sets with
//!   leaf-set replication; RASC registers `service → host` entries and
//!   looks them up at composition time (paper steps (1)–(2) of §3.1).
//!
//! Routing satisfies Pastry's guarantees in expectation: `O(log₁₆ N)`
//! hops, each hop either extending the shared prefix with the target or
//! (in the leaf-set/rare case) strictly shrinking numerical distance.
//!
//! # Example
//!
//! ```
//! use overlay::{stable_hash128, Dht, Overlay};
//!
//! let flat = |_: usize, _: usize| 1.0; // proximity metric
//! let overlay = Overlay::build(16, 7, &flat);
//! let mut dht: Dht<usize> = Dht::new(16, 2);
//!
//! // Register providers of a service, then discover them from anywhere.
//! let key = stable_hash128(b"transcode");
//! dht.insert(&overlay, 3, key, 3);
//! dht.insert(&overlay, 9, key, 9);
//! let found = dht.lookup(&overlay, 0, key);
//! assert_eq!(found.values, vec![3, 9]);
//! assert_eq!(*found.path.last().unwrap(), overlay.owner_of(key));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dht;
mod hash;
mod key;
mod overlay;
mod region;
mod table;

pub use dht::{Dht, LookupResult};
pub use hash::stable_hash128;
pub use key::NodeKey;
pub use overlay::{Overlay, ProximityFn};
pub use region::RegionMap;
pub use table::{LeafSet, RoutingTable};

/// Dense index of a member node, assigned by the [`Overlay`] at build/join
/// time. Callers map it to their own node handles (e.g. simnet indices).
pub type MemberId = usize;
