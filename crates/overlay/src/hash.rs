//! A stable 128-bit hash for deriving keys from names.
//!
//! The paper uses SHA-1 to derive component IDs (§3.3); any well-mixed,
//! platform-stable hash serves the same purpose here. We use two rounds of
//! a 64-bit FNV-1a/avalanche construction with distinct salts — stable
//! across Rust versions, unlike `std::hash::DefaultHasher`.

use crate::key::NodeKey;

#[inline]
fn mix64(mut x: u64) -> u64 {
    // SplitMix64 finalizer: full avalanche.
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

fn fnv64(bytes: &[u8], salt: u64) -> u64 {
    let mut h: u64 = 0xCBF29CE484222325 ^ salt;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    mix64(h)
}

/// Hashes arbitrary bytes to a 128-bit overlay key.
pub fn stable_hash128(bytes: &[u8]) -> NodeKey {
    let hi = fnv64(bytes, 0x5241_5343_5F48_4931); // "RASC_HI1"
    let lo = fnv64(bytes, 0x5241_5343_5F4C_4F31); // "RASC_LO1"
    NodeKey(((hi as u128) << 64) | lo as u128)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(stable_hash128(b"transcode"), stable_hash128(b"transcode"));
    }

    #[test]
    fn distinct_inputs_distinct_keys() {
        let names = [
            "filter",
            "aggregate",
            "transcode",
            "project",
            "join",
            "sample",
            "encrypt",
            "compress",
            "annotate",
            "classify",
        ];
        let mut keys: Vec<_> = names.iter().map(|n| stable_hash128(n.as_bytes())).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), names.len());
    }

    #[test]
    fn empty_input_is_valid() {
        let k = stable_hash128(b"");
        assert_ne!(k, NodeKey(0));
    }

    #[test]
    fn single_bit_avalanche() {
        let a = stable_hash128(b"service-1").0;
        let b = stable_hash128(b"service-2").0;
        let differing = (a ^ b).count_ones();
        assert!(differing > 32, "poor diffusion: {differing} bits differ");
    }
}
