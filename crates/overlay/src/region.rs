//! Region assignment for sharded admission.
//!
//! A [`RegionMap`] partitions the overlay's dense member ids into a fixed
//! number of regions. Two partitioning schemes cover the two topology
//! families the large-scale generators produce:
//!
//! * **site-clustered** ([`RegionMap::from_sites`]) — folds the topology's
//!   per-node site/cluster assignment (metro clusters in `power_law`,
//!   datacenters in `datacenter_wan`) into `regions` groups, so a shard's
//!   members share low-latency intra-site paths and most traffic composed
//!   by a shard stays inside it;
//! * **key-space** ([`RegionMap::key_space`]) — cuts the 128-bit Pastry
//!   identifier circle into `regions` equal arcs via [`stable_hash128`] of
//!   the member id, for topologies with no site structure. Hash-uniform,
//!   so region populations concentrate around `n / regions`.
//!
//! Both schemes are pure functions of their inputs — no RNG state — so a
//! region map can be rebuilt anywhere (engine, bench, audit) and always
//! shards identically.

use crate::{stable_hash128, MemberId};

/// A partition of `n` members into contiguous region ids `0..regions`.
///
/// Invariants: every member belongs to exactly one region; every region's
/// member list is sorted ascending; region ids are dense (no gaps), though
/// a region may be empty when `regions` exceeds the distinct site count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionMap {
    region_of: Vec<u32>,
    members: Vec<Vec<MemberId>>,
}

impl RegionMap {
    fn from_assignment(region_of: Vec<u32>, regions: usize) -> RegionMap {
        assert!(regions > 0, "need at least one region");
        let mut members = vec![Vec::new(); regions];
        for (v, &r) in region_of.iter().enumerate() {
            members[r as usize].push(v);
        }
        RegionMap { region_of, members }
    }

    /// Single-region map: every member in region 0. The degenerate case
    /// sharded admission uses to reproduce the global-view path.
    pub fn single(n: usize) -> RegionMap {
        Self::from_assignment(vec![0; n], 1)
    }

    /// Folds a per-node site assignment (see
    /// `simnet::Topology::site_assignment`) into `regions` groups:
    /// member `v` lands in region `sites[v] % regions`. With
    /// `regions >= distinct sites` each site gets its own region;
    /// otherwise sites are interleaved round-robin, which keeps region
    /// sizes balanced under the generators' Zipf-skewed site sizes
    /// better than contiguous site ranges would.
    pub fn from_sites(sites: &[u32], regions: usize) -> RegionMap {
        assert!(regions > 0, "need at least one region");
        let region_of = sites.iter().map(|&s| s % regions as u32).collect();
        Self::from_assignment(region_of, regions)
    }

    /// Cuts the 128-bit key circle into `regions` equal arcs and assigns
    /// member `v` by which arc `stable_hash128(v)` lands in. For
    /// topologies without site structure; hash-uniform by construction.
    pub fn key_space(n: usize, regions: usize) -> RegionMap {
        assert!(regions > 0, "need at least one region");
        let region_of = (0..n)
            .map(|v| {
                let key = stable_hash128(&(v as u64).to_le_bytes());
                // Arc index = floor(key / (2^128 / regions)), computed
                // from the top 64 bits to stay in integer arithmetic:
                // the low 64 bits cannot move a key across an arc
                // boundary unless regions exceeds 2^64.
                let hi = (key.0 >> 64) as u64;
                (((hi as u128) * regions as u128) >> 64) as u32
            })
            .collect();
        Self::from_assignment(region_of, regions)
    }

    /// Number of regions (including empty ones).
    pub fn regions(&self) -> usize {
        self.members.len()
    }

    /// Number of members across all regions.
    pub fn len(&self) -> usize {
        self.region_of.len()
    }

    /// True when the map covers no members.
    pub fn is_empty(&self) -> bool {
        self.region_of.is_empty()
    }

    /// Region id of member `v`.
    pub fn region_of(&self, v: MemberId) -> u32 {
        self.region_of[v]
    }

    /// Members of region `r`, sorted ascending.
    pub fn members(&self, r: usize) -> &[MemberId] {
        &self.members[r]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_sites_folds_round_robin() {
        let sites: Vec<u32> = (0..32).map(|v| v % 5).collect();
        let m = RegionMap::from_sites(&sites, 3);
        assert_eq!(m.regions(), 3);
        assert_eq!(m.len(), 32);
        for v in 0..32usize {
            assert_eq!(m.region_of(v), (v % 5) as u32 % 3);
            assert!(m.members(m.region_of(v) as usize).contains(&v));
        }
        // Every member in exactly one region; lists sorted.
        let total: usize = (0..3).map(|r| m.members(r).len()).sum();
        assert_eq!(total, 32);
        for r in 0..3 {
            assert!(m.members(r).windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn key_space_is_deterministic_and_roughly_balanced() {
        let a = RegionMap::key_space(1000, 8);
        let b = RegionMap::key_space(1000, 8);
        assert_eq!(a, b);
        let total: usize = (0..8).map(|r| a.members(r).len()).sum();
        assert_eq!(total, 1000);
        for r in 0..8 {
            let size = a.members(r).len();
            // Hash-uniform: each region holds 125 ± a generous slack.
            assert!(
                (60..=190).contains(&size),
                "region {r} badly unbalanced: {size}"
            );
        }
    }

    #[test]
    fn single_region_holds_everyone() {
        let m = RegionMap::single(17);
        assert_eq!(m.regions(), 1);
        assert_eq!(m.members(0).len(), 17);
        assert!((0..17usize).all(|v| m.region_of(v) == 0));
    }
}
