//! A multi-value DHT on top of the overlay: the service registry.
//!
//! RASC registers `service → providing node` entries under the hash of the
//! service name and looks them up at composition time (paper §3.3). Each
//! key's entries live on the key's owner and are replicated to the owner's
//! closest leaf-set neighbors so single-node failures lose nothing.

use crate::key::NodeKey;
use crate::overlay::Overlay;
use crate::MemberId;
use std::collections::{BTreeSet, HashMap};

/// Result of a DHT lookup.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LookupResult<V> {
    /// The values registered under the key (empty if none).
    pub values: Vec<V>,
    /// The overlay route the lookup traversed (starts at the querying
    /// member, ends at the node that answered).
    pub path: Vec<MemberId>,
}

/// A replicated multi-value store keyed by overlay keys.
///
/// The `Dht` holds per-member storage; routing questions are delegated to
/// the [`Overlay`] passed into each call (the caller owns both, mirroring
/// how RASC layers its registry over Pastry).
#[derive(Clone, Debug)]
pub struct Dht<V> {
    /// Per-member storage. Indexed by `MemberId`.
    stores: Vec<HashMap<NodeKey, BTreeSet<V>>>,
    /// Replication degree: the owner plus `replicas` leaf neighbors hold
    /// each entry.
    replicas: usize,
}

impl<V: Clone + Ord> Dht<V> {
    /// Creates an empty store for an overlay of (at least) `n` members,
    /// replicating each entry to the owner plus `replicas` neighbors.
    pub fn new(n: usize, replicas: usize) -> Self {
        Dht {
            stores: vec![HashMap::new(); n],
            replicas,
        }
    }

    fn ensure_capacity(&mut self, m: MemberId) {
        if m >= self.stores.len() {
            self.stores.resize_with(m + 1, HashMap::new);
        }
    }

    /// The owner and its replica group for `key`.
    fn replica_group(&self, overlay: &Overlay, key: NodeKey) -> Vec<MemberId> {
        let owner = overlay.owner_of(key);
        let mut group = vec![owner];
        // Nearest alive members by ring distance to the owner's key.
        let owner_key = overlay.key_of(owner);
        let mut others: Vec<MemberId> = overlay.alive_members().filter(|&m| m != owner).collect();
        others.sort_by_key(|&m| overlay.key_of(m).ring_distance(owner_key));
        group.extend(others.into_iter().take(self.replicas));
        group
    }

    /// Registers `value` under `key`, routing from `from`. Returns the
    /// overlay path taken to reach the owner.
    pub fn insert(
        &mut self,
        overlay: &Overlay,
        from: MemberId,
        key: NodeKey,
        value: V,
    ) -> Vec<MemberId> {
        let path = overlay.route_path(from, key);
        for m in self.replica_group(overlay, key) {
            self.ensure_capacity(m);
            self.stores[m].entry(key).or_default().insert(value.clone());
        }
        path
    }

    /// Removes `value` from `key`'s entry set (on every replica).
    pub fn remove(&mut self, overlay: &Overlay, key: NodeKey, value: &V) {
        for m in self.replica_group(overlay, key) {
            if m < self.stores.len() {
                if let Some(set) = self.stores[m].get_mut(&key) {
                    set.remove(value);
                }
            }
        }
    }

    /// Looks up `key`, routing from `from`. Reads the owner's store; if the
    /// owner has no entry (e.g. it just took over from a failed node and
    /// re-replication has not run) the replica group is consulted.
    pub fn lookup(&self, overlay: &Overlay, from: MemberId, key: NodeKey) -> LookupResult<V> {
        let path = overlay.route_path(from, key);
        let answered_by = *path.last().expect("path never empty");
        let direct = self
            .stores
            .get(answered_by)
            .and_then(|s| s.get(&key))
            .map(|set| set.iter().cloned().collect::<Vec<_>>())
            .unwrap_or_default();
        if !direct.is_empty() {
            return LookupResult {
                values: direct,
                path,
            };
        }
        for m in self.replica_group(overlay, key) {
            if let Some(set) = self.stores.get(m).and_then(|s| s.get(&key)) {
                if !set.is_empty() {
                    return LookupResult {
                        values: set.iter().cloned().collect(),
                        path,
                    };
                }
            }
        }
        LookupResult {
            values: Vec::new(),
            path,
        }
    }

    /// Re-replicates entries after membership changed (new owner takes
    /// over a failed node's keys from the surviving replicas). Models the
    /// converged state of Pastry's replica maintenance.
    pub fn repair(&mut self, overlay: &Overlay) {
        // Gather all (key, value) pairs from alive stores, then rewrite
        // each key's replica group.
        let mut all: HashMap<NodeKey, BTreeSet<V>> = HashMap::new();
        for m in overlay.alive_members() {
            if let Some(store) = self.stores.get(m) {
                for (k, vs) in store {
                    all.entry(*k).or_default().extend(vs.iter().cloned());
                }
            }
        }
        for store in &mut self.stores {
            store.clear();
        }
        for (key, values) in all {
            for m in self.replica_group(overlay, key) {
                self.ensure_capacity(m);
                self.stores[m].insert(key, values.clone());
            }
        }
    }

    /// Configured replication degree beyond the owner.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Number of *alive* members holding a non-empty entry set for `key`
    /// — the key's effective replication. After churn plus
    /// [`repair`](Self::repair) this must be back at
    /// `min(replicas + 1, alive members)` for every stored key; auditors
    /// check exactly that.
    pub fn replication_of(&self, overlay: &Overlay, key: NodeKey) -> usize {
        overlay
            .alive_members()
            .filter(|&m| {
                self.stores
                    .get(m)
                    .and_then(|s| s.get(&key))
                    .is_some_and(|set| !set.is_empty())
            })
            .count()
    }

    /// Total number of (key, value) pairs stored across all members
    /// (counting replicas).
    pub fn stored_pairs(&self) -> usize {
        self.stores
            .iter()
            .flat_map(|s| s.values())
            .map(|set| set.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::stable_hash128;

    fn flat(_: MemberId, _: MemberId) -> f64 {
        1.0
    }

    fn setup(n: usize) -> (Overlay, Dht<u32>) {
        let ov = Overlay::build(n, 77, &flat);
        let dht = Dht::new(n, 2);
        (ov, dht)
    }

    #[test]
    fn insert_then_lookup_roundtrips() {
        let (ov, mut dht) = setup(16);
        let key = stable_hash128(b"transcode");
        dht.insert(&ov, 0, key, 5);
        dht.insert(&ov, 3, key, 9);
        let r = dht.lookup(&ov, 12, key);
        assert_eq!(r.values, vec![5, 9]);
        assert_eq!(*r.path.last().unwrap(), ov.owner_of(key));
        assert_eq!(r.path[0], 12);
    }

    #[test]
    fn missing_key_returns_empty() {
        let (ov, dht) = setup(8);
        let r = dht.lookup(&ov, 0, stable_hash128(b"nothing"));
        assert!(r.values.is_empty());
        assert!(!r.path.is_empty());
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let (ov, mut dht) = setup(8);
        let key = stable_hash128(b"filter");
        dht.insert(&ov, 0, key, 1);
        dht.insert(&ov, 1, key, 1);
        assert_eq!(dht.lookup(&ov, 2, key).values, vec![1]);
    }

    #[test]
    fn remove_deletes_from_all_replicas() {
        let (ov, mut dht) = setup(8);
        let key = stable_hash128(b"agg");
        dht.insert(&ov, 0, key, 4);
        dht.insert(&ov, 0, key, 6);
        dht.remove(&ov, key, &4);
        assert_eq!(dht.lookup(&ov, 5, key).values, vec![6]);
    }

    #[test]
    fn survives_owner_failure_via_replicas() {
        let (mut ov, mut dht) = setup(16);
        let key = stable_hash128(b"vital-service");
        dht.insert(&ov, 0, key, 42);
        let owner = ov.owner_of(key);
        ov.remove(owner);
        // Even before repair, replicas answer.
        let alive0 = ov.alive_members().next().unwrap();
        let r = dht.lookup(&ov, alive0, key);
        assert_eq!(r.values, vec![42], "lost data after owner failure");
        // After repair the new owner serves directly.
        dht.repair(&ov);
        let new_owner = ov.owner_of(key);
        let r2 = dht.lookup(&ov, alive0, key);
        assert_eq!(r2.values, vec![42]);
        assert_eq!(*r2.path.last().unwrap(), new_owner);
    }

    #[test]
    fn replication_degree_counted() {
        let (ov, mut dht) = setup(16);
        let key = stable_hash128(b"svc");
        dht.insert(&ov, 0, key, 7);
        // Owner + 2 replicas.
        assert_eq!(dht.stored_pairs(), 3);
    }

    #[test]
    fn replication_recovers_after_churn_and_repair() {
        let (mut ov, mut dht) = setup(16);
        let key = stable_hash128(b"replicated-svc");
        dht.insert(&ov, 0, key, 11);
        assert_eq!(dht.replication_of(&ov, key), dht.replicas() + 1);
        // Kill the whole replica group one by one, repairing after each
        // failure; the key must return to full replication every time.
        for _ in 0..3 {
            let owner = ov.owner_of(key);
            ov.remove(owner);
            dht.repair(&ov);
            let want = (dht.replicas() + 1).min(ov.alive_count());
            assert_eq!(dht.replication_of(&ov, key), want);
            let alive0 = ov.alive_members().next().unwrap();
            assert_eq!(dht.lookup(&ov, alive0, key).values, vec![11]);
        }
    }

    #[test]
    fn many_services_distribute_across_owners() {
        let (ov, mut dht) = setup(32);
        let mut owners = BTreeSet::new();
        for i in 0..10u32 {
            let key = stable_hash128(format!("service-{i}").as_bytes());
            dht.insert(&ov, 0, key, i);
            owners.insert(ov.owner_of(key));
        }
        assert!(
            owners.len() >= 5,
            "10 services landed on only {} owners",
            owners.len()
        );
    }
}
