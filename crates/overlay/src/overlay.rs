//! Overlay membership and prefix routing.

use crate::key::NodeKey;
use crate::table::{LeafSet, RoutingTable};
use crate::MemberId;
use desim::SimRng;
use std::collections::BTreeMap;

/// Network-proximity metric between two members (e.g. simulated latency in
/// milliseconds). Pastry uses it to prefer nearby nodes in routing tables.
pub type ProximityFn<'a> = &'a dyn Fn(MemberId, MemberId) -> f64;

/// State of one overlay node.
#[derive(Clone, Debug)]
struct NodeState {
    key: NodeKey,
    table: RoutingTable,
    leaves: LeafSet,
    alive: bool,
}

/// A Pastry overlay over a set of member nodes.
///
/// Members are identified by dense `MemberId`s assigned at insertion;
/// callers map them to transport-level node handles. Dead members keep
/// their ids (ids are never reused).
#[derive(Clone, Debug)]
pub struct Overlay {
    nodes: Vec<NodeState>,
    /// Alive members indexed by key (the "ground truth" ring used for
    /// owner queries and converged leaf-set repair).
    ring: BTreeMap<NodeKey, MemberId>,
    leaf_l: usize,
}

/// Default leaf-set size (total, both sides), as in the Pastry paper.
pub const DEFAULT_LEAF_SET: usize = 16;

/// Hard bound on route length; Pastry converges in `O(log N)` so hitting
/// this indicates a broken invariant.
const MAX_HOPS: usize = 64;

impl Overlay {
    /// Builds an overlay of `n` nodes with random distinct keys drawn from
    /// `seed`, using `proximity` for routing-table locality choices.
    pub fn build(n: usize, seed: u64, proximity: ProximityFn<'_>) -> Overlay {
        assert!(n > 0, "empty overlay");
        let mut rng = SimRng::new(seed ^ 0x5061_7374_7279_2131);
        let mut keys: Vec<NodeKey> = Vec::with_capacity(n);
        while keys.len() < n {
            let k = NodeKey(((rng.next_u64() as u128) << 64) | rng.next_u64() as u128);
            if !keys.contains(&k) {
                keys.push(k);
            }
        }
        let mut ov = Overlay {
            nodes: Vec::new(),
            ring: BTreeMap::new(),
            leaf_l: DEFAULT_LEAF_SET,
        };
        for key in keys {
            ov.insert_fully_known(key, proximity);
        }
        ov
    }

    /// Inserts a node and wires it (and everyone else) up as if the
    /// membership protocols had fully converged. Used by `build`.
    fn insert_fully_known(&mut self, key: NodeKey, proximity: ProximityFn<'_>) -> MemberId {
        let id = self.nodes.len();
        let mut state = NodeState {
            key,
            table: RoutingTable::new(key),
            leaves: LeafSet::new(key, self.leaf_l),
            alive: true,
        };
        for (&k, &m) in &self.ring {
            state.leaves.consider(k, m);
            state.table.consider(k, m, |cand| proximity(id, cand));
        }
        for (&k, &m) in self.ring.clone().iter() {
            let other = &mut self.nodes[m];
            other.leaves.consider(key, id);
            other.table.consider(key, id, |cand| proximity(m, cand));
            let _ = k;
        }
        self.ring.insert(key, id);
        self.nodes.push(state);
        id
    }

    /// Number of member slots ever allocated (alive or dead).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the overlay has no members at all.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of alive members.
    pub fn alive_count(&self) -> usize {
        self.ring.len()
    }

    /// The key of member `m`.
    pub fn key_of(&self, m: MemberId) -> NodeKey {
        self.nodes[m].key
    }

    /// Whether member `m` is alive.
    pub fn is_alive(&self, m: MemberId) -> bool {
        self.nodes[m].alive
    }

    /// Iterates over alive members in ring (key) order.
    pub fn alive_members(&self) -> impl Iterator<Item = MemberId> + '_ {
        self.ring.values().copied()
    }

    /// The alive member whose key is numerically closest to `key` on the
    /// ring — the node responsible for storing `key`.
    pub fn owner_of(&self, key: NodeKey) -> MemberId {
        assert!(!self.ring.is_empty(), "no alive members");
        let mut best = *self.ring.values().next().unwrap();
        let mut best_d = u128::MAX;
        for (&k, &m) in &self.ring {
            let d = k.ring_distance(key);
            if d < best_d || (d == best_d && k < self.nodes[best].key) {
                best = m;
                best_d = d;
            }
        }
        best
    }

    /// Routes from `from` toward `key` using only local state at each hop.
    ///
    /// Returns the full hop sequence starting with `from` and ending at the
    /// node that delivers the message. Panics if `from` is dead.
    pub fn route_path(&self, from: MemberId, key: NodeKey) -> Vec<MemberId> {
        assert!(self.nodes[from].alive, "routing from a dead node");
        let mut path = vec![from];
        let mut current = from;
        for _ in 0..MAX_HOPS {
            match self.next_hop(current, key) {
                None => return path,
                Some(next) => {
                    debug_assert!(self.nodes[next].alive);
                    path.push(next);
                    current = next;
                }
            }
        }
        panic!("routing loop toward {key}: path {path:?}");
    }

    /// One Pastry routing decision at `current` for `key`.
    fn next_hop(&self, current: MemberId, key: NodeKey) -> Option<MemberId> {
        let node = &self.nodes[current];
        if node.key == key {
            return None;
        }
        // Case 1: target within leaf-set range — deliver to the closest.
        if node.leaves.in_range(key) {
            return match node.leaves.closest(key) {
                Some((_, m)) if m != current && self.nodes[m].alive => Some(m),
                _ => None, // owner itself is closest: deliver here
            };
        }
        // Case 2: routing-table entry matching one more digit.
        if let Some((_, m)) = node.table.next_hop(key) {
            if self.nodes[m].alive {
                return Some(m);
            }
        }
        // Case 3 (rare): any known node at least as good prefix-wise and
        // strictly closer numerically.
        let here_prefix = node.key.shared_prefix_len(key);
        let here_dist = node.key.ring_distance(key);
        let candidates = node
            .leaves
            .members()
            .chain(node.table.entries())
            .filter(|&(_, m)| self.nodes[m].alive);
        let mut best: Option<(u128, NodeKey, MemberId)> = None;
        for (k, m) in candidates {
            let d = k.ring_distance(key);
            if k.shared_prefix_len(key) >= here_prefix && d < here_dist {
                let better = match best {
                    None => true,
                    Some((bd, bk, _)) => d < bd || (d == bd && k < bk),
                };
                if better {
                    best = Some((d, k, m));
                }
            }
        }
        best.map(|(_, _, m)| m)
    }

    /// Joins a new node with the given key through `bootstrap`, mimicking
    /// Pastry's join: route toward the new key, seed the newcomer's state
    /// from the nodes on the path, then announce it to the nodes it knows.
    ///
    /// Leaf sets across the overlay are brought to their converged state
    /// (Pastry's leaf-set protocol guarantees eventual convergence; we
    /// model the fixpoint), while routing tables are only updated at the
    /// contacted nodes — matching Pastry's lazy table maintenance.
    ///
    /// Returns the new member id and the join route.
    pub fn join(
        &mut self,
        key: NodeKey,
        bootstrap: MemberId,
        proximity: ProximityFn<'_>,
    ) -> (MemberId, Vec<MemberId>) {
        assert!(
            !self.ring.contains_key(&key),
            "key collision on join: {key}"
        );
        let path = self.route_path(bootstrap, key);
        let id = self.nodes.len();
        let mut state = NodeState {
            key,
            table: RoutingTable::new(key),
            leaves: LeafSet::new(key, self.leaf_l),
            alive: true,
        };
        // Seed from every node on the join path: hop i contributes the
        // rows it shares with the newcomer; the final hop contributes its
        // leaf set. Offering *all* their entries is a superset that the
        // table/leaf-set insertion rules trim correctly.
        for &hop in &path {
            let hop_state = &self.nodes[hop];
            state
                .table
                .consider(hop_state.key, hop, |c| proximity(id, c));
            state.leaves.consider(hop_state.key, hop);
            for (k, m) in hop_state.table.entries() {
                if self.nodes[m].alive {
                    state.table.consider(k, m, |c| proximity(id, c));
                    state.leaves.consider(k, m);
                }
            }
            for (k, m) in hop_state.leaves.members() {
                if self.nodes[m].alive {
                    state.table.consider(k, m, |c| proximity(id, c));
                    state.leaves.consider(k, m);
                }
            }
        }
        // Announce to contacted nodes (they learn the newcomer).
        let known: Vec<MemberId> = state
            .table
            .entries()
            .map(|(_, m)| m)
            .chain(state.leaves.members().map(|(_, m)| m))
            .chain(path.iter().copied())
            .collect();
        for m in known {
            let other = &mut self.nodes[m];
            other.table.consider(key, id, |c| proximity(m, c));
        }
        self.nodes.push(state);
        self.ring.insert(key, id);
        // Converged leaf sets: every alive node re-evaluates the newcomer,
        // and the newcomer sees the full ring.
        self.repair_leaf_sets();
        (id, path)
    }

    /// Removes (fails) a member. Leaf sets are repaired to the converged
    /// state; routing-table entries pointing at the dead node are evicted
    /// everywhere (Pastry detects dead entries on use; we model the
    /// post-detection state so routing never dereferences a corpse).
    pub fn remove(&mut self, member: MemberId) {
        if !self.nodes[member].alive {
            return;
        }
        let key = self.nodes[member].key;
        self.nodes[member].alive = false;
        self.ring.remove(&key);
        for node in &mut self.nodes {
            if node.alive {
                node.table.evict(member);
                node.leaves.evict(member);
            }
        }
        self.repair_leaf_sets();
    }

    /// Rebuilds every alive node's leaf set from the ground-truth ring.
    fn repair_leaf_sets(&mut self) {
        let ring: Vec<(NodeKey, MemberId)> = self.ring.iter().map(|(&k, &m)| (k, m)).collect();
        for &(_, m) in &ring {
            let key = self.nodes[m].key;
            let mut fresh = LeafSet::new(key, self.leaf_l);
            for &(k, other) in &ring {
                if other != m {
                    fresh.consider(k, other);
                }
            }
            self.nodes[m].leaves = fresh;
        }
    }

    /// Average number of populated routing-table entries per alive node
    /// (diagnostic; grows with `log N`).
    pub fn mean_table_size(&self) -> f64 {
        let alive: Vec<_> = self.alive_members().collect();
        if alive.is_empty() {
            return 0.0;
        }
        alive
            .iter()
            .map(|&m| self.nodes[m].table.len())
            .sum::<usize>() as f64
            / alive.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(_: MemberId, _: MemberId) -> f64 {
        1.0
    }

    fn build(n: usize, seed: u64) -> Overlay {
        Overlay::build(n, seed, &flat)
    }

    #[test]
    fn build_assigns_distinct_keys() {
        let ov = build(32, 1);
        assert_eq!(ov.len(), 32);
        assert_eq!(ov.alive_count(), 32);
        let mut keys: Vec<_> = (0..32).map(|m| ov.key_of(m)).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 32);
    }

    #[test]
    fn routes_reach_the_owner_from_everywhere() {
        let ov = build(32, 2);
        let mut rng = SimRng::new(99);
        for _ in 0..200 {
            let key = NodeKey(((rng.next_u64() as u128) << 64) | rng.next_u64() as u128);
            let owner = ov.owner_of(key);
            for from in [0, 7, 31] {
                let path = ov.route_path(from, key);
                assert_eq!(
                    *path.last().unwrap(),
                    owner,
                    "route from {from} for {key} ended at {:?}, owner {owner}",
                    path.last()
                );
            }
        }
    }

    #[test]
    fn routing_to_own_key_is_trivial() {
        let ov = build(8, 3);
        let path = ov.route_path(3, ov.key_of(3));
        assert_eq!(path, vec![3]);
    }

    #[test]
    fn paths_are_logarithmically_short() {
        // 128 nodes, hex digits: expect ≤ ~log16(128) ≈ 1.75 + leaf hop.
        let ov = build(128, 4);
        let mut rng = SimRng::new(5);
        let mut worst = 0;
        for _ in 0..300 {
            let key = NodeKey(((rng.next_u64() as u128) << 64) | rng.next_u64() as u128);
            let from = rng.range_usize(0, 128);
            let hops = ov.route_path(from, key).len() - 1;
            worst = worst.max(hops);
        }
        assert!(worst <= 6, "worst-case hops {worst} too long for 128 nodes");
    }

    #[test]
    fn single_node_owns_everything() {
        let ov = build(1, 6);
        assert_eq!(ov.owner_of(NodeKey(123)), 0);
        assert_eq!(ov.route_path(0, NodeKey(123)), vec![0]);
    }

    #[test]
    fn join_makes_node_routable_and_owning() {
        let mut ov = build(16, 7);
        let new_key = NodeKey(0xDEAD_BEEF_0000_0000_0000_0000_0000_0000);
        let (id, path) = ov.join(new_key, 0, &flat);
        assert!(!path.is_empty());
        assert_eq!(ov.alive_count(), 17);
        assert!(ov.is_alive(id));
        // The newcomer owns its own key and is reachable from everyone.
        assert_eq!(ov.owner_of(new_key), id);
        for from in 0..16 {
            let p = ov.route_path(from, new_key);
            assert_eq!(*p.last().unwrap(), id, "from {from}: {p:?}");
        }
        // And the newcomer can route out.
        let target = ov.key_of(3);
        assert_eq!(*ov.route_path(id, target).last().unwrap(), 3);
    }

    #[test]
    fn removal_reroutes_to_new_owner() {
        let mut ov = build(16, 8);
        let victim = 5;
        let victim_key = ov.key_of(victim);
        ov.remove(victim);
        assert_eq!(ov.alive_count(), 15);
        assert!(!ov.is_alive(victim));
        let new_owner = ov.owner_of(victim_key);
        assert_ne!(new_owner, victim);
        for from in (0..16).filter(|&m| m != victim) {
            let p = ov.route_path(from, victim_key);
            assert_eq!(*p.last().unwrap(), new_owner);
            assert!(!p.contains(&victim), "route crossed dead node: {p:?}");
        }
        // Double removal is a no-op.
        ov.remove(victim);
        assert_eq!(ov.alive_count(), 15);
    }

    #[test]
    fn churn_storm_keeps_invariants() {
        let mut ov = build(24, 9);
        let mut rng = SimRng::new(10);
        for round in 0..20 {
            if round % 3 == 0 {
                let alive: Vec<_> = ov.alive_members().collect();
                if alive.len() > 4 {
                    let v = *rng.choose(&alive);
                    ov.remove(v);
                }
            } else {
                let k = NodeKey(((rng.next_u64() as u128) << 64) | rng.next_u64() as u128);
                let alive: Vec<_> = ov.alive_members().collect();
                let boot = *rng.choose(&alive);
                ov.join(k, boot, &flat);
            }
            // Spot-check: random lookups land on the true owner.
            let alive: Vec<_> = ov.alive_members().collect();
            for _ in 0..10 {
                let key = NodeKey(((rng.next_u64() as u128) << 64) | rng.next_u64() as u128);
                let from = *rng.choose(&alive);
                assert_eq!(*ov.route_path(from, key).last().unwrap(), ov.owner_of(key));
            }
        }
    }

    #[test]
    fn proximity_biases_table_choices() {
        // With a proximity function that prefers member 1, nodes should
        // pick member 1 over farther candidates sharing the same slot.
        // Statistical smoke test: tables are non-empty and deterministic.
        let prox_a = |a: MemberId, b: MemberId| (a as f64 - b as f64).abs();
        let ov1 = Overlay::build(32, 11, &prox_a);
        let ov2 = Overlay::build(32, 11, &prox_a);
        assert_eq!(ov1.mean_table_size(), ov2.mean_table_size());
        assert!(ov1.mean_table_size() > 1.0);
    }
}
