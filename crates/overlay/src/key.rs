//! 128-bit node/object identifiers on a circular key space.

use std::fmt;

/// Number of bits per digit (`b` in the Pastry paper; 4 ⇒ hex digits).
pub(crate) const DIGIT_BITS: u32 = 4;
/// Number of digits in a key (rows of the routing table).
pub(crate) const NUM_DIGITS: usize = (128 / DIGIT_BITS) as usize;
/// Number of distinct digit values (columns of the routing table).
pub(crate) const DIGIT_BASE: usize = 1 << DIGIT_BITS;

/// A 128-bit identifier in Pastry's circular key space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeKey(pub u128);

impl NodeKey {
    /// The digit at position `i` (0 = most significant).
    #[inline]
    pub fn digit(self, i: usize) -> usize {
        debug_assert!(i < NUM_DIGITS);
        ((self.0 >> (128 - DIGIT_BITS as usize * (i + 1))) & 0xF) as usize
    }

    /// Length of the common hex-digit prefix of `self` and `other`
    /// (0..=32; 32 means equal).
    #[inline]
    pub fn shared_prefix_len(self, other: NodeKey) -> usize {
        let x = self.0 ^ other.0;
        if x == 0 {
            NUM_DIGITS
        } else {
            (x.leading_zeros() / DIGIT_BITS) as usize
        }
    }

    /// Circular distance on the 2^128 ring (minimum of the two arcs).
    #[inline]
    pub fn ring_distance(self, other: NodeKey) -> u128 {
        let d = self.0.wrapping_sub(other.0);
        let e = other.0.wrapping_sub(self.0);
        d.min(e)
    }

    /// Clockwise distance from `self` to `other` (how far forward on the
    /// ring `other` lies).
    #[inline]
    pub fn clockwise_distance(self, other: NodeKey) -> u128 {
        other.0.wrapping_sub(self.0)
    }
}

impl fmt::Debug for NodeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key({:032x})", self.0)
    }
}

impl fmt::Display for NodeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digit_extraction() {
        let k = NodeKey(0xABCD_0000_0000_0000_0000_0000_0000_0001);
        assert_eq!(k.digit(0), 0xA);
        assert_eq!(k.digit(1), 0xB);
        assert_eq!(k.digit(2), 0xC);
        assert_eq!(k.digit(3), 0xD);
        assert_eq!(k.digit(4), 0x0);
        assert_eq!(k.digit(31), 0x1);
    }

    #[test]
    fn shared_prefix() {
        let a = NodeKey(0xAB00_0000_0000_0000_0000_0000_0000_0000);
        let b = NodeKey(0xABFF_0000_0000_0000_0000_0000_0000_0000);
        assert_eq!(a.shared_prefix_len(b), 2);
        assert_eq!(a.shared_prefix_len(a), NUM_DIGITS);
        let c = NodeKey(0x0B00_0000_0000_0000_0000_0000_0000_0000);
        assert_eq!(a.shared_prefix_len(c), 0);
    }

    #[test]
    fn ring_distance_wraps() {
        let near_top = NodeKey(u128::MAX - 5);
        let near_bottom = NodeKey(10);
        assert_eq!(near_top.ring_distance(near_bottom), 16);
        assert_eq!(near_bottom.ring_distance(near_top), 16);
        assert_eq!(near_top.ring_distance(near_top), 0);
    }

    #[test]
    fn clockwise_distance_is_directional() {
        let a = NodeKey(10);
        let b = NodeKey(25);
        assert_eq!(a.clockwise_distance(b), 15);
        assert_eq!(b.clockwise_distance(a), u128::MAX - 14);
    }

    #[test]
    fn display_is_fixed_width_hex() {
        assert_eq!(NodeKey(0xFF).to_string().len(), 32);
        assert!(NodeKey(0xFF).to_string().ends_with("ff"));
    }
}
