//! Pastry per-node routing state: the routing table and the leaf set.

use crate::key::{NodeKey, DIGIT_BASE, NUM_DIGITS};
use crate::MemberId;

/// A routing-table entry: another member and its key.
pub(crate) type Entry = Option<(NodeKey, MemberId)>;

/// Pastry routing table: `NUM_DIGITS` rows × `DIGIT_BASE` columns.
///
/// Row `r` holds nodes sharing exactly `r` leading digits with the owner;
/// column `c` selects the value of digit `r`. The owner's own column in
/// each row is conceptually the owner itself and stays `None`.
#[derive(Clone, Debug)]
pub struct RoutingTable {
    owner_key: NodeKey,
    rows: Vec<[Entry; DIGIT_BASE]>,
}

impl RoutingTable {
    /// Creates an empty table for a node with key `owner_key`.
    pub fn new(owner_key: NodeKey) -> Self {
        RoutingTable {
            owner_key,
            rows: vec![[None; DIGIT_BASE]; NUM_DIGITS],
        }
    }

    /// The key this table belongs to.
    pub fn owner_key(&self) -> NodeKey {
        self.owner_key
    }

    /// The entry at `(row, col)`, if populated.
    pub fn entry(&self, row: usize, col: usize) -> Option<(NodeKey, MemberId)> {
        self.rows[row][col]
    }

    /// Offers a candidate node. It is placed at its unique `(row, col)`
    /// slot; an existing occupant is displaced only when the candidate is
    /// strictly closer by `proximity` (Pastry's locality heuristic).
    pub fn consider<P: Fn(MemberId) -> f64>(
        &mut self,
        key: NodeKey,
        member: MemberId,
        proximity: P,
    ) -> bool {
        if key == self.owner_key {
            return false;
        }
        let row = self.owner_key.shared_prefix_len(key);
        debug_assert!(row < NUM_DIGITS, "distinct keys share < 32 digits");
        let col = key.digit(row);
        match self.rows[row][col] {
            None => {
                self.rows[row][col] = Some((key, member));
                true
            }
            Some((_, existing))
                if existing != member && proximity(member) < proximity(existing) =>
            {
                self.rows[row][col] = Some((key, member));
                true
            }
            _ => false,
        }
    }

    /// Drops every entry referring to `member` (used on node failure).
    pub fn evict(&mut self, member: MemberId) {
        for row in &mut self.rows {
            for slot in row.iter_mut() {
                if matches!(slot, Some((_, m)) if *m == member) {
                    *slot = None;
                }
            }
        }
    }

    /// The entry Pastry's main case consults for `target`: row = length of
    /// the shared prefix, column = target's next digit.
    pub fn next_hop(&self, target: NodeKey) -> Option<(NodeKey, MemberId)> {
        let row = self.owner_key.shared_prefix_len(target);
        if row >= NUM_DIGITS {
            return None; // target == owner
        }
        self.rows[row][target.digit(row)]
    }

    /// Iterates over all populated entries.
    pub fn entries(&self) -> impl Iterator<Item = (NodeKey, MemberId)> + '_ {
        self.rows.iter().flatten().filter_map(|e| *e)
    }

    /// Number of populated entries.
    pub fn len(&self) -> usize {
        self.entries().count()
    }

    /// True when no entry is populated.
    pub fn is_empty(&self) -> bool {
        self.entries().next().is_none()
    }
}

/// Pastry leaf set: the `l/2` numerically closest members on each side of
/// the owner on the ring.
#[derive(Clone, Debug)]
pub struct LeafSet {
    owner_key: NodeKey,
    half: usize,
    /// Clockwise (successor) neighbors, sorted by increasing clockwise
    /// distance from the owner.
    cw: Vec<(NodeKey, MemberId)>,
    /// Counter-clockwise (predecessor) neighbors, sorted by increasing
    /// counter-clockwise distance.
    ccw: Vec<(NodeKey, MemberId)>,
}

impl LeafSet {
    /// Creates an empty leaf set holding up to `l / 2` nodes per side.
    pub fn new(owner_key: NodeKey, l: usize) -> Self {
        assert!(
            l >= 2 && l.is_multiple_of(2),
            "leaf set size must be even and ≥ 2"
        );
        LeafSet {
            owner_key,
            half: l / 2,
            cw: Vec::new(),
            ccw: Vec::new(),
        }
    }

    /// The key this leaf set belongs to.
    pub fn owner_key(&self) -> NodeKey {
        self.owner_key
    }

    /// Offers a candidate; it is kept if it ranks within the closest
    /// `l/2` on either side. Returns whether the set changed.
    pub fn consider(&mut self, key: NodeKey, member: MemberId) -> bool {
        if key == self.owner_key {
            return false;
        }
        let mut changed = false;
        let dcw = self.owner_key.clockwise_distance(key);
        if Self::insert_side(
            &mut self.cw,
            key,
            member,
            dcw,
            self.half,
            |o, k| o.clockwise_distance(k),
            self.owner_key,
        ) {
            changed = true;
        }
        let dccw = key.clockwise_distance(self.owner_key);
        if Self::insert_side(
            &mut self.ccw,
            key,
            member,
            dccw,
            self.half,
            |o, k| k.clockwise_distance(o),
            self.owner_key,
        ) {
            changed = true;
        }
        changed
    }

    fn insert_side(
        side: &mut Vec<(NodeKey, MemberId)>,
        key: NodeKey,
        member: MemberId,
        dist: u128,
        cap: usize,
        dist_of: impl Fn(NodeKey, NodeKey) -> u128,
        owner: NodeKey,
    ) -> bool {
        if side.iter().any(|&(k, _)| k == key) {
            return false;
        }
        let pos = side
            .iter()
            .position(|&(k, _)| dist_of(owner, k) > dist)
            .unwrap_or(side.len());
        if pos >= cap {
            return false;
        }
        side.insert(pos, (key, member));
        side.truncate(cap);
        true
    }

    /// Removes a member (node failure).
    pub fn evict(&mut self, member: MemberId) {
        self.cw.retain(|&(_, m)| m != member);
        self.ccw.retain(|&(_, m)| m != member);
    }

    /// Whether `target` falls within the span covered by the leaf set
    /// (between the farthest counter-clockwise and farthest clockwise
    /// leaves, inclusive). With an empty set only the owner's own key is
    /// "in range".
    pub fn in_range(&self, target: NodeKey) -> bool {
        if target == self.owner_key {
            return true;
        }
        // When the two sides share a member the leaf set wraps the whole
        // ring (the network is no larger than the set): everything is in
        // range. This is the small-network case of Pastry's coverage test.
        if self
            .cw
            .iter()
            .any(|&(k, _)| self.ccw.iter().any(|&(k2, _)| k2 == k))
        {
            return !self.cw.is_empty();
        }
        let left = self.ccw.last().map(|&(k, _)| k).unwrap_or(self.owner_key);
        let right = self.cw.last().map(|&(k, _)| k).unwrap_or(self.owner_key);
        // Walk clockwise from `left`; target must appear before `right`.
        left.clockwise_distance(target) <= left.clockwise_distance(right)
    }

    /// The member (or owner, returned as `None`) numerically closest to
    /// `target` among the owner and all leaves.
    pub fn closest(&self, target: NodeKey) -> Option<(NodeKey, MemberId)> {
        let mut best: Option<(NodeKey, MemberId)> = None;
        let mut best_d = self.owner_key.ring_distance(target);
        for &(k, m) in self.cw.iter().chain(self.ccw.iter()) {
            let d = k.ring_distance(target);
            // Tie-break toward the smaller key for determinism.
            if d < best_d || (d == best_d && best.map_or(self.owner_key > k, |(bk, _)| bk > k)) {
                best = Some((k, m));
                best_d = d;
            }
        }
        best
    }

    /// All leaves (both sides, no particular global order).
    pub fn members(&self) -> impl Iterator<Item = (NodeKey, MemberId)> + '_ {
        self.cw.iter().chain(self.ccw.iter()).copied()
    }

    /// Number of leaves currently held.
    pub fn len(&self) -> usize {
        // Both sides may hold the same node (small networks); count unique.
        let mut ms: Vec<MemberId> = self.members().map(|(_, m)| m).collect();
        ms.sort_unstable();
        ms.dedup();
        ms.len()
    }

    /// True when no leaves are held.
    pub fn is_empty(&self) -> bool {
        self.cw.is_empty() && self.ccw.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(x: u128) -> NodeKey {
        NodeKey(x << 96) // spread small ints across the top digits
    }

    #[test]
    fn routing_table_places_by_prefix_and_digit() {
        let mut t = RoutingTable::new(key(0xAB00));
        // Shares 0 digits (differs at digit 0 of the shifted value).
        // key(0xAB00) = 0x0000AB00…; digits: 0,0,0,0,A,B,…
        let other = key(0x1B00);
        t.consider(other, 7, |_| 0.0);
        let row = key(0xAB00).shared_prefix_len(other);
        let col = other.digit(row);
        assert_eq!(t.entry(row, col), Some((other, 7)));
        assert_eq!(t.next_hop(other), Some((other, 7)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn proximity_displaces_only_closer() {
        let mut t = RoutingTable::new(key(1));
        let a = key(0x8000_0001);
        let b = key(0x8000_0002);
        assert_eq!(key(1).shared_prefix_len(a), key(1).shared_prefix_len(b));
        assert_eq!(
            a.digit(key(1).shared_prefix_len(a)),
            b.digit(key(1).shared_prefix_len(b))
        );
        let prox = |m: MemberId| if m == 1 { 10.0 } else { 3.0 };
        assert!(t.consider(a, 1, prox));
        // b is closer (proximity 3 < 10): displaces a.
        assert!(t.consider(b, 2, prox));
        assert_eq!(t.next_hop(a).map(|(_, m)| m), Some(2));
        // Re-offering the farther node does not displace.
        assert!(!t.consider(a, 1, prox));
    }

    #[test]
    fn owner_is_never_stored() {
        let mut t = RoutingTable::new(key(5));
        assert!(!t.consider(key(5), 0, |_| 0.0));
        assert!(t.is_empty());
    }

    #[test]
    fn evict_clears_member() {
        let mut t = RoutingTable::new(key(1));
        t.consider(key(0x9000), 4, |_| 0.0);
        t.consider(key(0x00F0_0000), 9, |_| 0.0);
        assert_eq!(t.len(), 2);
        t.evict(4);
        assert_eq!(t.len(), 1);
        assert!(t.entries().all(|(_, m)| m == 9));
    }

    #[test]
    fn leafset_keeps_closest_per_side() {
        let owner = NodeKey(1000);
        let mut ls = LeafSet::new(owner, 4); // 2 per side
        for (i, k) in [1010u128, 1020, 1030, 990, 980, 970].iter().enumerate() {
            ls.consider(NodeKey(*k), i);
        }
        let cw: Vec<u128> = ls.cw.iter().map(|&(k, _)| k.0).collect();
        let ccw: Vec<u128> = ls.ccw.iter().map(|&(k, _)| k.0).collect();
        assert_eq!(cw, vec![1010, 1020]);
        assert_eq!(ccw, vec![990, 980]);
    }

    #[test]
    fn leafset_in_range_and_closest() {
        let owner = NodeKey(1000);
        let mut ls = LeafSet::new(owner, 4);
        for (i, k) in [1010u128, 1020, 990, 980].iter().enumerate() {
            ls.consider(NodeKey(*k), i);
        }
        assert!(ls.in_range(NodeKey(1005)));
        assert!(ls.in_range(NodeKey(985)));
        assert!(ls.in_range(NodeKey(1000)));
        assert!(!ls.in_range(NodeKey(2000)));
        assert!(!ls.in_range(NodeKey(100)));
        // 1012 is closest to leaf 1010 (member 0).
        assert_eq!(ls.closest(NodeKey(1012)).map(|(_, m)| m), Some(0));
        // 1001 is closest to the owner: closest() returns None... no —
        // closest() only considers improvement over the owner; owner wins.
        assert_eq!(ls.closest(NodeKey(1001)), None);
    }

    #[test]
    fn leafset_wraps_around_ring() {
        let owner = NodeKey(u128::MAX - 10);
        let mut ls = LeafSet::new(owner, 4);
        ls.consider(NodeKey(5), 0); // clockwise across the wrap
        ls.consider(NodeKey(u128::MAX - 50), 1); // counter-clockwise
        assert!(ls.in_range(NodeKey(0)));
        assert!(ls.in_range(NodeKey(u128::MAX - 30)));
        assert_eq!(ls.closest(NodeKey(3)).map(|(_, m)| m), Some(0));
    }

    #[test]
    fn leafset_dedup_and_eviction() {
        let owner = NodeKey(100);
        let mut ls = LeafSet::new(owner, 4);
        assert!(ls.consider(NodeKey(110), 0));
        assert!(!ls.consider(NodeKey(110), 0), "duplicate ignored");
        assert!(ls.consider(NodeKey(90), 1));
        assert_eq!(ls.len(), 2);
        ls.evict(0);
        assert_eq!(ls.len(), 1);
        assert!(!ls.is_empty());
        ls.evict(1);
        assert!(ls.is_empty());
    }

    #[test]
    fn small_network_same_node_on_both_sides() {
        // Two nodes: the other node is both successor and predecessor.
        let owner = NodeKey(0);
        let mut ls = LeafSet::new(owner, 8);
        ls.consider(NodeKey(1 << 100), 1);
        assert_eq!(ls.cw.len(), 1);
        assert_eq!(ls.ccw.len(), 1);
        assert_eq!(ls.len(), 1, "unique count collapses duplicates");
        assert!(ls.in_range(NodeKey(42)));
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_leafset_size_rejected() {
        LeafSet::new(NodeKey(0), 3);
    }
}
