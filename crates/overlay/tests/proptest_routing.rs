//! Property tests for Pastry routing: correctness (delivery at the true
//! owner), loop-freedom, and bounded path length under churn.

use overlay::{stable_hash128, MemberId, NodeKey, Overlay};
use proptest::prelude::*;

fn flat(_: MemberId, _: MemberId) -> f64 {
    1.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every route from every start delivers at the ring-closest member.
    #[test]
    fn routes_deliver_at_owner(
        n in 2usize..40,
        seed in 0u64..1000,
        lookups in proptest::collection::vec(any::<u128>(), 1..20),
    ) {
        let ov = Overlay::build(n, seed, &flat);
        for (i, raw) in lookups.iter().enumerate() {
            let key = NodeKey(*raw);
            let from = i % n;
            let path = ov.route_path(from, key);
            prop_assert_eq!(*path.last().unwrap(), ov.owner_of(key));
            // Loop-freedom: no member repeats along the path.
            let mut seen = path.clone();
            seen.sort_unstable();
            seen.dedup();
            prop_assert_eq!(seen.len(), path.len(), "loop in {:?}", path);
            // Pastry bound: generous log-based cap.
            prop_assert!(path.len() <= 10, "path too long: {:?}", path);
        }
    }

    /// After arbitrary join/remove sequences, routing still delivers at
    /// the (current) owner.
    #[test]
    fn churn_preserves_delivery(
        n in 4usize..16,
        seed in 0u64..500,
        ops in proptest::collection::vec((any::<bool>(), any::<u128>()), 1..12),
    ) {
        let mut ov = Overlay::build(n, seed, &flat);
        for (is_join, raw) in ops {
            if is_join {
                let key = NodeKey(raw);
                if ov.alive_members().all(|m| ov.key_of(m) != key) {
                    let boot = ov.alive_members().next().unwrap();
                    ov.join(key, boot, &flat);
                }
            } else if ov.alive_count() > 2 {
                let victims: Vec<_> = ov.alive_members().collect();
                let victim = victims[(raw % victims.len() as u128) as usize];
                ov.remove(victim);
            }
            let key = NodeKey(raw ^ 0xABCD_EF01);
            let from = ov.alive_members().next().unwrap();
            let path = ov.route_path(from, key);
            prop_assert_eq!(*path.last().unwrap(), ov.owner_of(key));
        }
    }

    /// Service names hash to keys that the DHT stores and retrieves from
    /// any vantage point.
    #[test]
    fn dht_visible_from_all_members(
        n in 2usize..24,
        seed in 0u64..500,
        names in proptest::collection::vec("[a-z]{1,12}", 1..8),
    ) {
        let ov = Overlay::build(n, seed, &flat);
        let mut dht = overlay::Dht::new(n, 2);
        for (i, name) in names.iter().enumerate() {
            dht.insert(&ov, i % n, stable_hash128(name.as_bytes()), i as u32);
        }
        for (i, name) in names.iter().enumerate() {
            for from in 0..n {
                let r = dht.lookup(&ov, from, stable_hash128(name.as_bytes()));
                prop_assert!(
                    r.values.contains(&(i as u32)),
                    "member {} cannot see {} (got {:?})", from, name, r.values
                );
            }
        }
    }
}
