//! Seeded randomized tests for Pastry routing: correctness (delivery at
//! the true owner), loop-freedom, and bounded path length under churn.
//! Cases are generated from `desim::SimRng` and reproduce from the case
//! number in the assertion message.

use desim::SimRng;
use overlay::{stable_hash128, Dht, MemberId, NodeKey, Overlay};

fn flat(_: MemberId, _: MemberId) -> f64 {
    1.0
}

fn random_u128(rng: &mut SimRng) -> u128 {
    ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
}

/// Every route from every start delivers at the ring-closest member.
#[test]
fn routes_deliver_at_owner() {
    let mut rng = SimRng::new(0x0ca7e);
    for case in 0..64u32 {
        let n = rng.range_usize(2, 40);
        let seed = rng.range_u64(0, 1000);
        let lookups: Vec<u128> = (0..rng.range_usize(1, 20))
            .map(|_| random_u128(&mut rng))
            .collect();
        let ov = Overlay::build(n, seed, &flat);
        for (i, raw) in lookups.iter().enumerate() {
            let key = NodeKey(*raw);
            let from = i % n;
            let path = ov.route_path(from, key);
            assert_eq!(*path.last().unwrap(), ov.owner_of(key), "case {case}");
            // Loop-freedom: no member repeats along the path.
            let mut seen = path.clone();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), path.len(), "case {case}: loop in {path:?}");
            // Pastry bound: generous log-based cap.
            assert!(path.len() <= 10, "case {case}: path too long: {path:?}");
        }
    }
}

/// After arbitrary join/remove sequences, routing still delivers at
/// the (current) owner.
#[test]
fn churn_preserves_delivery() {
    let mut rng = SimRng::new(0xc4a2);
    for case in 0..64u32 {
        let n = rng.range_usize(4, 16);
        let seed = rng.range_u64(0, 500);
        let ops: Vec<(bool, u128)> = (0..rng.range_usize(1, 12))
            .map(|_| (rng.chance(0.5), random_u128(&mut rng)))
            .collect();
        let mut ov = Overlay::build(n, seed, &flat);
        for (is_join, raw) in ops {
            if is_join {
                let key = NodeKey(raw);
                if ov.alive_members().all(|m| ov.key_of(m) != key) {
                    let boot = ov.alive_members().next().unwrap();
                    ov.join(key, boot, &flat);
                }
            } else if ov.alive_count() > 2 {
                let victims: Vec<_> = ov.alive_members().collect();
                let victim = victims[(raw % victims.len() as u128) as usize];
                ov.remove(victim);
            }
            let key = NodeKey(raw ^ 0xABCD_EF01);
            let from = ov.alive_members().next().unwrap();
            let path = ov.route_path(from, key);
            assert_eq!(*path.last().unwrap(), ov.owner_of(key), "case {case}");
        }
    }
}

/// Service names hash to keys that the DHT stores and retrieves from
/// any vantage point.
#[test]
fn dht_visible_from_all_members() {
    let mut rng = SimRng::new(0xd47);
    for case in 0..64u32 {
        let n = rng.range_usize(2, 24);
        let seed = rng.range_u64(0, 500);
        let names: Vec<String> = (0..rng.range_usize(1, 8))
            .map(|_| {
                (0..rng.range_usize(1, 13))
                    .map(|_| (b'a' + rng.range_u64(0, 26) as u8) as char)
                    .collect()
            })
            .collect();
        let ov = Overlay::build(n, seed, &flat);
        let mut dht = Dht::new(n, 2);
        for (i, name) in names.iter().enumerate() {
            dht.insert(&ov, i % n, stable_hash128(name.as_bytes()), i as u32);
        }
        for (i, name) in names.iter().enumerate() {
            for from in 0..n {
                let r = dht.lookup(&ov, from, stable_hash128(name.as_bytes()));
                assert!(
                    r.values.contains(&(i as u32)),
                    "case {case}: member {from} cannot see {name} (got {:?})",
                    r.values
                );
            }
        }
    }
}
