//! Seeded randomized tests over the scheduling policies: selection
//! correctness, drop discipline, capacity bounds, and work conservation.
//! Cases are generated from `desim::SimRng` and reproduce from the case
//! number in the assertion message.

use desim::{SimDuration, SimRng, SimTime};
use sched::{make_scheduler, Job, JobMeta, Policy};

#[derive(Clone, Debug)]
struct JobSpec {
    arrival_ms: u64,
    rel_deadline_ms: u64,
    exec_ms: u64,
}

fn random_specs(rng: &mut SimRng) -> Vec<JobSpec> {
    (0..rng.range_usize(1, 40))
        .map(|_| JobSpec {
            arrival_ms: rng.range_u64(0, 1000),
            rel_deadline_ms: rng.range_u64(1, 500),
            exec_ms: rng.range_u64(1, 100),
        })
        .collect()
}

fn to_job(id: usize, s: &JobSpec) -> Job<usize> {
    Job {
        meta: JobMeta {
            arrival: SimTime::from_millis(s.arrival_ms),
            deadline: SimTime::from_millis(s.arrival_ms + s.rel_deadline_ms),
            exec_time: SimDuration::from_millis(s.exec_ms),
        },
        payload: id,
    }
}

/// Work conservation: across all policies, every enqueued job is
/// eventually either chosen or dropped — never lost.
#[test]
fn no_job_is_lost() {
    let mut rng = SimRng::new(0x105e);
    for case in 0..256u32 {
        let specs = random_specs(&mut rng);
        let now = SimTime::from_millis(rng.range_u64(0, 2000));
        for policy in [Policy::Llf, Policy::Edf, Policy::Fifo] {
            let mut s = make_scheduler::<usize>(policy, 64);
            let mut enqueued = Vec::new();
            for (i, spec) in specs.iter().enumerate() {
                if s.enqueue(to_job(i, spec)).is_ok() {
                    enqueued.push(i);
                }
            }
            let mut seen = Vec::new();
            loop {
                let out = s.dispatch(now);
                seen.extend(out.dropped.iter().map(|j| j.payload));
                match out.chosen {
                    Some(j) => seen.push(j.payload),
                    None => break,
                }
            }
            seen.sort_unstable();
            enqueued.sort_unstable();
            assert_eq!(seen, enqueued, "case {case}: {policy:?} lost a job");
        }
    }
}

/// LLF/EDF never *choose* an unschedulable job, and everything they
/// drop is genuinely hopeless at the dispatch instant.
#[test]
fn deadline_policies_drop_exactly_the_hopeless() {
    let mut rng = SimRng::new(0xd20b);
    for case in 0..256u32 {
        let specs = random_specs(&mut rng);
        let now = SimTime::from_millis(rng.range_u64(0, 2000));
        for policy in [Policy::Llf, Policy::Edf] {
            let mut s = make_scheduler::<usize>(policy, 64);
            for (i, spec) in specs.iter().enumerate() {
                let _ = s.enqueue(to_job(i, spec));
            }
            let out = s.dispatch(now);
            for d in &out.dropped {
                assert!(
                    !d.meta.schedulable(now),
                    "case {case}: {policy:?} dropped a viable job"
                );
            }
            if let Some(j) = &out.chosen {
                assert!(
                    j.meta.schedulable(now),
                    "case {case}: {policy:?} chose a hopeless job"
                );
            }
        }
    }
}

/// LLF picks the minimum laxity among schedulable jobs; EDF the
/// minimum deadline.
#[test]
fn selection_minimizes_its_criterion() {
    let mut rng = SimRng::new(0x5e1);
    for case in 0..256u32 {
        let specs = random_specs(&mut rng);
        let now = SimTime::from_millis(rng.range_u64(0, 2000));
        let viable: Vec<(usize, &JobSpec)> = specs
            .iter()
            .enumerate()
            .filter(|(i, spec)| to_job(*i, spec).meta.schedulable(now))
            .collect();
        // LLF
        let mut llf = make_scheduler::<usize>(Policy::Llf, 64);
        for (i, spec) in specs.iter().enumerate() {
            let _ = llf.enqueue(to_job(i, spec));
        }
        if let Some(chosen) = llf.dispatch(now).chosen {
            let min_lax = viable
                .iter()
                .map(|(i, spec)| to_job(*i, spec).meta.laxity(now))
                .fold(f64::INFINITY, f64::min);
            assert!(
                (chosen.meta.laxity(now) - min_lax).abs() < 1e-12,
                "case {case}"
            );
        } else {
            assert!(viable.is_empty(), "case {case}");
        }
        // EDF
        let mut edf = make_scheduler::<usize>(Policy::Edf, 64);
        for (i, spec) in specs.iter().enumerate() {
            let _ = edf.enqueue(to_job(i, spec));
        }
        if let Some(chosen) = edf.dispatch(now).chosen {
            let min_dl = viable
                .iter()
                .map(|(i, spec)| to_job(*i, spec).meta.deadline)
                .min()
                .unwrap();
            assert_eq!(chosen.meta.deadline, min_dl, "case {case}");
        }
    }
}

/// FIFO emits in exact enqueue order and never drops at dispatch.
#[test]
fn fifo_is_fifo() {
    let mut rng = SimRng::new(0xf1f0);
    for case in 0..256u32 {
        let specs = random_specs(&mut rng);
        let mut s = make_scheduler::<usize>(Policy::Fifo, 64);
        let mut order = Vec::new();
        for (i, spec) in specs.iter().enumerate() {
            if s.enqueue(to_job(i, spec)).is_ok() {
                order.push(i);
            }
        }
        let mut got = Vec::new();
        loop {
            let out = s.dispatch(SimTime::from_secs(1_000));
            assert!(out.dropped.is_empty(), "case {case}");
            match out.chosen {
                Some(j) => got.push(j.payload),
                None => break,
            }
        }
        assert_eq!(got, order, "case {case}");
    }
}

/// Capacity is a hard bound for every policy.
#[test]
fn capacity_is_respected() {
    let mut rng = SimRng::new(0xcab);
    for case in 0..256u32 {
        let cap = rng.range_usize(1, 16);
        let specs = random_specs(&mut rng);
        for policy in [Policy::Llf, Policy::Edf, Policy::Fifo] {
            let mut s = make_scheduler::<usize>(policy, cap);
            let mut accepted = 0usize;
            for (i, spec) in specs.iter().enumerate() {
                if s.enqueue(to_job(i, spec)).is_ok() {
                    accepted += 1;
                }
                assert!(s.len() <= cap, "case {case}");
            }
            assert_eq!(accepted, specs.len().min(cap), "case {case}");
        }
    }
}
