//! Property tests over the scheduling policies: selection correctness,
//! drop discipline, capacity bounds, and work conservation.

use desim::{SimDuration, SimTime};
use proptest::prelude::*;
use sched::{make_scheduler, Job, JobMeta, Policy};

#[derive(Clone, Debug)]
struct JobSpec {
    arrival_ms: u64,
    rel_deadline_ms: u64,
    exec_ms: u64,
}

fn job_strategy() -> impl Strategy<Value = JobSpec> {
    (0u64..1000, 1u64..500, 1u64..100).prop_map(|(arrival_ms, rel_deadline_ms, exec_ms)| {
        JobSpec {
            arrival_ms,
            rel_deadline_ms,
            exec_ms,
        }
    })
}

fn to_job(id: usize, s: &JobSpec) -> Job<usize> {
    Job {
        meta: JobMeta {
            arrival: SimTime::from_millis(s.arrival_ms),
            deadline: SimTime::from_millis(s.arrival_ms + s.rel_deadline_ms),
            exec_time: SimDuration::from_millis(s.exec_ms),
        },
        payload: id,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Work conservation: across all policies, every enqueued job is
    /// eventually either chosen or dropped — never lost.
    #[test]
    fn no_job_is_lost(
        specs in proptest::collection::vec(job_strategy(), 1..40),
        now_ms in 0u64..2000,
    ) {
        for policy in [Policy::Llf, Policy::Edf, Policy::Fifo] {
            let mut s = make_scheduler::<usize>(policy, 64);
            let mut enqueued = Vec::new();
            for (i, spec) in specs.iter().enumerate() {
                if s.enqueue(to_job(i, spec)).is_ok() {
                    enqueued.push(i);
                }
            }
            let now = SimTime::from_millis(now_ms);
            let mut seen = Vec::new();
            loop {
                let out = s.dispatch(now);
                seen.extend(out.dropped.iter().map(|j| j.payload));
                match out.chosen {
                    Some(j) => seen.push(j.payload),
                    None => break,
                }
            }
            seen.sort_unstable();
            enqueued.sort_unstable();
            prop_assert_eq!(seen, enqueued, "{:?} lost a job", policy);
        }
    }

    /// LLF/EDF never *choose* an unschedulable job, and everything they
    /// drop is genuinely hopeless at the dispatch instant.
    #[test]
    fn deadline_policies_drop_exactly_the_hopeless(
        specs in proptest::collection::vec(job_strategy(), 1..40),
        now_ms in 0u64..2000,
    ) {
        let now = SimTime::from_millis(now_ms);
        for policy in [Policy::Llf, Policy::Edf] {
            let mut s = make_scheduler::<usize>(policy, 64);
            for (i, spec) in specs.iter().enumerate() {
                let _ = s.enqueue(to_job(i, spec));
            }
            let out = s.dispatch(now);
            for d in &out.dropped {
                prop_assert!(!d.meta.schedulable(now), "{:?} dropped a viable job", policy);
            }
            if let Some(j) = &out.chosen {
                prop_assert!(j.meta.schedulable(now), "{:?} chose a hopeless job", policy);
            }
        }
    }

    /// LLF picks the minimum laxity among schedulable jobs; EDF the
    /// minimum deadline.
    #[test]
    fn selection_minimizes_its_criterion(
        specs in proptest::collection::vec(job_strategy(), 1..40),
        now_ms in 0u64..2000,
    ) {
        let now = SimTime::from_millis(now_ms);
        let viable: Vec<(usize, &JobSpec)> = specs
            .iter()
            .enumerate()
            .filter(|(i, spec)| to_job(*i, spec).meta.schedulable(now))
            .collect();
        // LLF
        let mut llf = make_scheduler::<usize>(Policy::Llf, 64);
        for (i, spec) in specs.iter().enumerate() {
            let _ = llf.enqueue(to_job(i, spec));
        }
        if let Some(chosen) = llf.dispatch(now).chosen {
            let min_lax = viable
                .iter()
                .map(|(i, spec)| to_job(*i, spec).meta.laxity(now))
                .fold(f64::INFINITY, f64::min);
            prop_assert!((chosen.meta.laxity(now) - min_lax).abs() < 1e-12);
        } else {
            prop_assert!(viable.is_empty());
        }
        // EDF
        let mut edf = make_scheduler::<usize>(Policy::Edf, 64);
        for (i, spec) in specs.iter().enumerate() {
            let _ = edf.enqueue(to_job(i, spec));
        }
        if let Some(chosen) = edf.dispatch(now).chosen {
            let min_dl = viable
                .iter()
                .map(|(i, spec)| to_job(*i, spec).meta.deadline)
                .min()
                .unwrap();
            prop_assert_eq!(chosen.meta.deadline, min_dl);
        }
    }

    /// FIFO emits in exact enqueue order and never drops at dispatch.
    #[test]
    fn fifo_is_fifo(specs in proptest::collection::vec(job_strategy(), 1..40)) {
        let mut s = make_scheduler::<usize>(Policy::Fifo, 64);
        let mut order = Vec::new();
        for (i, spec) in specs.iter().enumerate() {
            if s.enqueue(to_job(i, spec)).is_ok() {
                order.push(i);
            }
        }
        let mut got = Vec::new();
        loop {
            let out = s.dispatch(SimTime::from_secs(1_000));
            prop_assert!(out.dropped.is_empty());
            match out.chosen {
                Some(j) => got.push(j.payload),
                None => break,
            }
        }
        prop_assert_eq!(got, order);
    }

    /// Capacity is a hard bound for every policy.
    #[test]
    fn capacity_is_respected(
        cap in 1usize..16,
        specs in proptest::collection::vec(job_strategy(), 1..40),
    ) {
        for policy in [Policy::Llf, Policy::Edf, Policy::Fifo] {
            let mut s = make_scheduler::<usize>(policy, cap);
            let mut accepted = 0usize;
            for (i, spec) in specs.iter().enumerate() {
                if s.enqueue(to_job(i, spec)).is_ok() {
                    accepted += 1;
                }
                prop_assert!(s.len() <= cap);
            }
            prop_assert_eq!(accepted, specs.len().min(cap));
        }
    }
}
