//! The unit of scheduling: a data unit awaiting its component's CPU.

use desim::{SimDuration, SimTime};

/// Timing attributes of a queued data unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobMeta {
    /// When the unit arrived at this node.
    pub arrival: SimTime,
    /// Absolute deadline: the expected arrival of the component's next
    /// unit (`arr + p_ci`, paper §3.4).
    pub deadline: SimTime,
    /// Estimated execution time `t_ci` (from the monitoring window).
    pub exec_time: SimDuration,
}

impl JobMeta {
    /// Laxity at time `now`: slack remaining before the unit must start
    /// to finish by its deadline. Negative ⇒ the deadline will be missed.
    pub fn laxity(&self, now: SimTime) -> f64 {
        let slack = self.deadline.as_secs_f64() - now.as_secs_f64();
        slack - self.exec_time.as_secs_f64()
    }

    /// Whether the unit can still meet its deadline if started at `now`.
    pub fn schedulable(&self, now: SimTime) -> bool {
        self.laxity(now) >= 0.0
    }
}

/// A queued data unit: scheduling metadata plus an opaque payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Job<T> {
    /// Timing attributes used by the policies.
    pub meta: JobMeta,
    /// Caller data carried through the queue untouched.
    pub payload: T,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laxity_is_slack_minus_exec() {
        let m = JobMeta {
            arrival: SimTime::from_millis(0),
            deadline: SimTime::from_millis(100),
            exec_time: SimDuration::from_millis(30),
        };
        assert!((m.laxity(SimTime::from_millis(0)) - 0.070).abs() < 1e-9);
        assert!((m.laxity(SimTime::from_millis(70)) - 0.0).abs() < 1e-9);
        assert!(m.schedulable(SimTime::from_millis(70)));
        assert!(!m.schedulable(SimTime::from_millis(71)));
        assert!(m.laxity(SimTime::from_millis(100)) < 0.0);
    }
}
