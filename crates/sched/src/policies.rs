//! The three dispatch policies.

use crate::job::Job;
use crate::{DispatchOutcome, Scheduler};
use desim::SimTime;
use std::collections::VecDeque;

/// Which dispatch policy a node runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Policy {
    /// Least laxity first with negative-laxity drops (the paper's).
    #[default]
    Llf,
    /// Earliest deadline first with the same drop rule.
    Edf,
    /// First-in first-out, no deadline awareness.
    Fifo,
}

/// Shared storage: a vector-backed bag; policies differ only in selection.
/// Queue sizes are small (tens of units), so linear scans beat heap
/// maintenance and keep drop-and-select in one pass.
#[derive(Clone, Debug)]
struct Bag<T> {
    items: Vec<Job<T>>,
    capacity: usize,
}

impl<T> Bag<T> {
    fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        Bag {
            items: Vec::with_capacity(capacity),
            capacity,
        }
    }

    fn enqueue(&mut self, job: Job<T>) -> Result<(), Job<T>> {
        if self.items.len() >= self.capacity {
            Err(job)
        } else {
            self.items.push(job);
            Ok(())
        }
    }

    /// Removes all jobs whose laxity at `now` is negative.
    fn drop_hopeless(&mut self, now: SimTime) -> Vec<Job<T>> {
        let mut dropped = Vec::new();
        let mut i = 0;
        while i < self.items.len() {
            if !self.items[i].meta.schedulable(now) {
                dropped.push(self.items.swap_remove(i));
            } else {
                i += 1;
            }
        }
        dropped
    }

    /// Removes and returns the job minimizing `key`, tie-broken by
    /// earliest arrival then insertion order (deterministic).
    fn take_min_by(&mut self, key: impl Fn(&Job<T>) -> f64) -> Option<Job<T>> {
        if self.items.is_empty() {
            return None;
        }
        let mut best = 0;
        for i in 1..self.items.len() {
            let (ka, kb) = (key(&self.items[i]), key(&self.items[best]));
            if ka < kb || (ka == kb && self.items[i].meta.arrival < self.items[best].meta.arrival) {
                best = i;
            }
        }
        Some(self.items.remove(best))
    }
}

/// Least-laxity-first scheduler (paper §3.4).
#[derive(Clone, Debug)]
pub struct LlfScheduler<T> {
    bag: Bag<T>,
}

impl<T> LlfScheduler<T> {
    /// Creates an LLF queue with the given capacity.
    pub fn new(capacity: usize) -> Self {
        LlfScheduler {
            bag: Bag::new(capacity),
        }
    }
}

impl<T> Scheduler<T> for LlfScheduler<T> {
    fn enqueue(&mut self, job: Job<T>) -> Result<(), Job<T>> {
        self.bag.enqueue(job)
    }

    fn dispatch(&mut self, now: SimTime) -> DispatchOutcome<T> {
        let dropped = self.bag.drop_hopeless(now);
        let chosen = self.bag.take_min_by(|j| j.meta.laxity(now));
        DispatchOutcome { dropped, chosen }
    }

    fn dispatch_burst(&mut self, now: SimTime, max: usize, out: &mut Vec<Job<T>>) -> Vec<Job<T>> {
        // One hopeless scan covers the whole burst: laxity at a fixed
        // `now` is fixed, so `drop_hopeless` is idempotent between picks.
        let dropped = self.bag.drop_hopeless(now);
        for _ in 0..max {
            match self.bag.take_min_by(|j| j.meta.laxity(now)) {
                Some(j) => out.push(j),
                None => break,
            }
        }
        dropped
    }

    fn drain(&mut self) -> Vec<Job<T>> {
        std::mem::take(&mut self.bag.items)
    }

    fn len(&self) -> usize {
        self.bag.items.len()
    }

    fn capacity(&self) -> usize {
        self.bag.capacity
    }
}

/// Earliest-deadline-first scheduler with the same negative-laxity drops.
#[derive(Clone, Debug)]
pub struct EdfScheduler<T> {
    bag: Bag<T>,
}

impl<T> EdfScheduler<T> {
    /// Creates an EDF queue with the given capacity.
    pub fn new(capacity: usize) -> Self {
        EdfScheduler {
            bag: Bag::new(capacity),
        }
    }
}

impl<T> Scheduler<T> for EdfScheduler<T> {
    fn enqueue(&mut self, job: Job<T>) -> Result<(), Job<T>> {
        self.bag.enqueue(job)
    }

    fn dispatch(&mut self, now: SimTime) -> DispatchOutcome<T> {
        let dropped = self.bag.drop_hopeless(now);
        let chosen = self.bag.take_min_by(|j| j.meta.deadline.as_secs_f64());
        DispatchOutcome { dropped, chosen }
    }

    fn dispatch_burst(&mut self, now: SimTime, max: usize, out: &mut Vec<Job<T>>) -> Vec<Job<T>> {
        let dropped = self.bag.drop_hopeless(now);
        for _ in 0..max {
            match self.bag.take_min_by(|j| j.meta.deadline.as_secs_f64()) {
                Some(j) => out.push(j),
                None => break,
            }
        }
        dropped
    }

    fn drain(&mut self) -> Vec<Job<T>> {
        std::mem::take(&mut self.bag.items)
    }

    fn len(&self) -> usize {
        self.bag.items.len()
    }

    fn capacity(&self) -> usize {
        self.bag.capacity
    }
}

/// FIFO scheduler: pure arrival order, never drops at dispatch. Overload
/// shows up as enqueue rejections (queue overflow) and late deliveries.
#[derive(Clone, Debug)]
pub struct FifoScheduler<T> {
    queue: VecDeque<Job<T>>,
    capacity: usize,
}

impl<T> FifoScheduler<T> {
    /// Creates a FIFO queue with the given capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        FifoScheduler {
            queue: VecDeque::with_capacity(capacity),
            capacity,
        }
    }
}

impl<T> Scheduler<T> for FifoScheduler<T> {
    fn enqueue(&mut self, job: Job<T>) -> Result<(), Job<T>> {
        if self.queue.len() >= self.capacity {
            Err(job)
        } else {
            self.queue.push_back(job);
            Ok(())
        }
    }

    fn dispatch(&mut self, _now: SimTime) -> DispatchOutcome<T> {
        DispatchOutcome {
            dropped: Vec::new(),
            chosen: self.queue.pop_front(),
        }
    }

    fn drain(&mut self) -> Vec<Job<T>> {
        self.queue.drain(..).collect()
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobMeta;
    use desim::SimDuration;

    fn job(id: u32, arrival_ms: u64, deadline_ms: u64, exec_ms: u64) -> Job<u32> {
        Job {
            meta: JobMeta {
                arrival: SimTime::from_millis(arrival_ms),
                deadline: SimTime::from_millis(deadline_ms),
                exec_time: SimDuration::from_millis(exec_ms),
            },
            payload: id,
        }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn llf_picks_smallest_laxity() {
        let mut s = LlfScheduler::new(8);
        // Laxities at t=0: a: 100-20=80, b: 50-5=45, c: 60-40=20.
        s.enqueue(job(1, 0, 100, 20)).unwrap();
        s.enqueue(job(2, 0, 50, 5)).unwrap();
        s.enqueue(job(3, 0, 60, 40)).unwrap();
        let out = s.dispatch(t(0));
        assert!(out.dropped.is_empty());
        assert_eq!(out.chosen.unwrap().payload, 3);
        assert_eq!(s.dispatch(t(0)).chosen.unwrap().payload, 2);
        assert_eq!(s.dispatch(t(0)).chosen.unwrap().payload, 1);
        assert!(s.dispatch(t(0)).chosen.is_none());
    }

    #[test]
    fn llf_drops_negative_laxity_units() {
        let mut s = LlfScheduler::new(8);
        s.enqueue(job(1, 0, 100, 20)).unwrap(); // dead at t > 80
        s.enqueue(job(2, 0, 500, 20)).unwrap(); // plenty of slack
        let out = s.dispatch(t(90));
        assert_eq!(out.dropped.len(), 1);
        assert_eq!(out.dropped[0].payload, 1);
        assert_eq!(out.chosen.unwrap().payload, 2);
    }

    #[test]
    fn llf_laxity_exactly_zero_is_schedulable() {
        let mut s = LlfScheduler::new(4);
        s.enqueue(job(1, 0, 100, 20)).unwrap();
        let out = s.dispatch(t(80)); // laxity exactly 0
        assert!(out.dropped.is_empty());
        assert_eq!(out.chosen.unwrap().payload, 1);
    }

    #[test]
    fn edf_orders_by_deadline_not_laxity() {
        let mut s = EdfScheduler::new(8);
        // a: deadline 50 exec 5 (laxity 45), b: deadline 60 exec 40
        // (laxity 20). LLF would pick b; EDF picks a.
        s.enqueue(job(1, 0, 50, 5)).unwrap();
        s.enqueue(job(2, 0, 60, 40)).unwrap();
        assert_eq!(s.dispatch(t(0)).chosen.unwrap().payload, 1);
    }

    #[test]
    fn edf_also_drops_hopeless() {
        let mut s = EdfScheduler::new(8);
        s.enqueue(job(1, 0, 10, 20)).unwrap(); // hopeless from birth
        let out = s.dispatch(t(0));
        assert_eq!(out.dropped.len(), 1);
        assert!(out.chosen.is_none());
    }

    #[test]
    fn fifo_preserves_arrival_order_and_never_drops() {
        let mut s = FifoScheduler::new(8);
        s.enqueue(job(1, 0, 10, 20)).unwrap(); // long dead
        s.enqueue(job(2, 5, 500, 20)).unwrap();
        let out = s.dispatch(t(1000));
        assert!(out.dropped.is_empty());
        assert_eq!(out.chosen.unwrap().payload, 1);
        assert_eq!(s.dispatch(t(1000)).chosen.unwrap().payload, 2);
    }

    #[test]
    fn capacity_rejection_returns_job() {
        let mut s = LlfScheduler::new(1);
        s.enqueue(job(1, 0, 100, 10)).unwrap();
        let back = s.enqueue(job(2, 0, 100, 10)).unwrap_err();
        assert_eq!(back.payload, 2);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn ties_break_by_arrival_then_insertion() {
        let mut s = LlfScheduler::new(8);
        s.enqueue(job(1, 10, 100, 20)).unwrap();
        s.enqueue(job(2, 5, 100, 20)).unwrap(); // same laxity, earlier arrival
        assert_eq!(s.dispatch(t(0)).chosen.unwrap().payload, 2);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        LlfScheduler::<u32>::new(0);
    }
}
