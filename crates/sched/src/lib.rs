//! Data-unit scheduling (paper §3.4).
//!
//! Each node keeps a ready queue of data units awaiting their component's
//! CPU. RASC's scheduler assigns the `j`-th data unit of component `c_i`
//! a deadline equal to the expected arrival of the `(j+1)`-th unit
//! (`d = arr + p_ci`): finishing later means units pile up faster than
//! they are served, so such units are *dropped* instead of queued forever.
//! At each dispatch the unit with the smallest non-negative **laxity**
//! `L = (d − now) − t_ci` runs; negative-laxity units are discarded.
//!
//! (The paper prints the laxity as `L(du) = t − (d_du + t_ci)`, with the
//! sign convention inverted relative to its own prose — "if the laxity
//! value is positive … the data unit will meet its deadline". We implement
//! the prose: laxity = slack before the deadline, positive = schedulable.)
//!
//! Three policies behind one [`Scheduler`] trait:
//!
//! * [`LlfScheduler`] — least laxity first, the paper's policy,
//! * [`EdfScheduler`] — earliest deadline first with the same drop rule
//!   (ablation baseline),
//! * [`FifoScheduler`] — arrival order, no deadline drops (ablation
//!   baseline; overload then shows up as queue overflow instead).
//!
//! All queues are bounded: [`Scheduler::enqueue`] rejects when full, which
//! models the paper's "insufficient resources (input queue size)" drops.
//!
//! # Example
//!
//! ```
//! use desim::{SimDuration, SimTime};
//! use sched::{make_scheduler, Job, JobMeta, Policy};
//!
//! let mut llf = make_scheduler::<&str>(Policy::Llf, 16);
//! let job = |name, deadline_ms, exec_ms| Job {
//!     meta: JobMeta {
//!         arrival: SimTime::ZERO,
//!         deadline: SimTime::from_millis(deadline_ms),
//!         exec_time: SimDuration::from_millis(exec_ms),
//!     },
//!     payload: name,
//! };
//! llf.enqueue(job("roomy", 100, 10)).unwrap();
//! llf.enqueue(job("tight", 50, 40)).unwrap();
//! // Laxities at t=0: roomy 90 ms, tight 10 ms → LLF runs "tight" first.
//! let out = llf.dispatch(SimTime::ZERO);
//! assert_eq!(out.chosen.unwrap().payload, "tight");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod job;
mod policies;

pub use job::{Job, JobMeta};
pub use policies::{EdfScheduler, FifoScheduler, LlfScheduler, Policy};

use desim::SimTime;

/// Outcome of one dispatch decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DispatchOutcome<T> {
    /// Units discarded because their laxity went negative (they could no
    /// longer meet their deadlines). Empty for FIFO.
    pub dropped: Vec<Job<T>>,
    /// The unit chosen to run now, if any remain.
    pub chosen: Option<Job<T>>,
}

/// A bounded ready queue with a dispatch policy.
pub trait Scheduler<T> {
    /// Offers a job to the queue. Returns the job back when the queue is
    /// full (the caller counts it as an input-queue drop).
    fn enqueue(&mut self, job: Job<T>) -> Result<(), Job<T>>;

    /// Picks the next unit to run at time `now`, discarding any that can
    /// no longer meet their deadlines (policy-dependent).
    fn dispatch(&mut self, now: SimTime) -> DispatchOutcome<T>;

    /// Dispatches up to `max` units at the *same* instant `now`,
    /// appending the chosen jobs to `out` in dispatch order and returning
    /// the deadline-expired drops. Equivalent to calling [`dispatch`]
    /// `max` times (so `max == 1` is exactly one dispatch), but policies
    /// may override it to scan for hopeless units once per burst instead
    /// of once per pick — laxity at a fixed `now` does not change between
    /// picks, so the repeated scan is pure overhead on the batched data
    /// plane's CPU bursts.
    ///
    /// [`dispatch`]: Scheduler::dispatch
    fn dispatch_burst(&mut self, now: SimTime, max: usize, out: &mut Vec<Job<T>>) -> Vec<Job<T>> {
        let mut dropped = Vec::new();
        for _ in 0..max {
            let o = self.dispatch(now);
            dropped.extend(o.dropped);
            match o.chosen {
                Some(j) => out.push(j),
                None => break,
            }
        }
        dropped
    }

    /// Empties the queue, returning every queued job (in unspecified
    /// order). Used on node crash: the engine must reclaim the units'
    /// storage before discarding the queue, or the unit ledger leaks.
    fn drain(&mut self) -> Vec<Job<T>>;

    /// Number of queued units.
    fn len(&self) -> usize;

    /// Whether the queue is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The queue's capacity bound.
    fn capacity(&self) -> usize;
}

/// Constructs the scheduler implementing `policy` with the given queue
/// capacity.
pub fn make_scheduler<T: 'static>(policy: Policy, capacity: usize) -> Box<dyn Scheduler<T>> {
    match policy {
        Policy::Llf => Box::new(LlfScheduler::new(capacity)),
        Policy::Edf => Box::new(EdfScheduler::new(capacity)),
        Policy::Fifo => Box::new(FifoScheduler::new(capacity)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimDuration;

    fn job(id: u32, arrival_ms: u64, deadline_ms: u64, exec_ms: u64) -> Job<u32> {
        Job {
            meta: JobMeta {
                arrival: SimTime::from_millis(arrival_ms),
                deadline: SimTime::from_millis(deadline_ms),
                exec_time: SimDuration::from_millis(exec_ms),
            },
            payload: id,
        }
    }

    #[test]
    fn drain_empties_and_returns_every_job() {
        for policy in [Policy::Llf, Policy::Edf, Policy::Fifo] {
            let mut s = make_scheduler::<u32>(policy, 8);
            for id in 0..5 {
                s.enqueue(job(id, 0, 100, 10)).unwrap();
            }
            let mut drained: Vec<u32> = s.drain().into_iter().map(|j| j.payload).collect();
            drained.sort_unstable();
            assert_eq!(drained, vec![0, 1, 2, 3, 4], "{policy:?}");
            assert!(s.is_empty(), "{policy:?}");
            assert!(s.dispatch(SimTime::ZERO).chosen.is_none(), "{policy:?}");
        }
    }

    #[test]
    fn factory_builds_each_policy() {
        for policy in [Policy::Llf, Policy::Edf, Policy::Fifo] {
            let mut s = make_scheduler::<u32>(policy, 2);
            assert_eq!(s.capacity(), 2);
            s.enqueue(job(1, 0, 100, 10)).unwrap();
            s.enqueue(job(2, 0, 100, 10)).unwrap();
            let rejected = s.enqueue(job(3, 0, 100, 10));
            assert!(rejected.is_err(), "{policy:?} queue should be full");
            let out = s.dispatch(SimTime::ZERO);
            assert!(out.chosen.is_some());
            assert_eq!(s.len(), 1);
        }
    }
}
