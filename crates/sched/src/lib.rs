//! Data-unit scheduling (paper §3.4).
//!
//! Each node keeps a ready queue of data units awaiting their component's
//! CPU. RASC's scheduler assigns the `j`-th data unit of component `c_i`
//! a deadline equal to the expected arrival of the `(j+1)`-th unit
//! (`d = arr + p_ci`): finishing later means units pile up faster than
//! they are served, so such units are *dropped* instead of queued forever.
//! At each dispatch the unit with the smallest non-negative **laxity**
//! `L = (d − now) − t_ci` runs; negative-laxity units are discarded.
//!
//! (The paper prints the laxity as `L(du) = t − (d_du + t_ci)`, with the
//! sign convention inverted relative to its own prose — "if the laxity
//! value is positive … the data unit will meet its deadline". We implement
//! the prose: laxity = slack before the deadline, positive = schedulable.)
//!
//! Three policies behind one [`Scheduler`] trait:
//!
//! * [`LlfScheduler`] — least laxity first, the paper's policy,
//! * [`EdfScheduler`] — earliest deadline first with the same drop rule
//!   (ablation baseline),
//! * [`FifoScheduler`] — arrival order, no deadline drops (ablation
//!   baseline; overload then shows up as queue overflow instead).
//!
//! All queues are bounded: [`Scheduler::enqueue`] rejects when full, which
//! models the paper's "insufficient resources (input queue size)" drops.
//!
//! # Example
//!
//! ```
//! use desim::{SimDuration, SimTime};
//! use sched::{make_scheduler, Job, JobMeta, Policy};
//!
//! let mut llf = make_scheduler::<&str>(Policy::Llf, 16);
//! let job = |name, deadline_ms, exec_ms| Job {
//!     meta: JobMeta {
//!         arrival: SimTime::ZERO,
//!         deadline: SimTime::from_millis(deadline_ms),
//!         exec_time: SimDuration::from_millis(exec_ms),
//!     },
//!     payload: name,
//! };
//! llf.enqueue(job("roomy", 100, 10)).unwrap();
//! llf.enqueue(job("tight", 50, 40)).unwrap();
//! // Laxities at t=0: roomy 90 ms, tight 10 ms → LLF runs "tight" first.
//! let out = llf.dispatch(SimTime::ZERO);
//! assert_eq!(out.chosen.unwrap().payload, "tight");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod job;
mod policies;

pub use job::{Job, JobMeta};
pub use policies::{EdfScheduler, FifoScheduler, LlfScheduler, Policy};

use desim::SimTime;

/// Outcome of one dispatch decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DispatchOutcome<T> {
    /// Units discarded because their laxity went negative (they could no
    /// longer meet their deadlines). Empty for FIFO.
    pub dropped: Vec<Job<T>>,
    /// The unit chosen to run now, if any remain.
    pub chosen: Option<Job<T>>,
}

/// A bounded ready queue with a dispatch policy.
pub trait Scheduler<T> {
    /// Offers a job to the queue. Returns the job back when the queue is
    /// full (the caller counts it as an input-queue drop).
    fn enqueue(&mut self, job: Job<T>) -> Result<(), Job<T>>;

    /// Picks the next unit to run at time `now`, discarding any that can
    /// no longer meet their deadlines (policy-dependent).
    fn dispatch(&mut self, now: SimTime) -> DispatchOutcome<T>;

    /// Number of queued units.
    fn len(&self) -> usize;

    /// Whether the queue is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The queue's capacity bound.
    fn capacity(&self) -> usize;
}

/// Constructs the scheduler implementing `policy` with the given queue
/// capacity.
pub fn make_scheduler<T: 'static>(policy: Policy, capacity: usize) -> Box<dyn Scheduler<T>> {
    match policy {
        Policy::Llf => Box::new(LlfScheduler::new(capacity)),
        Policy::Edf => Box::new(EdfScheduler::new(capacity)),
        Policy::Fifo => Box::new(FifoScheduler::new(capacity)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimDuration;

    fn job(id: u32, arrival_ms: u64, deadline_ms: u64, exec_ms: u64) -> Job<u32> {
        Job {
            meta: JobMeta {
                arrival: SimTime::from_millis(arrival_ms),
                deadline: SimTime::from_millis(deadline_ms),
                exec_time: SimDuration::from_millis(exec_ms),
            },
            payload: id,
        }
    }

    #[test]
    fn factory_builds_each_policy() {
        for policy in [Policy::Llf, Policy::Edf, Policy::Fifo] {
            let mut s = make_scheduler::<u32>(policy, 2);
            assert_eq!(s.capacity(), 2);
            s.enqueue(job(1, 0, 100, 10)).unwrap();
            s.enqueue(job(2, 0, 100, 10)).unwrap();
            let rejected = s.enqueue(job(3, 0, 100, 10));
            assert!(rejected.is_err(), "{policy:?} queue should be full");
            let out = s.dispatch(SimTime::ZERO);
            assert!(out.chosen.is_some());
            assert_eq!(s.len(), 1);
        }
    }
}
