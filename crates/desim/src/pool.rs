//! A minimal scoped thread pool for embarrassingly parallel sweeps.
//!
//! The evaluation harness runs 3 algorithms × 4 rates × 5 seeds = 60
//! independent single-threaded simulations; this module fans them out
//! across cores with **deterministic job → result ordering**: the value
//! returned for job `i` lands at index `i` of the output, regardless of
//! which worker ran it or in what order jobs finished. Combined with each
//! job being internally deterministic in its seed, a parallel sweep is
//! bit-for-bit identical to a serial one.
//!
//! Implementation: `std::thread::scope` workers claim contiguous chunks
//! of job indices from a shared atomic counter (guided self-scheduling:
//! each claim takes a fraction of the *remaining* jobs, so chunks start
//! large and shrink toward single jobs at the tail — coarse enough that
//! the counter stays off the hot path, fine enough that a straggler job
//! cannot strand work behind it), collect `(index, result)` pairs
//! locally, and the caller scatters them back into a dense `Vec` — no
//! locks on the result path, no external dependencies, no unsafe code.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads [`parallel_map`] uses by default: the
/// machine's available parallelism, with the `RASC_THREADS` environment
/// variable (when set to a positive integer) taking precedence.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("RASC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item, in parallel, preserving input order in the
/// output: `out[i] == f(i, &items[i])`.
///
/// Uses [`default_threads`] workers (capped at the number of items).
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_threads(default_threads(), items, f)
}

/// [`parallel_map`] with an explicit worker count (`threads == 1` runs
/// inline on the caller's thread with no pool at all).
pub fn parallel_map_threads<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    assert!(threads > 0, "thread count must be positive");
    let n = items.len();
    let workers = threads.min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;
    let mut buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        // Guided chunk claim: a quarter of the remaining
                        // work per worker, never less than one job.
                        let start = next.load(Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let chunk = ((n - start) / (workers * 4)).max(1);
                        if next
                            .compare_exchange_weak(
                                start,
                                start + chunk,
                                Ordering::Relaxed,
                                Ordering::Relaxed,
                            )
                            .is_err()
                        {
                            continue;
                        }
                        let end = (start + chunk).min(n);
                        for (i, item) in items[start..end].iter().enumerate() {
                            let i = start + i;
                            local.push((i, f(i, item)));
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect()
    });

    // Scatter back to input order. Every index appears exactly once.
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for bucket in &mut buckets {
        for (i, r) in bucket.drain(..) {
            debug_assert!(out[i].is_none(), "duplicate result for job {i}");
            out[i] = Some(r);
        }
    }
    out.into_iter()
        .map(|r| r.expect("every job produces a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        for threads in [1, 2, 4, 8] {
            let out = parallel_map_threads(threads, &items, |i, &x| {
                assert_eq!(i as u64, x);
                x * 3 + 1
            });
            let expect: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn parallel_matches_serial_with_seeded_rng() {
        // Each job runs its own deterministic RNG stream; the parallel
        // result must be bit-identical to the serial one.
        let seeds: Vec<u64> = (0..24).collect();
        let job = |_: usize, &seed: &u64| {
            let mut rng = crate::SimRng::new(seed);
            (0..100)
                .map(|_| rng.next_u64())
                .fold(0u64, u64::wrapping_add)
        };
        let serial = parallel_map_threads(1, &seeds, job);
        for threads in [2, 3, 7] {
            assert_eq!(parallel_map_threads(threads, &seeds, job), serial);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(parallel_map(&none, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[9u32], |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = parallel_map_threads(64, &[1u8, 2, 3], |_, &x| x as u32);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threads_rejected() {
        parallel_map_threads(0, &[1], |_, &x: &i32| x);
    }
}
