//! The dispatch loop: pops events in time order and hands them to a
//! user-defined [`World`] until the queue drains or a horizon is reached.

use crate::queue::EventQueue;
use crate::time::SimTime;

/// A simulation world: owns all mutable state and reacts to events.
///
/// The handler receives the event queue so it can schedule follow-up events;
/// the driver enforces that time never moves backwards from the handler's
/// point of view (events scheduled in the past are delivered "now").
pub trait World {
    /// The event payload type dispatched by the driver.
    type Event;

    /// Handles one event at simulated time `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Why [`run_until`] returned.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepOutcome {
    /// The queue drained: no events remain.
    Drained,
    /// The next pending event lies at or beyond the horizon.
    HorizonReached,
    /// The step budget was exhausted.
    BudgetExhausted,
}

/// Runs the world until the queue drains or the next event is at or after
/// `horizon`. Returns the time of the last event delivered (or `ZERO` if
/// none were).
pub fn run<W: World>(world: &mut W, queue: &mut EventQueue<W::Event>, horizon: SimTime) -> SimTime {
    run_until(world, queue, horizon, u64::MAX).0
}

/// Like [`run`], but also bounded by a maximum number of delivered events —
/// a guard against accidental event storms in tests. Returns the last
/// delivered event time and the reason the loop stopped.
pub fn run_until<W: World>(
    world: &mut W,
    queue: &mut EventQueue<W::Event>,
    horizon: SimTime,
    max_events: u64,
) -> (SimTime, StepOutcome) {
    let mut last = SimTime::ZERO;
    let mut delivered = 0u64;
    loop {
        if delivered >= max_events {
            return (last, StepOutcome::BudgetExhausted);
        }
        match queue.peek_time() {
            None => return (last, StepOutcome::Drained),
            Some(t) if t >= horizon => return (last, StepOutcome::HorizonReached),
            Some(_) => {}
        }
        let (t, ev) = queue.pop().expect("peeked event exists");
        // Clamp: an event scheduled "in the past" (possible when a handler
        // schedules at a fixed absolute time) is delivered at the current
        // frontier so observable time is monotone.
        let now = t.max(last);
        last = now;
        world.handle(now, ev, queue);
        delivered += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[derive(Default)]
    struct Recorder {
        seen: Vec<(SimTime, u32)>,
    }

    impl World for Recorder {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, q: &mut EventQueue<u32>) {
            self.seen.push((now, ev));
            if ev == 1 {
                // Chain two follow-ups, same instant: FIFO order expected.
                q.schedule(now, 10);
                q.schedule(now, 11);
            }
        }
    }

    #[test]
    fn drains_and_reports() {
        let mut w = Recorder::default();
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), 1);
        let (last, why) = run_until(&mut w, &mut q, SimTime::MAX, u64::MAX);
        assert_eq!(why, StepOutcome::Drained);
        assert_eq!(last, SimTime::from_millis(1));
        assert_eq!(
            w.seen,
            vec![
                (SimTime::from_millis(1), 1),
                (SimTime::from_millis(1), 10),
                (SimTime::from_millis(1), 11),
            ]
        );
    }

    #[test]
    fn horizon_stops_before_event() {
        let mut w = Recorder::default();
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5), 2);
        q.schedule(SimTime::from_millis(10), 3);
        let (last, why) = run_until(&mut w, &mut q, SimTime::from_millis(10), u64::MAX);
        assert_eq!(why, StepOutcome::HorizonReached);
        assert_eq!(last, SimTime::from_millis(5));
        assert_eq!(w.seen.len(), 1);
        // The horizon event is still pending and deliverable later.
        let (last2, why2) = run_until(&mut w, &mut q, SimTime::MAX, u64::MAX);
        assert_eq!(why2, StepOutcome::Drained);
        assert_eq!(last2, SimTime::from_millis(10));
    }

    #[test]
    fn budget_bounds_delivery() {
        struct Storm;
        impl World for Storm {
            type Event = ();
            fn handle(&mut self, now: SimTime, _: (), q: &mut EventQueue<()>) {
                q.schedule(now + SimDuration::from_nanos(1), ());
            }
        }
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, ());
        let (_, why) = run_until(&mut Storm, &mut q, SimTime::MAX, 1000);
        assert_eq!(why, StepOutcome::BudgetExhausted);
        assert_eq!(q.total_fired(), 1000);
    }

    #[test]
    fn past_events_clamp_to_frontier() {
        struct PastScheduler {
            times: Vec<SimTime>,
        }
        impl World for PastScheduler {
            type Event = u8;
            fn handle(&mut self, now: SimTime, ev: u8, q: &mut EventQueue<u8>) {
                self.times.push(now);
                if ev == 0 {
                    // Schedule "before" now; must be observed at `now`.
                    q.schedule(SimTime::ZERO, 1);
                }
            }
        }
        let mut w = PastScheduler { times: vec![] };
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(9), 0);
        run(&mut w, &mut q, SimTime::MAX);
        assert_eq!(
            w.times,
            vec![SimTime::from_millis(9), SimTime::from_millis(9)]
        );
    }

    #[test]
    fn empty_queue_returns_zero() {
        let mut w = Recorder::default();
        let mut q = EventQueue::new();
        assert_eq!(run(&mut w, &mut q, SimTime::MAX), SimTime::ZERO);
    }
}
