//! A small deterministic PRNG with the distributions the simulations need.
//!
//! We implement xoshiro256++ (public-domain algorithm by Blackman & Vigna)
//! seeded through SplitMix64, rather than pulling in a `rand` dependency at
//! this layer: the kernel must guarantee bit-identical streams across
//! platforms and crate-version bumps, since every experiment in the repo is
//! keyed by a seed.
//!
//! The distribution set is intentionally small: uniform ints/floats,
//! Bernoulli, exponential (Poisson arrivals), normal (Box–Muller), Pareto
//! (heavy-tailed latencies/capacities), and weighted choice.

/// Deterministic pseudo-random number generator (xoshiro256++).
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
    /// Cached second output of Box–Muller.
    gauss_spare: Option<f64>,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed. Any seed (including zero)
    /// yields a well-mixed state via SplitMix64 expansion.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng {
            s,
            gauss_spare: None,
        }
    }

    /// Derives an independent child generator; used to give each subsystem
    /// its own stream so adding draws in one place does not perturb others.
    pub fn fork(&mut self, label: u64) -> SimRng {
        // Mix a label in so forks with different labels diverge even when
        // taken back-to-back.
        let seed = self.next_u64() ^ label.wrapping_mul(0xA24BAED4963EE407);
        SimRng::new(seed)
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased output.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Lemire rejection sampling.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(span as u128);
        let mut l = m as u64;
        if l < span {
            let t = span.wrapping_neg() % span;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(span as u128);
                l = m as u64;
            }
        }
        lo + (m >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`.
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform float in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed value with rate `lambda` (mean `1/lambda`).
    pub fn exp(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "exponential rate must be positive");
        // Avoid ln(0); f64() is in [0,1), so 1-f64() is in (0,1].
        -(1.0 - self.f64()).ln() / lambda
    }

    /// Normally distributed value via Box–Muller (mean/stddev parameters).
    pub fn normal(&mut self, mean: f64, stddev: f64) -> f64 {
        assert!(stddev >= 0.0, "negative stddev");
        if let Some(z) = self.gauss_spare.take() {
            return mean + stddev * z;
        }
        // Box–Muller transform.
        let u1 = 1.0 - self.f64(); // (0, 1]
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        let (sin, cos) = theta.sin_cos();
        self.gauss_spare = Some(r * sin);
        mean + stddev * r * cos
    }

    /// Pareto-distributed value with scale `x_m > 0` and shape `alpha > 0`.
    /// Heavy-tailed; models wide-area latencies and capacity skew.
    pub fn pareto(&mut self, x_m: f64, alpha: f64) -> f64 {
        assert!(x_m > 0.0 && alpha > 0.0, "invalid pareto parameters");
        x_m / (1.0 - self.f64()).powf(1.0 / alpha)
    }

    /// Log-normal: `exp(normal(mu, sigma))`.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.range_usize(0, items.len())]
    }

    /// Picks an index with probability proportional to `weights[i]`.
    /// Panics if the weights are empty or sum to a non-positive value.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        assert!(total > 0.0, "weights must have positive mass");
        let mut x = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            if x < w {
                return i;
            }
            x -= w;
        }
        // Floating-point slack: fall back to the last positive-weight index.
        weights
            .iter()
            .rposition(|&w| w > 0.0)
            .expect("positive weight exists")
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_usize(0, i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (reservoir-free partial
    /// Fisher–Yates). Panics if `k > n`. Result order is random.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} of {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = self.range_usize(i, n);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_well_mixed() {
        let mut r = SimRng::new(0);
        let first: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(first.iter().any(|&x| x != 0));
        // No duplicate among the first few outputs.
        let mut sorted = first.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), first.len());
    }

    #[test]
    fn forks_are_independent() {
        let mut parent = SimRng::new(7);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let same = (0..100).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SimRng::new(4);
        for _ in 0..10_000 {
            let x = r.range_u64(10, 20);
            assert!((10..20).contains(&x));
        }
        // Single-element range.
        assert_eq!(r.range_u64(5, 6), 5);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SimRng::new(0).range_u64(5, 5);
    }

    #[test]
    fn uniform_mean_close() {
        let mut r = SimRng::new(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = SimRng::new(6);
        let lambda = 4.0;
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.exp(lambda)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments_close() {
        let mut r = SimRng::new(7);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = SimRng::new(8);
        for _ in 0..10_000 {
            assert!(r.pareto(2.0, 3.0) >= 2.0);
        }
    }

    #[test]
    fn weighted_choice_matches_weights() {
        let mut r = SimRng::new(9);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[r.choose_weighted(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(10);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left input sorted (astronomically unlikely)"
        );
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut r = SimRng::new(11);
        let s = r.sample_indices(50, 10);
        assert_eq!(s.len(), 10);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 10);
        assert!(s.iter().all(|&i| i < 50));
        // Edge cases.
        assert!(r.sample_indices(5, 0).is_empty());
        let all = r.sample_indices(5, 5);
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(12);
        assert!(!(0..1000).any(|_| r.chance(0.0)));
        assert!((0..1000).all(|_| r.chance(1.0)));
    }
}
