//! Hierarchical timer wheel: the O(1)-amortized event store behind
//! [`EventQueue`](crate::EventQueue)'s `TimerWheel` backend.
//!
//! The wheel treats an event's firing time as an 11-digit base-64 number
//! (6 bits per digit covers the full 64-bit nanosecond range). An event
//! is filed at the *highest digit in which its time differs from the
//! cursor*: level 0 resolves single nanoseconds relative to the cursor,
//! level 1 resolves 64 ns spans, and so on — the classic "hashed and
//! hierarchical timing wheels" layout used by OS timer subsystems.
//!
//! * **push** is O(1): one XOR + leading-zeros to find the level, one
//!   `Vec::push` into the slot.
//! * **pop** drains a small `ready` heap of events due at the cursor;
//!   when it empties, the cursor jumps straight to the next occupied
//!   slot (per-level 64-bit occupancy bitmaps make the search a couple
//!   of `trailing_zeros` instructions) and that slot cascades down to
//!   lower levels. Each event cascades at most once per level, so the
//!   amortized cost per event is bounded by the number of levels.
//!
//! Ordering does not depend on slot traversal subtleties: the wheel only
//! guarantees it hands the globally minimal `(time, seq)` entries to the
//! `ready` heap, and the heap orders by `(time, seq)` exactly like the
//! `BinaryHeap` reference backend. Same-instant FIFO therefore falls out
//! of the unique, monotonically assigned `seq` — bit-for-bit identical
//! pop order across backends.
//!
//! Scheduling *at or before* the cursor is allowed (the driver clamps
//! delivery time monotonically); such entries go straight to `ready`.

use crate::queue::Entry;
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Bits per wheel digit; each level has `2^SLOT_BITS` slots.
const SLOT_BITS: usize = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Levels needed so 11 six-bit digits cover all 64 bits of `SimTime`.
const LEVELS: usize = u64::BITS.div_ceil(SLOT_BITS as u32) as usize;

/// Hierarchical timer wheel holding `Entry<E>` values.
pub(crate) struct Wheel<E> {
    /// `LEVELS × SLOTS` buckets, flattened. Buckets do not hoard
    /// capacity: a drained bucket's vector moves to `spare`, and a cold
    /// bucket's first push takes a warm vector back out. Capacity thus
    /// follows the cursor instead of sticking to each of the 704 slots —
    /// high-level slots are first touched as late as minutes into a run
    /// (level 5 completes a rotation every ~68 simulated seconds), and
    /// per-slot warm-up would trickle allocations for that entire span.
    slots: Vec<Vec<Entry<E>>>,
    /// Recycled (empty, capacity-bearing) slot vectors.
    spare: Vec<Vec<Entry<E>>>,
    /// One occupancy bit per slot, per level.
    occ: [u64; LEVELS],
    /// Current position in time, in ticks (nanoseconds). Every entry in
    /// the wheel proper fires strictly after `cur`; entries at or before
    /// `cur` live in `ready`.
    cur: u64,
    /// Entries due now (or scheduled into the past), ordered `(time, seq)`.
    ready: BinaryHeap<Reverse<Entry<E>>>,
    /// Total entries held (wheel + ready).
    len: usize,
}

impl<E> Wheel<E> {
    pub(crate) fn new() -> Self {
        Wheel {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            spare: Vec::new(),
            occ: [0; LEVELS],
            cur: 0,
            ready: BinaryHeap::new(),
            len: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn push(&mut self, entry: Entry<E>) {
        self.len += 1;
        if entry.time.as_nanos() <= self.cur {
            self.ready.push(Reverse(entry));
        } else {
            self.place(entry);
        }
    }

    /// Files an entry known to fire strictly after the cursor.
    #[inline]
    fn place(&mut self, entry: Entry<E>) {
        let tick = entry.time.as_nanos();
        debug_assert!(tick > self.cur);
        let differing = tick ^ self.cur;
        let level = (63 - differing.leading_zeros() as usize) / SLOT_BITS;
        let slot = ((tick >> (level * SLOT_BITS)) & (SLOTS as u64 - 1)) as usize;
        let idx = level * SLOTS + slot;
        if self.slots[idx].capacity() == 0 {
            if let Some(buf) = self.spare.pop() {
                self.slots[idx] = buf;
            }
        }
        self.slots[idx].push(entry);
        self.occ[level] |= 1 << slot;
    }

    /// Removes and returns the minimal `(time, seq)` entry.
    pub(crate) fn pop_min(&mut self) -> Option<Entry<E>> {
        while self.ready.is_empty() {
            if !self.advance() {
                return None;
            }
        }
        self.len -= 1;
        self.ready.pop().map(|Reverse(e)| e)
    }

    /// Time and seq of the minimal entry without removing it.
    pub(crate) fn peek_min(&mut self) -> Option<(SimTime, u64)> {
        while self.ready.is_empty() {
            if !self.advance() {
                return None;
            }
        }
        self.ready.peek().map(|Reverse(e)| (e.time, e.seq))
    }

    /// Jumps the cursor to the next occupied slot and cascades it into
    /// `ready` / lower levels. Returns `false` when the wheel is empty.
    ///
    /// Scanning levels bottom-up is sound because any candidate at level
    /// `k` fires strictly later than every possible candidate below it:
    /// a level-`k` slot differs from the cursor in digit `k`, so its
    /// times exceed `cur | (64^k − 1)`, the upper bound of levels `< k`.
    fn advance(&mut self) -> bool {
        for level in 0..LEVELS {
            let shift = level * SLOT_BITS;
            let digit = ((self.cur >> shift) & (SLOTS as u64 - 1)) as u32;
            // Only strictly later digits can be occupied at this level:
            // an equal digit would mean the entry differed from the
            // cursor in a lower digit (or not at all) when it was filed.
            let mask = self.occ[level] & (u64::MAX).checked_shl(digit + 1).unwrap_or(0);
            if mask == 0 {
                continue;
            }
            let slot = mask.trailing_zeros() as usize;
            // Jump: digits above `level` keep, digit at `level` = slot,
            // digits below clear — the earliest instant this slot spans.
            let above = (shift + SLOT_BITS) as u32;
            let high = self.cur & u64::MAX.checked_shl(above).unwrap_or(0);
            self.cur = high | ((slot as u64) << shift);
            self.occ[level] &= !(1u64 << slot);
            let idx = level * SLOTS + slot;
            let mut batch = std::mem::take(&mut self.slots[idx]);
            for entry in batch.drain(..) {
                if entry.time.as_nanos() <= self.cur {
                    self.ready.push(Reverse(entry));
                } else {
                    self.place(entry);
                }
            }
            // The drained vector joins the spare pool (capacity intact)
            // rather than sticking to this slot; the next occupied slot
            // anywhere in the wheel reuses it.
            self.spare.push(batch);
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(ns: u64, seq: u64) -> Entry<u64> {
        Entry {
            time: SimTime::from_nanos(ns),
            seq,
            payload: seq,
        }
    }

    #[test]
    fn level_math_covers_u64() {
        assert_eq!(LEVELS, 11);
        // Highest representable tick files at the top level without
        // panicking and comes back out.
        let mut w = Wheel::new();
        w.push(entry(u64::MAX, 0));
        w.push(entry(1, 1));
        assert_eq!(w.pop_min().unwrap().seq, 1);
        assert_eq!(w.pop_min().unwrap().time, SimTime::MAX);
        assert!(w.pop_min().is_none());
    }

    #[test]
    fn pops_sorted_across_levels() {
        let mut w = Wheel::new();
        let times = [
            0u64,
            1,
            63,
            64,
            65,
            4095,
            4096,
            1 << 30,
            (1 << 30) + 1,
            1 << 45,
            u64::MAX - 1,
        ];
        for (seq, &ns) in times.iter().enumerate() {
            w.push(entry(ns, seq as u64));
        }
        let mut last = 0u64;
        let mut n = 0;
        while let Some(e) = w.pop_min() {
            assert!(e.time.as_nanos() >= last);
            last = e.time.as_nanos();
            n += 1;
        }
        assert_eq!(n, times.len());
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn same_instant_pops_in_seq_order() {
        let mut w = Wheel::new();
        for seq in 0..50u64 {
            w.push(entry(1_000_000, seq));
        }
        for seq in 0..50u64 {
            assert_eq!(w.pop_min().unwrap().seq, seq);
        }
    }

    #[test]
    fn past_pushes_surface_before_future_work() {
        let mut w: Wheel<u64> = Wheel::new();
        w.push(entry(100, 0));
        assert_eq!(w.pop_min().unwrap().seq, 0); // cursor now at 100
        w.push(entry(5, 1)); // into the past
        w.push(entry(200, 2));
        assert_eq!(w.peek_min(), Some((SimTime::from_nanos(5), 1)));
        assert_eq!(w.pop_min().unwrap().seq, 1);
        assert_eq!(w.pop_min().unwrap().seq, 2);
    }

    #[test]
    fn interleaved_push_pop_keeps_global_order() {
        let mut w = Wheel::new();
        let mut x: u64 = 0x243F_6A88_85A3_08D3;
        let mut seq = 0u64;
        let mut popped = Vec::new();
        for round in 0..200 {
            for _ in 0..10 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                w.push(entry(x % 10_000_000, seq));
                seq += 1;
            }
            for _ in 0..(round % 7) {
                if let Some(e) = w.pop_min() {
                    popped.push((e.time.as_nanos(), e.seq));
                }
            }
        }
        while let Some(e) = w.pop_min() {
            popped.push((e.time.as_nanos(), e.seq));
        }
        assert_eq!(popped.len(), seq as usize);
        // Popping never goes backwards in (time, seq) *given the cursor
        // semantics*: once the cursor passes t, later pushes at ≤ t pop
        // immediately — so only check monotonicity between pops with no
        // intervening pushes is insufficient; instead check the multiset
        // is complete and each pop was minimal at its moment, which the
        // queue-level equivalence suite covers against the heap backend.
        let mut seqs: Vec<u64> = popped.iter().map(|&(_, s)| s).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), seq as usize, "lost or duplicated entries");
    }
}
