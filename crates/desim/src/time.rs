//! Virtual time. Nanosecond resolution in a `u64`, which covers ~584 years
//! of simulated time — far beyond any experiment horizon in this repo.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An absolute instant of simulated time, measured in nanoseconds from the
/// simulation epoch (time zero).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as a "run until the queue drains" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds since the epoch.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (saturating at the far future).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative absolute time");
        SimTime((s * 1e9).min(u64::MAX as f64) as u64)
    }

    /// Raw nanoseconds since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time since the epoch in fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time since the epoch in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`, or zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference: `None` if `earlier > self`.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (clamped to `[0, MAX]`).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e9).min(u64::MAX as f64) as u64)
    }

    /// Construct from fractional milliseconds (clamped to `[0, MAX]`).
    #[inline]
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating addition of two spans.
    #[inline]
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Multiply the span by an integer factor (saturating).
    #[inline]
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Scale the span by a non-negative float factor.
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k >= 0.0, "negative duration scale");
        SimDuration(((self.0 as f64) * k).min(u64::MAX as f64) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimTime::from_millis(5).as_millis_f64(), 5.0);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(SimDuration::from_millis_f64(1.5).as_nanos(), 1_500_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1);
        let d = SimDuration::from_millis(250);
        assert_eq!((t + d).as_millis_f64(), 1250.0);
        assert_eq!((t + d) - t, d);
        assert_eq!((t - d).as_millis_f64(), 750.0);
        let mut acc = SimDuration::ZERO;
        acc += d;
        acc += d;
        assert_eq!(acc, SimDuration::from_millis(500));
        acc -= d;
        assert_eq!(acc, d);
    }

    #[test]
    fn saturation_at_extremes() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(SimTime::ZERO - SimDuration::from_secs(1), SimTime::ZERO);
        assert_eq!(
            SimDuration::MAX.saturating_add(SimDuration::from_nanos(1)),
            SimDuration::MAX
        );
        assert_eq!(SimDuration::MAX.saturating_mul(3), SimDuration::MAX);
    }

    #[test]
    fn saturating_since_is_zero_for_reversed_order() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
        assert_eq!(a.checked_since(b), None);
        assert_eq!(b.checked_since(a), Some(SimDuration::from_secs(1)));
    }

    #[test]
    fn float_conversions_clamp() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::MAX), SimDuration::MAX);
        let d = SimDuration::from_secs_f64(0.001);
        assert_eq!(d.as_nanos(), 1_000_000);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d.mul_f64(2.5), SimDuration::from_millis(250));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_nanos(10) > SimDuration::from_nanos(9));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000");
        assert_eq!(format!("{:?}", SimDuration::from_millis(2)), "0.002000s");
    }
}
