//! Discrete-event simulation kernel for the RASC reproduction.
//!
//! This crate provides the minimal, deterministic machinery every simulated
//! subsystem is built on:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time,
//! * [`EventQueue`] — a cancellable priority queue of timestamped events with
//!   deterministic FIFO tie-breaking; two bit-for-bit equivalent backends
//!   ([`QueueBackend`]): a reference binary heap and an O(1)-amortized
//!   hierarchical timer wheel for throughput-bound simulations,
//! * [`SimRng`] — a small, fully deterministic PRNG (xoshiro256++ seeded via
//!   SplitMix64) with the distributions the workloads need,
//! * [`World`] + [`run`] — a simple dispatch loop driving a user-defined
//!   event handler until the queue drains or a horizon is reached,
//! * [`pool`] — a scoped thread pool for fanning independent simulations
//!   across cores with deterministic job → result ordering.
//!
//! Determinism is the design goal: given the same seed and the same inputs,
//! a simulation replays identically on any platform. Events scheduled for
//! the same instant are delivered in the order they were scheduled.
//!
//! # Example
//!
//! ```
//! use desim::{EventQueue, SimTime, SimDuration, World, run};
//!
//! struct Counter { fired: u32 }
//! impl World for Counter {
//!     type Event = u32;
//!     fn handle(&mut self, now: SimTime, ev: u32, q: &mut EventQueue<u32>) {
//!         self.fired += ev;
//!         if ev < 4 {
//!             q.schedule(now + SimDuration::from_millis(1), ev + 1);
//!         }
//!     }
//! }
//!
//! let mut w = Counter { fired: 0 };
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::ZERO, 1u32);
//! let end = run(&mut w, &mut q, SimTime::MAX);
//! assert_eq!(w.fired, 1 + 2 + 3 + 4);
//! assert_eq!(end, SimTime::ZERO + SimDuration::from_millis(3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod driver;
pub mod hash;
pub mod pool;
mod queue;
mod rng;
mod time;
mod wheel;

pub use driver::{run, run_until, StepOutcome, World};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use queue::{EventHandle, EventQueue, QueueBackend};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
