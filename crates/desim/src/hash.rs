//! Fast, deterministic hashing for simulator-internal maps.
//!
//! The standard library's default hasher (SipHash-1-3) is keyed with
//! per-process random state and burns most of its cycles defending
//! against adversarial keys. Simulator bookkeeping maps are keyed by
//! values the simulator itself generates (event sequence numbers,
//! `(app, substream, layer)` tuples), so neither property is wanted
//! here: the hot loop pays the SipHash toll on every scheduled event,
//! and the random key makes iteration order differ between runs.
//!
//! [`FxHasher`] is the classic Fx multiply-and-rotate hash (as used by
//! rustc's `FxHashMap`): one wrapping multiply per word, fully
//! deterministic, and plenty mixing for counter-like keys once the
//! golden-ratio multiplier spreads low-order entropy into the high
//! bits that `HashMap` buckets select on.

use std::hash::{BuildHasherDefault, Hasher};

/// 2^64 / φ — the classic Fibonacci-hashing multiplier.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, deterministic, non-cryptographic hasher for internal keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_word(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }
}

/// Deterministic `BuildHasher` for [`FxHashMap`] / [`FxHashSet`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`]. Construct with `FxHashMap::default()`.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`]. Construct with `FxHashSet::default()`.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xDEAD_BEEF);
        b.write_u64(0xDEAD_BEEF);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn counter_keys_spread() {
        // Consecutive counters must not collide in the high bits HashMap
        // buckets select on.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish() >> 48);
        }
        assert!(seen.len() > 5_000, "high bits collapsed: {}", seen.len());
    }

    #[test]
    fn byte_stream_matches_word_padding() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3]);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(&[1, 2, 3, 0, 0, 0, 0, 0, 9]);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FxHashSet<(u64, usize)> = FxHashSet::default();
        s.insert((1, 2));
        assert!(s.contains(&(1, 2)));
    }
}
