//! Cancellable event queue with deterministic ordering.
//!
//! Events are ordered by `(time, sequence)`, where `sequence` is a
//! monotonically increasing counter assigned at scheduling time. Two events
//! scheduled for the same instant therefore pop in scheduling order, which
//! keeps simulations bit-for-bit reproducible.
//!
//! Two storage backends implement that contract (see [`QueueBackend`]):
//!
//! * **`BinaryHeap`** — the reference implementation: a plain binary heap
//!   of `(time, seq)` entries, `O(log n)` per operation. Simple enough to
//!   be obviously correct; every other backend is validated against it.
//! * **`TimerWheel`** — a hierarchical timer wheel ([`crate::wheel`]),
//!   `O(1)` amortized schedule/pop. The data-plane hot path runs here.
//!
//! Backends are *bit-for-bit equivalent*: the same schedule/cancel/pop
//! script yields the same pop sequence on either, a property enforced by
//! the randomized `queue_equivalence` suite.
//!
//! Cancellation is lazy: [`EventQueue::cancel`] marks the handle and the
//! entry is discarded when it reaches the front. This keeps both
//! scheduling and cancellation cheap and avoids the tombstone scan a
//! `Vec`-backed queue would need.

use crate::hash::FxHashSet;
use crate::time::SimTime;
use crate::wheel::Wheel;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identifies a scheduled event so it can be cancelled before it fires.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventHandle(u64);

/// Selects the storage structure behind an [`EventQueue`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum QueueBackend {
    /// Reference `BinaryHeap` implementation, `O(log n)` per op.
    #[default]
    BinaryHeap,
    /// Hierarchical timer wheel, `O(1)` amortized per op.
    TimerWheel,
}

pub(crate) struct Entry<E> {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) payload: E,
}

// Ordering is on (time, seq) only; payload is irrelevant.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The backend storage: anything that can hand back entries in exact
/// `(time, seq)` order.
enum Store<E> {
    Heap(BinaryHeap<Reverse<Entry<E>>>),
    Wheel(Wheel<E>),
}

impl<E> Store<E> {
    fn push(&mut self, entry: Entry<E>) {
        match self {
            Store::Heap(h) => h.push(Reverse(entry)),
            Store::Wheel(w) => w.push(entry),
        }
    }

    fn pop_min(&mut self) -> Option<Entry<E>> {
        match self {
            Store::Heap(h) => h.pop().map(|Reverse(e)| e),
            Store::Wheel(w) => w.pop_min(),
        }
    }

    /// `(time, seq)` of the minimal entry. `&mut` because the wheel may
    /// advance its cursor to find it.
    fn peek_min(&mut self) -> Option<(SimTime, u64)> {
        match self {
            Store::Heap(h) => h.peek().map(|Reverse(e)| (e.time, e.seq)),
            Store::Wheel(w) => w.peek_min(),
        }
    }

    fn len(&self) -> usize {
        match self {
            Store::Heap(h) => h.len(),
            Store::Wheel(w) => w.len(),
        }
    }
}

/// A priority queue of timestamped events.
///
/// `E` is the simulation's event payload type, typically an enum defined by
/// the crate that owns the simulation loop.
pub struct EventQueue<E> {
    store: Store<E>,
    /// Seqs of scheduled events that have neither fired nor been
    /// cancelled. Membership here is what makes a handle live: cancelling
    /// a handle whose event already fired is rejected outright instead of
    /// parking its id in `cancelled` forever.
    pending: FxHashSet<u64>,
    cancelled: FxHashSet<u64>,
    next_seq: u64,
    scheduled: u64,
    fired: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue on the reference `BinaryHeap` backend.
    pub fn new() -> Self {
        Self::with_backend(QueueBackend::BinaryHeap)
    }

    /// Creates an empty queue on the given backend.
    pub fn with_backend(backend: QueueBackend) -> Self {
        EventQueue {
            store: match backend {
                QueueBackend::BinaryHeap => Store::Heap(BinaryHeap::new()),
                QueueBackend::TimerWheel => Store::Wheel(Wheel::new()),
            },
            pending: FxHashSet::default(),
            cancelled: FxHashSet::default(),
            next_seq: 0,
            scheduled: 0,
            fired: 0,
        }
    }

    /// The backend this queue runs on.
    pub fn backend(&self) -> QueueBackend {
        match self.store {
            Store::Heap(_) => QueueBackend::BinaryHeap,
            Store::Wheel(_) => QueueBackend::TimerWheel,
        }
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// Returns a handle that can be passed to [`cancel`](Self::cancel).
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.pending.insert(seq);
        self.store.push(Entry {
            time: at,
            seq,
            payload,
        });
        EventHandle(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired (or been cancelled).
    /// Cancelling an already-fired, already-cancelled, or unknown handle
    /// is a no-op returning `false` — the id is not retained, so stale
    /// handles cannot grow the cancellation set.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if !self.pending.remove(&handle.0) {
            return false;
        }
        self.cancelled.insert(handle.0);
        true
    }

    /// Pops the earliest pending event, skipping cancelled entries.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.store.pop_min() {
            if !self.cancelled.is_empty() && self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.pending.remove(&entry.seq);
            self.fired += 1;
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// Time of the earliest pending (non-cancelled) event, if any.
    ///
    /// This compacts cancelled entries off the front as a side effect,
    /// so it is `O(k log n)` in the number of cancelled heads.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some((time, seq)) = self.store.peek_min() {
            if !self.cancelled.is_empty() && self.cancelled.contains(&seq) {
                self.store.pop_min();
                self.cancelled.remove(&seq);
            } else {
                return Some(time);
            }
        }
        None
    }

    /// Whether any non-cancelled event is pending.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    /// Number of entries currently held (including not-yet-compacted
    /// cancelled entries). Useful for capacity monitoring in tests.
    pub fn raw_len(&self) -> usize {
        self.store.len()
    }

    /// Number of scheduled events that have neither fired nor been
    /// cancelled — the queue's live backlog. Auditors use this to decide
    /// whether a simulation still has work pending (liveness) without
    /// counting cancelled tombstones awaiting compaction.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Number of cancelled entries still awaiting compaction off the
    /// front. Bounded by [`raw_len`](Self::raw_len); monotone growth here
    /// would indicate a cancellation-bookkeeping leak.
    pub fn cancelled_backlog(&self) -> usize {
        self.cancelled.len()
    }

    /// Total events scheduled over the queue's lifetime.
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Total events actually delivered by [`pop`](Self::pop).
    pub fn total_fired(&self) -> u64 {
        self.fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn backends() -> [QueueBackend; 2] {
        [QueueBackend::BinaryHeap, QueueBackend::TimerWheel]
    }

    #[test]
    fn default_backend_is_the_heap_reference() {
        let q: EventQueue<u8> = EventQueue::new();
        assert_eq!(q.backend(), QueueBackend::BinaryHeap);
        let q: EventQueue<u8> = EventQueue::with_backend(QueueBackend::TimerWheel);
        assert_eq!(q.backend(), QueueBackend::TimerWheel);
    }

    #[test]
    fn pops_in_time_order() {
        for backend in backends() {
            let mut q = EventQueue::with_backend(backend);
            q.schedule(t(30), "c");
            q.schedule(t(10), "a");
            q.schedule(t(20), "b");
            assert_eq!(q.pop(), Some((t(10), "a")));
            assert_eq!(q.pop(), Some((t(20), "b")));
            assert_eq!(q.pop(), Some((t(30), "c")));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn fifo_tie_break_at_same_instant() {
        for backend in backends() {
            let mut q = EventQueue::with_backend(backend);
            for i in 0..100 {
                q.schedule(t(5), i);
            }
            for i in 0..100 {
                assert_eq!(q.pop(), Some((t(5), i)));
            }
        }
    }

    #[test]
    fn cancel_prevents_delivery() {
        for backend in backends() {
            let mut q = EventQueue::with_backend(backend);
            let h1 = q.schedule(t(1), 1);
            let h2 = q.schedule(t(2), 2);
            q.schedule(t(3), 3);
            assert!(q.cancel(h2));
            assert!(!q.cancel(h2), "double cancel reports false");
            assert_eq!(q.pop(), Some((t(1), 1)));
            assert_eq!(q.pop(), Some((t(3), 3)));
            assert_eq!(q.pop(), None);
            // h1 already fired; cancelling it is a no-op reporting false.
            assert!(!q.cancel(h1));
        }
    }

    /// Regression: cancelling handles whose events already fired must not
    /// accumulate ids in the cancellation set (the id can never be
    /// reclaimed by `pop`, so each one would leak forever).
    #[test]
    fn cancel_after_fire_does_not_leak() {
        for backend in backends() {
            let mut q = EventQueue::with_backend(backend);
            let handles: Vec<_> = (0..1000).map(|i| q.schedule(t(i), i)).collect();
            while q.pop().is_some() {}
            for h in &handles {
                assert!(!q.cancel(*h), "fired handle reported as cancelled");
            }
            assert_eq!(q.cancelled_backlog(), 0, "fired handles leaked");
            assert_eq!(q.raw_len(), 0);
            // Live cancellations still count — and are reclaimed on pop.
            let h = q.schedule(t(5000), 1);
            q.schedule(t(5001), 2);
            assert!(q.cancel(h));
            assert_eq!(q.cancelled_backlog(), 1);
            assert_eq!(q.pop(), Some((t(5001), 2)));
            assert_eq!(q.cancelled_backlog(), 0);
        }
    }

    #[test]
    fn cancel_unknown_handle_is_false() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(!q.cancel(EventHandle(42)));
    }

    #[test]
    fn peek_skips_cancelled_heads() {
        for backend in backends() {
            let mut q = EventQueue::with_backend(backend);
            let h = q.schedule(t(1), 1);
            q.schedule(t(2), 2);
            q.cancel(h);
            assert_eq!(q.peek_time(), Some(t(2)));
            assert!(!q.is_empty());
            assert_eq!(q.pop(), Some((t(2), 2)));
            assert!(q.is_empty());
            assert_eq!(q.peek_time(), None);
        }
    }

    #[test]
    fn counters_track_lifecycle() {
        for backend in backends() {
            let mut q = EventQueue::with_backend(backend);
            let h = q.schedule(t(1), ());
            q.schedule(t(2), ());
            q.cancel(h);
            q.pop();
            assert_eq!(q.total_scheduled(), 2);
            assert_eq!(q.total_fired(), 1);
        }
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        for backend in backends() {
            let mut q = EventQueue::with_backend(backend);
            q.schedule(t(10), 10u32);
            assert_eq!(q.pop(), Some((t(10), 10)));
            // Scheduling into the "past" is allowed; queue is a pure priority
            // queue and the driver enforces monotonic delivery semantics.
            q.schedule(t(5), 5);
            q.schedule(t(15), 15);
            assert_eq!(q.pop(), Some((t(5), 5)));
            let now = t(15) + SimDuration::from_millis(0);
            assert_eq!(q.pop(), Some((now, 15)));
        }
    }

    #[test]
    fn large_volume_stays_sorted() {
        for backend in backends() {
            // Pseudo-random insertion order, verify global sortedness.
            let mut q = EventQueue::with_backend(backend);
            let mut x: u64 = 0x9E3779B97F4A7C15;
            for _ in 0..10_000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                q.schedule(SimTime::from_nanos(x % 1_000_000), x);
            }
            let mut last = SimTime::ZERO;
            let mut n = 0;
            while let Some((time, _)) = q.pop() {
                assert!(time >= last);
                last = time;
                n += 1;
            }
            assert_eq!(n, 10_000);
        }
    }
}
