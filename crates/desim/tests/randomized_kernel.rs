//! Seeded randomized tests for the simulation kernel: the event queue
//! against a reference model, and distribution sanity for the RNG.
//! Driven by `SimRng` itself, so every case is reproducible from the
//! seed printed in the assertion message.

use desim::{EventQueue, SimRng, SimTime};

/// Operations applied to both the real queue and a reference model.
#[derive(Clone, Debug)]
enum Op {
    Schedule(u64),
    Pop,
    CancelNth(usize),
}

fn random_ops(rng: &mut SimRng) -> Vec<Op> {
    let len = rng.range_usize(1, 200);
    (0..len)
        .map(|_| match rng.range_u64(0, 3) {
            0 => Op::Schedule(rng.range_u64(0, 10_000)),
            1 => Op::Pop,
            _ => Op::CancelNth(rng.range_usize(0, 64)),
        })
        .collect()
}

/// The queue behaves exactly like a sorted reference model under an
/// arbitrary interleaving of schedules, pops, and cancellations.
#[test]
fn queue_matches_reference_model() {
    for case in 0..256u64 {
        let mut rng = SimRng::new(0xA11CE ^ case);
        let ops = random_ops(&mut rng);
        let mut queue = EventQueue::new();
        // Reference: (time, seq, payload, cancelled)
        let mut model: Vec<(SimTime, u64, u64, bool)> = Vec::new();
        let mut handles = Vec::new();
        let mut seq = 0u64;
        for op in ops {
            match op {
                Op::Schedule(t) => {
                    let at = SimTime::from_micros(t);
                    let h = queue.schedule(at, seq);
                    handles.push(h);
                    model.push((at, seq, seq, false));
                    seq += 1;
                }
                Op::Pop => {
                    let expected = model
                        .iter()
                        .filter(|e| !e.3)
                        .min_by_key(|e| (e.0, e.1))
                        .map(|e| (e.0, e.2));
                    let got = queue.pop();
                    assert_eq!(got, expected, "case {case}");
                    if let Some((_, payload)) = expected {
                        let idx = model.iter().position(|e| e.2 == payload).unwrap();
                        model.remove(idx);
                    }
                }
                Op::CancelNth(i) => {
                    if i < handles.len() {
                        // Live = scheduled, not cancelled, not yet popped
                        // (popped entries were removed from the model).
                        let was_live = model.iter().any(|e| e.1 == i as u64 && !e.3);
                        let ok = queue.cancel(handles[i]);
                        assert_eq!(ok, was_live, "case {case}: cancel({i})");
                        if was_live {
                            if let Some(e) = model.iter_mut().find(|e| e.1 == i as u64) {
                                e.3 = true;
                            }
                        }
                    }
                }
            }
        }
        // Drain: remaining events pop in (time, seq) order, and the
        // cancellation bookkeeping fully empties with the queue.
        let mut rest: Vec<(SimTime, u64)> =
            model.iter().filter(|e| !e.3).map(|e| (e.0, e.2)).collect();
        rest.sort_by_key(|&(t, s)| (t, s));
        for expected in rest {
            assert_eq!(queue.pop(), Some(expected), "case {case}");
        }
        assert_eq!(queue.pop(), None, "case {case}");
        assert_eq!(queue.raw_len(), 0, "case {case}");
        assert_eq!(queue.cancelled_backlog(), 0, "case {case}");
    }
}

/// Uniform range draws stay in bounds and hit both halves.
#[test]
fn rng_range_unbiased_enough() {
    let mut meta = SimRng::new(0xBEEF);
    for case in 0..128u64 {
        let seed = meta.next_u64();
        let lo = meta.range_u64(0, 1000);
        let span = meta.range_u64(2, 1000);
        let mut rng = SimRng::new(seed);
        let hi = lo + span;
        let mid = lo + span / 2;
        let mut low_half = 0u32;
        for _ in 0..200 {
            let x = rng.range_u64(lo, hi);
            assert!(
                (lo..hi).contains(&x),
                "case {case}: {x} out of [{lo}, {hi})"
            );
            if x < mid {
                low_half += 1;
            }
        }
        // Loose: binomial(200, ~0.5) essentially never leaves [40, 160].
        assert!(
            (40..=160).contains(&low_half),
            "case {case}: low_half = {low_half}"
        );
    }
}

/// Forked streams never mirror their parent.
#[test]
fn rng_forks_diverge() {
    let mut meta = SimRng::new(0xF0F0);
    for case in 0..128u64 {
        let seed = meta.next_u64();
        let label = meta.next_u64();
        let mut parent = SimRng::new(seed);
        let mut probe = SimRng::new(seed);
        let mut child = parent.fork(label);
        // Skip the draw fork() consumed.
        let _ = probe.next_u64();
        let matches = (0..64)
            .filter(|_| child.next_u64() == probe.next_u64())
            .count();
        assert!(
            matches < 8,
            "case {case}: fork mirrors parent: {matches} matches"
        );
    }
}

/// Shuffling preserves multisets.
#[test]
fn shuffle_is_permutation() {
    let mut meta = SimRng::new(0x5417);
    for case in 0..128u64 {
        let seed = meta.next_u64();
        let len = meta.range_usize(0, 50);
        let mut v: Vec<u32> = (0..len).map(|_| meta.range_u64(0, 100) as u32).collect();
        let mut rng = SimRng::new(seed);
        let mut original = v.clone();
        rng.shuffle(&mut v);
        original.sort_unstable();
        v.sort_unstable();
        assert_eq!(original, v, "case {case}");
    }
}
