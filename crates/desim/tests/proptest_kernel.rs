//! Property tests for the simulation kernel: the event queue against a
//! reference model, and distribution sanity for the RNG.

use desim::{EventQueue, SimRng, SimTime};
use proptest::prelude::*;

/// Operations applied to both the real queue and a reference model.
#[derive(Clone, Debug)]
enum Op {
    Schedule(u64),
    Pop,
    CancelNth(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..10_000).prop_map(Op::Schedule),
        Just(Op::Pop),
        (0usize..64).prop_map(Op::CancelNth),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The queue behaves exactly like a sorted reference model under an
    /// arbitrary interleaving of schedules, pops, and cancellations.
    #[test]
    fn queue_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut queue = EventQueue::new();
        // Reference: (time, seq, payload, cancelled)
        let mut model: Vec<(SimTime, u64, u64, bool)> = Vec::new();
        let mut handles = Vec::new();
        let mut seq = 0u64;
        for op in ops {
            match op {
                Op::Schedule(t) => {
                    let at = SimTime::from_micros(t);
                    let h = queue.schedule(at, seq);
                    handles.push(h);
                    model.push((at, seq, seq, false));
                    seq += 1;
                }
                Op::Pop => {
                    let expected = model
                        .iter()
                        .filter(|e| !e.3)
                        .min_by_key(|e| (e.0, e.1))
                        .map(|e| (e.0, e.2));
                    let got = queue.pop();
                    prop_assert_eq!(got, expected);
                    if let Some((_, payload)) = expected {
                        let idx = model.iter().position(|e| e.2 == payload).unwrap();
                        model.remove(idx);
                    }
                }
                Op::CancelNth(i) => {
                    if i < handles.len() {
                        let was_live = model.iter().any(|e| e.1 == i as u64 && !e.3);
                        let ok = queue.cancel(handles[i]);
                        if was_live {
                            prop_assert!(ok);
                            if let Some(e) = model.iter_mut().find(|e| e.1 == i as u64) {
                                e.3 = true;
                            }
                        }
                    }
                }
            }
        }
        // Drain: remaining events pop in (time, seq) order.
        let mut rest: Vec<(SimTime, u64)> = model
            .iter()
            .filter(|e| !e.3)
            .map(|e| (e.0, e.2))
            .collect();
        rest.sort_by_key(|&(t, s)| (t, s));
        for expected in rest {
            prop_assert_eq!(queue.pop(), Some(expected));
        }
        prop_assert_eq!(queue.pop(), None);
    }

    /// Uniform range draws stay in bounds and hit both halves.
    #[test]
    fn rng_range_unbiased_enough(seed in any::<u64>(), lo in 0u64..1000, span in 2u64..1000) {
        let mut rng = SimRng::new(seed);
        let hi = lo + span;
        let mid = lo + span / 2;
        let mut low_half = 0u32;
        for _ in 0..200 {
            let x = rng.range_u64(lo, hi);
            prop_assert!((lo..hi).contains(&x));
            if x < mid {
                low_half += 1;
            }
        }
        // Loose: binomial(200, ~0.5) essentially never leaves [40, 160].
        prop_assert!((40..=160).contains(&low_half), "low_half = {}", low_half);
    }

    /// Forked streams never mirror their parent.
    #[test]
    fn rng_forks_diverge(seed in any::<u64>(), label in any::<u64>()) {
        let mut parent = SimRng::new(seed);
        let mut probe = SimRng::new(seed);
        let mut child = parent.fork(label);
        // Skip the draw fork() consumed.
        let _ = probe.next_u64();
        let matches = (0..64).filter(|_| child.next_u64() == probe.next_u64()).count();
        prop_assert!(matches < 8, "fork mirrors parent: {} matches", matches);
    }

    /// Shuffling preserves multisets.
    #[test]
    fn shuffle_is_permutation(seed in any::<u64>(), mut v in proptest::collection::vec(0u32..100, 0..50)) {
        let mut rng = SimRng::new(seed);
        let mut original = v.clone();
        rng.shuffle(&mut v);
        original.sort_unstable();
        v.sort_unstable();
        prop_assert_eq!(original, v);
    }
}
