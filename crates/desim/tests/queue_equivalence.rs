//! Backend equivalence: the timer-wheel `EventQueue` backend must be
//! bit-for-bit interchangeable with the `BinaryHeap` reference.
//!
//! Every test drives the *same* seeded schedule/cancel/pop script into
//! one queue per backend and asserts the observable behaviour — pop
//! sequence (times and payloads), cancel return values, peeks, and
//! counters — is identical. `SimRng` drives the scripts, so any failure
//! reproduces from the case number in the assertion message.

use desim::{EventQueue, QueueBackend, SimRng, SimTime};

/// One scripted operation, pre-drawn so both backends replay the exact
/// same sequence.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Schedule at the given time (µs).
    Schedule(u64),
    /// Pop the front event.
    Pop,
    /// Cancel the n-th handle issued so far (wrapping), which may
    /// target live, fired, or already-cancelled events alike.
    CancelNth(usize),
    /// Peek the front time (compacts cancelled heads on both).
    Peek,
}

fn random_script(rng: &mut SimRng, len: usize, time_span_us: u64) -> Vec<Op> {
    (0..len)
        .map(|_| match rng.range_u64(0, 8) {
            // Biased toward schedules so queues grow deep enough to
            // exercise multi-level wheel cascades.
            0..=3 => Op::Schedule(rng.range_u64(0, time_span_us)),
            4..=5 => Op::Pop,
            6 => Op::CancelNth(rng.range_usize(0, 256)),
            _ => Op::Peek,
        })
        .collect()
}

/// Replays `script` on the given backend, returning a full transcript of
/// everything observable.
fn replay(backend: QueueBackend, script: &[Op]) -> Vec<String> {
    let mut q = EventQueue::with_backend(backend);
    let mut handles = Vec::new();
    let mut payload = 0u64;
    let mut transcript = Vec::new();
    for op in script {
        match *op {
            Op::Schedule(us) => {
                handles.push(q.schedule(SimTime::from_micros(us), payload));
                payload += 1;
            }
            Op::Pop => transcript.push(format!("pop {:?}", q.pop())),
            Op::CancelNth(i) => {
                if !handles.is_empty() {
                    let h = handles[i % handles.len()];
                    transcript.push(format!("cancel {}", q.cancel(h)));
                }
            }
            Op::Peek => transcript.push(format!("peek {:?}", q.peek_time())),
        }
    }
    // Drain whatever is left, then record the final counters.
    while let Some(ev) = q.pop() {
        transcript.push(format!("drain {ev:?}"));
    }
    transcript.push(format!(
        "end sched={} fired={} raw={} pending={} cancelled={}",
        q.total_scheduled(),
        q.total_fired(),
        q.raw_len(),
        q.pending_len(),
        q.cancelled_backlog()
    ));
    transcript
}

/// 256 seeded random scripts: identical transcripts on both backends.
#[test]
fn random_scripts_pop_bit_identically() {
    for case in 0..256u64 {
        let mut rng = SimRng::new(0x57EE1 ^ case);
        let span = [100u64, 10_000, 10_000_000][case as usize % 3];
        let script = random_script(&mut rng, 400, span);
        let heap = replay(QueueBackend::BinaryHeap, &script);
        let wheel = replay(QueueBackend::TimerWheel, &script);
        assert_eq!(heap, wheel, "case {case} (span {span} µs) diverged");
    }
}

/// Heavy same-timestamp contention: FIFO order must match exactly even
/// when thousands of events share a handful of instants.
#[test]
fn same_timestamp_fifo_matches() {
    for case in 0..64u64 {
        let mut rng = SimRng::new(0xF1F0 ^ case);
        let script: Vec<Op> = (0..2000)
            .map(|_| match rng.range_u64(0, 4) {
                // Only 4 distinct instants → massive FIFO ties.
                0..=2 => Op::Schedule(rng.range_u64(0, 4) * 50),
                _ => Op::Pop,
            })
            .collect();
        let heap = replay(QueueBackend::BinaryHeap, &script);
        let wheel = replay(QueueBackend::TimerWheel, &script);
        assert_eq!(heap, wheel, "case {case} diverged");
    }
}

/// Cancel-after-fire must be rejected identically: both backends refuse
/// to cancel a handle whose event already popped, and neither leaks
/// tombstones for the attempt.
#[test]
fn cancel_after_fire_rejected_on_both() {
    for backend in [QueueBackend::BinaryHeap, QueueBackend::TimerWheel] {
        let mut q = EventQueue::with_backend(backend);
        let handles: Vec<_> = (0..500)
            .map(|i| q.schedule(SimTime::from_micros(i % 7), i))
            .collect();
        // Fire half the events.
        for _ in 0..250 {
            q.pop().unwrap();
        }
        let mut accepted = 0;
        for h in &handles {
            if q.cancel(*h) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 250, "{backend:?}: only live handles cancellable");
        assert_eq!(q.pop(), None, "{backend:?}: all remaining were cancelled");
        assert_eq!(q.cancelled_backlog(), 0, "{backend:?}: tombstones leaked");
        assert_eq!(q.raw_len(), 0, "{backend:?}");
    }
}

/// Past-time scheduling (the driver clamps delivery, the queue does
/// not): both backends surface a newly scheduled earlier event before
/// previously scheduled later ones.
#[test]
fn past_scheduling_matches() {
    for case in 0..64u64 {
        let mut rng = SimRng::new(0x9A57 ^ case);
        // Alternate far-future schedules, pops (advancing the wheel
        // cursor), and schedules into the now-past.
        let script: Vec<Op> = (0..600)
            .map(|i| match i % 5 {
                0 => Op::Schedule(rng.range_u64(500_000, 1_000_000)),
                1 => Op::Schedule(rng.range_u64(0, 1_000)),
                2 | 3 => Op::Pop,
                _ => Op::Peek,
            })
            .collect();
        let heap = replay(QueueBackend::BinaryHeap, &script);
        let wheel = replay(QueueBackend::TimerWheel, &script);
        assert_eq!(heap, wheel, "case {case} diverged");
    }
}

/// Sparse far-apart timestamps force events into high wheel levels and
/// multi-step cascades; order must still match the reference.
#[test]
fn sparse_wide_range_timestamps_match() {
    for case in 0..32u64 {
        let mut rng = SimRng::new(0x1DE5 ^ case);
        let script: Vec<Op> = (0..300)
            .map(|_| match rng.range_u64(0, 3) {
                // Up to ~3.2 years of simulated nanoseconds: exercises
                // levels 0 through 9.
                0 | 1 => Op::Schedule(rng.range_u64(0, 100_000_000_000)),
                _ => Op::Pop,
            })
            .collect();
        let heap = replay(QueueBackend::BinaryHeap, &script);
        let wheel = replay(QueueBackend::TimerWheel, &script);
        assert_eq!(heap, wheel, "case {case} diverged");
    }
}
