//! Regression suite for the cancel-after-fire fix: a driver-level workload
//! that fires some events, cancels a mix of fired/live/stale handles, and
//! asserts the queue's liveness report ends with zero residual backlog.
//!
//! The original defect: cancelling a handle whose event had already fired
//! parked the id in the cancellation set forever (pop can never reclaim
//! it), so long-running simulations that cancel timers "just in case"
//! leaked memory linearly in cancel calls.

use desim::{run, EventHandle, EventQueue, SimTime, StepOutcome, World};

fn t(ms: u64) -> SimTime {
    SimTime::from_millis(ms)
}

/// A world that, like the engine's timer usage, cancels handles of events
/// that may or may not have fired already.
struct TimerWorld {
    fired: Vec<u32>,
}

impl World for TimerWorld {
    type Event = u32;
    fn handle(&mut self, _now: SimTime, ev: u32, _q: &mut EventQueue<u32>) {
        self.fired.push(ev);
    }
}

#[test]
fn cancel_fired_and_live_handles_leaves_no_residue() {
    let mut q = EventQueue::new();
    let handles: Vec<EventHandle> = (0..500u32).map(|i| q.schedule(t(i as u64), i)).collect();

    // Fire the first half through the driver.
    let mut w = TimerWorld { fired: Vec::new() };
    run(&mut w, &mut q, t(250));
    assert_eq!(w.fired.len(), 250);
    assert_eq!(q.total_fired(), 250);
    assert_eq!(q.pending_len(), 250);

    // Cancel every handle: 250 already fired (no-ops), 250 live.
    let mut live_cancels = 0;
    for h in &handles {
        if q.cancel(*h) {
            live_cancels += 1;
        }
    }
    assert_eq!(live_cancels, 250, "exactly the unfired events were live");
    assert_eq!(q.pending_len(), 0, "no live events remain after cancel");
    // Double-cancel of everything: all no-ops, nothing accumulates.
    for h in &handles {
        assert!(!q.cancel(*h), "second cancel must be a no-op");
    }
    assert_eq!(
        q.cancelled_backlog(),
        250,
        "only live cancellations park a tombstone"
    );

    // Drain: the driver must see an empty queue (liveness) and the
    // tombstones must be fully reclaimed — zero residual backlog.
    let before = w.fired.len();
    let (_, outcome) = desim::run_until(&mut w, &mut q, SimTime::MAX, u64::MAX);
    assert_eq!(outcome, StepOutcome::Drained);
    assert_eq!(w.fired.len(), before, "cancelled events must not fire");
    assert_eq!(q.raw_len(), 0, "heap holds residual entries");
    assert_eq!(q.cancelled_backlog(), 0, "cancellation set leaked ids");
    assert_eq!(q.pending_len(), 0);
    assert_eq!(q.total_scheduled(), 500);
    assert_eq!(q.total_fired(), 250);
}

#[test]
fn interleaved_cancel_fire_cycles_stay_bounded() {
    // Many rounds of schedule → partially fire → cancel the rest, checking
    // after every round that bookkeeping returns to zero. This is the
    // leak's growth pattern: any per-round residue shows up as monotone
    // growth of `cancelled_backlog`.
    let mut q = EventQueue::new();
    let mut w = TimerWorld { fired: Vec::new() };
    let mut expected_fired = 0u64;
    for round in 0..50u64 {
        let base = round * 100;
        let handles: Vec<EventHandle> = (0..20)
            .map(|i| q.schedule(t(base + i), (base + i) as u32))
            .collect();
        // Fire the first 10 of this round.
        run(&mut w, &mut q, t(base + 10));
        expected_fired += 10;
        // Cancel all 20 handles plus a stale handle from the previous
        // round (already fired long ago).
        for h in &handles {
            q.cancel(*h);
        }
        if let Some(stale) = handles.first() {
            assert!(!q.cancel(*stale));
        }
        // Let the driver compact the cancelled tail of this round.
        let (_, outcome) = desim::run_until(&mut w, &mut q, t(base + 100), u64::MAX);
        assert_eq!(outcome, StepOutcome::Drained);
        assert_eq!(q.cancelled_backlog(), 0, "round {round} leaked");
        assert_eq!(q.raw_len(), 0, "round {round} left heap entries");
        assert_eq!(q.pending_len(), 0);
    }
    assert_eq!(q.total_fired(), expected_fired);
    assert_eq!(w.fired.len() as u64, expected_fired);
}
