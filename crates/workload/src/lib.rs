//! Workload generation and experiment drivers for the RASC evaluation.
//!
//! The paper's setup (§4.1): 32 PlanetLab nodes, 10 unique services, 5
//! services hosted per node (mean replication 16), service requests of
//! 2–5 services chosen randomly, request rates from 50 to 200 Kb/s, each
//! data point averaged over 5 runs. [`PaperSetup`] packages exactly that;
//! [`RequestGenerator`] draws the requests; [`run_experiment`] executes
//! one full simulation and returns the [`RunReport`] every figure reads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generator;
mod scenario;

pub use generator::RequestGenerator;
pub use scenario::{
    run_experiment, run_experiment_with, ArrivalProcess, ExperimentOutcome, PaperSetup,
};
