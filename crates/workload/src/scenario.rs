//! The paper's experimental scenario (§4.1) as an executable config.

use crate::generator::RequestGenerator;
use desim::{SimDuration, SimRng, SimTime};
use rasc_core::compose::ComposerKind;
use rasc_core::engine::{BackgroundTraffic, Engine, EngineConfig};
use rasc_core::metrics::RunReport;
use rasc_core::model::ServiceCatalog;
use simnet::{kbps, Topology};

/// The §4.1 experimental setup, with the PlanetLab testbed replaced by
/// the simulated wide-area network (see DESIGN.md for the substitution
/// rationale).
///
/// Node population (three classes, ids assigned in this order):
///
/// * **strong** processing nodes — well-provisioned hosts that can carry
///   several full-rate components each,
/// * **weak** processing nodes — hosts whose usable bandwidth sits near
///   or below a single 150–200 Kb/s stream. They are the population that
///   makes rate splitting matter: random/greedy placement cannot use a
///   node that cannot carry a *whole* stream, while RASC aggregates
///   their capacity ("random and greedy depend on the capacity of the
///   most powerful nodes; minimum cost composition depends on the
///   cumulative capacity of the nodes", §4.2). PlanetLab circa 2007 had
///   exactly this skew: a few well-connected GREN hosts and a long tail
///   of heavily contended ones.
/// * **edge** nodes — the stream endpoints (user machines). They host no
///   services; they originate and terminate streams.
#[derive(Clone, Debug)]
pub struct PaperSetup {
    /// Number of unique services (paper: 10).
    pub services: usize,
    /// Services hosted per processing node (paper: 5 ⇒ replication 16).
    pub services_per_node: usize,
    /// Number of requests submitted over the submission window.
    pub requests: usize,
    /// Average request rate in Kb/s (the x-axis: 50–200).
    pub avg_rate_kbps: f64,
    /// Requests arrive uniformly over this many simulated seconds.
    pub submit_window_secs: f64,
    /// Measurement continues this long after the last submission.
    pub measure_secs: f64,
    /// Strong processing nodes: `(count, bw_lo_kbps, bw_hi_kbps)`.
    pub strong_nodes: (usize, f64, f64),
    /// Weak processing nodes: `(count, bw_lo_kbps, bw_hi_kbps)`.
    pub weak_nodes: (usize, f64, f64),
    /// Edge (endpoint) nodes: `(count, bw_kbps)`.
    pub edge_nodes: (usize, f64),
    /// Fraction of processing nodes carrying bursty cross traffic (the
    /// varying "state of the PlanetLab nodes" the paper averaged over).
    pub flaky_fraction: f64,
    /// Request arrival process over the submission window.
    pub arrivals: ArrivalProcess,
    /// Master seed (vary for the 5-run averaging).
    pub seed: u64,
}

impl Default for PaperSetup {
    fn default() -> Self {
        PaperSetup {
            services: 10,
            services_per_node: 5,
            requests: 20,
            avg_rate_kbps: 100.0,
            submit_window_secs: 40.0,
            measure_secs: 120.0,
            strong_nodes: (6, 800.0, 1_600.0),
            weak_nodes: (26, 250.0, 400.0),
            edge_nodes: (16, 2_500.0),
            flaky_fraction: 0.4,
            arrivals: ArrivalProcess::Uniform,
            seed: 1,
        }
    }
}

/// How request submission times are drawn across the window.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub enum ArrivalProcess {
    /// Independent uniform draws over the window (the default; roughly
    /// what an open system with a fixed request budget looks like).
    #[default]
    Uniform,
    /// A Poisson process whose rate is chosen so the expected count over
    /// the window equals `requests`; the draw is truncated/padded to
    /// exactly `requests` arrivals so runs stay comparable.
    Poisson,
}

impl PaperSetup {
    /// Number of processing (service-hosting) nodes — 32 in the paper.
    pub fn processing_nodes(&self) -> usize {
        self.strong_nodes.0 + self.weak_nodes.0
    }

    /// Total overlay size including edge nodes.
    pub fn total_nodes(&self) -> usize {
        self.processing_nodes() + self.edge_nodes.0
    }

    /// A scaled-down variant for fast tests (8 processing nodes, short
    /// horizon).
    pub fn small(seed: u64) -> Self {
        PaperSetup {
            services: 4,
            services_per_node: 3,
            requests: 10,
            submit_window_secs: 5.0,
            measure_secs: 20.0,
            strong_nodes: (4, 500.0, 1_000.0),
            weak_nodes: (4, 200.0, 400.0),
            edge_nodes: (4, 2_000.0),
            flaky_fraction: 0.25,
            seed,
            ..Default::default()
        }
    }

    /// Builds the three-class topology.
    pub fn topology(&self) -> Topology {
        Topology::heterogeneous(
            &[
                (
                    self.strong_nodes.0,
                    kbps(self.strong_nodes.1),
                    kbps(self.strong_nodes.2),
                ),
                (
                    self.weak_nodes.0,
                    kbps(self.weak_nodes.1),
                    kbps(self.weak_nodes.2),
                ),
                (
                    self.edge_nodes.0,
                    kbps(self.edge_nodes.1),
                    kbps(self.edge_nodes.1),
                ),
            ],
            self.seed,
        )
    }

    /// Service assignment: `services_per_node` random services on each
    /// processing node (with a coverage fix so no service is orphaned),
    /// nothing on edge nodes.
    pub fn offers(&self) -> Vec<Vec<usize>> {
        let mut rng = SimRng::new(self.seed ^ 0x504C4143_454D4E54);
        let per_node = self.services_per_node.min(self.services);
        let mut offers: Vec<Vec<usize>> = (0..self.processing_nodes())
            .map(|_| {
                let mut picks = rng.sample_indices(self.services, per_node);
                picks.sort_unstable();
                picks
            })
            .collect();
        for s in 0..self.services {
            if !offers.iter().any(|o| o.contains(&s)) {
                let v = s % offers.len();
                offers[v].push(s);
                offers[v].sort_unstable();
            }
        }
        offers.extend((0..self.edge_nodes.0).map(|_| Vec::new()));
        offers
    }

    /// The endpoint node ids (the edge class).
    pub fn endpoint_ids(&self) -> Vec<usize> {
        (self.processing_nodes()..self.total_nodes()).collect()
    }

    /// The processing nodes designated as flaky (bursty cross traffic),
    /// deterministic in the seed.
    pub fn flaky_nodes(&self) -> Vec<usize> {
        let n = self.processing_nodes();
        let k = ((n as f64) * self.flaky_fraction).round() as usize;
        let mut rng = SimRng::new(self.seed ^ 0x464C414B_595F5F21);
        let mut picks = rng.sample_indices(n, k.min(n));
        picks.sort_unstable();
        picks
    }
}

/// Result of one experiment run.
#[derive(Clone, Debug)]
pub struct ExperimentOutcome {
    /// Aggregated run metrics (the inputs to every figure).
    pub report: RunReport,
    /// The composer that produced it.
    pub composer: ComposerKind,
    /// The average request rate the workload targeted.
    pub avg_rate_kbps: f64,
    /// The seed used.
    pub seed: u64,
}

/// Runs one full simulation of the paper's scenario with the given
/// composition algorithm and engine overrides.
pub fn run_experiment(setup: &PaperSetup, composer: ComposerKind) -> ExperimentOutcome {
    run_experiment_with(setup, composer, EngineConfig::default())
}

/// Variant of [`run_experiment`] with full control over the engine
/// configuration (used by the scheduler/solver ablations).
pub fn run_experiment_with(
    setup: &PaperSetup,
    composer: ComposerKind,
    mut config: EngineConfig,
) -> ExperimentOutcome {
    config.composer = composer;
    config.services_per_node = setup.services_per_node;
    if config.background.is_none() {
        let flaky = setup.flaky_nodes();
        if !flaky.is_empty() {
            config.background = Some(BackgroundTraffic::flaky(flaky));
        }
    }

    let catalog = ServiceCatalog::synthetic(setup.services, setup.seed);
    let mut engine = Engine::builder(setup.total_nodes(), catalog, setup.seed)
        .topology(setup.topology())
        .offers(setup.offers())
        .config(config)
        .build();

    let mut gen = RequestGenerator::new(
        setup.services,
        setup.total_nodes(),
        setup.avg_rate_kbps,
        setup.seed,
    )
    .with_endpoints(setup.endpoint_ids());

    // Arrival times over the submission window, deterministic in seed.
    let mut arrival_rng = SimRng::new(setup.seed ^ 0x414C4C4F_43415445);
    let mut arrivals: Vec<SimTime> = match setup.arrivals {
        ArrivalProcess::Uniform => (0..setup.requests)
            .map(|_| SimTime::from_secs_f64(arrival_rng.f64() * setup.submit_window_secs))
            .collect(),
        ArrivalProcess::Poisson => {
            // Exponential gaps at rate requests/window; truncate or pad
            // (with uniform draws) to exactly `requests` arrivals.
            let rate = setup.requests as f64 / setup.submit_window_secs.max(1e-9);
            let mut out = Vec::with_capacity(setup.requests);
            let mut t = 0.0;
            while out.len() < setup.requests {
                t += arrival_rng.exp(rate);
                if t >= setup.submit_window_secs {
                    break;
                }
                out.push(SimTime::from_secs_f64(t));
            }
            while out.len() < setup.requests {
                out.push(SimTime::from_secs_f64(
                    arrival_rng.f64() * setup.submit_window_secs,
                ));
            }
            out
        }
    };
    arrivals.sort_unstable();
    for at in arrivals {
        engine.submit_at(at, gen.next_request());
    }
    let horizon =
        SimTime::ZERO + SimDuration::from_secs_f64(setup.submit_window_secs + setup.measure_secs);
    engine.run_until(horizon);

    ExperimentOutcome {
        report: engine.report(),
        composer,
        avg_rate_kbps: setup.avg_rate_kbps,
        seed: setup.seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_setup_runs_and_delivers() {
        let setup = PaperSetup::small(42);
        let out = run_experiment(&setup, ComposerKind::MinCost);
        let r = &out.report;
        assert!(r.composed + r.rejected == setup.requests as u64);
        assert!(r.composed > 0, "nothing composed");
        assert!(r.generated > 0, "no units generated");
        assert!(r.delivered > 0, "no units delivered");
        assert!(r.delivered <= r.generated);
        assert!(r.delay_ms.mean() > 0.0, "zero delay is impossible");
    }

    #[test]
    fn deterministic_given_seed() {
        let setup = PaperSetup::small(7);
        let a = run_experiment(&setup, ComposerKind::MinCost).report;
        let b = run_experiment(&setup, ComposerKind::MinCost).report;
        assert_eq!(a.composed, b.composed);
        assert_eq!(a.generated, b.generated);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.timely, b.timely);
        assert_eq!(a.total_drops(), b.total_drops());
        assert!((a.delay_ms.mean() - b.delay_ms.mean()).abs() < 1e-12);
    }

    #[test]
    fn all_composers_run_the_same_workload() {
        let setup = PaperSetup::small(3);
        for kind in ComposerKind::ALL {
            let out = run_experiment(&setup, kind);
            assert_eq!(
                out.report.composed + out.report.rejected,
                setup.requests as u64,
                "{kind:?}"
            );
        }
    }

    #[test]
    fn offers_cover_all_services_and_spare_edges() {
        let setup = PaperSetup::default();
        let offers = setup.offers();
        assert_eq!(offers.len(), setup.total_nodes());
        for s in 0..setup.services {
            assert!(
                offers[..setup.processing_nodes()]
                    .iter()
                    .any(|o| o.contains(&s)),
                "service {s} unprovided"
            );
        }
        for o in &offers[setup.processing_nodes()..] {
            assert!(o.is_empty(), "edge node hosts services");
        }
    }

    #[test]
    fn poisson_arrivals_run_and_differ_from_uniform() {
        let uniform = PaperSetup::small(9);
        let poisson = PaperSetup {
            arrivals: ArrivalProcess::Poisson,
            ..PaperSetup::small(9)
        };
        let a = run_experiment(&uniform, ComposerKind::MinCost).report;
        let b = run_experiment(&poisson, ComposerKind::MinCost).report;
        assert_eq!(a.composed + a.rejected, b.composed + b.rejected);
        assert!(b.delivered > 0);
        // Same workload, different arrival schedule: some metric differs.
        assert!(
            a.generated != b.generated || (a.delay_ms.mean() - b.delay_ms.mean()).abs() > 1e-9,
            "arrival process had no effect"
        );
    }

    #[test]
    fn endpoints_are_edge_nodes() {
        let setup = PaperSetup::default();
        let ids = setup.endpoint_ids();
        assert_eq!(ids.len(), setup.edge_nodes.0);
        assert!(ids.iter().all(|&v| v >= setup.processing_nodes()));
    }
}
