//! Random service-request generation (§4.1).

use desim::SimRng;
use rasc_core::model::{ServiceRequest, DEFAULT_UNIT_BITS};

/// Draws service requests with the paper's distributions.
#[derive(Clone, Debug)]
pub struct RequestGenerator {
    rng: SimRng,
    num_services: usize,
    num_nodes: usize,
    /// Nodes eligible as stream endpoints. Defaults to every node; the
    /// paper-scale scenario restricts endpoints to adequately provisioned
    /// nodes (a user attaches their media source/sink from a machine that
    /// can at least sustain its own stream).
    endpoints: Vec<usize>,
    /// Average per-request rate in kilobits/second (the x-axis of every
    /// figure). Individual requests draw uniformly in ±25% of this.
    pub avg_rate_kbps: f64,
    /// Minimum/maximum number of services per request (paper: 2–5).
    pub services_per_request: (usize, usize),
}

impl RequestGenerator {
    /// Creates a generator over `num_services` services and `num_nodes`
    /// nodes with the paper's defaults.
    pub fn new(num_services: usize, num_nodes: usize, avg_rate_kbps: f64, seed: u64) -> Self {
        assert!(num_services >= 1 && num_nodes >= 2);
        assert!(avg_rate_kbps > 0.0);
        RequestGenerator {
            rng: SimRng::new(seed ^ 0x5245515F47454E31),
            num_services,
            num_nodes,
            endpoints: (0..num_nodes).collect(),
            avg_rate_kbps,
            services_per_request: (2, 5),
        }
    }

    /// Restricts endpoint (source/destination) choice to the given nodes.
    pub fn with_endpoints(mut self, endpoints: Vec<usize>) -> Self {
        assert!(endpoints.len() >= 2, "need at least two endpoint nodes");
        assert!(endpoints.iter().all(|&v| v < self.num_nodes));
        self.endpoints = endpoints;
        self
    }

    /// Draws the next request: 2–5 distinct services split into one or
    /// two substreams (mirroring the paper's Figure 2 shape), a rate in
    /// ±25% of the average, and distinct random endpoints.
    pub fn next_request(&mut self) -> ServiceRequest {
        let (lo, hi) = self.services_per_request;
        let hi = hi.min(self.num_services);
        let lo = lo.min(hi);
        let count = self.rng.range_usize(lo, hi + 1);
        let services = self.rng.sample_indices(self.num_services, count);

        // One substream, or two when there are enough services (the
        // paper's example request graph has two).
        let two = count >= 3 && self.rng.chance(0.5);
        let substreams: Vec<Vec<usize>> = if two {
            let cut = self.rng.range_usize(1, count);
            vec![services[..cut].to_vec(), services[cut..].to_vec()]
        } else {
            vec![services]
        };

        let kbps = self.avg_rate_kbps * self.rng.range_f64(0.75, 1.25);
        let rate_du = kbps * 1_000.0 / DEFAULT_UNIT_BITS as f64;
        // Substreams share the request's rate requirement.
        let rates = vec![rate_du; substreams.len()];

        let source = *self.rng.choose(&self.endpoints);
        let destination = loop {
            let d = *self.rng.choose(&self.endpoints);
            if d != source {
                break d;
            }
        };
        ServiceRequest::multi(substreams, rates, source, destination)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_paper_distributions() {
        let mut g = RequestGenerator::new(10, 32, 100.0, 7);
        for _ in 0..200 {
            let r = g.next_request();
            let total: usize = r.graph.substreams.iter().map(|s| s.services.len()).sum();
            assert!((2..=5).contains(&total), "{total} services");
            assert!(r.graph.substreams.len() <= 2);
            assert_ne!(r.source, r.destination);
            assert!(r.source < 32 && r.destination < 32);
            for &rate in &r.rates {
                let kbps = rate * DEFAULT_UNIT_BITS as f64 / 1000.0;
                assert!((74.9..=125.1).contains(&kbps), "{kbps} kbps");
            }
            // Services within a request are distinct.
            let mut all: Vec<usize> = r
                .graph
                .substreams
                .iter()
                .flat_map(|s| s.services.iter().copied())
                .collect();
            all.sort_unstable();
            let before = all.len();
            all.dedup();
            assert_eq!(all.len(), before, "duplicate services in request");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = RequestGenerator::new(10, 32, 150.0, 3);
        let mut b = RequestGenerator::new(10, 32, 150.0, 3);
        for _ in 0..20 {
            let (x, y) = (a.next_request(), b.next_request());
            assert_eq!(x.source, y.source);
            assert_eq!(x.destination, y.destination);
            assert_eq!(x.rates, y.rates);
            assert_eq!(x.graph, y.graph);
        }
    }

    #[test]
    fn both_substream_shapes_occur() {
        let mut g = RequestGenerator::new(10, 32, 100.0, 11);
        let mut ones = 0;
        let mut twos = 0;
        for _ in 0..100 {
            match g.next_request().graph.substreams.len() {
                1 => ones += 1,
                2 => twos += 1,
                n => panic!("unexpected substream count {n}"),
            }
        }
        assert!(ones > 10 && twos > 10, "ones={ones} twos={twos}");
    }

    #[test]
    fn small_catalogs_clamp_service_count() {
        let mut g = RequestGenerator::new(2, 8, 100.0, 5);
        for _ in 0..50 {
            let r = g.next_request();
            let total: usize = r.graph.substreams.iter().map(|s| s.services.len()).sum();
            assert!(total <= 2);
        }
    }
}
