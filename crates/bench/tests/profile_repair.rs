//! Manual profiling probe for the adaptation hot path. Ignored by
//! default; run with
//! `cargo test -p rasc-bench --release --test profile_repair -- --ignored --nocapture`.

use mincostflow::{Algorithm, FlowSolver};
use rasc_bench::instances::{layered, layered_host_columns};
use std::time::Instant;

fn min_us<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64() * 1e6);
    }
    best
}

#[test]
#[ignore]
fn profile_crash_repair() {
    for &(layers, width) in &[(3usize, 8usize), (5, 16), (6, 24)] {
        let (mut net0, src, dst, target) = layered(layers, width, 42);
        let mut solver0 = FlowSolver::new(Algorithm::DijkstraSsp);
        solver0.solve(&mut net0, src, dst, target).unwrap();
        let columns = layered_host_columns(&net0, width);
        let mut order: Vec<usize> = (0..width).collect();
        let load = |k: usize| -> i64 { columns[k].iter().map(|&e| net0.flow_on(e)).sum::<i64>() };
        order.sort_by_key(|&k| load(k));

        // Distribution over all possible single-host crashes.
        let mut repair_sum = 0f64;
        let mut cold_sum = 0f64;
        let mut per_host = Vec::new();
        for (k, col) in columns.iter().enumerate() {
            let victim = col.clone();
            let repair_us = min_us(10, || {
                let mut net = net0.clone();
                let mut solver = solver0.clone();
                let out = solver.repair_deletions(&mut net, &victim);
                assert!(out.complete());
            });
            let cold_us = min_us(10, || {
                let mut cold = net0.clone();
                for &e in &victim {
                    cold.disable_edge(e);
                }
                cold.reset_flow();
                mincostflow::min_cost_flow(&mut cold, src, dst, target, Default::default())
                    .unwrap();
            });
            repair_sum += repair_us;
            cold_sum += cold_us;
            per_host.push((load(k), repair_us, cold_us));
        }
        per_host.sort_by_key(|&(l, _, _)| l);
        for &(l, r, c) in &per_host {
            println!(
                "  load={l:>7} repair={r:>7.1}us cold={c:>7.1}us speedup={:.1}x",
                c / r
            );
        }
        println!(
            "{layers}x{width} EXPECTED (uniform crash): repair={:.1}us cold={:.1}us speedup={:.1}x",
            repair_sum / width as f64,
            cold_sum / width as f64,
            cold_sum / repair_sum,
        );

        for (tag, k) in [("max", order[width - 1]), ("med", order[width / 2])] {
            let victim = columns[k].clone();
            let drained: i64 = victim.iter().map(|&e| net0.flow_on(e)).sum();

            let clone_us = min_us(30, || (net0.clone(), solver0.clone()));
            let mut phases = 0;
            let repair_us = min_us(30, || {
                let mut net = net0.clone();
                let mut solver = solver0.clone();
                let out = solver.repair_deletions(&mut net, &victim);
                assert!(out.complete());
                phases = out.phases;
            });
            let cold_us = min_us(30, || {
                let mut cold = net0.clone();
                for &e in &victim {
                    cold.disable_edge(e);
                }
                cold.reset_flow();
                mincostflow::min_cost_flow(&mut cold, src, dst, target, Default::default())
                    .unwrap();
            });

            println!(
                "{layers}x{width} {tag}: target={target} drained={drained} phases={phases} \
                 clone={clone_us:.1}us repair+clone={repair_us:.1}us cold+clone={cold_us:.1}us \
                 speedup={:.1}x",
                cold_us / repair_us,
            );
        }
    }
}
