//! Admission-throughput benchmark scenario: thousand-node power-law
//! overlays, concurrent tenants, and the batch pipeline — the
//! admissions/sec headline.
//!
//! Two regimes are compared at each overlay size:
//!
//! * `serial_1req` — the legacy control plane: every request pays its
//!   own `O(n)` snapshot clone and an **uncapped** composition that
//!   feeds every discovered provider into the flow network. This is
//!   exactly what the engine's single-request submit path did before
//!   this bench family existed, and it is the baseline the ≥5× headline
//!   is measured against.
//! * `batch{B}` — the [`BatchAdmitter`] pipeline at batch size `B`: one
//!   snapshot clone per batch, per-worker solver arenas, and capped
//!   candidate selection over the indexed view
//!   ([`CANDIDATE_CAP`] hosts per layer via the capacity-bucket walk),
//!   with the serial, submission-ordered reconcile committing winners
//!   and replaying conflicts.
//!
//! Both regimes run the same requests against the same base view and
//! count **admitted applications per wall-clock second**; rejections and
//! conflict replays therefore penalize the number instead of inflating
//! it. The `*_pooled` variant runs the optimistic phase on a
//! multi-worker pool — on a single-core box it measures pool overhead,
//! not scaling, and is annotated accordingly (see
//! [`Measurement::note`](crate::microbench::Measurement)).

use crate::microbench::{count_allocations, record_rate, Measurement};
use desim::SimRng;
use overlay::RegionMap;
use rasc_core::compose::{
    BatchAdmitter, BatchItem, ComposeError, Composer, LatencyMatrix, MinCostComposer, ProviderMap,
    ShardedAdmitter,
};
use rasc_core::model::{ServiceCatalog, ServiceRequest};
use rasc_core::view::SystemView;
use simnet::Topology;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Overlay sizes of the scaling curve (the paper's evaluation stopped
/// at 40 nodes; the ROADMAP north star is production scale).
pub const SIZES: [usize; 3] = [1_000, 4_000, 10_000];

/// Batch sizes measured per overlay size.
pub const BATCHES: [usize; 3] = [1, 16, 128];

/// Per-layer candidate cap for the batch pipeline (top-`k` hosts by
/// bottleneck availability, selected through the capacity index).
pub const CANDIDATE_CAP: usize = 16;

/// Services in the benchmark catalog.
pub const SERVICES: usize = 10;

/// One provider per this many overlay nodes (fixed density, so the
/// provider count grows with `n` — the regime where uncapped per-layer
/// scans stop being free).
pub const PROVIDER_DENSITY: usize = 16;

/// A reusable admission workload: one power-law overlay, one catalog,
/// one provider map at fixed density, and a pool of distinct requests.
pub struct AdmissionScenario {
    /// Overlay size.
    pub n: usize,
    /// Synthetic service catalog ([`SERVICES`] entries).
    pub catalog: ServiceCatalog,
    /// Fresh measured view of the power-law overlay.
    pub view: SystemView,
    /// Requests paired with their (shared) provider map.
    pub items: Vec<BatchItem>,
    /// Link latencies, shared by every composer this scenario builds.
    pub latencies: Arc<LatencyMatrix>,
    /// Site assignment of the power-law overlay (cluster id per node),
    /// the input to region sharding.
    pub sites: Vec<u32>,
}

/// Builds the scenario: `requests` distinct 3-stage chains with spread
/// endpoints over a [`Topology::power_law`] overlay at `n` nodes.
/// Endpoints are distinct per request — concurrent tenants, not one
/// source resubmitting — so batch conflicts come from genuinely shared
/// hosts, not an artificial endpoint bottleneck.
pub fn scenario(n: usize, requests: usize, seed: u64) -> AdmissionScenario {
    assert!(n >= 64, "scenario needs room for endpoints and providers");
    let catalog = ServiceCatalog::synthetic(SERVICES, 1);
    let topology = Topology::power_law(n, simnet::kbps(300.0), simnet::kbps(3000.0), seed);
    let view = SystemView::fresh(&topology);
    let latencies = Arc::new(LatencyMatrix::from_topology(&topology));
    let mut rng = SimRng::new(seed ^ 0xAD31_5510);
    let mut providers = ProviderMap::new();
    for s in 0..SERVICES {
        let mut hosts = rng.sample_indices(n, (n / PROVIDER_DENSITY).max(16));
        hosts.sort_unstable();
        hosts.dedup();
        providers.insert(s, hosts);
    }
    let items = (0..requests)
        .map(|i| {
            // Distinct chains (three services, offsets coprime to the
            // catalog size) and endpoint pairs spread over the overlay.
            let chain = [i % SERVICES, (i + 3) % SERVICES, (i + 7) % SERVICES];
            let source = (i * 2) % n;
            let destination = (i * 2 + 1) % n;
            (
                ServiceRequest::chain(&chain, 6.0, source, destination),
                providers.clone(),
            )
        })
        .collect();
    let sites = topology
        .site_assignment()
        .expect("power-law overlays are clustered")
        .to_vec();
    AdmissionScenario {
        n,
        catalog,
        view,
        items,
        latencies,
        sites,
    }
}

/// Selection-microbench fixture: the scenario's view plus one sorted
/// provider list at the scenario's density (what a single compose layer
/// sees at size `n`).
pub fn selection_setup(n: usize, seed: u64) -> (SystemView, Vec<usize>) {
    let sc = scenario(n, 1, seed);
    let providers = sc.items[0].1.values().next().expect("has services").clone();
    (sc.view, providers)
}

/// The uncapped legacy composer (what the engine ran per request).
fn serial_composer(sc: &AdmissionScenario) -> MinCostComposer {
    MinCostComposer::default().with_latencies(sc.latencies.clone())
}

/// A batch admitter whose worker arenas run capped, index-driven
/// candidate selection — the thousand-node configuration.
pub fn admitter(sc: &AdmissionScenario, threads: usize) -> BatchAdmitter {
    let latencies = sc.latencies.clone();
    BatchAdmitter::new(threads, move || {
        Box::new(
            MinCostComposer::default()
                .with_latencies(latencies.clone())
                .with_candidate_cap(CANDIDATE_CAP),
        )
    })
}

/// Admitted-apps/sec of the serial single-request path: per request one
/// whole-view clone (the per-submission snapshot) plus one uncapped
/// compose. Runs for at least `budget`, whole passes over the request
/// pool at a time.
pub fn serial_apps_per_sec(sc: &AdmissionScenario, budget: Duration) -> Measurement {
    let mut composer = serial_composer(sc);
    let mut rng = SimRng::new(7);
    let mut admitted = 0u64;
    let start = Instant::now();
    loop {
        for (req, providers) in &sc.items {
            let mut view = sc.view.clone();
            if composer
                .compose(req, &sc.catalog, providers, &mut view, &mut rng)
                .is_ok()
            {
                admitted += 1;
            }
        }
        if start.elapsed() >= budget {
            break;
        }
    }
    record_rate(
        &format!("admission/apps_per_sec/serial_1req/{}", sc.n),
        admitted,
        start.elapsed(),
    )
}

/// Admitted-apps/sec of the batch pipeline at `batch` requests per
/// admitted batch on `threads` optimistic workers. Each batch starts
/// from a fresh clone of the base snapshot (the steady state of a
/// control plane that re-snapshots per burst).
pub fn batch_apps_per_sec(
    name: &str,
    sc: &AdmissionScenario,
    batch: usize,
    threads: usize,
    budget: Duration,
) -> Measurement {
    let admitter = admitter(sc, threads);
    let mut admitted = 0u64;
    // Per-burst snapshot buffer, re-synced with `clone_from` (reuses
    // every heap allocation; a fresh clone would cost O(n) allocs).
    let mut view = sc.view.clone();
    let start = Instant::now();
    loop {
        for (b, chunk) in sc.items.chunks(batch).enumerate() {
            view.clone_from(&sc.view);
            let out = admitter.admit_batch(&mut view, &sc.catalog, chunk, b as u64);
            admitted += out.admitted() as u64;
        }
        if start.elapsed() >= budget {
            break;
        }
    }
    record_rate(
        &format!("admission/apps_per_sec/{name}/{}", sc.n),
        admitted,
        start.elapsed(),
    )
    .with_threads(threads)
}

/// A region-sharded admitter over the scenario's site structure, with
/// the same capped composer configuration as [`admitter`].
/// `refresh_every` is in batches (the admitter's self-refreshing mode):
/// 1 re-captures the digest before every batch, larger values let
/// shard-local composers see progressively staler remote capacity.
pub fn sharded_admitter(
    sc: &AdmissionScenario,
    shards: usize,
    threads: usize,
    refresh_every: u64,
) -> ShardedAdmitter {
    let latencies = sc.latencies.clone();
    let regions = RegionMap::from_sites(&sc.sites, shards);
    ShardedAdmitter::new(regions, threads, refresh_every, move || {
        Box::new(
            MinCostComposer::default()
                .with_latencies(latencies.clone())
                .with_candidate_cap(CANDIDATE_CAP),
        )
    })
}

/// Admitted-apps/sec of the region-sharded pipeline. Each batch starts
/// from a fresh re-sync of the base snapshot, exactly like
/// [`batch_apps_per_sec`], so sharded and global numbers are directly
/// comparable.
pub fn sharded_apps_per_sec(
    name: &str,
    sc: &AdmissionScenario,
    shards: usize,
    batch: usize,
    threads: usize,
    refresh_every: u64,
    budget: Duration,
) -> Measurement {
    let mut admitter = sharded_admitter(sc, shards, threads, refresh_every);
    let mut admitted = 0u64;
    let mut view = sc.view.clone();
    let start = Instant::now();
    loop {
        for (b, chunk) in sc.items.chunks(batch).enumerate() {
            view.clone_from(&sc.view);
            let out = admitter.admit_batch(&mut view, &sc.catalog, chunk, b as u64);
            admitted += out.outcome.admitted() as u64;
        }
        if start.elapsed() >= budget {
            break;
        }
    }
    record_rate(
        &format!("admission/sharded_apps_per_sec/{name}/{}", sc.n),
        admitted,
        start.elapsed(),
    )
    .with_threads(threads)
}

/// Accounting of one saturating sharded run (see [`sharded_saturation`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardedSaturation {
    /// Requests submitted across all batches.
    pub submitted: usize,
    /// Requests admitted.
    pub admitted: usize,
    /// Commit-time conflicts (proposal overcommitted a host).
    pub conflicts: usize,
    /// Conflicted requests whose replay also failed.
    pub replay_rejected: usize,
    /// Admitted requests with a placement outside the source's region.
    pub cross_shard: usize,
}

/// Runs the scenario's request pool through the sharded pipeline into
/// **one** view — no per-burst reset, looping the pool `passes` times —
/// so capacity genuinely drains and later batches compose against
/// remote digests that are `refresh_every` batches stale. The conflict
/// and replay counts trace the staleness curve: near saturation, the
/// longer the digest lags the ledger, the more optimistic cross-shard
/// placements bounce at commit. (A single pass barely dents a
/// thousand-node overlay, which flattens the curve to zero — saturate
/// first, then measure.)
pub fn sharded_saturation(
    sc: &AdmissionScenario,
    shards: usize,
    batch: usize,
    threads: usize,
    refresh_every: u64,
    passes: usize,
) -> ShardedSaturation {
    let mut admitter = sharded_admitter(sc, shards, threads, refresh_every);
    let mut view = sc.view.clone();
    let mut acc = ShardedSaturation::default();
    let mut round = 0u64;
    for _ in 0..passes.max(1) {
        for chunk in sc.items.chunks(batch) {
            let out = admitter.admit_batch(&mut view, &sc.catalog, chunk, round);
            round += 1;
            acc.submitted += chunk.len();
            acc.admitted += out.outcome.admitted();
            acc.conflicts += out.outcome.stats.conflicts;
            acc.replay_rejected += out.outcome.stats.replay_rejected;
            acc.cross_shard += out.cross_shard;
        }
    }
    acc
}

/// Heap allocations per request in the batch pipeline's steady state
/// (arenas warm, pooled worker views primed). Bounded, not zero: every
/// admitted app returns a freshly allocated [`ExecutionGraph`]
/// (rasc_core::model::ExecutionGraph) — but snapshot handling is
/// allocation-free, because both this function's per-burst view and the
/// admitter's pooled worker views re-sync via `SystemView::clone_from`,
/// which reuses every heap buffer. The gate in `repro bench` catches a
/// regression to per-request snapshot clones or arena rebuilds, which
/// cost thousands of allocations each at thousand-node scale.
pub fn steady_state_allocs_per_request(sc: &AdmissionScenario, batch: usize) -> f64 {
    let admitter = admitter(sc, 1);
    let chunk = &sc.items[..batch.min(sc.items.len())];
    // Warm the arenas, the pooled worker views, and this function's own
    // per-burst snapshot buffer.
    let mut view = sc.view.clone();
    for seed in 0..3 {
        view.clone_from(&sc.view);
        admitter.admit_batch(&mut view, &sc.catalog, chunk, seed);
    }
    let rounds = 5u64;
    let allocs = count_allocations(|| {
        for seed in 0..rounds {
            view.clone_from(&sc.view);
            let out = admitter.admit_batch(&mut view, &sc.catalog, chunk, seed);
            std::hint::black_box(out.admitted());
        }
    });
    allocs as f64 / (rounds * chunk.len() as u64) as f64
}

/// Sanity probe used by tests and the bench preamble: one batch through
/// the pipeline, returning `(admitted, conflicts, rejected)`.
pub fn probe(sc: &AdmissionScenario, batch: usize) -> (usize, usize, usize) {
    let admitter = admitter(sc, 1);
    let chunk = &sc.items[..batch.min(sc.items.len())];
    let mut view = sc.view.clone();
    let out = admitter.admit_batch(&mut view, &sc.catalog, chunk, 0);
    let rejected = out
        .results
        .iter()
        .filter(|r| matches!(r, Err(ComposeError::InsufficientCapacity { .. })))
        .count();
    (out.admitted(), out.stats.conflicts, rejected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_admits_most_of_a_large_batch() {
        let sc = scenario(1_000, 64, 11);
        let (admitted, _conflicts, rejected) = probe(&sc, 64);
        assert!(
            admitted >= 56,
            "a fresh 1k-node overlay should admit nearly all of 64 \
             requests (admitted {admitted}, rejected {rejected})"
        );
    }

    #[test]
    fn serial_and_batch_regimes_both_admit() {
        let sc = scenario(1_000, 16, 3);
        let m = serial_apps_per_sec(&sc, Duration::from_millis(1));
        assert!(m.value > 0.0, "serial path admitted nothing");
        let b = batch_apps_per_sec("batch16", &sc, 16, 1, Duration::from_millis(1));
        assert!(b.value > 0.0, "batch path admitted nothing");
        assert!(b.name.ends_with("/1000"));
    }

    #[test]
    fn sharded_one_shard_matches_global_batch() {
        let sc = scenario(1_000, 32, 17);
        let global = admitter(&sc, 2);
        let mut view_a = sc.view.clone();
        let out_a = global.admit_batch(&mut view_a, &sc.catalog, &sc.items, 5);
        let mut sharded = sharded_admitter(&sc, 1, 2, 1);
        let mut view_b = sc.view.clone();
        let out_b = sharded.admit_batch(&mut view_b, &sc.catalog, &sc.items, 5);
        assert_eq!(out_a.digest(), out_b.outcome.digest());
        assert_eq!(view_a, view_b);
        assert_eq!(out_b.cross_shard, 0);
    }

    #[test]
    fn sharded_saturation_drains_capacity() {
        let sc = scenario(1_000, 128, 42);
        let acc = sharded_saturation(&sc, 8, 16, 2, 4, 16);
        assert_eq!(acc.submitted, 128 * 16);
        assert!(acc.admitted > 0, "sharded pipeline admitted nothing");
        assert!(
            acc.admitted < acc.submitted,
            "16 passes should drain the overlay into rejections"
        );
        assert!(
            acc.admitted >= acc.cross_shard,
            "cross-shard count exceeds admissions"
        );
        eprintln!("saturation: {acc:?}");
    }

    #[test]
    fn selection_setup_is_sorted_and_dense() {
        let (view, providers) = selection_setup(1_000, 5);
        assert_eq!(view.len(), 1_000);
        assert!(providers.windows(2).all(|w| w[0] < w[1]));
        assert!(providers.len() >= 1_000 / PROVIDER_DENSITY / 2);
    }
}
