//! Experiment harness for the RASC reproduction: sweeps, aggregation,
//! table rendering, and the in-repo microbenchmark harness shared by
//! the `repro` binary and the bench targets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod chaos;
pub mod dataplane;
pub mod figures;
pub mod instances;
pub mod microbench;
pub mod sweep;

pub use chaos::{
    chaos_soak, chaos_soak_threads, sharded_soak_threads, ChaosConfig, ChaosSummary,
    ShardedSoakConfig, ShardedSoakSummary,
};
pub use figures::{render_figure, Figure, FigureSeries};
pub use microbench::{bench, bench_config, render_json, Measurement};
pub use sweep::{paper_sweep, paper_sweep_threads, SweepCell, SweepConfig};
