//! Experiment harness for the RASC reproduction: sweeps, aggregation,
//! and table rendering shared by the `repro` binary and the Criterion
//! benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod sweep;

pub use figures::{render_figure, Figure, FigureSeries};
pub use sweep::{paper_sweep, SweepCell, SweepConfig};
