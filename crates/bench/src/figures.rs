//! Rendering sweep results as the paper's figures (ASCII tables + CSV).

use crate::sweep::SweepCell;
use rasc_core::compose::ComposerKind;
use rasc_core::metrics::RunReport;

/// Which figure of the paper a projection reproduces.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Figure {
    /// Fig. 6: number of successfully composed requests.
    Composed,
    /// Fig. 7: average end-to-end delay (ms).
    Delay,
    /// Fig. 8: fraction of data units delivered (not dropped).
    Delivered,
    /// Fig. 9: fraction of delivered units that were timely.
    Timely,
    /// Fig. 10: fraction of delivered units out of order.
    OutOfOrder,
    /// Fig. 11: average jitter (ms).
    Jitter,
}

impl Figure {
    /// All figures, in paper order.
    pub const ALL: [Figure; 6] = [
        Figure::Composed,
        Figure::Delay,
        Figure::Delivered,
        Figure::Timely,
        Figure::OutOfOrder,
        Figure::Jitter,
    ];

    /// Paper figure number.
    pub fn number(self) -> u32 {
        match self {
            Figure::Composed => 6,
            Figure::Delay => 7,
            Figure::Delivered => 8,
            Figure::Timely => 9,
            Figure::OutOfOrder => 10,
            Figure::Jitter => 11,
        }
    }

    /// The plotted y-axis label.
    pub fn title(self) -> &'static str {
        match self {
            Figure::Composed => "Number of serviced requests",
            Figure::Delay => "Average end-to-end delay (ms)",
            Figure::Delivered => "Fraction of delivered data units",
            Figure::Timely => "Fraction of flawlessly delivered data units",
            Figure::OutOfOrder => "Fraction of data units delivered out of order",
            Figure::Jitter => "Average jitter (ms)",
        }
    }

    /// Extracts this figure's y value from one run.
    pub fn value(self, r: &RunReport) -> f64 {
        match self {
            Figure::Composed => r.composed as f64,
            Figure::Delay => r.delay_ms.mean(),
            Figure::Delivered => r.delivered_fraction(),
            Figure::Timely => r.timely_fraction(),
            Figure::OutOfOrder => r.out_of_order_fraction(),
            Figure::Jitter => r.jitter_ms.mean(),
        }
    }

    /// Parses a CLI figure name (`fig6`..`fig11`).
    pub fn from_arg(arg: &str) -> Option<Figure> {
        match arg {
            "fig6" | "composed" => Some(Figure::Composed),
            "fig7" | "delay" => Some(Figure::Delay),
            "fig8" | "delivered" => Some(Figure::Delivered),
            "fig9" | "timely" => Some(Figure::Timely),
            "fig10" | "out-of-order" => Some(Figure::OutOfOrder),
            "fig11" | "jitter" => Some(Figure::Jitter),
            _ => None,
        }
    }
}

/// One algorithm's series across the rate axis for a figure.
#[derive(Clone, Debug)]
pub struct FigureSeries {
    /// The algorithm.
    pub composer: ComposerKind,
    /// `(rate_kbps, mean, stddev)` per rate point.
    pub points: Vec<(f64, f64, f64)>,
}

/// Projects sweep cells into a figure's series (one per algorithm).
pub fn project(figure: Figure, cells: &[SweepCell]) -> Vec<FigureSeries> {
    ComposerKind::ALL
        .iter()
        .map(|&composer| {
            let mut points: Vec<(f64, f64, f64)> = cells
                .iter()
                .filter(|c| c.composer == composer)
                .map(|c| {
                    (
                        c.rate_kbps,
                        c.mean(|r| figure.value(r)),
                        c.stddev(|r| figure.value(r)),
                    )
                })
                .collect();
            points.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            FigureSeries { composer, points }
        })
        .collect()
}

/// Renders one figure as an ASCII table plus CSV lines, mirroring the
/// paper's "series per algorithm over the rate axis" format.
pub fn render_figure(figure: Figure, cells: &[SweepCell]) -> String {
    let series = project(figure, cells);
    let mut out = String::new();
    out.push_str(&format!("Figure {}: {}\n", figure.number(), figure.title()));
    out.push_str(&format!("{:<22}", "rate (Kb/s)"));
    for s in &series {
        out.push_str(&format!("{:>18}", s.composer.label()));
    }
    out.push('\n');
    let rates: Vec<f64> = series[0].points.iter().map(|p| p.0).collect();
    for (i, &rate) in rates.iter().enumerate() {
        out.push_str(&format!("{:<22}", format!("{rate:.0}")));
        for s in &series {
            let (_, mean, sd) = s.points[i];
            out.push_str(&format!("{:>18}", format!("{mean:.3} ±{sd:.3}")));
        }
        out.push('\n');
    }
    out.push_str("csv,figure,rate_kbps");
    for s in &series {
        out.push_str(&format!(",{}", s.composer.label()));
    }
    out.push('\n');
    for (i, &rate) in rates.iter().enumerate() {
        out.push_str(&format!("csv,fig{},{rate:.0}", figure.number()));
        for s in &series {
            out.push_str(&format!(",{:.6}", s.points[i].1));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(composer: ComposerKind, rate: f64, composed: u64) -> SweepCell {
        let r = RunReport {
            composed,
            generated: 100,
            delivered: 90,
            timely: 80,
            ..Default::default()
        };
        SweepCell {
            composer,
            rate_kbps: rate,
            runs: vec![r],
        }
    }

    fn cells() -> Vec<SweepCell> {
        let mut v = Vec::new();
        for &c in &ComposerKind::ALL {
            for (i, &r) in [50.0, 100.0].iter().enumerate() {
                v.push(cell(c, r, 10 + i as u64));
            }
        }
        v
    }

    #[test]
    fn projection_orders_by_rate() {
        let series = project(Figure::Composed, &cells());
        assert_eq!(series.len(), 3);
        for s in &series {
            assert_eq!(s.points[0].0, 50.0);
            assert_eq!(s.points[1].0, 100.0);
            assert_eq!(s.points[0].1, 10.0);
            assert_eq!(s.points[1].1, 11.0);
        }
    }

    #[test]
    fn figure_values_extract_expected_fields() {
        let r = RunReport {
            composed: 7,
            generated: 100,
            delivered: 50,
            timely: 25,
            out_of_order: 5,
            ..Default::default()
        };
        assert_eq!(Figure::Composed.value(&r), 7.0);
        assert_eq!(Figure::Delivered.value(&r), 0.5);
        assert_eq!(Figure::Timely.value(&r), 0.5);
        assert_eq!(Figure::OutOfOrder.value(&r), 0.1);
    }

    #[test]
    fn render_contains_table_and_csv() {
        let text = render_figure(Figure::Composed, &cells());
        assert!(text.contains("Figure 6"));
        assert!(text.contains("mincost"));
        assert!(text.contains("csv,fig6,50"));
    }

    #[test]
    fn arg_parsing_roundtrips() {
        for f in Figure::ALL {
            let arg = format!("fig{}", f.number());
            assert_eq!(Figure::from_arg(&arg), Some(f));
        }
        assert_eq!(Figure::from_arg("nope"), None);
    }
}
