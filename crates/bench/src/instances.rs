//! Deterministic benchmark instances shared by `repro bench` and the
//! standalone bench targets: composition-shaped layered flow graphs and
//! the PlanetLab-like composition scenario.

use desim::SimRng;
use mincostflow::FlowNetwork;
use rasc_core::compose::ProviderMap;
use rasc_core::model::{ServiceCatalog, ServiceRequest};
use rasc_core::view::SystemView;
use simnet::Topology;

/// Builds a layered composition-shaped min-cost-flow instance: `layers`
/// stages of `width` node-split candidate hosts, with capacities/costs
/// in the ranges the monitoring windows produce. Returns
/// `(net, src, dst, feasible_target)`.
pub fn layered(layers: usize, width: usize, seed: u64) -> (FlowNetwork, usize, usize, i64) {
    let mut rng = SimRng::new(seed);
    let mut net = FlowNetwork::new(2);
    let (src, dst) = (0, 1);
    let gate = net.add_node();
    net.add_edge(src, gate, 1_000_000, 0);
    let mut prev: Vec<usize> = vec![gate];
    let mut min_layer_cap = i64::MAX;
    for _ in 0..layers {
        let mut outs = Vec::with_capacity(width);
        let mut layer_cap = 0;
        for _ in 0..width {
            let v_in = net.add_node();
            let v_out = net.add_node();
            let cap = rng.range_u64(5_000, 40_000) as i64;
            let cost = rng.range_u64(0, 200) as i64;
            net.add_edge(v_in, v_out, cap, cost);
            layer_cap += cap;
            for &p in &prev {
                net.add_edge(p, v_in, 1_000_000, rng.range_u64(0, 30) as i64);
            }
            outs.push(v_out);
        }
        min_layer_cap = min_layer_cap.min(layer_cap);
        prev = outs;
    }
    for &p in &prev {
        net.add_edge(p, dst, 1_000_000, 0);
    }
    // Demand 60% of the narrowest layer: feasible, non-trivial.
    (net, src, dst, min_layer_cap * 6 / 10)
}

/// The composition microbench scenario: a PlanetLab-like `n`-node view,
/// a 10-service catalog with 16 candidate hosts per service, and a
/// 3-stage chain request from node `n-2` to node `n-1`.
pub fn compose_setup(n: usize) -> (ServiceCatalog, SystemView, ProviderMap, ServiceRequest) {
    let catalog = ServiceCatalog::synthetic(10, 1);
    let view = SystemView::fresh(&Topology::planetlab_like(
        n,
        simnet::kbps(300.0),
        simnet::kbps(3000.0),
        1,
    ));
    let mut rng = SimRng::new(2);
    let mut providers = ProviderMap::new();
    for s in 0..10 {
        let mut hosts = rng.sample_indices(n - 2, 16.min(n - 2));
        hosts.sort_unstable();
        providers.insert(s, hosts);
    }
    let req = ServiceRequest::chain(&[0, 3, 7], 12.0, n - 2, n - 1);
    (catalog, view, providers, req)
}

/// [`compose_setup`] with every candidate host (and the endpoints)
/// saturated — the steady state of an overloaded system, where most
/// requests bounce off admission control. Composing against this view
/// always fails, exercising the reject-and-roll-back hot path.
pub fn compose_setup_saturated(
    n: usize,
) -> (ServiceCatalog, SystemView, ProviderMap, ServiceRequest) {
    let (catalog, mut view, providers, req) = compose_setup(n);
    for v in 0..view.len() {
        // Far beyond any NIC rate; avail clamps at zero.
        view.consume_measured(v, 1e12, 1e12);
    }
    (catalog, view, providers, req)
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimRng;
    use rasc_core::compose::ComposerKind;

    #[test]
    fn layered_instance_is_feasible() {
        let (mut net, src, dst, target) = layered(3, 4, 7);
        assert!(target > 0);
        let sol =
            mincostflow::min_cost_flow(&mut net, src, dst, target, Default::default()).unwrap();
        assert_eq!(sol.flow, target);
    }

    #[test]
    fn compose_setup_admits_and_saturated_rejects() {
        let (catalog, mut view, providers, req) = compose_setup(32);
        let mut rng = SimRng::new(9);
        ComposerKind::MinCost
            .build()
            .compose(&req, &catalog, &providers, &mut view, &mut rng)
            .expect("fresh view admits the request");

        let (catalog, mut view, providers, req) = compose_setup_saturated(32);
        let err = ComposerKind::MinCost
            .build()
            .compose(&req, &catalog, &providers, &mut view, &mut rng)
            .unwrap_err();
        assert!(matches!(
            err,
            rasc_core::compose::ComposeError::InsufficientCapacity { .. }
        ));
    }
}
