//! Deterministic benchmark instances shared by `repro bench` and the
//! standalone bench targets: composition-shaped layered flow graphs and
//! the PlanetLab-like composition scenario.

use desim::SimRng;
use mincostflow::{EdgeId, FlowNetwork};
use rasc_core::compose::ProviderMap;
use rasc_core::model::{ServiceCatalog, ServiceRequest};
use rasc_core::view::SystemView;
use simnet::Topology;

/// Builds a layered composition-shaped min-cost-flow instance: `layers`
/// stages of `width` node-split candidate hosts, with capacities/costs
/// in the ranges the monitoring windows produce. Returns
/// `(net, src, dst, feasible_target)`.
pub fn layered(layers: usize, width: usize, seed: u64) -> (FlowNetwork, usize, usize, i64) {
    let mut net = FlowNetwork::new(0);
    let (src, dst, target) = layered_into(&mut net, layers, width, seed);
    (net, src, dst, target)
}

/// Rebuilds the [`layered`] instance inside a retained arena (the
/// composer's reset-and-rebuild pattern: after the first call the
/// rebuild reuses every buffer and allocates nothing). Returns
/// `(src, dst, feasible_target)`.
pub fn layered_into(
    net: &mut FlowNetwork,
    layers: usize,
    width: usize,
    seed: u64,
) -> (usize, usize, i64) {
    let mut rng = SimRng::new(seed);
    net.reset(2);
    let (src, dst) = (0, 1);
    let gate = net.add_node();
    net.add_edge(src, gate, 1_000_000, 0);
    // Node ids are deterministic (layer `l` host `k` is split into nodes
    // `3 + 2*(l*width + k)` and the next id), so the previous layer's
    // out-nodes are computed instead of collected — the rebuild stays
    // allocation-free, which `repro bench` asserts.
    let prev_out = |layer_base: usize, p: usize| layer_base - 2 * width + 2 * p + 1;
    let mut min_layer_cap = i64::MAX;
    let mut layer_base = gate + 1;
    for l in 0..layers {
        let mut layer_cap = 0;
        for _ in 0..width {
            let v_in = net.add_node();
            let v_out = net.add_node();
            let cap = rng.range_u64(5_000, 40_000) as i64;
            let cost = rng.range_u64(0, 200) as i64;
            net.add_edge(v_in, v_out, cap, cost);
            layer_cap += cap;
            if l == 0 {
                net.add_edge(gate, v_in, 1_000_000, rng.range_u64(0, 30) as i64);
            } else {
                for p in 0..width {
                    let p_out = prev_out(layer_base, p);
                    net.add_edge(p_out, v_in, 1_000_000, rng.range_u64(0, 30) as i64);
                }
            }
        }
        min_layer_cap = min_layer_cap.min(layer_cap);
        layer_base += 2 * width;
    }
    for p in 0..width {
        net.add_edge(prev_out(layer_base, p), dst, 1_000_000, 0);
    }
    // Demand 60% of the narrowest layer: feasible, non-trivial.
    (src, dst, min_layer_cap * 6 / 10)
}

/// The internal (host-capacity) edges of a [`layered`] instance, grouped
/// by host column: entry `k` holds one edge per layer — the arcs a crash
/// of "host k" removes from every stage at once. Internal edges are
/// identified structurally: they are the only arcs with capacity below
/// the 1 000 000 that gate/transfer edges use, and [`layered_into`]
/// inserts them layer-major, host-minor.
pub fn layered_host_columns(net: &FlowNetwork, width: usize) -> Vec<Vec<EdgeId>> {
    let mut columns = vec![Vec::new(); width];
    let mut seen = 0usize;
    for e in net.edges() {
        if net.capacity(e) < 1_000_000 {
            columns[seen % width].push(e);
            seen += 1;
        }
    }
    columns
}

/// Host columns of a *solved* [`layered`] instance ordered by the flow
/// they carry, ascending. The adaptation benches kill
/// `order[width / 2]` (the median-loaded column — the representative
/// cost of a uniformly random crash) and `order[width - 1]` (the
/// most-loaded column, repair's worst case).
pub fn victims_by_load(net: &FlowNetwork, columns: &[Vec<EdgeId>]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..columns.len()).collect();
    order.sort_by_key(|&k| columns[k].iter().map(|&e| net.flow_on(e)).sum::<i64>());
    order
}

/// The composition microbench scenario: a PlanetLab-like `n`-node view,
/// a 10-service catalog with 16 candidate hosts per service, and a
/// 3-stage chain request from node `n-2` to node `n-1`.
pub fn compose_setup(n: usize) -> (ServiceCatalog, SystemView, ProviderMap, ServiceRequest) {
    let catalog = ServiceCatalog::synthetic(10, 1);
    let view = SystemView::fresh(&Topology::planetlab_like(
        n,
        simnet::kbps(300.0),
        simnet::kbps(3000.0),
        1,
    ));
    let mut rng = SimRng::new(2);
    let mut providers = ProviderMap::new();
    for s in 0..10 {
        let mut hosts = rng.sample_indices(n - 2, 16.min(n - 2));
        hosts.sort_unstable();
        providers.insert(s, hosts);
    }
    let req = ServiceRequest::chain(&[0, 3, 7], 12.0, n - 2, n - 1);
    (catalog, view, providers, req)
}

/// [`compose_setup`] with every candidate host (and the endpoints)
/// saturated — the steady state of an overloaded system, where most
/// requests bounce off admission control. Composing against this view
/// always fails, exercising the reject-and-roll-back hot path.
pub fn compose_setup_saturated(
    n: usize,
) -> (ServiceCatalog, SystemView, ProviderMap, ServiceRequest) {
    let (catalog, mut view, providers, req) = compose_setup(n);
    for v in 0..view.len() {
        // Far beyond any NIC rate; avail clamps at zero.
        view.consume_measured(v, 1e12, 1e12);
    }
    (catalog, view, providers, req)
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimRng;
    use rasc_core::compose::ComposerKind;

    #[test]
    fn layered_instance_is_feasible() {
        let (mut net, src, dst, target) = layered(3, 4, 7);
        assert!(target > 0);
        let sol =
            mincostflow::min_cost_flow(&mut net, src, dst, target, Default::default()).unwrap();
        assert_eq!(sol.flow, target);
    }

    #[test]
    fn layered_into_reuse_matches_fresh() {
        let (mut fresh, src, dst, target) = layered(4, 6, 11);
        let mut arena = FlowNetwork::new(0);
        // Dirty the arena with an unrelated instance, then rebuild.
        layered_into(&mut arena, 2, 3, 5);
        let (s2, d2, t2) = layered_into(&mut arena, 4, 6, 11);
        assert_eq!((src, dst, target), (s2, d2, t2));
        let a = mincostflow::min_cost_flow(&mut fresh, src, dst, target, Default::default());
        let b = mincostflow::min_cost_flow(&mut arena, src, dst, target, Default::default());
        assert_eq!(a.unwrap(), b.unwrap());
    }

    #[test]
    fn host_columns_partition_the_internal_edges() {
        let (layers, width) = (4, 6);
        let (net, src, dst, _) = layered(layers, width, 13);
        let columns = layered_host_columns(&net, width);
        assert_eq!(columns.len(), width);
        for col in &columns {
            assert_eq!(col.len(), layers, "one internal edge per layer");
            for &e in col {
                let (u, v) = net.endpoints(e);
                assert!(net.capacity(e) < 1_000_000);
                assert!(u != src && v != dst, "internal edges never touch endpoints");
            }
        }
        let all: std::collections::HashSet<_> = columns.iter().flatten().copied().collect();
        assert_eq!(all.len(), layers * width, "columns overlap");
    }

    #[test]
    fn victims_by_load_orders_columns_ascending() {
        let (layers, width) = (3, 6);
        let (mut net, src, dst, target) = layered(layers, width, 21);
        mincostflow::min_cost_flow(&mut net, src, dst, target, Default::default()).unwrap();
        let columns = layered_host_columns(&net, width);
        let order = victims_by_load(&net, &columns);
        assert_eq!(order.len(), width);
        let load = |k: usize| columns[k].iter().map(|&e| net.flow_on(e)).sum::<i64>();
        for pair in order.windows(2) {
            assert!(load(pair[0]) <= load(pair[1]), "order not ascending");
        }
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..width).collect::<Vec<_>>(), "not a permutation");
    }

    #[test]
    fn compose_setup_admits_and_saturated_rejects() {
        let (catalog, mut view, providers, req) = compose_setup(32);
        let mut rng = SimRng::new(9);
        ComposerKind::MinCost
            .build()
            .compose(&req, &catalog, &providers, &mut view, &mut rng)
            .expect("fresh view admits the request");

        let (catalog, mut view, providers, req) = compose_setup_saturated(32);
        let err = ComposerKind::MinCost
            .build()
            .compose(&req, &catalog, &providers, &mut view, &mut rng)
            .unwrap_err();
        assert!(matches!(
            err,
            rasc_core::compose::ComposeError::InsufficientCapacity { .. }
        ));
    }
}
