//! Data-plane throughput benchmark: the `units/sec` headline metric.
//!
//! Each cell drives a fixed fleet of single-service chains through an
//! engine for a simulated horizon and reports *data units generated per
//! wall-clock second* — the rate at which the simulator can push units
//! through the full pipeline (source emission, link transfer, CPU
//! service, destination delivery). Three variants isolate the two
//! data-plane optimizations:
//!
//! * `heap_perunit` — `BinaryHeap` event queue, one transfer per unit
//!   (the pre-optimization reference),
//! * `wheel_perunit` — hierarchical timer wheel, still per-unit
//!   transfers (isolates the event-queue backend),
//! * `wheel_batch` — timer wheel plus batched link transfers (the
//!   production configuration; one event amortizes a burst).
//!
//! Apps are pinned one-per-provider (each app's service is offered by
//! exactly one node), so the pipeline shape is identical across
//! variants and seeds; `exec_noise_sigma = 0` makes every run fully
//! deterministic, so the generated-unit count is a property of the cell,
//! not the variant. Bigger is better: `scripts/verify.sh` inverts its
//! regression tripwire for the `units/s` unit.

use crate::microbench::{count_allocations, record_rate, Measurement};
use desim::{QueueBackend, SimDuration};
use rasc_core::compose::ComposerKind;
use rasc_core::engine::{Engine, EngineConfig};
use rasc_core::model::{Service, ServiceCatalog, ServiceRequest};
use simnet::{kbps, TopologyBuilder};
use std::time::Instant;

/// One data-plane engine configuration under measurement.
#[derive(Clone, Copy, Debug)]
pub struct DataplaneVariant {
    /// Bench id component, e.g. `"wheel_batch"`.
    pub label: &'static str,
    /// Event-queue backend.
    pub backend: QueueBackend,
    /// Units coalesced per link transfer (1 = per-unit reference plane).
    pub batch: u32,
}

/// The measured variants, reference first.
pub const VARIANTS: [DataplaneVariant; 3] = [
    DataplaneVariant {
        label: "heap_perunit",
        backend: QueueBackend::BinaryHeap,
        batch: 1,
    },
    DataplaneVariant {
        label: "wheel_perunit",
        backend: QueueBackend::TimerWheel,
        batch: 1,
    },
    DataplaneVariant {
        label: "wheel_batch",
        backend: QueueBackend::TimerWheel,
        batch: 32,
    },
];

/// Concurrent single-service apps per cell (the bench size axis). Each
/// app gets its own provider node, so the largest size is also the
/// largest event-queue population.
pub const SIZES: [usize; 3] = [2, 8, 48];

/// Data units per second each app's source emits.
const APP_RATE: f64 = 2_000.0;

/// Builds the cell's engine: `apps` provider nodes (provider `i` alone
/// offers service `i`), a source and a destination endpoint, generous
/// NICs (the bench measures the simulator, not admission), and a cheap
/// deterministic service so the CPU keeps up with the offered rate.
fn build_engine(apps: usize, variant: DataplaneVariant) -> Engine {
    let nodes = apps + 2;
    let catalog = ServiceCatalog::new(
        (0..apps)
            .map(|id| Service {
                id,
                name: format!("dataplane-{id}"),
                exec_time: SimDuration::from_micros(100),
                rate_ratio: 1.0,
            })
            .collect(),
    );
    let mut b = TopologyBuilder::new().default_latency(SimDuration::from_millis(2));
    for _ in 0..nodes {
        b.node(kbps(10_000_000.0), kbps(10_000_000.0));
    }
    let mut offers: Vec<Vec<usize>> = (0..apps).map(|i| vec![i]).collect();
    offers.push(vec![]);
    offers.push(vec![]);
    Engine::builder(nodes, catalog, 7)
        .topology(b.build())
        .offers(offers)
        .config(EngineConfig {
            composer: ComposerKind::MinCost,
            queue_backend: variant.backend,
            transfer_batch: variant.batch,
            exec_noise_sigma: 0.0,
            ..Default::default()
        })
        .build()
}

/// Builds, submits, and warms up one cell's engine (0.5 s of simulated
/// traffic, so stores, pools, and wheel slots reach steady state).
fn warmed_engine(apps: usize, variant: DataplaneVariant) -> Engine {
    let mut e = build_engine(apps, variant);
    let src = apps;
    let dst = apps + 1;
    for i in 0..apps {
        e.submit(ServiceRequest::chain(&[i], APP_RATE, src, dst))
            .expect("dataplane cell must compose");
    }
    e.run_for_secs(0.5);
    e
}

/// Measures one cell: wall-clocks `horizon_secs` of simulated traffic
/// on a warmed engine and reports generated units per wall second as
/// `dataplane/units_per_sec/<variant>/<apps>`.
pub fn throughput(apps: usize, variant: DataplaneVariant, horizon_secs: f64) -> Measurement {
    let mut e = warmed_engine(apps, variant);
    let before = e.report().generated;
    let start = Instant::now();
    e.run_for_secs(horizon_secs);
    let wall = start.elapsed();
    let units = e.report().generated - before;
    record_rate(
        &format!("dataplane/units_per_sec/{}/{apps}", variant.label),
        units,
        wall,
    )
}

/// Heap allocations during one simulated second of steady-state traffic
/// on a warmed engine. The SoA unit store, batch pool, pooled CPU/run
/// vectors, and timer-wheel slots must all be at capacity after warm-up,
/// so this is asserted to be zero by `repro bench`.
pub fn steady_state_allocs(apps: usize, variant: DataplaneVariant) -> u64 {
    let mut e = warmed_engine(apps, variant);
    // The bandwidth meters hold a sliding window of (time, bits) pairs
    // covering `measure_window_secs` (4 s) of traffic; their deques only
    // stop growing once a full window has elapsed. Warm well past that,
    // plus slack for slow-rotating timer-wheel levels (level 5 rotates
    // every ~1.07 s) to reach their peak slot occupancy.
    e.run_for_secs(7.5);
    count_allocations(|| e.run_for_secs(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_generate_and_deliver() {
        for variant in VARIANTS {
            let mut e = warmed_engine(2, variant);
            e.run_for_secs(1.0);
            let r = e.report();
            // 2 apps x 2000 units/s x 1.5 s simulated.
            assert!(r.generated >= 5_000, "{}: {}", variant.label, r.generated);
            assert!(
                r.delivered as f64 >= 0.9 * r.generated as f64,
                "{}: delivered {} of {}",
                variant.label,
                r.delivered,
                r.generated
            );
        }
    }

    #[test]
    fn generated_count_is_variant_independent() {
        // Same simulated horizon => same offered load, whatever the
        // backend or batch size. Units/sec differences are wall time,
        // never workload drift. A batched source emits whole bursts, so
        // at the horizon cutoff counts may differ by up to one burst per
        // app — but no more.
        let counts: Vec<u64> = VARIANTS
            .iter()
            .map(|&v| {
                let mut e = warmed_engine(2, v);
                e.run_for_secs(1.0);
                e.report().generated
            })
            .collect();
        let max_batch = VARIANTS.iter().map(|v| v.batch as u64).max().unwrap();
        let spread = counts.iter().max().unwrap() - counts.iter().min().unwrap();
        assert!(
            spread <= 2 * max_batch,
            "generated counts diverge beyond burst granularity: {counts:?}"
        );
    }

    #[test]
    fn throughput_reports_rate_unit() {
        let m = throughput(2, VARIANTS[1], 0.5);
        assert_eq!(m.unit, "units/s");
        assert!(m.value > 0.0);
        assert!(m.name.starts_with("dataplane/units_per_sec/wheel_perunit/"));
    }
}
