//! Regenerates the paper's evaluation (Figures 6–11) plus the ablation
//! tables documented in DESIGN.md.
//!
//! ```text
//! repro all                  # every figure, full sweep
//! repro fig6 … fig11         # a single figure
//! repro ablation-sched       # LLF vs EDF vs FIFO
//! repro ablation-split       # splitting on vs off (single-placement mincost)
//! repro load-matched         # quality at equal admitted load
//! repro ablation-cpu         # multiple resource constraints (paper's future work)
//! repro quick                # scaled-down smoke sweep
//! repro bench                # microbenchmarks -> BENCH_compose.json
//! repro chaos [--quick]      # audited fault-injection soak matrix
//! ```

use rasc_bench::{paper_sweep, render_figure, Figure, SweepConfig};
use rasc_core::compose::ComposerKind;
use rasc_core::engine::EngineConfig;
use sched::Policy;
use std::alloc::{GlobalAlloc, Layout, System};
use workload::{run_experiment_with, PaperSetup};

/// Counting allocator: lets `repro bench` assert that the steady-state
/// solver path (arena rebuild + warm solve) is allocation-free. Only
/// allocations are counted; frees pass straight through.
struct CountingAlloc;

// SAFETY: defers every operation to `System`; the counter update has no
// safety obligations.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // Read-only check on the fast path: a shared read keeps the
        // cache line in every core; the write-side `fetch_add` only runs
        // inside `count_allocations` sections.
        if rasc_bench::microbench::ALLOC_COUNT_ENABLED.load(std::sync::atomic::Ordering::Relaxed) {
            rasc_bench::microbench::ALLOC_COUNT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if rasc_bench::microbench::ALLOC_COUNT_ENABLED.load(std::sync::atomic::Ordering::Relaxed) {
            rasc_bench::microbench::ALLOC_COUNT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("all");
    match mode {
        "all" => {
            let cells = paper_sweep(&SweepConfig::default());
            for fig in Figure::ALL {
                println!("{}", render_figure(fig, &cells));
            }
            summarize(&cells);
        }
        "quick" => {
            let cfg = SweepConfig {
                setup: PaperSetup {
                    requests: 40,
                    submit_window_secs: 20.0,
                    measure_secs: 60.0,
                    ..PaperSetup::default()
                },
                seeds: vec![1, 2],
                ..Default::default()
            };
            let cells = paper_sweep(&cfg);
            for fig in Figure::ALL {
                println!("{}", render_figure(fig, &cells));
            }
            summarize(&cells);
        }
        "load-matched" => load_matched(),
        "ablation-cpu" => ablation_cpu(),
        "ablation-sched" => ablation_sched(),
        "ablation-split" => ablation_split(),
        "bench" => {
            let filter = args
                .windows(2)
                .find(|w| w[0] == "--filter")
                .map(|w| w[1].clone());
            bench_suite(args.iter().any(|a| a == "--quick"), filter.as_deref())
        }
        "chaos" => chaos_soak_cmd(args.iter().any(|a| a == "--quick")),
        name => match Figure::from_arg(name) {
            Some(fig) => {
                let cells = paper_sweep(&SweepConfig::default());
                println!("{}", render_figure(fig, &cells));
            }
            None => {
                eprintln!(
                    "unknown mode {name}; use all | quick | fig6..fig11 | \
                     load-matched | ablation-cpu | ablation-sched | ablation-split | \
                     bench [--quick] [--filter <substr>] | chaos [--quick]"
                );
                std::process::exit(2);
            }
        },
    }
}

/// Microbenchmark suite: compose-path and solver-kernel timings plus
/// serial-vs-parallel sweep wall times, written to `BENCH_compose.json`.
///
/// The `*_clone_baseline` entries re-add the seed implementation's
/// per-compose whole-view `clone()` + restore around the optimized
/// composer, so the rollback optimization stays measurable against its
/// pre-optimization cost in every future run of this suite. (They
/// under-count the seed, which also rebuilt a fresh flow network per
/// substream; the reported ratio is conservative.)
///
/// `quick` shrinks per-sample budgets and the sweep (fixed seeds, a few
/// requests) for CI smoke runs — results are printed but NOT written to
/// `BENCH_compose.json`, so the committed numbers stay full-fidelity.
///
/// `filter` (from `repro bench --filter <substr>`) selects one family:
/// only sections whose family name overlaps the filter run, and only
/// entries whose name contains the filter print. Filtered runs skip
/// the cross-family summary and never write `BENCH_compose.json`.
fn bench_suite(quick: bool, filter: Option<&str>) {
    use mincostflow::{FlowNetwork, FlowSolver};
    use rasc_bench::instances::{compose_setup, compose_setup_saturated, layered, layered_into};
    use rasc_bench::microbench::{
        bench, bench_config, black_box, count_allocations, record_ratio, record_value, record_wall,
        render_json, Measurement,
    };
    use std::time::{Duration, Instant};

    fn time<F: FnMut()>(quick: bool, name: &str, op: F) -> Measurement {
        if quick {
            bench_config(name, Duration::from_millis(4), 3, op)
        } else {
            bench(name, op)
        }
    }

    let mut results = Vec::new();
    // Family gate for `--filter`: a section runs when no filter is set
    // or when the filter and the section's family overlap as substrings
    // (so `--filter admission/sharded` still runs the admission family).
    let want = |family: &str| match filter {
        None => true,
        Some(f) => f.contains(family) || family.contains(f),
    };

    // --- Composition hot path (32-node, 10-service view) -------------
    let n = 32;
    if want("compose") {
        // Steady-state rejection: every candidate saturated, the request
        // bounces and the view must come back untouched.
        let (catalog, mut view, providers, req) = compose_setup_saturated(n);
        let mut composer = ComposerKind::MinCost.build();
        let mut rng = desim::SimRng::new(9);
        results.push(time(
            quick,
            &format!("compose_reject_rollback/mincost/{n}"),
            || {
                let r = composer.compose(&req, &catalog, &providers, &mut view, &mut rng);
                debug_assert!(r.is_err());
                black_box(r.is_err());
            },
        ));
        results.push(time(
            quick,
            &format!("compose_reject_rollback_clone_baseline/mincost/{n}"),
            || {
                let backup = view.clone();
                let r = composer.compose(&req, &catalog, &providers, &mut view, &mut rng);
                debug_assert!(r.is_err());
                view = backup;
                black_box(r.is_err());
            },
        ));
    }
    if want("compose") {
        for kind in ComposerKind::ALL {
            // Successful compose; the per-op view clone (so capacity never
            // drains across iterations) is included in the timing, equally
            // for every algorithm.
            let (catalog, view, providers, req) = compose_setup(n);
            let mut composer = kind.build();
            let mut rng = desim::SimRng::new(9);
            results.push(time(
                quick,
                &format!("compose_ok_incl_clone/{}/{n}", kind.label()),
                || {
                    let mut v = view.clone();
                    let g = composer
                        .compose(&req, &catalog, &providers, &mut v, &mut rng)
                        .expect("feasible on a fresh view");
                    black_box(g.substreams.len());
                },
            ));
        }
    }

    // --- Solver kernels on composition-shaped layered graphs ---------
    if want("solver") {
        for &(layers, width) in &[(3usize, 8usize), (5, 16), (6, 24)] {
            for (name, alg) in [
                ("spfa", mincostflow::Algorithm::SpfaSsp),
                ("dijkstra", mincostflow::Algorithm::DijkstraSsp),
                ("dial", mincostflow::Algorithm::DialSsp),
                ("cost-scaling", mincostflow::Algorithm::CostScaling),
                ("capacity-scaling", mincostflow::Algorithm::CapacityScaling),
                ("simplex", mincostflow::Algorithm::NetworkSimplex),
            ] {
                let (mut net, src, dst, target) = layered(layers, width, 42);
                results.push(time(
                    quick,
                    &format!("solver/{name}/{layers}x{width}"),
                    || {
                        net.reset_flow();
                        let sol = mincostflow::min_cost_flow(&mut net, src, dst, target, alg)
                            .expect("feasible instance");
                        black_box(sol.cost);
                    },
                ));
            }

            // Retained warm-started solver on the composer's pattern: reset
            // the arena, rebuild the instance, solve with carried potentials
            // and scratch buffers (rebuild cost included in the timing).
            for (name, alg) in [
                ("dijkstra", mincostflow::Algorithm::DijkstraSsp),
                ("dial", mincostflow::Algorithm::DialSsp),
            ] {
                let mut solver = FlowSolver::new(alg);
                let mut net = FlowNetwork::new(0);
                results.push(time(
                    quick,
                    &format!("solver_warm/{name}/{layers}x{width}"),
                    || {
                        let (src, dst, target) = layered_into(&mut net, layers, width, 42);
                        let sol = solver
                            .solve(&mut net, src, dst, target)
                            .expect("feasible instance");
                        black_box(sol.cost);
                    },
                ));
            }
        }
    }

    // --- Adaptation hot path: incremental repair vs cold re-solve -----
    // The engine's adaptation triggers (host crash, rate change) repair
    // the retained solved instance instead of re-solving from scratch.
    // Both sides pay one clone of the solved arena per op (the repair
    // side also clones the retained solver), so the ratio isolates
    // warm repair against the cold solve the old adaptation path ran.
    // Two crash victims bracket the distribution over which host fails:
    // `crash_repair` kills the MEDIAN-loaded host column — the
    // representative cost of a uniformly random crash — and
    // `crash_worst` kills the most-loaded column, which on these
    // cost-concentrated instances carries an outsized share of the flow
    // (57% at 6x24) and is repair's worst case.
    // The `basis_*` twins run the same events against a retained
    // network-simplex basis (`RepairTier::WarmBasis`, the top of the
    // repair ladder): localized re-pricing plus primal re-pivoting
    // instead of the phased primal–dual pass, against the same cold
    // baseline. The victim columns are chosen once (by the phased
    // solution's load order) so all three entries kill the same host.
    if want("adapt") {
        for &(layers, width) in &[(3usize, 8usize), (5, 16), (6, 24)] {
            use rasc_bench::instances::{layered_host_columns, victims_by_load};
            let (mut net0, src, dst, target) = layered(layers, width, 42);
            let mut solver0 = FlowSolver::new(mincostflow::Algorithm::DijkstraSsp);
            solver0
                .solve(&mut net0, src, dst, target)
                .expect("feasible instance");
            let (mut net_b0, _, _, _) = layered(layers, width, 42);
            let mut solver_b0 = FlowSolver::new(mincostflow::Algorithm::NetworkSimplex);
            solver_b0
                .solve(&mut net_b0, src, dst, target)
                .expect("feasible instance");
            let columns = layered_host_columns(&net0, width);
            let order = victims_by_load(&net0, &columns);
            for (tag, k) in [
                ("crash", order[width / 2]),
                ("crash_worst", order[width - 1]),
            ] {
                let victim = &columns[k];
                {
                    // The damaged instance must stay feasible at the old
                    // value, or both paths degenerate to their fallbacks.
                    let mut probe = net0.clone();
                    for &e in victim {
                        probe.disable_edge(e);
                    }
                    probe.reset_flow();
                    mincostflow::min_cost_flow(&mut probe, src, dst, target, Default::default())
                        .expect("crash victim leaves the instance feasible");
                }
                results.push(time(
                    quick,
                    &format!("adapt/{tag}_repair/{layers}x{width}"),
                    || {
                        let mut net = net0.clone();
                        let mut solver = solver0.clone();
                        let out = solver.repair_deletions(&mut net, victim);
                        debug_assert!(out.complete());
                        black_box(out.routed);
                    },
                ));
                results.push(time(
                    quick,
                    &format!("adapt/basis_{tag}_repair/{layers}x{width}"),
                    || {
                        let mut net = net_b0.clone();
                        let mut solver = solver_b0.clone();
                        let out = solver.repair_deletions(&mut net, victim);
                        debug_assert!(out.complete());
                        debug_assert_eq!(out.tier, mincostflow::RepairTier::WarmBasis);
                        black_box(out.routed);
                    },
                ));
                results.push(time(
                    quick,
                    &format!("adapt/{tag}_cold/{layers}x{width}"),
                    || {
                        let mut net = net0.clone();
                        for &e in victim {
                            net.disable_edge(e);
                        }
                        net.reset_flow();
                        let sol = mincostflow::min_cost_flow(
                            &mut net,
                            src,
                            dst,
                            target,
                            Default::default(),
                        )
                        .expect("feasible after crash");
                        black_box(sol.cost);
                    },
                ));
            }

            // Rate bump: the request's rate grows 5%; repair augments only
            // the delta, cold re-solves the whole instance at the new value.
            let delta = (target / 20).max(1);
            {
                let mut probe = net0.clone();
                probe.reset_flow();
                mincostflow::min_cost_flow(
                    &mut probe,
                    src,
                    dst,
                    target + delta,
                    Default::default(),
                )
                .expect("bumped rate stays feasible");
            }
            results.push(time(
                quick,
                &format!("adapt/rate_bump_repair/{layers}x{width}"),
                || {
                    let mut net = net0.clone();
                    let mut solver = solver0.clone();
                    let out = solver.increase_flow(&mut net, src, dst, delta);
                    debug_assert!(out.complete());
                    black_box(out.routed);
                },
            ));
            results.push(time(
                quick,
                &format!("adapt/basis_rate_bump_repair/{layers}x{width}"),
                || {
                    let mut net = net_b0.clone();
                    let mut solver = solver_b0.clone();
                    let out = solver.increase_flow(&mut net, src, dst, delta);
                    debug_assert!(out.complete());
                    debug_assert_eq!(out.tier, mincostflow::RepairTier::WarmBasis);
                    black_box(out.routed);
                },
            ));
            results.push(time(
                quick,
                &format!("adapt/rate_bump_cold/{layers}x{width}"),
                || {
                    let mut net = net0.clone();
                    net.reset_flow();
                    let sol = mincostflow::min_cost_flow(
                        &mut net,
                        src,
                        dst,
                        target + delta,
                        Default::default(),
                    )
                    .expect("feasible at the bumped rate");
                    black_box(sol.cost);
                },
            ));

            // Pivot count of the worst-case-host basis repair — the bound
            // behind its speedup. Tracked as a first-class entry so a
            // repair-ladder change that silently inflates the pivot work
            // (without yet collapsing wall time on a fast box) shows up in
            // the BENCH diff.
            {
                let mut net = net_b0.clone();
                let mut solver = solver_b0.clone();
                let out = solver.repair_deletions(&mut net, &columns[order[width - 1]]);
                debug_assert!(out.complete());
                results.push(record_value(
                    &format!("adapt/basis_worst_host_pivots/{layers}x{width}"),
                    out.phases as f64,
                    "pivots",
                ));
            }
        }
    }

    // Headline ratios as first-class entries: basis repair vs the cold
    // re-solve, per size and event. Reported in the `x` unit (bigger is
    // better) so the verify.sh tripwire inverts its comparison and a
    // collapse of the speedup itself — not just an absolute slowdown —
    // flags on the diff.
    if want("adapt") {
        let ns_of = |results: &[Measurement], name: &str| {
            results
                .iter()
                .find(|m| m.name == name)
                .map(|m| m.value)
                .unwrap_or(f64::NAN)
        };
        let mut ratios = Vec::new();
        for size in ["3x8", "5x16", "6x24"] {
            for event in ["crash", "crash_worst", "rate_bump"] {
                let cold = ns_of(&results, &format!("adapt/{event}_cold/{size}"));
                let basis = ns_of(&results, &format!("adapt/basis_{event}_repair/{size}"));
                ratios.push(record_ratio(
                    &format!("adapt/basis_{event}_speedup/{size}"),
                    cold / basis,
                ));
            }
        }
        results.extend(ratios);
    }

    // --- Steady-state allocation check --------------------------------
    // After the first solve, the arena rebuild + warm solve must reuse
    // every buffer: zero heap allocations across further iterations.
    if want("solver") {
        let mut solver = FlowSolver::default();
        let mut net = FlowNetwork::new(0);
        for _ in 0..3 {
            let (src, dst, target) = layered_into(&mut net, 5, 16, 42);
            solver.solve(&mut net, src, dst, target).expect("feasible");
        }
        let allocs = count_allocations(|| {
            for _ in 0..10 {
                let (src, dst, target) = layered_into(&mut net, 5, 16, 42);
                let sol = solver.solve(&mut net, src, dst, target).expect("feasible");
                black_box(sol.cost);
            }
        });
        assert_eq!(
            allocs, 0,
            "steady-state rebuild+solve must be allocation-free"
        );
        println!("steady-state allocations per 10 warm solves: {allocs}");
    }

    // --- Data-plane throughput: the units/sec headline ----------------
    // Engine-level generated-units-per-wall-second across event-queue
    // backends and transfer batch sizes. These entries are rates
    // (bigger is better); verify.sh inverts its regression tripwire
    // for the `units/s` unit.
    if want("dataplane") {
        use rasc_bench::dataplane;
        let horizon = if quick { 1.0 } else { 4.0 };
        for &apps in &dataplane::SIZES {
            for variant in dataplane::VARIANTS {
                results.push(dataplane::throughput(apps, variant, horizon));
            }
        }
        // Steady-state allocation gate for the batched data plane: after
        // warm-up the SoA store, batch pool, and wheel slots must recycle.
        let allocs = dataplane::steady_state_allocs(dataplane::SIZES[1], dataplane::VARIANTS[2]);
        assert_eq!(allocs, 0, "steady-state data plane must be allocation-free");
        println!("steady-state allocations per simulated second of batched data plane: {allocs}");
    }

    // --- Admission throughput: the apps/sec headline ------------------
    // Thousand-node power-law overlays, concurrent tenants. The serial
    // single-request baseline (per-request snapshot clone + uncapped
    // compose) runs at 1k nodes; the batch pipeline (one snapshot per
    // batch, capped indexed candidate selection, optimistic workers +
    // ordered reconcile) runs the full 1k/4k/10k curve. Rates count
    // *admitted* apps per wall second, so replays and rejections
    // penalize rather than inflate the headline.
    if want("admission") {
        use rasc_bench::admission;
        let budget = Duration::from_millis(if quick { 120 } else { 1000 });
        let pool_threads = desim::pool::default_threads().max(2);
        let sizes: &[usize] = if quick {
            &admission::SIZES[..1]
        } else {
            &admission::SIZES[..]
        };
        for &n in sizes {
            let sc = admission::scenario(n, 128, 42);
            let (admitted, conflicts, rejected) = admission::probe(&sc, 128);
            println!(
                "admission scenario at {n} nodes: batch-128 probe admits {admitted} \
                 ({conflicts} conflicts, {rejected} capacity rejections)"
            );
            if n == 1_000 {
                results.push(admission::serial_apps_per_sec(&sc, budget));
            }
            for &b in &admission::BATCHES {
                results.push(admission::batch_apps_per_sec(
                    &format!("batch{b}"),
                    &sc,
                    b,
                    1,
                    budget,
                ));
            }
            results.push(admission::batch_apps_per_sec(
                "batch128_pooled",
                &sc,
                128,
                pool_threads,
                budget,
            ));

            // Region-sharded pipeline: shard-local composers over
            // partial views, remote capacity via the residual digest.
            // Throughput entries reset the view per burst (directly
            // comparable to batch128/batch128_pooled above); the
            // staleness sweep then drains ONE view to saturation and
            // records the conflict/replay curve as the digest refresh
            // interval stretches.
            let shard_counts: &[usize] = if quick { &[4] } else { &[1, 4, 8] };
            for &s in shard_counts {
                results.push(admission::sharded_apps_per_sec(
                    &format!("s{s}_b128_r1"),
                    &sc,
                    s,
                    128,
                    pool_threads,
                    1,
                    budget,
                ));
            }
            let refreshes: &[u64] = if quick { &[1] } else { &[1, 8, 64] };
            // Enough passes over the pool to drain the overlay into the
            // regime where stale digests matter (~n/64 keeps the pass
            // count proportional to capacity; quick mode stays light).
            let passes = if quick { 2 } else { (n / 64).max(8) };
            for &r in refreshes {
                let acc = admission::sharded_saturation(&sc, 8, 16, pool_threads, r, passes);
                let per_req = |count: usize| count as f64 / acc.submitted.max(1) as f64;
                results.push(record_value(
                    &format!("admission/sharded_conflict_rate/s8_r{r}/{n}"),
                    per_req(acc.conflicts),
                    "conflicts/req",
                ));
                results.push(record_value(
                    &format!("admission/sharded_replay_reject_rate/s8_r{r}/{n}"),
                    per_req(acc.replay_rejected),
                    "rejects/req",
                ));
                if r == 1 {
                    results.push(record_value(
                        &format!("admission/sharded_cross_shard_rate/s8_r1/{n}"),
                        per_req(acc.cross_shard),
                        "placements/req",
                    ));
                }
            }
        }

        // Candidate-selection kernel: the linear reference scan vs the
        // capacity-bucket walk, at fixed provider density (p = n/16),
        // so the linear side grows with n and the indexed side must not.
        for &n in &admission::SIZES {
            let (view, providers) = admission::selection_setup(n, 9);
            let mut out = Vec::new();
            results.push(time(quick, &format!("admission/select_linear/{n}"), || {
                view.select_top_candidates_linear(&providers, admission::CANDIDATE_CAP, &mut out);
                black_box(out.len());
            }));
            let mut out = Vec::new();
            results.push(time(
                quick,
                &format!("admission/select_indexed/{n}"),
                || {
                    view.select_top_candidates_indexed(
                        &providers,
                        admission::CANDIDATE_CAP,
                        &mut out,
                    );
                    black_box(out.len());
                },
            ));
        }
        let ns_of = |results: &[Measurement], name: String| {
            results
                .iter()
                .find(|m| m.name == name)
                .map(|m| m.value)
                .unwrap_or(f64::NAN)
        };
        // Sub-linearity headline: how many times better the indexed
        // walk scales 1k -> 10k than the linear scan (x unit, bigger is
        // better; > 1 means indexed grows slower than linear).
        let growth = |kind: &str| {
            ns_of(&results, format!("admission/select_{kind}/10000"))
                / ns_of(&results, format!("admission/select_{kind}/1000"))
        };
        results.push(record_ratio(
            "admission/select_sublinearity/10k_over_1k",
            growth("linear") / growth("indexed"),
        ));

        // Steady-state allocation gate: warm batch admission must stay
        // at a bounded, small allocation count per request (result-graph
        // construction only; snapshot syncs reuse pooled buffers), never
        // the thousands a regression to per-request snapshot clones or
        // arena rebuilds would cost.
        let sc = admission::scenario(1_000, 128, 42);
        let per_req = admission::steady_state_allocs_per_request(&sc, 128);
        assert!(
            per_req <= 128.0,
            "steady-state batch admission allocates too much: {per_req:.1} allocs/request \
             (expected ~95: result-graph construction only — snapshot syncs are \
             allocation-free via clone_from, a regression to per-request view \
             clones costs ~2n allocs each)"
        );
        println!("steady-state allocations per batch-admitted request: {per_req:.1}");
    }

    // --- Sweep wall time: serial vs parallel --------------------------
    // At least two workers, so the desim thread pool is exercised even
    // on single-core CI boxes.
    let threads = desim::pool::default_threads().max(2);
    let mut sweep_walls = None;
    if want("sweep_wall") {
        let cfg = SweepConfig {
            setup: PaperSetup {
                requests: if quick { 6 } else { 12 },
                submit_window_secs: 20.0,
                measure_secs: 40.0,
                ..PaperSetup::default()
            },
            rates_kbps: if quick { vec![50.0] } else { vec![50.0, 100.0] },
            seeds: if quick { vec![1, 2] } else { vec![1, 2, 3] },
            config: EngineConfig::default(),
        };
        let start = Instant::now();
        let serial = rasc_bench::paper_sweep_threads(&cfg, 1);
        let serial_wall = start.elapsed();
        let start = Instant::now();
        let parallel = rasc_bench::paper_sweep_threads(&cfg, threads);
        let parallel_wall = start.elapsed();
        assert_eq!(serial.len(), parallel.len(), "sweep shape must not vary");
        results.push(record_wall("sweep_wall/serial", serial_wall));
        results.push(
            record_wall(&format!("sweep_wall/parallel_x{threads}"), parallel_wall)
                .with_threads(threads),
        );
        sweep_walls = Some((serial_wall, parallel_wall));
    }

    // Annotate parallel-scaling entries measured without parallelism:
    // on a 1-core box the pooled/parallel numbers measure pool overhead,
    // not scaling, and verify.sh must not hold future runs to them. The
    // per-entry `threads` field is the primary signal; the name check
    // covers legacy entries that predate it.
    let ap = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if ap == 1 {
        for m in &mut results {
            let pool_entry = m.threads.is_some_and(|t| t > 1);
            if pool_entry || m.name.contains("parallel") || m.name.contains("pooled") {
                m.note = Some("ap1".to_string());
            }
        }
    }

    if let Some(f) = filter {
        results.retain(|m| m.name.contains(f));
        for m in &results {
            println!("{}", m.line());
        }
        println!(
            "filter {f:?}: {} matching entries; skipping summary and \
             BENCH_compose.json (full runs only)",
            results.len()
        );
        return;
    }

    for m in &results {
        println!("{}", m.line());
    }
    let reject = results
        .iter()
        .find(|m| m.name.starts_with("compose_reject_rollback/"))
        .unwrap();
    let baseline = results
        .iter()
        .find(|m| {
            m.name
                .starts_with("compose_reject_rollback_clone_baseline/")
        })
        .unwrap();
    println!(
        "\nrollback speedup vs clone baseline: {:.2}x",
        baseline.value / reject.value
    );
    let (serial_wall, parallel_wall) = sweep_walls.expect("sweep runs on unfiltered passes");
    println!(
        "sweep speedup ({} threads): {:.2}x",
        threads,
        serial_wall.as_secs_f64() / parallel_wall.as_secs_f64().max(1e-9)
    );
    let ns_of = |name: &str| {
        results
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.value)
            .unwrap_or(f64::NAN)
    };
    for size in ["3x8", "5x16", "6x24"] {
        println!(
            "adaptation speedup at {size}: crash repair {:.1}x (worst-case host {:.1}x), \
             rate bump {:.1}x vs cold re-solve",
            ns_of(&format!("adapt/crash_cold/{size}"))
                / ns_of(&format!("adapt/crash_repair/{size}")),
            ns_of(&format!("adapt/crash_worst_cold/{size}"))
                / ns_of(&format!("adapt/crash_worst_repair/{size}")),
            ns_of(&format!("adapt/rate_bump_cold/{size}"))
                / ns_of(&format!("adapt/rate_bump_repair/{size}")),
        );
        println!(
            "  warm-basis tier at {size}:      crash repair {:.1}x (worst-case host {:.1}x), \
             rate bump {:.1}x vs cold re-solve",
            ns_of(&format!("adapt/basis_crash_speedup/{size}")),
            ns_of(&format!("adapt/basis_crash_worst_speedup/{size}")),
            ns_of(&format!("adapt/basis_rate_bump_speedup/{size}")),
        );
    }
    for &apps in &rasc_bench::dataplane::SIZES {
        let rate = |variant: &str| ns_of(&format!("dataplane/units_per_sec/{variant}/{apps}"));
        let heap = rate("heap_perunit");
        println!(
            "dataplane units/sec at {apps} apps: heap/per-unit {:.0}, wheel/per-unit {:.0} \
             ({:.1}x), wheel+batch {:.0} ({:.1}x)",
            heap,
            rate("wheel_perunit"),
            rate("wheel_perunit") / heap,
            rate("wheel_batch"),
            rate("wheel_batch") / heap,
        );
    }
    let serial_headline = ns_of("admission/apps_per_sec/serial_1req/1000");
    println!(
        "admission headline at 1k nodes: batch-128 {:.0} apps/s vs serial single-request \
         {:.0} apps/s ({:.1}x)",
        ns_of("admission/apps_per_sec/batch128/1000"),
        serial_headline,
        ns_of("admission/apps_per_sec/batch128/1000") / serial_headline,
    );
    for &n in &rasc_bench::admission::SIZES {
        let apps = |b: &str| ns_of(&format!("admission/apps_per_sec/{b}/{n}"));
        if apps("batch128").is_nan() {
            continue; // quick mode runs the curve at 1k only
        }
        println!(
            "admission apps/sec at {n} nodes: batch-1 {:.0}, batch-16 {:.0}, batch-128 {:.0}, \
             batch-128 pooled {:.0}",
            apps("batch1"),
            apps("batch16"),
            apps("batch128"),
            apps("batch128_pooled"),
        );
        let sharded = |s: &str| ns_of(&format!("admission/sharded_apps_per_sec/{s}/{n}"));
        if !sharded("s8_b128_r1").is_nan() {
            println!(
                "  sharded apps/sec at {n} nodes: 1 shard {:.0}, 4 shards {:.0}, \
                 8 shards {:.0} (128-burst, refresh every batch)",
                sharded("s1_b128_r1"),
                sharded("s4_b128_r1"),
                sharded("s8_b128_r1"),
            );
        }
    }
    println!(
        "candidate selection 1k->10k growth: linear {:.1}x, indexed {:.1}x \
         (sub-linearity ratio {:.1}x)",
        ns_of("admission/select_linear/10000") / ns_of("admission/select_linear/1000"),
        ns_of("admission/select_indexed/10000") / ns_of("admission/select_indexed/1000"),
        ns_of("admission/select_sublinearity/10k_over_1k"),
    );

    if quick {
        println!("quick mode: skipping BENCH_compose.json (full runs only)");
        return;
    }
    // Machine context, so absolute numbers (and especially the
    // parallel_x2 sweep on boxes where the pool exceeds the cores) are
    // interpretable when the report is read elsewhere.
    let context = [
        ("threads", threads.to_string()),
        (
            "available_parallelism",
            std::thread::available_parallelism()
                .map(|n| n.get().to_string())
                .unwrap_or_else(|_| "unknown".to_string()),
        ),
        ("arch", std::env::consts::ARCH.to_string()),
        ("os", std::env::consts::OS.to_string()),
    ];
    let json = render_json(&context, &results);
    let path = "BENCH_compose.json";
    std::fs::write(path, json).expect("write benchmark report");
    println!("wrote {path}");
}

/// Audited fault-injection soak: seeds × fault profiles × composers,
/// every run under the full invariant auditor. Exits non-zero on any
/// violation or if the matrix digest differs between a serial pass and
/// the worker pool (determinism regression).
fn chaos_soak_cmd(quick: bool) {
    use rasc_bench::{chaos_soak_threads, ChaosConfig};
    use std::time::Instant;

    let cfg = if quick {
        ChaosConfig::quick()
    } else {
        ChaosConfig::default()
    };
    let threads = desim::pool::default_threads().max(2);
    println!(
        "chaos soak: {} seeds x {} fault plans x {} composers x {} data planes = {} audited runs",
        cfg.seeds.len(),
        cfg.profiles.len(),
        cfg.composers.len(),
        cfg.variants.len(),
        cfg.runs()
    );
    let start = Instant::now();
    let parallel = chaos_soak_threads(&cfg, threads);
    let parallel_wall = start.elapsed();
    let start = Instant::now();
    let serial = chaos_soak_threads(&cfg, 1);
    let serial_wall = start.elapsed();

    let mut failed = false;
    for r in &parallel.runs {
        if r.violations > 0 {
            failed = true;
            eprintln!(
                "VIOLATIONS seed {} {} {} {:?}/batch{}: {} ({:?})",
                r.seed,
                r.profile.label(),
                r.composer.label(),
                r.backend,
                r.batch,
                r.violations,
                r.messages
            );
        }
    }
    let checkpoints: u64 = parallel.runs.iter().map(|r| r.checkpoints).sum();
    println!(
        "violations: {} | audit checkpoints: {checkpoints} | digest: {:016x}",
        parallel.violations, parallel.digest
    );
    println!(
        "wall: {:.2}s on {threads} workers, {:.2}s serial",
        parallel_wall.as_secs_f64(),
        serial_wall.as_secs_f64()
    );
    if serial.digest != parallel.digest {
        failed = true;
        eprintln!(
            "DIGEST MISMATCH: serial {:016x} != parallel {:016x}",
            serial.digest, parallel.digest
        );
    } else {
        println!("serial and parallel digests match");
    }
    if let Some((a, b)) = parallel.backend_mismatch(cfg.variants.len()) {
        failed = true;
        eprintln!(
            "BACKEND MISMATCH seed {} {} {}: {:?} digest {:016x} != {:?} digest {:016x}",
            a.seed,
            a.profile.label(),
            a.composer.label(),
            a.backend,
            a.digest,
            b.backend,
            b.digest
        );
    } else {
        println!("per-cell digests are backend-independent at batch 1");
    }

    // Sharded-composer axis: shard counts × digest-refresh intervals on
    // audited engines, plus the global-pipeline twin at shard-count 1.
    let scfg = if quick {
        rasc_bench::ShardedSoakConfig {
            seeds: vec![1, 2],
            ..Default::default()
        }
    } else {
        rasc_bench::ShardedSoakConfig::default()
    };
    println!(
        "sharded soak: {} seeds x {} shard counts x {} refresh intervals = {} audited runs",
        scfg.seeds.len(),
        scfg.shard_counts.len(),
        scfg.refresh_secs.len(),
        scfg.runs()
    );
    let start = Instant::now();
    let sharded = rasc_bench::sharded_soak_threads(&scfg, threads);
    let sharded_wall = start.elapsed();
    for r in &sharded.runs {
        if r.violations > 0 {
            failed = true;
            eprintln!(
                "VIOLATIONS seed {} shards {} refresh {}s: {} ({:?})",
                r.seed, r.shards, r.refresh_secs, r.violations, r.messages
            );
        }
    }
    if let Some(bad) = sharded.twin_mismatch() {
        failed = true;
        eprintln!(
            "SHARDED TWIN MISMATCH seed {} refresh {}s: sharded {:016x} != global {:016x}",
            bad.seed,
            bad.refresh_secs,
            bad.batch_digest,
            bad.twin_digest.expect("mismatch implies a twin")
        );
    } else {
        println!("one-shard cells are digest-identical to the global pipeline");
    }
    println!(
        "sharded violations: {} | digest: {:016x} | wall {:.2}s",
        sharded.violations,
        sharded.digest,
        sharded_wall.as_secs_f64()
    );

    if failed {
        std::process::exit(1);
    }
    println!("chaos soak clean");
}

/// Headline comparisons the paper calls out in §4.2.
fn summarize(cells: &[rasc_bench::SweepCell]) {
    let mean_over_rates =
        |composer: ComposerKind, f: &dyn Fn(&rasc_core::metrics::RunReport) -> f64| {
            let xs: Vec<f64> = cells
                .iter()
                .filter(|c| c.composer == composer)
                .map(|c| c.mean(f))
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
    println!("Headline comparisons (averaged over the rate axis):");
    let mc_delay = mean_over_rates(ComposerKind::MinCost, &|r| r.delay_ms.mean());
    let gr_delay = mean_over_rates(ComposerKind::Greedy, &|r| r.delay_ms.mean());
    let rn_delay = mean_over_rates(ComposerKind::Random, &|r| r.delay_ms.mean());
    println!(
        "  delay: mincost {mc_delay:.1} ms vs greedy {gr_delay:.1} ms ({:.0}% better) \
         vs random {rn_delay:.1} ms ({:.0}% better)",
        (1.0 - mc_delay / gr_delay) * 100.0,
        (1.0 - mc_delay / rn_delay) * 100.0,
    );
    let mc_j = mean_over_rates(ComposerKind::MinCost, &|r| r.jitter_ms.mean());
    let gr_j = mean_over_rates(ComposerKind::Greedy, &|r| r.jitter_ms.mean());
    let rn_j = mean_over_rates(ComposerKind::Random, &|r| r.jitter_ms.mean());
    println!(
        "  jitter: mincost {mc_j:.2} ms vs greedy {gr_j:.2} ms ({:.1}x) vs random {rn_j:.2} ms ({:.1}x)",
        gr_j / mc_j.max(1e-9),
        rn_j / mc_j.max(1e-9),
    );
    let mc_c = mean_over_rates(ComposerKind::MinCost, &|r| r.composed as f64);
    let gr_c = mean_over_rates(ComposerKind::Greedy, &|r| r.composed as f64);
    let rn_c = mean_over_rates(ComposerKind::Random, &|r| r.composed as f64);
    println!("  composed requests: mincost {mc_c:.1} vs greedy {gr_c:.1} vs random {rn_c:.1}");
    let mc_split = mean_over_rates(ComposerKind::MinCost, &|r| r.split_requests as f64);
    println!("  mincost requests using splitting: {mc_split:.1}");
    let p95 = |c: ComposerKind| mean_over_rates(c, &|r| r.delay_quantile_ms(0.95).unwrap_or(0.0));
    println!(
        "  delay p95: mincost {:.0} ms vs greedy {:.0} ms vs random {:.0} ms",
        p95(ComposerKind::MinCost),
        p95(ComposerKind::Greedy),
        p95(ComposerKind::Random),
    );
}

/// Load-matched comparison: at high rates min-cost admits ~1.5x the
/// requests of the baselines, so its per-unit averages carry the load
/// of apps the baselines reject. Here every algorithm is offered only
/// as many requests as the *most restrictive* baseline can admit, so
/// the admitted load is equal and the comparison isolates placement
/// quality.
fn load_matched() {
    println!("Load-matched quality comparison (all algorithms at equal admitted load)");
    for rate in [50.0, 100.0, 150.0, 200.0] {
        // Find the smallest admission count across algorithms/seeds.
        let seeds = [1u64, 2, 3];
        let mut min_admitted = u64::MAX;
        for &seed in &seeds {
            for kind in ComposerKind::ALL {
                let setup = PaperSetup {
                    avg_rate_kbps: rate,
                    seed,
                    ..Default::default()
                };
                let r = run_experiment_with(&setup, kind, EngineConfig::default()).report;
                min_admitted = min_admitted.min(r.composed);
            }
        }
        println!(
            "
  rate {rate} Kb/s, matched to {min_admitted} requests:"
        );
        println!(
            "  {:<10}{:>10}{:>12}{:>12}{:>12}{:>12}",
            "algorithm", "composed", "delivered", "timely", "delay(ms)", "jitter(ms)"
        );
        for kind in ComposerKind::ALL {
            let mut acc = (0.0f64, 0.0, 0.0, 0.0, 0.0);
            for &seed in &seeds {
                let setup = PaperSetup {
                    avg_rate_kbps: rate,
                    requests: min_admitted as usize,
                    seed,
                    ..Default::default()
                };
                let r = run_experiment_with(&setup, kind, EngineConfig::default()).report;
                acc.0 += r.composed as f64;
                acc.1 += r.delivered_fraction();
                acc.2 += r.timely_fraction();
                acc.3 += r.delay_ms.mean();
                acc.4 += r.jitter_ms.mean();
            }
            let n = seeds.len() as f64;
            println!(
                "  {:<10}{:>10.1}{:>11.3}{:>12.3}{:>12.1}{:>12.2}",
                kind.label(),
                acc.0 / n,
                acc.1 / n,
                acc.2 / n,
                acc.3 / n,
                acc.4 / n
            );
        }
    }
}

/// Table D: the paper's §6 future work — composition under multiple
/// resource constraints. CPU-heavy workloads on bandwidth-only
/// composition overload node processors invisibly (the scheduler sheds
/// the excess at runtime); with the CPU dimension enabled, composition
/// rejects or splits instead.
fn ablation_cpu() {
    use desim::SimDuration;
    use rasc_core::model::{Service, ServiceCatalog};
    println!("Table D: multi-resource ablation (CPU-heavy catalog, 100 Kb/s)");
    println!(
        "{:<22}{:>10}{:>12}{:>14}{:>14}",
        "composition", "composed", "delivered", "sched-drops", "delay(ms)"
    );
    for (name, cores) in [("bandwidth-only", None), ("bandwidth+cpu", Some(1.0))] {
        let mut acc = (0.0f64, 0.0, 0.0, 0.0);
        let seeds = [1u64, 2, 3];
        for &seed in &seeds {
            let setup = PaperSetup {
                avg_rate_kbps: 100.0,
                seed,
                ..Default::default()
            };
            let config = EngineConfig {
                cpu_cores: cores,
                ..Default::default()
            };
            // CPU-heavy services: 15-35 ms per unit instead of 1-8 ms.
            let r = {
                let catalog = ServiceCatalog::new(
                    (0..setup.services)
                        .map(|id| Service {
                            id,
                            name: format!("heavy-{id}"),
                            exec_time: SimDuration::from_millis(15 + (id as u64 * 2) % 21),
                            rate_ratio: 1.0,
                        })
                        .collect(),
                );
                let mut engine =
                    rasc_core::engine::Engine::builder(setup.total_nodes(), catalog, setup.seed)
                        .topology(setup.topology())
                        .offers(setup.offers())
                        .config(EngineConfig {
                            composer: ComposerKind::MinCost,
                            services_per_node: setup.services_per_node,
                            ..config
                        })
                        .build();
                let mut gen = workload::RequestGenerator::new(
                    setup.services,
                    setup.total_nodes(),
                    setup.avg_rate_kbps,
                    setup.seed,
                )
                .with_endpoints(setup.endpoint_ids());
                for i in 0..setup.requests {
                    engine.submit_at(
                        desim::SimTime::from_secs_f64(
                            i as f64 * setup.submit_window_secs / setup.requests as f64,
                        ),
                        gen.next_request(),
                    );
                }
                engine.run_until(desim::SimTime::from_secs_f64(
                    setup.submit_window_secs + setup.measure_secs,
                ));
                engine.report()
            };
            acc.0 += r.composed as f64;
            acc.1 += r.delivered_fraction();
            acc.2 += (r.drops[rasc_core::metrics::DropCause::Laxity as usize]
                + r.drops[rasc_core::metrics::DropCause::QueueFull as usize])
                as f64;
            acc.3 += r.delay_ms.mean();
        }
        let n = seeds.len() as f64;
        println!(
            "{:<22}{:>10.1}{:>12.3}{:>14.1}{:>14.1}",
            name,
            acc.0 / n,
            acc.1 / n,
            acc.2 / n,
            acc.3 / n
        );
    }
}

/// Table B: scheduling-policy ablation under the MinCost composer.
fn ablation_sched() {
    // 200 Kb/s: the only regime with real deadline pressure (splitting
    // onto scraps, transient bursts) where the policies can differ.
    println!("Table B: scheduler ablation (mincost composition, 200 Kb/s)");
    println!(
        "{:<8}{:>12}{:>14}{:>14}{:>14}",
        "policy", "delivered", "timely", "laxity-drops", "delay(ms)"
    );
    for (name, policy) in [
        ("llf", Policy::Llf),
        ("edf", Policy::Edf),
        ("fifo", Policy::Fifo),
    ] {
        let mut acc = (0.0, 0.0, 0.0, 0.0);
        let seeds = [1u64, 2, 3];
        for &seed in &seeds {
            let setup = PaperSetup {
                avg_rate_kbps: 200.0,
                seed,
                ..Default::default()
            };
            let config = EngineConfig {
                policy,
                ..Default::default()
            };
            let r = run_experiment_with(&setup, ComposerKind::MinCost, config).report;
            acc.0 += r.delivered_fraction();
            acc.1 += r.timely_fraction();
            acc.2 += r.drops[rasc_core::metrics::DropCause::Laxity as usize] as f64;
            acc.3 += r.delay_ms.mean();
        }
        let n = seeds.len() as f64;
        println!(
            "{:<8}{:>12.3}{:>14.3}{:>14.1}{:>14.1}",
            name,
            acc.0 / n,
            acc.1 / n,
            acc.2 / n,
            acc.3 / n
        );
    }
}

/// Table C: rate splitting on vs off. "Off" approximates RASC without
/// splitting by running the greedy single-placement composer with the
/// same admission rules, isolating the contribution of splitting.
fn ablation_split() {
    println!("Table C: splitting ablation (200 Kb/s, where splitting matters most)");
    println!(
        "{:<22}{:>12}{:>12}{:>14}",
        "variant", "composed", "delivered", "split-reqs"
    );
    for (name, composer) in [
        ("mincost (split)", ComposerKind::MinCost),
        ("greedy (no split)", ComposerKind::Greedy),
    ] {
        let mut acc = (0.0, 0.0, 0.0);
        let seeds = [1u64, 2, 3];
        for &seed in &seeds {
            let setup = PaperSetup {
                avg_rate_kbps: 200.0,
                seed,
                ..Default::default()
            };
            let r = run_experiment_with(&setup, composer, EngineConfig::default()).report;
            acc.0 += r.composed as f64;
            acc.1 += r.delivered_fraction();
            acc.2 += r.split_requests as f64;
        }
        let n = seeds.len() as f64;
        println!(
            "{:<22}{:>12.1}{:>12.3}{:>14.1}",
            name,
            acc.0 / n,
            acc.1 / n,
            acc.2 / n
        );
    }
}
