//! Self-contained microbenchmark harness (no external bench framework).
//!
//! Timing model: per benchmark, the op is warmed up, an iteration count
//! is calibrated so one sample runs for a fixed wall-time budget, then a
//! handful of samples are taken and the **median** ns/op is reported
//! (median over samples is robust to scheduler noise without needing
//! criterion's full bootstrap machinery). Results render to a compact
//! JSON document (`BENCH_compose.json`) so successive runs can be
//! diffed mechanically.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Global heap-allocation counter, bumped by the counting allocator the
/// `repro` binary installs (this library is `forbid(unsafe_code)`, so
/// the `GlobalAlloc` shim lives in the binary; see `bin/repro.rs`).
/// Library code only reads it.
pub static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

/// Whether the counting allocator should count at all. Off by default:
/// an unconditional `fetch_add` on one shared cache line turns every
/// allocation in the process into cross-core traffic, which measurably
/// drags the parallel sweep benches. [`count_allocations`] flips it on
/// only around the section being audited.
pub static ALLOC_COUNT_ENABLED: AtomicBool = AtomicBool::new(false);

/// Runs `op` and returns how many heap allocations it performed.
/// Meaningful only under a counting global allocator that bumps
/// [`ALLOC_COUNT`] while [`ALLOC_COUNT_ENABLED`] is set; without one it
/// returns 0. Not reentrant and not thread-aware: counts every
/// allocation process-wide while `op` runs.
pub fn count_allocations<F: FnOnce()>(op: F) -> u64 {
    let before = ALLOC_COUNT.load(Ordering::Relaxed);
    ALLOC_COUNT_ENABLED.store(true, Ordering::Relaxed);
    op();
    ALLOC_COUNT_ENABLED.store(false, Ordering::Relaxed);
    ALLOC_COUNT.load(Ordering::Relaxed) - before
}

/// One benchmark's aggregated result.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Benchmark id, e.g. `"compose_rollback/mincost/32"`.
    pub name: String,
    /// Unit of `value`: `"ns/op"` for timings (smaller is better) or
    /// `"units/s"` for throughput (bigger is better). The regression
    /// tripwire in `scripts/verify.sh` keys its direction off this.
    pub unit: String,
    /// Headline value in `unit` (median across samples for timings).
    pub value: f64,
    /// Smallest sample's value.
    pub min: f64,
    /// Largest sample's value.
    pub max: f64,
    /// Iterations per sample (calibrated), or ops per run for rates.
    pub iters: u64,
    /// Number of samples taken.
    pub samples: usize,
    /// Free-form annotation carried into the JSON report. The one
    /// meaningful value today is `"ap1"`: the entry measures parallel
    /// scaling but was taken on a box with `available_parallelism == 1`,
    /// so `scripts/verify.sh` must not treat it as a scaling reference.
    pub note: Option<String>,
    /// Effective worker count the measured code ran with (the
    /// `desim::pool` thread count), for entries that exercise a parallel
    /// path. `None` for single-threaded benches. Recorded per entry so
    /// downstream tooling (the `"ap1"` annotation, `scripts/verify.sh`'s
    /// scaling skip) derives machine context from the JSON itself
    /// instead of guessing from benchmark names.
    pub threads: Option<usize>,
}

impl Measurement {
    /// Attaches an annotation (see [`Measurement::note`]).
    pub fn with_note(mut self, note: &str) -> Self {
        self.note = Some(note.to_string());
        self
    }

    /// Records the effective worker count (see [`Measurement::threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Renders a single aligned report line.
    pub fn line(&self) -> String {
        format!(
            "{:<44} {:>14} {:<7} (min {:>12}, max {:>12}, {} x {} iters)",
            self.name,
            fmt_ns(self.value),
            self.unit,
            fmt_ns(self.min),
            fmt_ns(self.max),
            self.samples,
            self.iters,
        )
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.1}", ns)
    } else {
        format!("{:.2}", ns)
    }
}

/// Times `op` with the default budget: ~25 ms per sample, 7 samples.
pub fn bench<F: FnMut()>(name: &str, op: F) -> Measurement {
    bench_config(name, Duration::from_millis(25), 7, op)
}

/// Times `op` with an explicit per-sample budget and sample count.
pub fn bench_config<F: FnMut()>(
    name: &str,
    target_sample: Duration,
    samples: usize,
    mut op: F,
) -> Measurement {
    assert!(samples >= 1, "need at least one sample");
    // Warmup + calibration: double the batch until it runs long enough
    // to estimate the per-op cost reliably.
    let mut iters: u64 = 1;
    let per_op_estimate = loop {
        let elapsed = time_batch(&mut op, iters);
        if elapsed >= Duration::from_millis(2) || iters >= 1 << 24 {
            break elapsed.as_secs_f64() / iters as f64;
        }
        iters *= 2;
    };
    let iters_per_sample =
        ((target_sample.as_secs_f64() / per_op_estimate.max(1e-12)).ceil() as u64).max(1);

    let mut per_sample_ns: Vec<f64> = (0..samples)
        .map(|_| {
            let elapsed = time_batch(&mut op, iters_per_sample);
            elapsed.as_secs_f64() * 1e9 / iters_per_sample as f64
        })
        .collect();
    per_sample_ns.sort_by(|a, b| a.total_cmp(b));
    let median = if samples % 2 == 1 {
        per_sample_ns[samples / 2]
    } else {
        (per_sample_ns[samples / 2 - 1] + per_sample_ns[samples / 2]) / 2.0
    };
    Measurement {
        name: name.to_string(),
        unit: "ns/op".to_string(),
        value: median,
        min: per_sample_ns[0],
        max: per_sample_ns[samples - 1],
        iters: iters_per_sample,
        samples,
        note: None,
        threads: None,
    }
}

/// Records a single already-measured wall time (for second-scale runs
/// like whole sweeps, where repeated sampling is too expensive).
pub fn record_wall(name: &str, elapsed: Duration) -> Measurement {
    Measurement {
        name: name.to_string(),
        unit: "ns/op".to_string(),
        value: elapsed.as_secs_f64() * 1e9,
        min: elapsed.as_secs_f64() * 1e9,
        max: elapsed.as_secs_f64() * 1e9,
        iters: 1,
        samples: 1,
        note: None,
        threads: None,
    }
}

/// Records a throughput: `ops` operations completed in `elapsed` wall
/// time, reported as `units/s` (bigger is better — the regression
/// tripwire inverts its comparison for this unit).
pub fn record_rate(name: &str, ops: u64, elapsed: Duration) -> Measurement {
    let per_sec = ops as f64 / elapsed.as_secs_f64().max(1e-12);
    Measurement {
        name: name.to_string(),
        unit: "units/s".to_string(),
        value: per_sec,
        min: per_sec,
        max: per_sec,
        iters: ops,
        samples: 1,
        note: None,
        threads: None,
    }
}

/// Records a dimensionless ratio — e.g. a speedup of one benchmark over
/// another — reported as `x` (bigger is better; the regression tripwire
/// inverts its comparison for this unit, like `units/s`).
pub fn record_ratio(name: &str, ratio: f64) -> Measurement {
    Measurement {
        name: name.to_string(),
        unit: "x".to_string(),
        value: ratio,
        min: ratio,
        max: ratio,
        iters: 1,
        samples: 1,
        note: None,
        threads: None,
    }
}

/// Records a bare counter in an explicit unit — e.g. simplex pivots per
/// repair. Counter units are outside the regression tripwire's keyed
/// set (`ns/op`, `units/s`, `x`), so these entries are tracked in the
/// diff without a pass/fail direction.
pub fn record_value(name: &str, value: f64, unit: &str) -> Measurement {
    Measurement {
        name: name.to_string(),
        unit: unit.to_string(),
        value,
        min: value,
        max: value,
        iters: 1,
        samples: 1,
        note: None,
        threads: None,
    }
}

fn time_batch<F: FnMut()>(op: &mut F, iters: u64) -> Duration {
    let start = Instant::now();
    for _ in 0..iters {
        op();
    }
    start.elapsed()
}

/// Renders the measurements (plus free-form string context) as a JSON
/// document. All context values are emitted as JSON strings.
pub fn render_json(context: &[(&str, String)], results: &[Measurement]) -> String {
    let mut out = String::from("{\n  \"context\": {");
    for (i, (k, v)) in context.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    {}: {}", json_string(k), json_string(v)));
    }
    out.push_str("\n  },\n  \"benchmarks\": [");
    for (i, m) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut note = match &m.note {
            Some(n) => format!(", \"note\": {}", json_string(n)),
            None => String::new(),
        };
        if let Some(t) = m.threads {
            note.push_str(&format!(", \"threads\": {t}"));
        }
        out.push_str(&format!(
            "\n    {{\"name\": {}, \"unit\": {}, \"value\": {:.2}, \"min\": {:.2}, \
             \"max\": {:.2}, \"iters\": {}, \"samples\": {}{}}}",
            json_string(&m.name),
            json_string(&m.unit),
            m.value,
            m.min,
            m.max,
            m.iters,
            m.samples,
            note
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something_positive() {
        let mut acc = 0u64;
        let m = bench_config("noop-ish", Duration::from_millis(1), 3, || {
            acc = black_box(acc.wrapping_add(1));
        });
        assert!(m.value > 0.0);
        assert!(m.min <= m.value && m.value <= m.max);
        assert_eq!(m.unit, "ns/op");
        assert_eq!(m.samples, 3);
        assert!(m.iters >= 1);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let m = Measurement {
            name: "a\"b".into(),
            unit: "ns/op".into(),
            value: 12.5,
            min: 10.0,
            max: 15.0,
            iters: 100,
            samples: 5,
            note: None,
            threads: None,
        };
        let noted = record_ratio("scaled", 2.0).with_note("ap1").with_threads(3);
        let doc = render_json(&[("threads", "4".to_string())], &[m, noted]);
        assert!(doc.contains("\"a\\\"b\""));
        assert!(doc.contains("\"unit\": \"ns/op\""));
        assert!(doc.contains("\"value\": 12.50"));
        assert!(doc.contains("\"threads\": \"4\""));
        assert!(doc.contains("\"note\": \"ap1\""));
        // Per-entry worker count rides next to the note as a JSON number.
        assert!(doc.contains("\"note\": \"ap1\", \"threads\": 3"));
        // Balanced braces/brackets (cheap structural sanity check).
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn record_wall_is_identity() {
        let m = record_wall("sweep", Duration::from_millis(3));
        assert!((m.value - 3e6).abs() < 1.0);
        assert_eq!(m.iters, 1);
    }

    #[test]
    fn record_ratio_reports_x_unit() {
        let m = record_ratio("adapt/basis_crash_speedup/6x24", 21.4);
        assert_eq!(m.unit, "x");
        assert!((m.value - 21.4).abs() < 1e-9);
        let line = m.line();
        assert!(line.contains(" x "), "{line}");
    }

    #[test]
    fn record_rate_divides_ops_by_wall() {
        let m = record_rate("dataplane/x", 5_000, Duration::from_millis(250));
        assert_eq!(m.unit, "units/s");
        assert!((m.value - 20_000.0).abs() < 1e-6);
        assert_eq!(m.iters, 5_000);
        // The report line carries the unit in the third column, which is
        // what the verify.sh tripwire keys on.
        let line = m.line();
        assert!(line.contains("units/s"), "{line}");
    }
}
