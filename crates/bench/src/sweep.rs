//! The full evaluation sweep: 3 algorithms × rate axis × seeds.
//!
//! One sweep produces the data for *all* of Figures 6–11 (the paper's
//! figures are different projections of the same runs). Runs execute in
//! parallel with rayon; each individual simulation stays single-threaded
//! and deterministic in its seed.

use rasc_core::compose::ComposerKind;
use rasc_core::engine::EngineConfig;
use rasc_core::metrics::RunReport;
use rayon::prelude::*;
use workload::{run_experiment_with, PaperSetup};

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Base scenario (rate and seed fields are overwritten per cell).
    pub setup: PaperSetup,
    /// The rate axis in Kb/s (paper: 50, 100, 150, 200).
    pub rates_kbps: Vec<f64>,
    /// Seeds to average over (paper: 5 runs).
    pub seeds: Vec<u64>,
    /// Engine overrides applied to every run (ablation hook).
    pub config: EngineConfig,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            setup: PaperSetup::default(),
            rates_kbps: vec![50.0, 100.0, 150.0, 200.0],
            seeds: vec![1, 2, 3, 4, 5],
            config: EngineConfig::default(),
        }
    }
}

/// One aggregated sweep cell: a (algorithm, rate) pair averaged over the
/// seeds.
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// The composition algorithm.
    pub composer: ComposerKind,
    /// Average request rate in Kb/s.
    pub rate_kbps: f64,
    /// Per-seed raw reports.
    pub runs: Vec<RunReport>,
}

impl SweepCell {
    /// Mean of an arbitrary per-run statistic.
    pub fn mean(&self, f: impl Fn(&RunReport) -> f64) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs.iter().map(&f).sum::<f64>() / self.runs.len() as f64
    }

    /// Sample standard deviation of a per-run statistic.
    pub fn stddev(&self, f: impl Fn(&RunReport) -> f64) -> f64 {
        let n = self.runs.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean(&f);
        let var = self
            .runs
            .iter()
            .map(|r| (f(r) - mean).powi(2))
            .sum::<f64>()
            / (n - 1) as f64;
        var.sqrt()
    }
}

/// Runs the full sweep: every algorithm at every rate with every seed.
/// Cells come back ordered by (algorithm, rate).
pub fn paper_sweep(cfg: &SweepConfig) -> Vec<SweepCell> {
    let mut jobs = Vec::new();
    for &composer in &ComposerKind::ALL {
        for &rate in &cfg.rates_kbps {
            jobs.push((composer, rate));
        }
    }
    jobs.par_iter()
        .map(|&(composer, rate)| {
            let runs: Vec<RunReport> = cfg
                .seeds
                .par_iter()
                .map(|&seed| {
                    let mut setup = cfg.setup.clone();
                    setup.avg_rate_kbps = rate;
                    setup.seed = seed;
                    run_experiment_with(&setup, composer, cfg.config.clone()).report
                })
                .collect();
            SweepCell {
                composer,
                rate_kbps: rate,
                runs,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_cells() {
        let cfg = SweepConfig {
            setup: PaperSetup::small(0),
            rates_kbps: vec![50.0, 100.0],
            seeds: vec![1, 2],
            config: EngineConfig::default(),
        };
        let cells = paper_sweep(&cfg);
        assert_eq!(cells.len(), 3 * 2);
        for c in &cells {
            assert_eq!(c.runs.len(), 2);
        }
        // Ordering: mincost first, then random, then greedy.
        assert_eq!(cells[0].composer, ComposerKind::MinCost);
        assert_eq!(cells[2].composer, ComposerKind::Random);
        assert_eq!(cells[4].composer, ComposerKind::Greedy);
    }

    #[test]
    fn cell_statistics() {
        let a = RunReport {
            composed: 10,
            ..Default::default()
        };
        let b = RunReport {
            composed: 20,
            ..Default::default()
        };
        let cell = SweepCell {
            composer: ComposerKind::MinCost,
            rate_kbps: 100.0,
            runs: vec![a, b],
        };
        assert!((cell.mean(|r| r.composed as f64) - 15.0).abs() < 1e-12);
        let sd = cell.stddev(|r| r.composed as f64);
        assert!((sd - 7.0710678).abs() < 1e-6);
    }
}
