//! The full evaluation sweep: 3 algorithms × rate axis × seeds.
//!
//! One sweep produces the data for *all* of Figures 6–11 (the paper's
//! figures are different projections of the same runs). Runs fan out
//! across cores on [`desim::pool`]; each individual simulation stays
//! single-threaded and deterministic in its seed, and the pool preserves
//! job → result ordering, so a parallel sweep is bit-for-bit identical
//! to a serial one (`RASC_THREADS=1`).

use rasc_core::compose::ComposerKind;
use rasc_core::engine::EngineConfig;
use rasc_core::metrics::RunReport;
use workload::{run_experiment_with, PaperSetup};

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Base scenario (rate and seed fields are overwritten per cell).
    pub setup: PaperSetup,
    /// The rate axis in Kb/s (paper: 50, 100, 150, 200).
    pub rates_kbps: Vec<f64>,
    /// Seeds to average over (paper: 5 runs).
    pub seeds: Vec<u64>,
    /// Engine overrides applied to every run (ablation hook).
    pub config: EngineConfig,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            setup: PaperSetup::default(),
            rates_kbps: vec![50.0, 100.0, 150.0, 200.0],
            seeds: vec![1, 2, 3, 4, 5],
            config: EngineConfig::default(),
        }
    }
}

/// One aggregated sweep cell: a (algorithm, rate) pair averaged over the
/// seeds.
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// The composition algorithm.
    pub composer: ComposerKind,
    /// Average request rate in Kb/s.
    pub rate_kbps: f64,
    /// Per-seed raw reports.
    pub runs: Vec<RunReport>,
}

impl SweepCell {
    /// Mean of an arbitrary per-run statistic.
    pub fn mean(&self, f: impl Fn(&RunReport) -> f64) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs.iter().map(&f).sum::<f64>() / self.runs.len() as f64
    }

    /// Sample standard deviation of a per-run statistic.
    pub fn stddev(&self, f: impl Fn(&RunReport) -> f64) -> f64 {
        let n = self.runs.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean(&f);
        let var = self.runs.iter().map(|r| (f(r) - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        var.sqrt()
    }
}

/// Runs the full sweep: every algorithm at every rate with every seed.
/// Cells come back ordered by (algorithm, rate).
///
/// Uses [`desim::pool::default_threads`] workers (override with the
/// `RASC_THREADS` environment variable).
pub fn paper_sweep(cfg: &SweepConfig) -> Vec<SweepCell> {
    paper_sweep_threads(cfg, desim::pool::default_threads())
}

/// [`paper_sweep`] with an explicit worker count (`threads == 1` is the
/// fully serial reference execution).
///
/// The 3 × rates × seeds simulations are flattened into one job list so
/// the pool load-balances across all of them at once (cells vary wildly
/// in runtime — mincost at 200 Kb/s costs far more than random at 50),
/// then regrouped into cells ordered by (algorithm, rate) with runs in
/// seed order, independent of the worker count.
pub fn paper_sweep_threads(cfg: &SweepConfig, threads: usize) -> Vec<SweepCell> {
    let mut jobs = Vec::new();
    for &composer in &ComposerKind::ALL {
        for &rate in &cfg.rates_kbps {
            for &seed in &cfg.seeds {
                jobs.push((composer, rate, seed));
            }
        }
    }
    let mut reports =
        desim::pool::parallel_map_threads(threads, &jobs, |_, &(composer, rate, seed)| {
            let mut setup = cfg.setup.clone();
            setup.avg_rate_kbps = rate;
            setup.seed = seed;
            run_experiment_with(&setup, composer, cfg.config.clone()).report
        })
        .into_iter();

    let mut cells = Vec::with_capacity(ComposerKind::ALL.len() * cfg.rates_kbps.len());
    for &composer in &ComposerKind::ALL {
        for &rate in &cfg.rates_kbps {
            let runs: Vec<RunReport> = (0..cfg.seeds.len())
                .map(|_| reports.next().expect("one report per job"))
                .collect();
            cells.push(SweepCell {
                composer,
                rate_kbps: rate,
                runs,
            });
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_cells() {
        let cfg = SweepConfig {
            setup: PaperSetup::small(0),
            rates_kbps: vec![50.0, 100.0],
            seeds: vec![1, 2],
            config: EngineConfig::default(),
        };
        let cells = paper_sweep(&cfg);
        assert_eq!(cells.len(), 3 * 2);
        for c in &cells {
            assert_eq!(c.runs.len(), 2);
        }
        // Ordering: mincost first, then random, then greedy.
        assert_eq!(cells[0].composer, ComposerKind::MinCost);
        assert_eq!(cells[2].composer, ComposerKind::Random);
        assert_eq!(cells[4].composer, ComposerKind::Greedy);
    }

    /// The pool preserves job → result ordering and every simulation is
    /// deterministic in its seed, so a parallel sweep must reproduce the
    /// serial one exactly — on any machine, with any worker count.
    #[test]
    fn parallel_sweep_matches_serial() {
        let cfg = SweepConfig {
            setup: PaperSetup::small(0),
            rates_kbps: vec![50.0],
            seeds: vec![1, 2, 3],
            config: EngineConfig::default(),
        };
        let key = |cells: &[SweepCell]| -> Vec<(u64, u64, u64, u64, u64)> {
            cells
                .iter()
                .flat_map(|c| c.runs.iter())
                .map(|r| (r.composed, r.rejected, r.generated, r.delivered, r.timely))
                .collect()
        };
        let serial = paper_sweep_threads(&cfg, 1);
        for threads in [2, 4] {
            let parallel = paper_sweep_threads(&cfg, threads);
            assert_eq!(key(&serial), key(&parallel), "threads={threads}");
        }
    }

    #[test]
    fn cell_statistics() {
        let a = RunReport {
            composed: 10,
            ..Default::default()
        };
        let b = RunReport {
            composed: 20,
            ..Default::default()
        };
        let cell = SweepCell {
            composer: ComposerKind::MinCost,
            rate_kbps: 100.0,
            runs: vec![a, b],
        };
        assert!((cell.mean(|r| r.composed as f64) - 15.0).abs() < 1e-12);
        let sd = cell.stddev(|r| r.composed as f64);
        assert!((sd - 7.0710678).abs() < 1e-6);
    }
}
