//! Chaos soak harness: drives seeded fault plans against fully audited
//! engines across the seed × fault-profile × composer matrix. Every run
//! must finish with zero invariant violations (unit conservation,
//! ledger consistency, rollback exactness, exactly-once delivery,
//! registry health, queue liveness), and the per-run digests fold into
//! one deterministic matrix digest — bit-identical whether the matrix
//! is executed serially or on the worker pool.

use desim::{QueueBackend, SimDuration};
use rasc_core::compose::ComposerKind;
use rasc_core::engine::{fnv1a64, Engine, EngineConfig, FaultPlan, FaultProfile};
use rasc_core::model::{ServiceCatalog, ServiceRequest};
use simnet::{kbps, TopologyBuilder};

/// Axes of the soak matrix plus the per-run world shape.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Seeds; each seeds the catalog, the generated fault plan, and the
    /// engine RNG of its runs.
    pub seeds: Vec<u64>,
    /// Fault profiles; each yields a distinct deterministic plan per seed.
    pub profiles: Vec<FaultProfile>,
    /// Composition algorithms under test.
    pub composers: Vec<ComposerKind>,
    /// Data-plane variants: (event-queue backend, transfer batch). The
    /// matrix crosses these with every (seed, profile, composer) cell.
    /// All batch-1 variants of a cell must produce *identical* digests —
    /// the event-queue backend is unobservable — while batched variants
    /// coarsen timing and are held to the audit invariants only.
    pub variants: Vec<(QueueBackend, u32)>,
    /// Provider nodes per run (two endpoint nodes are appended).
    pub providers: usize,
    /// Simulated horizon per run, seconds; fault times land inside it.
    pub horizon_secs: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seeds: (1..=8).collect(),
            profiles: FaultProfile::ALL.to_vec(),
            composers: ComposerKind::ALL.to_vec(),
            variants: vec![
                (QueueBackend::BinaryHeap, 1),
                (QueueBackend::TimerWheel, 1),
                (QueueBackend::TimerWheel, 8),
            ],
            providers: 6,
            horizon_secs: 20.0,
        }
    }
}

impl ChaosConfig {
    /// CI-sized matrix: 5 seeds × all 4 profiles × all 3 composers.
    pub fn quick() -> Self {
        ChaosConfig {
            seeds: (1..=5).collect(),
            ..Default::default()
        }
    }

    /// Number of runs in the matrix.
    pub fn runs(&self) -> usize {
        self.seeds.len() * self.profiles.len() * self.composers.len() * self.variants.len()
    }
}

/// Outcome of one audited chaos run.
#[derive(Clone, Debug)]
pub struct ChaosRun {
    /// Seed of this run.
    pub seed: u64,
    /// Fault profile the plan was generated from.
    pub profile: FaultProfile,
    /// Composer under test.
    pub composer: ComposerKind,
    /// Event-queue backend the run's engine scheduled on.
    pub backend: QueueBackend,
    /// Units coalesced per link transfer.
    pub batch: u32,
    /// Deterministic digest of the run's counters and audit trail.
    pub digest: u64,
    /// Total violations (retained + suppressed); 0 in a healthy run.
    pub violations: u64,
    /// First few violation messages, for diagnostics.
    pub messages: Vec<String>,
    /// Mid-run audit checkpoints performed.
    pub checkpoints: u64,
}

/// Aggregated matrix result.
#[derive(Clone, Debug)]
pub struct ChaosSummary {
    /// One entry per (seed, profile, composer) cell, in job order.
    pub runs: Vec<ChaosRun>,
    /// Matrix digest: FNV-1a over every run's digest in job order.
    pub digest: u64,
    /// Sum of violations across the matrix.
    pub violations: u64,
}

impl ChaosSummary {
    /// Whether the whole matrix finished without a single violation.
    pub fn clean(&self) -> bool {
        self.violations == 0
    }

    /// First pair of batch-1 runs of the same (seed, profile, composer)
    /// cell whose digests differ, if any. The event-queue backend must be
    /// unobservable at `transfer_batch == 1`: a mismatch means a backend
    /// reordered same-instant events. `None` is the healthy outcome.
    pub fn backend_mismatch(&self, variants: usize) -> Option<(&ChaosRun, &ChaosRun)> {
        // Job order keeps a cell's variants adjacent.
        for cell in self.runs.chunks(variants) {
            let mut perunit = cell.iter().filter(|r| r.batch == 1);
            let Some(first) = perunit.next() else {
                continue;
            };
            if let Some(bad) = perunit.find(|r| r.digest != first.digest) {
                return Some((first, bad));
            }
        }
        None
    }
}

/// Builds the audited engine for one cell: `providers` nodes offering
/// both services behind modest NICs (so faults bite), two endpoints,
/// checkpointing auditor, and the generated fault plan.
fn build_engine(
    cfg: &ChaosConfig,
    seed: u64,
    composer: ComposerKind,
    variant: (QueueBackend, u32),
    plan: FaultPlan,
) -> Engine {
    let nodes = cfg.providers + 2;
    let catalog = ServiceCatalog::synthetic(2, seed);
    let mut b = TopologyBuilder::new().default_latency(SimDuration::from_millis(15));
    for _ in 0..nodes {
        b.node(kbps(2_000.0), kbps(2_000.0));
    }
    let mut offers = vec![vec![0, 1]; cfg.providers];
    offers.push(vec![]);
    offers.push(vec![]);
    Engine::builder(nodes, catalog, seed)
        .topology(b.build())
        .offers(offers)
        .config(EngineConfig {
            composer,
            queue_backend: variant.0,
            transfer_batch: variant.1,
            audit: true,
            audit_period_secs: 1.0,
            ..Default::default()
        })
        .faults(plan)
        .build()
}

/// One audited run: a mixed workload (finite lifetimes, an open-ended
/// stream, and an over-sized rejection exercising audited rollback)
/// submitted while the fault plan fires, then quiesced and torn down
/// under the auditor's final check.
fn run_cell(
    cfg: &ChaosConfig,
    seed: u64,
    profile: FaultProfile,
    composer: ComposerKind,
    variant: (QueueBackend, u32),
) -> ChaosRun {
    let candidates: Vec<usize> = (0..cfg.providers).collect();
    let plan = FaultPlan::generate(profile, seed, &candidates, cfg.horizon_secs);
    let mut e = build_engine(cfg, seed, composer, variant, plan);
    let src = cfg.providers;
    let dst = cfg.providers + 1;
    let _ = e.submit(
        ServiceRequest::chain(&[0, 1], 20.0, src, dst)
            .with_lifetime(SimDuration::from_secs_f64(0.7 * cfg.horizon_secs)),
    );
    let _ = e.submit(ServiceRequest::chain(&[0], 15.0, src, dst));
    e.run_for_secs(0.1 * cfg.horizon_secs);
    let _ = e.submit(
        ServiceRequest::chain(&[1, 0], 12.0, src, dst)
            .with_lifetime(SimDuration::from_secs_f64(0.5 * cfg.horizon_secs)),
    );
    // Far beyond any NIC: must be rejected, with the rollback audited.
    let rejected = e.submit(ServiceRequest::chain(&[0, 1], 5_000.0, src, dst));
    debug_assert!(rejected.is_err());
    e.run_for_secs(0.9 * cfg.horizon_secs);
    let audit = e.finish_run();
    ChaosRun {
        seed,
        profile,
        composer,
        backend: variant.0,
        batch: variant.1,
        digest: e.run_digest(),
        violations: audit.violation_count(),
        messages: audit.violations,
        checkpoints: audit.checkpoints,
    }
}

/// Runs the matrix on `threads` workers. Job order — and therefore the
/// matrix digest — is fixed by the config axes, not by scheduling.
pub fn chaos_soak_threads(cfg: &ChaosConfig, threads: usize) -> ChaosSummary {
    let mut jobs = Vec::with_capacity(cfg.runs());
    for &seed in &cfg.seeds {
        for &profile in &cfg.profiles {
            for &composer in &cfg.composers {
                for &variant in &cfg.variants {
                    jobs.push((seed, profile, composer, variant));
                }
            }
        }
    }
    let runs = desim::pool::parallel_map_threads(
        threads,
        &jobs,
        |_, &(seed, profile, composer, variant)| run_cell(cfg, seed, profile, composer, variant),
    );
    let digest = fnv1a64(runs.iter().map(|r| r.digest));
    let violations = runs.iter().map(|r| r.violations).sum();
    ChaosSummary {
        runs,
        digest,
        violations,
    }
}

/// Runs the matrix on the default worker count (`RASC_THREADS` honored).
pub fn chaos_soak(cfg: &ChaosConfig) -> ChaosSummary {
    chaos_soak_threads(cfg, desim::pool::default_threads())
}

/// Axes of the sharded-admission soak: shard counts × digest-refresh
/// intervals, each cell an audited engine over a clustered overlay
/// admitting bursts through the region-sharded pipeline while the
/// auditor checkpoints (including the digest-staleness bound). Every
/// shard-count-1 cell also runs a `shards = 0` twin and records its
/// batch digest — the two pipelines must agree bit-for-bit.
#[derive(Clone, Debug)]
pub struct ShardedSoakConfig {
    /// Seeds; each seeds catalog, topology, and engine RNG.
    pub seeds: Vec<u64>,
    /// Shard counts under test (1 triggers the serial-twin comparison).
    pub shard_counts: Vec<usize>,
    /// Digest refresh periods in simulated seconds (the staleness axis).
    pub refresh_secs: Vec<f64>,
    /// Overlay size per run.
    pub nodes: usize,
    /// Simulated horizon per run, seconds.
    pub horizon_secs: f64,
}

impl Default for ShardedSoakConfig {
    fn default() -> Self {
        ShardedSoakConfig {
            seeds: vec![1, 2, 3],
            shard_counts: vec![1, 2, 4],
            refresh_secs: vec![0.5, 4.0],
            nodes: 64,
            horizon_secs: 12.0,
        }
    }
}

impl ShardedSoakConfig {
    /// Number of cells in the matrix.
    pub fn runs(&self) -> usize {
        self.seeds.len() * self.shard_counts.len() * self.refresh_secs.len()
    }
}

/// Outcome of one audited sharded-soak cell.
#[derive(Clone, Debug)]
pub struct ShardedSoakRun {
    /// Seed of this cell.
    pub seed: u64,
    /// Shard count of the engine under test.
    pub shards: usize,
    /// Digest refresh period of the engine under test.
    pub refresh_secs: f64,
    /// Folded digest of both bursts' admission outcomes.
    pub batch_digest: u64,
    /// The `shards = 0` twin's folded batch digest (shard-count-1 cells
    /// only); must equal `batch_digest`.
    pub twin_digest: Option<u64>,
    /// Total audit violations (retained + suppressed); 0 when healthy.
    pub violations: u64,
    /// First few violation messages, for diagnostics.
    pub messages: Vec<String>,
    /// Mid-run audit checkpoints performed.
    pub checkpoints: u64,
}

/// Aggregated sharded-soak result.
#[derive(Clone, Debug)]
pub struct ShardedSoakSummary {
    /// One entry per (seed, shards, refresh) cell, in job order.
    pub runs: Vec<ShardedSoakRun>,
    /// Matrix digest over every cell's batch digest, in job order.
    pub digest: u64,
    /// Sum of violations across the matrix.
    pub violations: u64,
}

impl ShardedSoakSummary {
    /// Whether every cell finished without a violation AND every
    /// shard-count-1 cell matched its global twin.
    pub fn clean(&self) -> bool {
        self.violations == 0 && self.twin_mismatch().is_none()
    }

    /// First shard-count-1 cell whose digest differs from its
    /// `shards = 0` twin, if any. `None` is the healthy outcome.
    pub fn twin_mismatch(&self) -> Option<&ShardedSoakRun> {
        self.runs
            .iter()
            .find(|r| r.twin_digest.is_some_and(|t| t != r.batch_digest))
    }
}

/// Builds one audited engine over a power-law overlay for the sharded
/// soak; `shards = 0` builds the global-pipeline twin.
fn build_sharded_engine(cfg: &ShardedSoakConfig, seed: u64, shards: usize, refresh: f64) -> Engine {
    let n = cfg.nodes;
    let catalog = ServiceCatalog::synthetic(4, seed);
    let topo = simnet::Topology::power_law(n, kbps(400.0), kbps(3000.0), seed);
    let offers: Vec<Vec<usize>> = (0..n)
        .map(|v| (0..4).filter(|s| (v + s) % 7 == 0).collect())
        .collect();
    Engine::builder(n, catalog, seed)
        .topology(topo)
        .offers(offers)
        .config(EngineConfig {
            candidate_cap: Some(8),
            shards,
            digest_refresh_secs: refresh,
            audit: true,
            audit_period_secs: 1.0,
            ..Default::default()
        })
        .build()
}

/// Drives one engine through the soak workload: two bursts with the
/// fault-free horizon split around them, then teardown under the final
/// audit. Returns (folded batch digest, audit report, checkpoints).
fn drive_sharded(
    cfg: &ShardedSoakConfig,
    e: &mut Engine,
    n: usize,
) -> (u64, u64, Vec<String>, u64) {
    let burst = |o: usize| -> Vec<ServiceRequest> {
        (0..16)
            .map(|i| {
                ServiceRequest::chain(
                    &[i % 4, (i + 1) % 4],
                    4.0 + ((i + o) % 16) as f64,
                    (i * 5 + o) % n,
                    (i * 5 + o + 2) % n,
                )
            })
            .collect()
    };
    let first = e.submit_batch(burst(0), 2);
    e.run_for_secs(0.4 * cfg.horizon_secs);
    let second = e.submit_batch(burst(3), 2);
    e.run_for_secs(0.6 * cfg.horizon_secs);
    let audit = e.finish_run();
    let digest = fnv1a64([first.digest, second.digest]);
    (
        digest,
        audit.violation_count(),
        audit.violations,
        audit.checkpoints,
    )
}

/// One sharded-soak cell (plus the global twin at shard-count 1).
fn run_sharded_cell(
    cfg: &ShardedSoakConfig,
    seed: u64,
    shards: usize,
    refresh: f64,
) -> ShardedSoakRun {
    let n = cfg.nodes;
    let mut e = build_sharded_engine(cfg, seed, shards, refresh);
    let (batch_digest, violations, messages, checkpoints) = drive_sharded(cfg, &mut e, n);
    let twin_digest = (shards == 1).then(|| {
        let mut twin = build_sharded_engine(cfg, seed, 0, refresh);
        let (d, v, m, _) = drive_sharded(cfg, &mut twin, n);
        debug_assert_eq!(v, 0, "global twin violated the audit: {m:?}");
        d
    });
    ShardedSoakRun {
        seed,
        shards,
        refresh_secs: refresh,
        batch_digest,
        twin_digest,
        violations,
        messages,
        checkpoints,
    }
}

/// Runs the sharded-admission soak on `threads` workers; job order (and
/// the matrix digest) is fixed by the config axes.
pub fn sharded_soak_threads(cfg: &ShardedSoakConfig, threads: usize) -> ShardedSoakSummary {
    let mut jobs = Vec::with_capacity(cfg.runs());
    for &seed in &cfg.seeds {
        for &shards in &cfg.shard_counts {
            for &refresh in &cfg.refresh_secs {
                jobs.push((seed, shards, refresh));
            }
        }
    }
    let runs = desim::pool::parallel_map_threads(threads, &jobs, |_, &(seed, shards, refresh)| {
        run_sharded_cell(cfg, seed, shards, refresh)
    });
    let digest = fnv1a64(runs.iter().map(|r| r.batch_digest));
    let violations = runs.iter().map(|r| r.violations).sum();
    ShardedSoakSummary {
        runs,
        digest,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ChaosConfig {
        ChaosConfig {
            seeds: vec![4, 5],
            profiles: vec![FaultProfile::Mixed],
            composers: vec![ComposerKind::MinCost, ComposerKind::Greedy],
            variants: vec![(QueueBackend::BinaryHeap, 1), (QueueBackend::TimerWheel, 1)],
            horizon_secs: 12.0,
            ..Default::default()
        }
    }

    #[test]
    fn tiny_matrix_is_clean_and_deterministic() {
        let cfg = tiny();
        let a = chaos_soak_threads(&cfg, 1);
        assert!(a.clean(), "{:#?}", a.runs);
        assert_eq!(a.runs.len(), cfg.runs());
        assert!(a.runs.iter().all(|r| r.checkpoints > 0));
        if let Some((x, y)) = a.backend_mismatch(cfg.variants.len()) {
            panic!("backend-dependent digest: {x:#?} vs {y:#?}");
        }
        let b = chaos_soak_threads(&cfg, 2);
        assert_eq!(a.digest, b.digest, "digest depends on worker count");
    }

    #[test]
    fn sharded_soak_is_clean_and_twin_equal() {
        let cfg = ShardedSoakConfig {
            seeds: vec![7, 9],
            shard_counts: vec![1, 4],
            refresh_secs: vec![0.5, 4.0],
            nodes: 64,
            horizon_secs: 8.0,
        };
        let a = sharded_soak_threads(&cfg, 1);
        assert_eq!(a.runs.len(), cfg.runs());
        assert_eq!(a.violations, 0, "{:#?}", a.runs);
        if let Some(bad) = a.twin_mismatch() {
            panic!("sharded != global at one shard: {bad:#?}");
        }
        assert!(a.runs.iter().all(|r| r.checkpoints > 0));
        // Every shard-count-1 cell carried a twin, no other cell did.
        assert!(a
            .runs
            .iter()
            .all(|r| (r.shards == 1) == r.twin_digest.is_some()));
        // Worker count must not change the matrix digest.
        let b = sharded_soak_threads(&cfg, 2);
        assert_eq!(a.digest, b.digest, "digest depends on worker count");
    }

    #[test]
    fn batched_variant_passes_audit() {
        let cfg = ChaosConfig {
            seeds: vec![6],
            profiles: vec![FaultProfile::Mixed],
            composers: vec![ComposerKind::MinCost],
            variants: vec![(QueueBackend::TimerWheel, 8)],
            horizon_secs: 12.0,
            ..Default::default()
        };
        let s = chaos_soak_threads(&cfg, 1);
        assert!(s.clean(), "{:#?}", s.runs);
        assert!(s.runs.iter().all(|r| r.checkpoints > 0));
    }
}
