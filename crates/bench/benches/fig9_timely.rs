//! Regenerates and times Figure 9 of the paper (see common.rs).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use rasc_bench::Figure;

fn bench(c: &mut Criterion) {
    common::bench_figure(c, Figure::Timely);
}

criterion_group!(benches, bench);
criterion_main!(benches);
