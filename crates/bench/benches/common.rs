//! Shared machinery for the per-figure benches: each figure bench
//! regenerates its series on a reduced sweep (printed to stdout, so
//! `cargo bench` output contains the reproduced figure) and then times
//! the underlying simulation for each composition algorithm.

use criterion::Criterion;
use rasc_bench::{paper_sweep, render_figure, Figure, SweepConfig};
use rasc_core::compose::ComposerKind;
use workload::{run_experiment, PaperSetup};

/// A sweep small enough for bench startup but covering the full rate
/// axis (the `repro` binary runs the full-size version).
pub fn reduced_sweep() -> SweepConfig {
    SweepConfig {
        setup: PaperSetup {
            requests: 12,
            submit_window_secs: 20.0,
            measure_secs: 40.0,
            ..PaperSetup::default()
        },
        rates_kbps: vec![50.0, 100.0, 150.0, 200.0],
        seeds: vec![1, 2],
        config: Default::default(),
    }
}

/// Prints the figure from a reduced sweep, then benchmarks the
/// simulation that produces one cell of it, per algorithm.
pub fn bench_figure(c: &mut Criterion, figure: Figure) {
    let cells = paper_sweep(&reduced_sweep());
    println!("\n{}", render_figure(figure, &cells));

    let mut group = c.benchmark_group(format!("fig{}", figure.number()));
    group.sample_size(10);
    for kind in ComposerKind::ALL {
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let setup = PaperSetup {
                    requests: 8,
                    submit_window_secs: 10.0,
                    measure_secs: 20.0,
                    avg_rate_kbps: 100.0,
                    seed: 1,
                    ..PaperSetup::default()
                };
                let out = run_experiment(&setup, kind);
                criterion::black_box(figure.value(&out.report))
            })
        });
    }
    group.finish();
}
