//! Shared machinery for the per-figure benches: each figure bench
//! regenerates its series on a reduced sweep (printed to stdout, so the
//! bench output contains the reproduced figure) and then times the
//! underlying simulation for each composition algorithm on the in-repo
//! microbench harness.

use rasc_bench::microbench::{bench_config, black_box};
use rasc_bench::{paper_sweep, render_figure, Figure, SweepConfig};
use rasc_core::compose::ComposerKind;
use std::time::Duration;
use workload::{run_experiment, PaperSetup};

/// A sweep small enough for bench startup but covering the full rate
/// axis (the `repro` binary runs the full-size version).
pub fn reduced_sweep() -> SweepConfig {
    SweepConfig {
        setup: PaperSetup {
            requests: 12,
            submit_window_secs: 20.0,
            measure_secs: 40.0,
            ..PaperSetup::default()
        },
        rates_kbps: vec![50.0, 100.0, 150.0, 200.0],
        seeds: vec![1, 2],
        config: Default::default(),
    }
}

/// Prints the figure from a reduced sweep, then benchmarks the
/// simulation that produces one cell of it, per algorithm.
pub fn bench_figure(figure: Figure) {
    let cells = paper_sweep(&reduced_sweep());
    println!("\n{}", render_figure(figure, &cells));

    for kind in ComposerKind::ALL {
        let m = bench_config(
            &format!("fig{}/{}", figure.number(), kind.label()),
            Duration::from_millis(400),
            3,
            || {
                let setup = PaperSetup {
                    requests: 8,
                    submit_window_secs: 10.0,
                    measure_secs: 20.0,
                    avg_rate_kbps: 100.0,
                    seed: 1,
                    ..PaperSetup::default()
                };
                let out = run_experiment(&setup, kind);
                black_box(figure.value(&out.report));
            },
        );
        println!("{}", m.line());
    }
}
