//! Table A (ours): min-cost flow solver ablation on composition-shaped
//! layered graphs — SPFA-SSP vs Dijkstra-SSP vs Goldberg cost scaling
//! vs capacity scaling (see `rasc_bench::instances::layered`).

use mincostflow::{min_cost_flow, Algorithm};
use rasc_bench::instances::layered;
use rasc_bench::microbench::{bench, black_box};

fn main() {
    for &(layers, width) in &[(3usize, 8usize), (5, 16), (6, 24)] {
        for (name, alg) in [
            ("spfa", Algorithm::SpfaSsp),
            ("dijkstra", Algorithm::DijkstraSsp),
            ("cost-scaling", Algorithm::CostScaling),
            ("capacity-scaling", Algorithm::CapacityScaling),
        ] {
            let (mut net, src, dst, target) = layered(layers, width, 42);
            let m = bench(&format!("solver_ablation/{name}/{layers}x{width}"), || {
                net.reset_flow();
                let sol =
                    min_cost_flow(&mut net, src, dst, target, alg).expect("feasible instance");
                black_box(sol.cost);
            });
            println!("{}", m.line());
        }
    }
}
