//! Table A (ours): min-cost flow solver ablation on composition-shaped
//! layered graphs — SPFA-SSP vs Dijkstra-SSP vs Goldberg cost scaling.
//!
//! The composition graphs RASC solves are layered DAGs: `layers` stages
//! of `width` candidate hosts each, node-split, with capacities/costs
//! in the ranges produced by the monitoring windows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use desim::SimRng;
use mincostflow::{min_cost_flow, Algorithm, FlowNetwork};

/// Builds a layered composition-shaped instance. Returns (net, src, dst,
/// feasible target).
fn layered(layers: usize, width: usize, seed: u64) -> (FlowNetwork, usize, usize, i64) {
    let mut rng = SimRng::new(seed);
    let mut net = FlowNetwork::new(2);
    let (src, dst) = (0, 1);
    let gate = net.add_node();
    net.add_edge(src, gate, 1_000_000, 0);
    let mut prev: Vec<usize> = vec![gate];
    let mut min_layer_cap = i64::MAX;
    for _ in 0..layers {
        let mut outs = Vec::with_capacity(width);
        let mut layer_cap = 0;
        for _ in 0..width {
            let v_in = net.add_node();
            let v_out = net.add_node();
            let cap = rng.range_u64(5_000, 40_000) as i64;
            let cost = rng.range_u64(0, 200) as i64;
            net.add_edge(v_in, v_out, cap, cost);
            layer_cap += cap;
            for &p in &prev {
                net.add_edge(p, v_in, 1_000_000, rng.range_u64(0, 30) as i64);
            }
            outs.push(v_out);
        }
        min_layer_cap = min_layer_cap.min(layer_cap);
        prev = outs;
    }
    for &p in &prev {
        net.add_edge(p, dst, 1_000_000, 0);
    }
    // Demand 60% of the narrowest layer: feasible, non-trivial.
    (net, src, dst, min_layer_cap * 6 / 10)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_ablation");
    group.sample_size(20);
    for &(layers, width) in &[(3usize, 8usize), (5, 16), (6, 24)] {
        for (name, alg) in [
            ("spfa", Algorithm::SpfaSsp),
            ("dijkstra", Algorithm::DijkstraSsp),
            ("cost-scaling", Algorithm::CostScaling),
            ("capacity-scaling", Algorithm::CapacityScaling),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, format!("{layers}x{width}")),
                &(layers, width),
                |b, &(layers, width)| {
                    b.iter_batched(
                        || layered(layers, width, 42),
                        |(mut net, src, dst, target)| {
                            min_cost_flow(&mut net, src, dst, target, alg).unwrap()
                        },
                        criterion::BatchSize::SmallInput,
                    )
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
