//! Table A (ours): min-cost flow solver ablation on composition-shaped
//! layered graphs — SPFA-SSP vs Dijkstra-SSP vs Dial's bucket-queue SSP
//! vs Goldberg cost scaling vs capacity scaling, plus the retained
//! warm-started solver (see `rasc_bench::instances::layered`).

use mincostflow::{min_cost_flow, Algorithm, FlowNetwork, FlowSolver};
use rasc_bench::instances::{layered, layered_into};
use rasc_bench::microbench::{bench, black_box};

fn main() {
    for &(layers, width) in &[(3usize, 8usize), (5, 16), (6, 24)] {
        for (name, alg) in [
            ("spfa", Algorithm::SpfaSsp),
            ("dijkstra", Algorithm::DijkstraSsp),
            ("dial", Algorithm::DialSsp),
            ("cost-scaling", Algorithm::CostScaling),
            ("capacity-scaling", Algorithm::CapacityScaling),
            ("simplex", Algorithm::NetworkSimplex),
        ] {
            let (mut net, src, dst, target) = layered(layers, width, 42);
            let m = bench(&format!("solver_ablation/{name}/{layers}x{width}"), || {
                net.reset_flow();
                let sol =
                    min_cost_flow(&mut net, src, dst, target, alg).expect("feasible instance");
                black_box(sol.cost);
            });
            println!("{}", m.line());
        }
        for (name, alg) in [
            ("dijkstra", Algorithm::DijkstraSsp),
            ("dial", Algorithm::DialSsp),
        ] {
            let mut solver = FlowSolver::new(alg);
            let mut net = FlowNetwork::new(0);
            let m = bench(
                &format!("solver_ablation_warm/{name}/{layers}x{width}"),
                || {
                    let (src, dst, target) = layered_into(&mut net, layers, width, 42);
                    let sol = solver
                        .solve(&mut net, src, dst, target)
                        .expect("feasible instance");
                    black_box(sol.cost);
                },
            );
            println!("{}", m.line());
        }
    }
}
