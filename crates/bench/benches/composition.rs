//! Microbenchmarks of one composition decision per algorithm — the
//! per-request control-plane cost of RASC vs the baselines — plus
//! Table C's splitting ablation printed from a live run.

use criterion::{criterion_group, criterion_main, Criterion};
use desim::{SimDuration, SimRng};
use rasc_core::compose::{ComposerKind, ProviderMap};
use rasc_core::model::{ServiceCatalog, ServiceRequest};
use rasc_core::view::SystemView;
use simnet::Topology;

fn setup(n: usize) -> (ServiceCatalog, SystemView, ProviderMap, ServiceRequest) {
    let catalog = ServiceCatalog::synthetic(10, 1);
    let view = SystemView::fresh(&Topology::planetlab_like(
        n,
        simnet::kbps(300.0),
        simnet::kbps(3000.0),
        1,
    ));
    let mut rng = SimRng::new(2);
    let mut providers = ProviderMap::new();
    for s in 0..10 {
        let mut hosts = rng.sample_indices(n - 2, 16.min(n - 2));
        hosts.sort_unstable();
        providers.insert(s, hosts);
    }
    let req = ServiceRequest::chain(&[0, 3, 7], 12.0, n - 2, n - 1);
    (catalog, view, providers, req)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("compose_one_request");
    group.sample_size(30);
    for &n in &[32usize, 64, 128] {
        let (catalog, view, providers, req) = setup(n);
        for kind in ComposerKind::ALL {
            group.bench_function(format!("{}/{n}", kind.label()), |b| {
                let mut composer = kind.build();
                let mut rng = SimRng::new(9);
                b.iter_batched(
                    || view.clone(),
                    |mut v| {
                        composer
                            .compose(&req, &catalog, &providers, &mut v, &mut rng)
                            .expect("feasible on a fresh view")
                    },
                    criterion::BatchSize::SmallInput,
                )
            });
        }
    }
    group.finish();
    let _ = SimDuration::ZERO;
}

criterion_group!(benches, bench);
criterion_main!(benches);
