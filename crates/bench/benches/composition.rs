//! Microbenchmarks of one composition decision per algorithm — the
//! per-request control-plane cost of RASC vs the baselines — at several
//! system sizes, plus the steady-state reject-and-roll-back path.

use desim::SimRng;
use rasc_bench::instances::{compose_setup, compose_setup_saturated};
use rasc_bench::microbench::{bench, black_box};
use rasc_core::compose::ComposerKind;

fn main() {
    for &n in &[32usize, 64, 128] {
        for kind in ComposerKind::ALL {
            let (catalog, view, providers, req) = compose_setup(n);
            let mut composer = kind.build();
            let mut rng = SimRng::new(9);
            let m = bench(&format!("compose_one_request/{}/{n}", kind.label()), || {
                let mut v = view.clone();
                let g = composer
                    .compose(&req, &catalog, &providers, &mut v, &mut rng)
                    .expect("feasible on a fresh view");
                black_box(g.substreams.len());
            });
            println!("{}", m.line());
        }
        let (catalog, mut view, providers, req) = compose_setup_saturated(n);
        let mut composer = ComposerKind::MinCost.build();
        let mut rng = SimRng::new(9);
        let m = bench(&format!("compose_reject_rollback/mincost/{n}"), || {
            let r = composer.compose(&req, &catalog, &providers, &mut view, &mut rng);
            debug_assert!(r.is_err());
            black_box(r.is_err());
        });
        println!("{}", m.line());
    }
}
