//! Microbenchmarks of the Pastry substrate: routing and DHT lookups at
//! several overlay sizes (the paper's discovery step, §3.3).

use desim::SimRng;
use overlay::{stable_hash128, Dht, NodeKey, Overlay};
use rasc_bench::microbench::{bench, black_box};

fn flat(_: usize, _: usize) -> f64 {
    1.0
}

fn main() {
    for &n in &[32usize, 128, 512] {
        let overlay = Overlay::build(n, 7, &flat);
        let mut dht = Dht::new(n, 2);
        for s in 0..10u32 {
            let key = stable_hash128(format!("service-{s}").as_bytes());
            for p in 0..16 {
                dht.insert(&overlay, p % n, key, (p % n) as u64);
            }
        }
        let mut rng = SimRng::new(3);
        let m = bench(&format!("overlay/route/{n}"), || {
            let key = NodeKey(((rng.next_u64() as u128) << 64) | rng.next_u64() as u128);
            let from = rng.range_usize(0, n);
            black_box(overlay.route_path(from, key));
        });
        println!("{}", m.line());
        let mut rng = SimRng::new(4);
        let m = bench(&format!("overlay/dht_lookup/{n}"), || {
            let s = rng.range_u64(0, 10);
            let key = stable_hash128(format!("service-{s}").as_bytes());
            black_box(dht.lookup(&overlay, rng.range_usize(0, n), key));
        });
        println!("{}", m.line());
    }
}
