//! Microbenchmarks of the Pastry substrate: routing and DHT lookups at
//! several overlay sizes (the paper's discovery step, §3.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use desim::SimRng;
use overlay::{stable_hash128, Dht, NodeKey, Overlay};

fn flat(_: usize, _: usize) -> f64 {
    1.0
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay");
    group.sample_size(30);
    for &n in &[32usize, 128, 512] {
        let overlay = Overlay::build(n, 7, &flat);
        let mut dht = Dht::new(n, 2);
        for s in 0..10u32 {
            let key = stable_hash128(format!("service-{s}").as_bytes());
            for p in 0..16 {
                dht.insert(&overlay, p % n, key, (p % n) as u64);
            }
        }
        group.bench_with_input(BenchmarkId::new("route", n), &n, |b, &n| {
            let mut rng = SimRng::new(3);
            b.iter(|| {
                let key = NodeKey(((rng.next_u64() as u128) << 64) | rng.next_u64() as u128);
                let from = rng.range_usize(0, n);
                criterion::black_box(overlay.route_path(from, key))
            })
        });
        group.bench_with_input(BenchmarkId::new("dht_lookup", n), &n, |b, &n| {
            let mut rng = SimRng::new(4);
            b.iter(|| {
                let s = rng.range_u64(0, 10);
                let key = stable_hash128(format!("service-{s}").as_bytes());
                criterion::black_box(dht.lookup(&overlay, rng.range_usize(0, n), key))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
