//! Regenerates and times Figure 7 of the paper (see common.rs).

mod common;

use rasc_bench::Figure;

fn main() {
    common::bench_figure(Figure::Delay);
}
