//! Residual flow-network representation, CSR-backed.
//!
//! Arcs are stored in a flat `Vec` where arc `2k` is the `k`-th user edge
//! and arc `2k+1` is its residual reverse (capacity 0, negated cost). This
//! pairing makes `rev(a) == a ^ 1`, avoiding an explicit pointer.
//!
//! Adjacency is a compressed-sparse-row (CSR) index over those arcs: one
//! flat `csr` array of arc ids grouped by tail node, and a `first_out`
//! offset array of length `n + 1`. Compared with the former
//! `Vec<Vec<usize>>` adjacency this keeps every node's out-arc list in
//! one contiguous cache line run and removes a pointer chase per node in
//! the solvers' inner loops. The index is rebuilt lazily (counting sort,
//! `O(n + m)`, allocation-free after the first build) whenever edges or
//! nodes were added since the last build; `reset` keeps all allocations,
//! so a caller solving many similarly sized instances (one layered graph
//! per substream) reuses one network as an arena.

/// Index of a node in a [`FlowNetwork`].
pub type NodeId = usize;

/// Identifier of a user-added edge, returned by [`FlowNetwork::add_edge`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EdgeId(pub(crate) usize);

#[derive(Clone, Debug)]
pub(crate) struct Arc {
    pub to: NodeId,
    /// Remaining residual capacity.
    pub cap: i64,
    pub cost: i64,
}

/// Arc record in CSR order — the solvers' relaxation loops read these
/// three fields together, so they live in one 24-byte record (a single
/// sequential stream) rather than three parallel arrays.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct CsrArc {
    /// Remaining residual capacity (mirror of `arcs[csr[i]].cap`).
    pub cap: i64,
    pub cost: i64,
    pub to: u32,
}

/// A directed flow network with integer capacities and costs.
#[derive(Clone, Debug, Default)]
pub struct FlowNetwork {
    pub(crate) arcs: Vec<Arc>,
    /// Number of nodes.
    n: usize,
    /// CSR offsets: arcs of node `u` are `csr[first_out[u]..first_out[u+1]]`.
    /// Valid only when `csr_dirty` is false.
    first_out: Vec<u32>,
    /// Arc ids grouped by tail node, ascending within a node (matching
    /// insertion order, so iteration order — and therefore tie-breaking
    /// in every solver — is identical to the old per-node `Vec` lists).
    pub(crate) csr: Vec<u32>,
    /// Arc *data* mirrored in CSR order, one packed record per position,
    /// so the solvers' inner relaxation loops scan a single flat array
    /// linearly instead of gathering `arcs[csr[i]]` in insertion order —
    /// at layered-graph sizes that double indirection was the single
    /// largest cost in Dijkstra. Capacities are kept in sync with `arcs`
    /// by [`push`](Self::push) via the `pos` inverse map.
    pub(crate) csr_arcs: Vec<CsrArc>,
    /// CSR position of each arc id (inverse of `csr`).
    pos: Vec<u32>,
    /// Scratch cursor for the counting sort (retained to keep rebuilds
    /// allocation-free).
    cursor: Vec<u32>,
    /// Whether the CSR index is stale w.r.t. `arcs`/`n`.
    csr_dirty: bool,
    /// Number of user edges with negative cost (O(1) negative-arc check).
    neg_edges: usize,
    /// Whether any flow has been pushed since the last reset — pushed
    /// flow activates residual arcs, which carry negated (possibly
    /// negative) costs even when every user edge cost is non-negative.
    flow_dirty: bool,
    /// Original capacity of every user edge, indexed by `EdgeId.0`.
    original_cap: Vec<i64>,
}

impl FlowNetwork {
    /// Creates a network with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            arcs: Vec::new(),
            n,
            first_out: Vec::new(),
            csr: Vec::new(),
            csr_arcs: Vec::new(),
            pos: Vec::new(),
            cursor: Vec::new(),
            csr_dirty: true,
            neg_edges: 0,
            flow_dirty: false,
            original_cap: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Clears the network down to `n` isolated nodes while retaining the
    /// arc, CSR, and scratch allocations, so a caller solving many
    /// similarly sized instances (e.g. one layered graph per substream)
    /// can reuse one network as an arena instead of rebuilding it from
    /// scratch. Allocation-free once the arena has grown to the size of
    /// the largest instance seen.
    pub fn reset(&mut self, n: usize) {
        self.arcs.clear();
        self.original_cap.clear();
        self.n = n;
        self.csr_dirty = true;
        self.neg_edges = 0;
        self.flow_dirty = false;
    }

    /// Number of user edges (not counting residual arcs).
    pub fn num_edges(&self) -> usize {
        self.original_cap.len()
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        self.n += 1;
        self.csr_dirty = true;
        self.n - 1
    }

    /// Adds a directed edge `from → to` with the given capacity and
    /// per-unit cost. Capacity must be non-negative.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, cap: i64, cost: i64) -> EdgeId {
        assert!(from < self.n, "from out of range");
        assert!(to < self.n, "to out of range");
        assert!(cap >= 0, "negative capacity");
        let id = self.arcs.len();
        self.arcs.push(Arc { to, cap, cost });
        self.arcs.push(Arc {
            to: from,
            cap: 0,
            cost: -cost,
        });
        self.original_cap.push(cap);
        if cost < 0 {
            self.neg_edges += 1;
        }
        self.csr_dirty = true;
        EdgeId(id / 2)
    }

    /// Conservative O(1) check: `false` guarantees no active arc has a
    /// negative cost (so zero potentials are valid); `true` means a
    /// negative-cost arc *may* be active and an O(m) scan must decide.
    pub(crate) fn maybe_negative_active(&self) -> bool {
        self.neg_edges > 0 || self.flow_dirty
    }

    /// Rebuilds the CSR adjacency index if it is stale. Every solver
    /// calls this once before touching [`out_arcs`](Self::out_arcs);
    /// a clean index makes the call free.
    pub(crate) fn ensure_csr(&mut self) {
        if !self.csr_dirty {
            return;
        }
        let n = self.n;
        let m = self.arcs.len();
        self.first_out.clear();
        self.first_out.resize(n + 1, 0);
        for a in 0..m {
            // Tail of arc `a` is the head of its xor-paired reverse.
            let from = self.arcs[a ^ 1].to;
            self.first_out[from + 1] += 1;
        }
        for i in 0..n {
            self.first_out[i + 1] += self.first_out[i];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.first_out[..n]);
        self.csr.clear();
        self.csr.resize(m, 0);
        self.csr_arcs.clear();
        self.csr_arcs.resize(m, CsrArc::default());
        self.pos.clear();
        self.pos.resize(m, 0);
        for a in 0..m {
            let from = self.arcs[a ^ 1].to;
            let i = self.cursor[from] as usize;
            self.csr[i] = a as u32;
            self.pos[a] = i as u32;
            let arc = &self.arcs[a];
            self.csr_arcs[i] = CsrArc {
                cap: arc.cap,
                cost: arc.cost,
                to: arc.to as u32,
            };
            self.cursor[from] += 1;
        }
        self.csr_dirty = false;
    }

    /// Out-arc ids of `u` (forward and residual alike), contiguous.
    /// The CSR index must be clean (see [`ensure_csr`](Self::ensure_csr)).
    #[inline]
    pub(crate) fn out_arcs(&self, u: NodeId) -> &[u32] {
        debug_assert!(!self.csr_dirty, "CSR index is stale");
        &self.csr[self.first_out[u] as usize..self.first_out[u + 1] as usize]
    }

    /// CSR range of `u` as raw indices into [`csr_arc`](Self::csr_arc),
    /// for solvers that mutate the network while iterating.
    #[inline]
    pub(crate) fn out_range(&self, u: NodeId) -> (usize, usize) {
        debug_assert!(!self.csr_dirty, "CSR index is stale");
        (self.first_out[u] as usize, self.first_out[u + 1] as usize)
    }

    /// The arc id stored at CSR position `i` (see [`out_range`](Self::out_range)).
    #[inline]
    pub(crate) fn csr_arc(&self, i: usize) -> usize {
        self.csr[i] as usize
    }

    /// Tail node of arc `a` (the node it leaves).
    #[inline]
    pub(crate) fn arc_tail(&self, a: usize) -> NodeId {
        self.arcs[a ^ 1].to
    }

    /// Current flow routed over a user edge.
    pub fn flow_on(&self, e: EdgeId) -> i64 {
        // Flow equals the residual capacity accumulated on the reverse arc.
        self.arcs[e.0 * 2 + 1].cap
    }

    /// The endpoints `(from, to)` of a user edge.
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let to = self.arcs[e.0 * 2].to;
        let from = self.arcs[e.0 * 2 + 1].to;
        (from, to)
    }

    /// The original capacity of a user edge.
    pub fn capacity(&self, e: EdgeId) -> i64 {
        self.original_cap[e.0]
    }

    /// The per-unit cost of a user edge.
    pub fn cost(&self, e: EdgeId) -> i64 {
        self.arcs[e.0 * 2].cost
    }

    /// Remaining (unrouted) capacity of a user edge.
    pub fn residual(&self, e: EdgeId) -> i64 {
        self.arcs[e.0 * 2].cap
    }

    /// Iterator over all user edge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.num_edges()).map(EdgeId)
    }

    /// Total cost of the currently installed flow.
    pub fn total_cost(&self) -> i64 {
        self.edges().map(|e| self.flow_on(e) * self.cost(e)).sum()
    }

    /// Net flow out of a node (outgoing minus incoming over user edges).
    pub fn net_out_flow(&self, v: NodeId) -> i64 {
        let mut net = 0;
        for e in self.edges() {
            let (from, to) = self.endpoints(e);
            if from == v {
                net += self.flow_on(e);
            }
            if to == v {
                net -= self.flow_on(e);
            }
        }
        net
    }

    /// Clears all routed flow, restoring original capacities. The CSR
    /// index stays valid: flow changes touch capacities, not topology
    /// (the capacity mirror is re-synced in the same pass).
    pub fn reset_flow(&mut self) {
        for k in 0..self.num_edges() {
            self.arcs[k * 2].cap = self.original_cap[k];
            self.arcs[k * 2 + 1].cap = 0;
        }
        if !self.csr_dirty {
            for (i, &a) in self.csr.iter().enumerate() {
                self.csr_arcs[i].cap = self.arcs[a as usize].cap;
            }
        }
        self.flow_dirty = false;
    }

    /// Disables a user edge in place: zeroes its remaining capacity, its
    /// routed flow (the reverse arc's residual), and its recorded original
    /// capacity — so [`reset_flow`](Self::reset_flow) keeps it disabled —
    /// and returns the flow that was routed over it. The caller owes the
    /// network that much imbalance: the tail is left with excess and the
    /// head with deficit until the flow is re-routed (see the `repair`
    /// module). The CSR index stays valid: disabling changes capacities,
    /// not topology, and the capacity mirror is re-synced here.
    pub fn disable_edge(&mut self, e: EdgeId) -> i64 {
        let fwd = e.0 * 2;
        let drained = self.arcs[fwd + 1].cap;
        self.arcs[fwd].cap = 0;
        self.arcs[fwd + 1].cap = 0;
        self.original_cap[e.0] = 0;
        if !self.csr_dirty {
            self.csr_arcs[self.pos[fwd] as usize].cap = 0;
            self.csr_arcs[self.pos[fwd + 1] as usize].cap = 0;
        }
        drained
    }

    /// Reduces a user edge's capacity in place to `new_cap` (which must
    /// not exceed the current capacity). Flow above the new bound is
    /// drained — the reverse arc's residual drops to `new_cap` — and the
    /// amount drained is returned; as with
    /// [`disable_edge`](Self::disable_edge), the caller owes the network
    /// that much imbalance until it is re-routed (see the `repair`
    /// module). The recorded original capacity shrinks too, so
    /// [`reset_flow`](Self::reset_flow) honours the cut. The CSR index
    /// stays valid: the capacity mirror is re-synced here.
    pub fn reduce_capacity(&mut self, e: EdgeId, new_cap: i64) -> i64 {
        assert!(new_cap >= 0, "negative capacity");
        assert!(new_cap <= self.original_cap[e.0], "capacity increase");
        let fwd = e.0 * 2;
        let kept = self.arcs[fwd + 1].cap.min(new_cap);
        let drained = self.arcs[fwd + 1].cap - kept;
        self.arcs[fwd].cap = new_cap - kept;
        self.arcs[fwd + 1].cap = kept;
        self.original_cap[e.0] = new_cap;
        if !self.csr_dirty {
            self.csr_arcs[self.pos[fwd] as usize].cap = self.arcs[fwd].cap;
            self.csr_arcs[self.pos[fwd + 1] as usize].cap = kept;
        }
        drained
    }

    /// Re-prices a user edge in place. Installed flow is untouched, so
    /// the flow may stop being min-cost for its value until the caller
    /// repairs or re-solves (a cost change can create negative residual
    /// cycles). The CSR index stays valid: the cost mirror is re-synced
    /// here.
    pub fn set_cost(&mut self, e: EdgeId, new_cost: i64) {
        let fwd = e.0 * 2;
        if self.arcs[fwd].cost < 0 {
            self.neg_edges -= 1;
        }
        if new_cost < 0 {
            self.neg_edges += 1;
        }
        self.arcs[fwd].cost = new_cost;
        self.arcs[fwd + 1].cost = -new_cost;
        if !self.csr_dirty {
            self.csr_arcs[self.pos[fwd] as usize].cost = new_cost;
            self.csr_arcs[self.pos[fwd + 1] as usize].cost = -new_cost;
        }
        // Flow already routed over the edge now rides a re-priced arc;
        // its reverse residual may be negative even with non-negative
        // user costs, which `maybe_negative_active` must reflect.
        if self.flow_on(e) > 0 {
            self.flow_dirty = true;
        }
    }

    /// Pushes `amount` of flow along arc `a` (internal; updates residuals).
    #[inline]
    pub(crate) fn push(&mut self, a: usize, amount: i64) {
        debug_assert!(amount >= 0 && amount <= self.arcs[a].cap);
        self.arcs[a].cap -= amount;
        self.arcs[a ^ 1].cap += amount;
        if !self.csr_dirty {
            self.csr_arcs[self.pos[a] as usize].cap -= amount;
            self.csr_arcs[self.pos[a ^ 1] as usize].cap += amount;
        }
        self.flow_dirty = true;
    }

    /// Pushes `amount` along arc `a` without re-syncing the CSR capacity
    /// mirror, leaving the index marked stale. Cheaper than
    /// [`push`](Self::push) for solvers that read capacities straight from
    /// `arcs` and invalidate the index when they finish anyway (network
    /// simplex pops its super-arc, which dirties the CSR regardless).
    #[inline]
    pub(crate) fn push_unmirrored(&mut self, a: usize, amount: i64) {
        debug_assert!(amount >= 0 && amount <= self.arcs[a].cap);
        self.arcs[a].cap -= amount;
        self.arcs[a ^ 1].cap += amount;
        self.csr_dirty = true;
        self.flow_dirty = true;
    }

    /// Removes the most recently added user edge. Only valid when it *is*
    /// the last one added; used internally to retract temporary super-arcs.
    pub(crate) fn pop_last_edge(&mut self) {
        assert!(self.arcs.len() >= 2, "no edge to pop");
        self.arcs.pop();
        let fwd = self.arcs.pop().expect("arc pair");
        if fwd.cost < 0 {
            self.neg_edges -= 1;
        }
        self.original_cap.pop();
        self.csr_dirty = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_and_query() {
        let mut net = FlowNetwork::new(3);
        let e = net.add_edge(0, 2, 7, 3);
        assert_eq!(net.num_nodes(), 3);
        assert_eq!(net.num_edges(), 1);
        assert_eq!(net.endpoints(e), (0, 2));
        assert_eq!(net.capacity(e), 7);
        assert_eq!(net.cost(e), 3);
        assert_eq!(net.flow_on(e), 0);
        assert_eq!(net.residual(e), 7);
    }

    #[test]
    fn add_node_grows_graph() {
        let mut net = FlowNetwork::new(1);
        let v = net.add_node();
        assert_eq!(v, 1);
        let e = net.add_edge(0, v, 1, 1);
        assert_eq!(net.endpoints(e), (0, 1));
    }

    #[test]
    fn push_moves_residuals() {
        let mut net = FlowNetwork::new(2);
        let e = net.add_edge(0, 1, 10, 1);
        net.push(0, 4);
        assert_eq!(net.flow_on(e), 4);
        assert_eq!(net.residual(e), 6);
        // Push back along the residual arc cancels flow.
        net.push(1, 3);
        assert_eq!(net.flow_on(e), 1);
        assert_eq!(net.residual(e), 9);
    }

    #[test]
    fn reset_restores_capacities() {
        let mut net = FlowNetwork::new(2);
        let e = net.add_edge(0, 1, 5, 2);
        net.push(0, 5);
        assert_eq!(net.residual(e), 0);
        net.reset_flow();
        assert_eq!(net.residual(e), 5);
        assert_eq!(net.flow_on(e), 0);
        assert_eq!(net.total_cost(), 0);
    }

    #[test]
    fn reset_reuses_arena() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 5, 1);
        net.add_edge(1, 2, 5, 1);
        net.push(0, 2);
        net.reset(2);
        assert_eq!(net.num_nodes(), 2);
        assert_eq!(net.num_edges(), 0);
        let v = net.add_node();
        assert_eq!(v, 2);
        let e = net.add_edge(0, v, 9, 4);
        assert_eq!(net.flow_on(e), 0);
        assert_eq!(net.capacity(e), 9);
        // Growing past the previous size works too.
        net.reset(8);
        assert_eq!(net.num_nodes(), 8);
        assert_eq!(net.num_edges(), 0);
    }

    #[test]
    fn csr_matches_insertion_order() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 1, 0); // arcs 0 (0→1), 1 (1→0)
        net.add_edge(0, 2, 1, 0); // arcs 2 (0→2), 3 (2→0)
        net.add_edge(1, 2, 1, 0); // arcs 4 (1→2), 5 (2→1)
        net.ensure_csr();
        assert_eq!(net.out_arcs(0), &[0, 2]);
        assert_eq!(net.out_arcs(1), &[1, 4]);
        assert_eq!(net.out_arcs(2), &[3, 5]);
        assert_eq!(net.arc_tail(0), 0);
        assert_eq!(net.arc_tail(1), 1);
        assert_eq!(net.arc_tail(5), 2);
        // Rebuild after mutation picks up the new arcs.
        net.add_edge(2, 0, 1, 0); // arcs 6 (2→0), 7 (0→2)
        net.ensure_csr();
        assert_eq!(net.out_arcs(2), &[3, 5, 6]);
        assert_eq!(net.out_arcs(0), &[0, 2, 7]);
    }

    #[test]
    fn csr_survives_reset_and_pop() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 1, 5);
        net.ensure_csr();
        net.pop_last_edge();
        net.ensure_csr();
        assert!(net.out_arcs(0).is_empty());
        assert!(net.out_arcs(1).is_empty());
        net.reset(3);
        net.add_edge(2, 0, 4, 1);
        net.ensure_csr();
        assert_eq!(net.out_arcs(2), &[0]);
        assert_eq!(net.out_arcs(0), &[1]);
        assert!(net.out_arcs(1).is_empty());
    }

    #[test]
    fn disable_edge_drains_flow_and_survives_reset() {
        let mut net = FlowNetwork::new(3);
        let a = net.add_edge(0, 1, 10, 1);
        let b = net.add_edge(1, 2, 10, 1);
        net.ensure_csr();
        net.push(0, 4);
        net.push(2, 4);
        assert_eq!(net.disable_edge(a), 4);
        assert_eq!(net.flow_on(a), 0);
        assert_eq!(net.residual(a), 0);
        assert_eq!(net.capacity(a), 0);
        // The CSR mirror saw the zeroing without a rebuild.
        net.ensure_csr();
        for &arc in net.out_arcs(0) {
            assert_eq!(net.arcs[arc as usize].cap, 0);
        }
        // Untouched edges keep their flow; reset keeps the edge disabled.
        assert_eq!(net.flow_on(b), 4);
        net.reset_flow();
        assert_eq!(net.residual(a), 0);
        assert_eq!(net.residual(b), 10);
        // Disabling a zero-flow edge drains nothing.
        assert_eq!(net.disable_edge(b), 0);
    }

    #[test]
    fn total_cost_sums_edges() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5, 2);
        net.add_edge(1, 2, 5, 7);
        net.push(0, 3);
        net.push(2, 3);
        assert_eq!(net.total_cost(), 3 * 2 + 3 * 7);
    }

    #[test]
    fn net_out_flow_signs() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5, 0);
        net.add_edge(1, 2, 5, 0);
        net.push(0, 2);
        net.push(2, 2);
        assert_eq!(net.net_out_flow(0), 2);
        assert_eq!(net.net_out_flow(1), 0);
        assert_eq!(net.net_out_flow(2), -2);
    }

    #[test]
    fn parallel_and_self_edges_supported() {
        let mut net = FlowNetwork::new(2);
        let a = net.add_edge(0, 1, 3, 1);
        let b = net.add_edge(0, 1, 3, 9);
        let loop_e = net.add_edge(1, 1, 2, 5);
        assert_ne!(a, b);
        assert_eq!(net.endpoints(loop_e), (1, 1));
    }

    #[test]
    #[should_panic(expected = "negative capacity")]
    fn negative_capacity_rejected() {
        FlowNetwork::new(2).add_edge(0, 1, -1, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_endpoint_rejected() {
        FlowNetwork::new(2).add_edge(0, 5, 1, 0);
    }
}
