//! Residual flow-network representation.
//!
//! Arcs are stored in a flat `Vec` where arc `2k` is the `k`-th user edge
//! and arc `2k+1` is its residual reverse (capacity 0, negated cost). This
//! pairing makes `rev(a) == a ^ 1`, avoiding an explicit pointer.

/// Index of a node in a [`FlowNetwork`].
pub type NodeId = usize;

/// Identifier of a user-added edge, returned by [`FlowNetwork::add_edge`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EdgeId(pub(crate) usize);

#[derive(Clone, Debug)]
pub(crate) struct Arc {
    pub to: NodeId,
    /// Remaining residual capacity.
    pub cap: i64,
    pub cost: i64,
}

/// A directed flow network with integer capacities and costs.
#[derive(Clone, Debug, Default)]
pub struct FlowNetwork {
    pub(crate) arcs: Vec<Arc>,
    /// Outgoing arc indices per node (forward and residual alike).
    pub(crate) adj: Vec<Vec<usize>>,
    /// Original capacity of every user edge, indexed by `EdgeId.0`.
    original_cap: Vec<i64>,
}

impl FlowNetwork {
    /// Creates a network with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            arcs: Vec::new(),
            adj: vec![Vec::new(); n],
            original_cap: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Clears the network down to `n` isolated nodes while retaining the
    /// arc and adjacency allocations, so a caller solving many similarly
    /// sized instances (e.g. one layered graph per substream) can reuse
    /// one network as an arena instead of rebuilding it from scratch.
    pub fn reset(&mut self, n: usize) {
        self.arcs.clear();
        self.original_cap.clear();
        for list in &mut self.adj {
            list.clear();
        }
        if self.adj.len() < n {
            self.adj.resize_with(n, Vec::new);
        } else {
            self.adj.truncate(n);
        }
    }

    /// Number of user edges (not counting residual arcs).
    pub fn num_edges(&self) -> usize {
        self.original_cap.len()
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Adds a directed edge `from → to` with the given capacity and
    /// per-unit cost. Capacity must be non-negative.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, cap: i64, cost: i64) -> EdgeId {
        assert!(from < self.adj.len(), "from out of range");
        assert!(to < self.adj.len(), "to out of range");
        assert!(cap >= 0, "negative capacity");
        let id = self.arcs.len();
        self.arcs.push(Arc { to, cap, cost });
        self.arcs.push(Arc {
            to: from,
            cap: 0,
            cost: -cost,
        });
        self.adj[from].push(id);
        self.adj[to].push(id + 1);
        self.original_cap.push(cap);
        EdgeId(id / 2)
    }

    /// Current flow routed over a user edge.
    pub fn flow_on(&self, e: EdgeId) -> i64 {
        // Flow equals the residual capacity accumulated on the reverse arc.
        self.arcs[e.0 * 2 + 1].cap
    }

    /// The endpoints `(from, to)` of a user edge.
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let to = self.arcs[e.0 * 2].to;
        let from = self.arcs[e.0 * 2 + 1].to;
        (from, to)
    }

    /// The original capacity of a user edge.
    pub fn capacity(&self, e: EdgeId) -> i64 {
        self.original_cap[e.0]
    }

    /// The per-unit cost of a user edge.
    pub fn cost(&self, e: EdgeId) -> i64 {
        self.arcs[e.0 * 2].cost
    }

    /// Remaining (unrouted) capacity of a user edge.
    pub fn residual(&self, e: EdgeId) -> i64 {
        self.arcs[e.0 * 2].cap
    }

    /// Iterator over all user edge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.num_edges()).map(EdgeId)
    }

    /// Total cost of the currently installed flow.
    pub fn total_cost(&self) -> i64 {
        self.edges().map(|e| self.flow_on(e) * self.cost(e)).sum()
    }

    /// Net flow out of a node (outgoing minus incoming over user edges).
    pub fn net_out_flow(&self, v: NodeId) -> i64 {
        let mut net = 0;
        for e in self.edges() {
            let (from, to) = self.endpoints(e);
            if from == v {
                net += self.flow_on(e);
            }
            if to == v {
                net -= self.flow_on(e);
            }
        }
        net
    }

    /// Clears all routed flow, restoring original capacities.
    pub fn reset_flow(&mut self) {
        for k in 0..self.num_edges() {
            self.arcs[k * 2].cap = self.original_cap[k];
            self.arcs[k * 2 + 1].cap = 0;
        }
    }

    /// Pushes `amount` of flow along arc `a` (internal; updates residuals).
    #[inline]
    pub(crate) fn push(&mut self, a: usize, amount: i64) {
        debug_assert!(amount >= 0 && amount <= self.arcs[a].cap);
        self.arcs[a].cap -= amount;
        self.arcs[a ^ 1].cap += amount;
    }

    /// Removes the most recently added user edge. Only valid when it *is*
    /// the last one added; used internally to retract temporary super-arcs.
    pub(crate) fn pop_last_edge(&mut self) {
        let fwd = self.arcs.len() - 2;
        let rev = fwd + 1;
        let from = self.arcs[rev].to;
        let to = self.arcs[fwd].to;
        assert_eq!(self.adj[from].last(), Some(&fwd), "not the last edge");
        assert_eq!(self.adj[to].last(), Some(&rev), "not the last edge");
        self.adj[from].pop();
        self.adj[to].pop();
        self.arcs.pop();
        self.arcs.pop();
        self.original_cap.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_and_query() {
        let mut net = FlowNetwork::new(3);
        let e = net.add_edge(0, 2, 7, 3);
        assert_eq!(net.num_nodes(), 3);
        assert_eq!(net.num_edges(), 1);
        assert_eq!(net.endpoints(e), (0, 2));
        assert_eq!(net.capacity(e), 7);
        assert_eq!(net.cost(e), 3);
        assert_eq!(net.flow_on(e), 0);
        assert_eq!(net.residual(e), 7);
    }

    #[test]
    fn add_node_grows_graph() {
        let mut net = FlowNetwork::new(1);
        let v = net.add_node();
        assert_eq!(v, 1);
        let e = net.add_edge(0, v, 1, 1);
        assert_eq!(net.endpoints(e), (0, 1));
    }

    #[test]
    fn push_moves_residuals() {
        let mut net = FlowNetwork::new(2);
        let e = net.add_edge(0, 1, 10, 1);
        net.push(0, 4);
        assert_eq!(net.flow_on(e), 4);
        assert_eq!(net.residual(e), 6);
        // Push back along the residual arc cancels flow.
        net.push(1, 3);
        assert_eq!(net.flow_on(e), 1);
        assert_eq!(net.residual(e), 9);
    }

    #[test]
    fn reset_restores_capacities() {
        let mut net = FlowNetwork::new(2);
        let e = net.add_edge(0, 1, 5, 2);
        net.push(0, 5);
        assert_eq!(net.residual(e), 0);
        net.reset_flow();
        assert_eq!(net.residual(e), 5);
        assert_eq!(net.flow_on(e), 0);
        assert_eq!(net.total_cost(), 0);
    }

    #[test]
    fn reset_reuses_arena() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 5, 1);
        net.add_edge(1, 2, 5, 1);
        net.push(0, 2);
        net.reset(2);
        assert_eq!(net.num_nodes(), 2);
        assert_eq!(net.num_edges(), 0);
        let v = net.add_node();
        assert_eq!(v, 2);
        let e = net.add_edge(0, v, 9, 4);
        assert_eq!(net.flow_on(e), 0);
        assert_eq!(net.capacity(e), 9);
        // Growing past the previous size works too.
        net.reset(8);
        assert_eq!(net.num_nodes(), 8);
        assert_eq!(net.num_edges(), 0);
    }

    #[test]
    fn total_cost_sums_edges() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5, 2);
        net.add_edge(1, 2, 5, 7);
        net.push(0, 3);
        net.push(2, 3);
        assert_eq!(net.total_cost(), 3 * 2 + 3 * 7);
    }

    #[test]
    fn net_out_flow_signs() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5, 0);
        net.add_edge(1, 2, 5, 0);
        net.push(0, 2);
        net.push(2, 2);
        assert_eq!(net.net_out_flow(0), 2);
        assert_eq!(net.net_out_flow(1), 0);
        assert_eq!(net.net_out_flow(2), -2);
    }

    #[test]
    fn parallel_and_self_edges_supported() {
        let mut net = FlowNetwork::new(2);
        let a = net.add_edge(0, 1, 3, 1);
        let b = net.add_edge(0, 1, 3, 9);
        let loop_e = net.add_edge(1, 1, 2, 5);
        assert_ne!(a, b);
        assert_eq!(net.endpoints(loop_e), (1, 1));
    }

    #[test]
    #[should_panic(expected = "negative capacity")]
    fn negative_capacity_rejected() {
        FlowNetwork::new(2).add_edge(0, 1, -1, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_endpoint_rejected() {
        FlowNetwork::new(2).add_edge(0, 5, 1, 0);
    }
}
