//! Successive shortest paths (SSP) for minimum-cost flow.
//!
//! Repeatedly find a cheapest residual `s → t` path and saturate it. With a
//! shortest-path subroutine that respects reduced costs, every intermediate
//! flow is a minimum-cost flow of its value (Edmonds–Karp [7]), so on
//! infeasibility the partial routing left in the network is itself optimal.
//!
//! Two shortest-path engines are provided:
//!
//! * **SPFA** (queue-based Bellman–Ford) — tolerates negative arc costs
//!   directly; the simple reference implementation.
//! * **Dijkstra with Johnson potentials** — maintains node potentials `π`
//!   so reduced costs `c + π(u) − π(v)` stay non-negative, allowing a heap
//!   Dijkstra per augmentation. When the input has negative arcs the
//!   initial potentials are seeded with one Bellman–Ford pass.

use crate::network::{FlowNetwork, NodeId};
use crate::{Infeasible, Solution};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// Shortest-path engine used by [`SspSolver`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SspVariant {
    /// Queue-based Bellman–Ford per augmentation.
    Spfa,
    /// Binary-heap Dijkstra over reduced costs.
    Dijkstra,
}

/// Successive-shortest-path min-cost flow solver.
#[derive(Clone, Copy, Debug)]
pub struct SspSolver {
    variant: SspVariant,
}

const INF: i64 = i64::MAX / 4;

impl SspSolver {
    /// Creates a solver with the given shortest-path engine.
    pub fn new(variant: SspVariant) -> Self {
        SspSolver { variant }
    }

    /// Routes up to `target` units from `source` to `sink` at minimum cost.
    pub fn solve(
        &self,
        net: &mut FlowNetwork,
        source: NodeId,
        sink: NodeId,
        target: i64,
    ) -> Result<Solution, Infeasible> {
        assert!(target >= 0, "negative flow target");
        assert!(source < net.num_nodes() && sink < net.num_nodes());
        let n = net.num_nodes();
        let mut flow = 0i64;
        let mut cost = 0i64;
        if source == sink || target == 0 {
            return Ok(Solution { flow: 0, cost: 0 });
        }

        // Potentials for the Dijkstra variant. If any arc has a negative
        // cost, seed with Bellman–Ford; otherwise zeros are valid.
        let mut pot = vec![0i64; n];
        if self.variant == SspVariant::Dijkstra && net.arcs.iter().any(|a| a.cap > 0 && a.cost < 0)
        {
            bellman_ford(net, source, &mut pot);
        }

        let mut dist = vec![INF; n];
        let mut prev_arc = vec![usize::MAX; n];

        while flow < target {
            let reached = match self.variant {
                SspVariant::Spfa => spfa(net, source, &mut dist, &mut prev_arc),
                SspVariant::Dijkstra => dijkstra(net, source, &pot, &mut dist, &mut prev_arc),
            };
            if !reached || dist[sink] >= INF {
                return Err(Infeasible {
                    max_flow: flow,
                    cost,
                });
            }
            if self.variant == SspVariant::Dijkstra {
                // Fold distances into potentials; unreachable nodes keep
                // their old potential (they stay unreachable).
                for v in 0..n {
                    if dist[v] < INF {
                        pot[v] += dist[v];
                    }
                }
            }
            // Bottleneck along the path, capped by the remaining demand.
            let mut bottleneck = target - flow;
            let mut v = sink;
            while v != source {
                let a = prev_arc[v];
                bottleneck = bottleneck.min(net.arcs[a].cap);
                v = net.arcs[a ^ 1].to;
            }
            debug_assert!(bottleneck > 0);
            // Augment.
            let mut v = sink;
            let mut path_cost = 0i64;
            while v != source {
                let a = prev_arc[v];
                path_cost += net.arcs[a].cost;
                net.push(a, bottleneck);
                v = net.arcs[a ^ 1].to;
            }
            flow += bottleneck;
            cost += bottleneck * path_cost;
        }
        Ok(Solution { flow, cost })
    }
}

/// Queue-based Bellman–Ford from `source`. Returns whether any node was
/// relaxed (always true unless the graph is empty); fills `dist`/`prev_arc`.
fn spfa(net: &FlowNetwork, source: NodeId, dist: &mut [i64], prev_arc: &mut [usize]) -> bool {
    dist.fill(INF);
    prev_arc.fill(usize::MAX);
    dist[source] = 0;
    let mut in_queue = vec![false; dist.len()];
    let mut queue = VecDeque::new();
    queue.push_back(source);
    in_queue[source] = true;
    while let Some(u) = queue.pop_front() {
        in_queue[u] = false;
        let du = dist[u];
        for &a in &net.adj[u] {
            let arc = &net.arcs[a];
            if arc.cap <= 0 {
                continue;
            }
            let nd = du + arc.cost;
            if nd < dist[arc.to] {
                dist[arc.to] = nd;
                prev_arc[arc.to] = a;
                if !in_queue[arc.to] {
                    in_queue[arc.to] = true;
                    queue.push_back(arc.to);
                }
            }
        }
    }
    true
}

/// Heap Dijkstra over reduced costs `c + π(u) − π(v)`.
fn dijkstra(
    net: &FlowNetwork,
    source: NodeId,
    pot: &[i64],
    dist: &mut [i64],
    prev_arc: &mut [usize],
) -> bool {
    dist.fill(INF);
    prev_arc.fill(usize::MAX);
    dist[source] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0i64, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for &a in &net.adj[u] {
            let arc = &net.arcs[a];
            if arc.cap <= 0 {
                continue;
            }
            let rc = arc.cost + pot[u] - pot[arc.to];
            debug_assert!(rc >= 0, "negative reduced cost {rc} on arc {a}");
            let nd = d + rc;
            if nd < dist[arc.to] {
                dist[arc.to] = nd;
                prev_arc[arc.to] = a;
                heap.push(Reverse((nd, arc.to)));
            }
        }
    }
    true
}

/// One full Bellman–Ford sweep to initialize potentials when negative-cost
/// arcs are present. Distances of unreachable nodes stay 0 — safe because
/// they can only become reachable after an augmentation through reachable
/// nodes, which Dijkstra's potential update keeps consistent.
fn bellman_ford(net: &FlowNetwork, source: NodeId, pot: &mut [i64]) {
    let n = net.num_nodes();
    let mut dist = vec![INF; n];
    dist[source] = 0;
    for _ in 0..n {
        let mut changed = false;
        for u in 0..n {
            if dist[u] >= INF {
                continue;
            }
            for &a in &net.adj[u] {
                let arc = &net.arcs[a];
                if arc.cap > 0 && dist[u] + arc.cost < dist[arc.to] {
                    dist[arc.to] = dist[u] + arc.cost;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    for v in 0..n {
        pot[v] = if dist[v] < INF { dist[v] } else { 0 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both() -> [SspSolver; 2] {
        [
            SspSolver::new(SspVariant::Spfa),
            SspSolver::new(SspVariant::Dijkstra),
        ]
    }

    #[test]
    fn single_edge() {
        for s in both() {
            let mut net = FlowNetwork::new(2);
            net.add_edge(0, 1, 10, 5);
            let sol = s.solve(&mut net, 0, 1, 7).unwrap();
            assert_eq!(sol, Solution { flow: 7, cost: 35 });
        }
    }

    #[test]
    fn prefers_cheap_path_then_spills() {
        for s in both() {
            let mut net = FlowNetwork::new(4);
            net.add_edge(0, 1, 4, 1);
            net.add_edge(1, 3, 4, 1);
            net.add_edge(0, 2, 10, 10);
            net.add_edge(2, 3, 10, 10);
            let sol = s.solve(&mut net, 0, 3, 6).unwrap();
            assert_eq!(sol.flow, 6);
            assert_eq!(sol.cost, 4 * 2 + 2 * 20);
        }
    }

    #[test]
    fn uses_residual_rerouting() {
        // Classic example where optimality requires pushing flow back.
        // 0→1 cap1 cost1, 0→2 cap1 cost2, 1→2 cap1 cost0(!), 1→3 cap1 cost2,
        // 2→3 cap1 cost1. Max flow 2 with min cost uses rerouting.
        for s in both() {
            let mut net = FlowNetwork::new(4);
            net.add_edge(0, 1, 1, 1);
            net.add_edge(0, 2, 1, 2);
            net.add_edge(1, 2, 1, 0);
            net.add_edge(1, 3, 1, 2);
            net.add_edge(2, 3, 1, 1);
            let sol = s.solve(&mut net, 0, 3, 2).unwrap();
            assert_eq!(sol.flow, 2);
            assert_eq!(sol.cost, (1 + 1) + (2 + 2));
        }
    }

    #[test]
    fn infeasible_leaves_max_flow_installed() {
        for s in both() {
            let mut net = FlowNetwork::new(3);
            let a = net.add_edge(0, 1, 3, 1);
            let b = net.add_edge(1, 2, 2, 1);
            let err = s.solve(&mut net, 0, 2, 5).unwrap_err();
            assert_eq!(err.max_flow, 2);
            assert_eq!(err.cost, 4);
            assert_eq!(net.flow_on(a), 2);
            assert_eq!(net.flow_on(b), 2);
        }
    }

    #[test]
    fn disconnected_sink_is_zero_feasible_only() {
        for s in both() {
            let mut net = FlowNetwork::new(3);
            net.add_edge(0, 1, 5, 1);
            let err = s.solve(&mut net, 0, 2, 1).unwrap_err();
            assert_eq!(err.max_flow, 0);
            let sol = s.solve(&mut net, 0, 2, 0).unwrap();
            assert_eq!(sol.flow, 0);
        }
    }

    #[test]
    fn source_equals_sink() {
        for s in both() {
            let mut net = FlowNetwork::new(2);
            net.add_edge(0, 1, 5, 1);
            let sol = s.solve(&mut net, 0, 0, 100).unwrap();
            assert_eq!(sol, Solution { flow: 0, cost: 0 });
        }
    }

    #[test]
    fn negative_cost_edges_handled() {
        // A negative-cost arc on the cheap route; Dijkstra needs the
        // Bellman–Ford seeding for this.
        for s in both() {
            let mut net = FlowNetwork::new(4);
            net.add_edge(0, 1, 5, -2);
            net.add_edge(1, 3, 5, 1);
            net.add_edge(0, 2, 5, 1);
            net.add_edge(2, 3, 5, 1);
            let sol = s.solve(&mut net, 0, 3, 8).unwrap();
            assert_eq!(sol.flow, 8);
            assert_eq!(sol.cost, -5 + 3 * 2);
        }
    }

    #[test]
    fn variants_agree_on_layered_graph() {
        // A composition-shaped layered graph: 2 layers × 3 hosts.
        let build = || {
            let mut net = FlowNetwork::new(8);
            // 0 source, 1..=3 layer A, 4..=6 layer B, 7 sink.
            let caps = [30, 20, 10];
            let costs = [5, 2, 9];
            #[allow(clippy::needless_range_loop)] // i and j index two arrays
            for i in 0..3 {
                net.add_edge(0, 1 + i, caps[i], costs[i]);
                for j in 0..3 {
                    net.add_edge(1 + i, 4 + j, caps[j].min(caps[i]), costs[j] + 1);
                }
                net.add_edge(4 + i, 7, caps[i], 0);
            }
            net
        };
        let mut a = build();
        let mut b = build();
        let sa = SspSolver::new(SspVariant::Spfa)
            .solve(&mut a, 0, 7, 45)
            .unwrap();
        let sb = SspSolver::new(SspVariant::Dijkstra)
            .solve(&mut b, 0, 7, 45)
            .unwrap();
        assert_eq!(sa.flow, 45);
        assert_eq!(sa, sb);
    }
}
